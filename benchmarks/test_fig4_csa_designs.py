"""Fig. 4 — mixed compressor/full-adder carry-save adders.

Regenerates the design-point data behind Fig. 4: for the 64-row adder
tree, the conventional signed-RCA tree, the pure 4-2-compressor CSA and
the mixed CSA at increasing FA substitution levels are built, timed and
powered.  The paper's claims checked here:

* compressor CSAs are smaller and more energy-efficient than signed-RCA
  trees;
* substituting full adders into the final levels shortens the critical
  path at a power/area premium (the loose-vs-strict-timing knob);
* carry reordering (late bits onto fast ports) does not hurt and
  usually helps.
"""

import pytest

from repro.compiler.report import format_table
from repro.power.estimator import estimate_power
from repro.rtl.gen.addertree import generate_adder_tree
from repro.sta.analysis import minimum_period_ns

DESIGNS = [
    ("signed RCA tree", "rca", 0, True),
    ("4-2 compressor CSA", "cmp42", 0, True),
    ("mixed CSA (1 FA level)", "mixed", 1, True),
    ("mixed CSA (2 FA levels)", "mixed", 2, True),
    ("mixed CSA (3 FA levels)", "mixed", 3, True),
    ("compressor, no reorder", "cmp42", 0, False),
]


def _characterize(library, process, n=64):
    rows = []
    data = {}
    for label, style, fa, reorder in DESIGNS:
        mod, stats = generate_adder_tree(n, style, fa, reorder)
        flat = mod.flatten()
        delay = minimum_period_ns(flat, library)
        power = estimate_power(flat, library, process, 800.0)
        area = flat.total_area_um2(library)
        data[label] = (delay, power.total_mw, area)
        rows.append(
            [
                label,
                round(delay, 3),
                round(power.total_mw, 3),
                round(area, 1),
                stats.compressors,
                stats.full_adders,
                stats.half_adders,
            ]
        )
    return rows, data


@pytest.mark.benchmark(group="fig4")
def test_fig4_csa_design_points(benchmark, library, process, save_result):
    rows, data = _characterize(library, process)

    table = format_table(
        ["design", "delay_ns", "power_mw", "area_um2", "cmp", "fa", "ha"],
        rows,
    )
    save_result("fig4_csa_designs", table)

    rca = data["signed RCA tree"]
    cmp_ = data["4-2 compressor CSA"]
    mixed3 = data["mixed CSA (3 FA levels)"]
    noreord = data["compressor, no reorder"]

    # Paper claims (shape, not absolute numbers).
    assert cmp_[2] < rca[2], "compressor CSA must be smaller than RCA"
    assert cmp_[1] < rca[1], "compressor CSA must use less power than RCA"
    assert mixed3[0] < cmp_[0], "FA substitution must shorten the path"
    assert mixed3[2] > cmp_[2], "...at an area premium"
    assert cmp_[0] <= noreord[0] + 0.02, "carry reorder must not hurt"

    benchmark(
        lambda: generate_adder_tree(64, "mixed", 2, True)[0].flatten()
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_scaling_across_heights(benchmark, library, process, save_result):
    """The same orderings must hold across the array heights Fig. 7
    sweeps (the searcher relies on that when interpolating)."""
    rows = []
    for n in (16, 32, 64, 128, 256):
        per_n = {}
        for style, fa in (("rca", 0), ("cmp42", 0), ("mixed", 2)):
            mod, _ = generate_adder_tree(n, style, fa)
            flat = mod.flatten()
            per_n[style] = (
                minimum_period_ns(flat, library),
                flat.total_area_um2(library),
            )
        rows.append(
            [
                n,
                round(per_n["rca"][0], 3),
                round(per_n["cmp42"][0], 3),
                round(per_n["mixed"][0], 3),
                round(per_n["rca"][1], 0),
                round(per_n["cmp42"][1], 0),
            ]
        )
        assert per_n["cmp42"][1] < per_n["rca"][1]
        # FA substitution helps or stays within noise; the exact best
        # level is height-dependent, which is why the searcher probes
        # the SCL instead of assuming monotonicity.
        assert per_n["mixed"][0] <= per_n["cmp42"][0] * 1.06
    table = format_table(
        [
            "rows",
            "rca_delay",
            "cmp42_delay",
            "mixed2_delay",
            "rca_area",
            "cmp42_area",
        ],
        rows,
    )
    save_result("fig4_scaling", table)
    benchmark(lambda: generate_adder_tree(128, "cmp42")[0])
