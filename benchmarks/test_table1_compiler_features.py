"""Table I — comparison with emerging CIM compilers.

The paper's Table I is a capability matrix.  Rather than transcribing
claims, this bench *demonstrates* each capability programmatically on
the reproduced compilers: AutoDCIM-style (template assembly), ARCTIC-
style (parameterized precision) and SynDCIM (multi-spec-oriented
search), then renders the matrix.  The benchmark timing measures the
searcher itself — the compile-time cost of performance awareness.
"""

import pytest

from repro.baselines.arctic import ArcticCompiler
from repro.baselines.autodcim import AutoDCIMCompiler
from repro.compiler.report import format_table
from repro.search.algorithm import MSOSearcher
from repro.spec import FP8, INT4, INT8, MacroSpec


def _capabilities(scl, spec_tight, spec_fp, spec_mcr4):
    auto = AutoDCIMCompiler(scl)
    arctic = ArcticCompiler(scl)
    syn = MSOSearcher(scl)

    auto_tight = auto.compile(spec_tight).meets_timing
    arctic_tight = arctic.compile(spec_tight).meets_timing
    syn_res = syn.search(spec_tight)
    syn_tight = bool(syn_res.frontier)

    return {
        "AutoDCIM-style": {
            "layout generation": True,
            "FP precision": False,  # template has no alignment sizing
            "MCR > 2": True,
            "performance-aware": auto_tight,
            "multi-spec search": False,
            "pareto outputs": False,
        },
        "ARCTIC-style": {
            "layout generation": True,
            "FP precision": True,
            "MCR > 2": True,
            "performance-aware": arctic_tight,
            "multi-spec search": False,
            "pareto outputs": False,
        },
        "SynDCIM (this work)": {
            "layout generation": True,
            "FP precision": True,
            "MCR > 2": True,
            "performance-aware": syn_tight,
            "multi-spec search": True,
            "pareto outputs": len(syn_res.frontier) > 1,
        },
    }


@pytest.mark.benchmark(group="table1")
def test_table1_compiler_features(benchmark, scl, save_result):
    spec_tight = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=800.0,
    )
    spec_fp = spec_tight.replace(
        input_formats=(INT4, FP8), weight_formats=(INT4, FP8)
    )
    spec_mcr4 = spec_tight.replace(mcr=4, mac_frequency_mhz=500.0)

    caps = _capabilities(scl, spec_tight, spec_fp, spec_mcr4)

    # Demonstrated claims the matrix rests on.
    assert not caps["AutoDCIM-style"]["performance-aware"], (
        "template assembly must miss the 800 MHz constraint"
    )
    assert caps["SynDCIM (this work)"]["performance-aware"]
    assert caps["SynDCIM (this work)"]["multi-spec search"]
    # FP support is real, not a flag: the searcher handles the FP spec.
    fp_res = MSOSearcher(scl).search(spec_fp)
    assert fp_res.frontier
    # MCR=4 specs compile too.
    mcr_res = MSOSearcher(scl).search(spec_mcr4)
    assert mcr_res.frontier

    features = list(next(iter(caps.values())))
    rows = [
        [name] + ["yes" if caps[name][f] else "no" for f in features]
        for name in caps
    ]
    table = format_table(["compiler"] + features, rows)
    save_result("table1_compiler_features", table)

    # Benchmark: one full multi-spec search.
    benchmark(lambda: MSOSearcher(scl).search(spec_tight))
