"""Ablation — structured (SDP) placement vs scattered placement.

DESIGN.md calls out the SDP placer as a design choice worth ablating:
the paper argues APR tools scatter cells and degrade macro performance,
which the structured script avoids.  The ablation compares the SDP
placement against a deterministic pseudo-random scatter of the same
cells in the same outline, measuring wirelength and post-layout timing.
"""

import numpy as np
import pytest

from repro.arch import MacroArchitecture
from repro.compiler.report import format_table
from repro.layout.route import estimate_routing
from repro.layout.sdp import Placement, place_macro
from repro.layout.geometry import Rect
from repro.rtl.gen.macro import generate_macro_with_array
from repro.spec import INT4, INT8, MacroSpec
from repro.sta.analysis import minimum_period_ns


def _scatter(flat, placement, library, seed=7):
    """Random legal-ish scatter: same outline, same cell shelf heights,
    random x/row assignment (what an unconstrained placer devolves to
    without datapath guidance)."""
    rng = np.random.default_rng(seed)
    outline = placement.outline
    row_h = 1.8
    n_rows = int(outline.height // row_h)
    cells = {}
    cursor = [outline.x0] * n_rows
    order = list(flat.instances)
    rng.shuffle(order)
    for inst in order:
        cell = library.cell(inst.cell_name)
        w = cell.width_um or cell.area_um2 / row_h
        for attempt in range(64):
            r = int(rng.integers(0, n_rows))
            if cursor[r] + w <= outline.x1:
                x = cursor[r]
                cursor[r] += w
                cells[inst.name] = Rect(
                    x, outline.y0 + r * row_h, x + w,
                    outline.y0 + (r + 1) * row_h,
                )
                break
        else:  # fall back to the least-filled row
            r = int(np.argmin(cursor))
            x = cursor[r]
            cursor[r] += w
            cells[inst.name] = Rect(
                x, outline.y0 + r * row_h, x + w,
                outline.y0 + (r + 1) * row_h,
            )
    import dataclasses

    return dataclasses.replace(placement, cells=cells)


@pytest.mark.benchmark(group="ablation")
def test_sdp_vs_scattered_placement(
    benchmark, library, process, save_result
):
    spec = MacroSpec(
        height=32,
        width=32,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=500.0,
    )
    module, _ = generate_macro_with_array(spec, MacroArchitecture())
    flat = module.flatten()
    sdp = place_macro(flat, library)
    scattered = _scatter(flat, sdp, library)

    rows = []
    results = {}
    for name, pl in (("SDP (structured)", sdp), ("scattered", scattered)):
        route = estimate_routing(flat, pl, library, process)
        period = minimum_period_ns(
            flat, library, wire_load=route.wire_load_fn()
        )
        results[name] = (route.total_wirelength_um, period)
        rows.append(
            [
                name,
                round(route.total_wirelength_um / 1e3, 1),
                round(route.congestion, 2),
                round(period, 3),
                round(1e3 / period, 0),
            ]
        )
    table = format_table(
        ["placement", "wirelength_mm", "congestion", "min_period_ns", "fmax_MHz"],
        rows,
    )
    save_result("ablation_sdp_placement", table)

    wl_sdp, t_sdp = results["SDP (structured)"]
    wl_rnd, t_rnd = results["scattered"]
    assert wl_sdp < wl_rnd, "structured placement must shorten wires"
    assert t_sdp < t_rnd, "and the post-layout critical path"

    benchmark(lambda: place_macro(flat, library))
