"""Table II — measured comparison with state-of-the-art DCIM macros.

Measurement conditions from the paper: INT4, 12.5% input sparsity, 50%
weight sparsity, 25 C; the test chip reports 1921 TOPS/W and 80.5
TOPS/mm^2 scaled to 1b-1b.  This bench measures our compiled macro under
the same conventions — sparse activity propagated through the signoff
power analysis, 0.7 V low-power operating point, 1b-1b normalization —
and tabulates it against the published comparands.

Absolute parity with silicon is out of scope for an analytical 40 nm
model; the asserted shape is (a) the sparsity/voltage conventions move
the headline number by the order of magnitude the paper exploits, and
(b) the normalized comparison reproduces Table II's orderings between
the published rows (advanced nodes on top, compiled 28 nm macro at the
bottom).
"""

import pytest

from repro.baselines.manual import SOTA_MACROS
from repro.compiler.report import format_table
from repro.sim.shmoo import measure_efficiency


@pytest.mark.benchmark(group="table2")
def test_table2_sota_comparison(
    benchmark, testchip_implementation, process, save_result
):
    impl = testchip_implementation.implementation
    # The fixture compiled with the Table II sparsity already applied to
    # the activity analysis (12.5% ones on inputs, 50% zero weights).
    energy_sparse = impl.power.energy_per_cycle_pj
    leakage = impl.power.leakage_mw
    crit = impl.min_period_ns
    area = impl.area_um2

    ours = measure_efficiency(
        energy_per_mac_cycle_pj=energy_sparse,
        leakage_mw=leakage,
        critical_path_ns=crit,
        area_um2=area,
        process=process,
        vdd=0.7,
        height=64,
        width=64,
        input_bits=4,
        weight_bits=4,
    )
    dense_ref = measure_efficiency(
        energy_per_mac_cycle_pj=energy_sparse / 0.4375,  # undo (1-s_i)(1-s_w)
        leakage_mw=leakage,
        critical_path_ns=crit,
        area_um2=area,
        process=process,
        vdd=0.9,
        height=64,
        width=64,
        input_bits=4,
        weight_bits=4,
    )

    rows = []
    for m in SOTA_MACROS:
        rows.append(
            [
                m.name,
                f"{m.node_nm}nm",
                m.precision,
                round(m.tops_per_watt, 1),
                round(m.tops_per_mm2, 1),
                round(m.tops_per_watt_1b, 0),
                round(m.tops_per_mm2_1b, 0),
            ]
        )
    rows.append(
        [
            "SynDCIM chip (paper)",
            "40nm",
            "INT4 sparse",
            1921.0,
            "-",
            "-",
            80.5 * 1.0,
        ]
    )
    rows.append(
        [
            "this repo @0.7V sparse",
            "40nm*",
            "INT4 sparse",
            round(ours.tops_per_watt, 1),
            round(ours.tops_per_mm2, 2),
            round(ours.tops_per_watt_1b, 0),
            round(ours.tops_per_mm2_1b, 1),
        ]
    )
    rows.append(
        [
            "this repo @0.9V dense",
            "40nm*",
            "INT4",
            round(dense_ref.tops_per_watt, 1),
            round(dense_ref.tops_per_mm2, 2),
            round(dense_ref.tops_per_watt_1b, 0),
            round(dense_ref.tops_per_mm2_1b, 1),
        ]
    )
    table = format_table(
        [
            "design",
            "node",
            "precision",
            "TOPS/W",
            "TOPS/mm2",
            "1b TOPS/W",
            "1b TOPS/mm2",
        ],
        rows,
    )
    save_result("table2_sota_comparison", table)

    # (a) the measurement conventions carry the headline: sparse + low
    # voltage buys a large multiple over dense nominal operation.
    boost = ours.tops_per_watt / dense_ref.tops_per_watt
    assert boost > 2.5, boost

    # (b) published-row orderings of Table II (1b-normalized).
    by_name = {m.name: m for m in SOTA_MACROS}
    assert (
        by_name["TSMC ISSCC'23"].tops_per_watt_1b
        > by_name["TSMC ISSCC'22"].tops_per_watt_1b
        > by_name["TSMC ISSCC'21"].tops_per_watt_1b
        > by_name["AutoDCIM DAC'23"].tops_per_watt_1b
    )
    # (c) magnitude plausibility: the analytical 40 nm substrate is
    # pessimistic versus silicon (wire and clock energy dominate; see
    # EXPERIMENTS.md), so only the order of magnitude is asserted.
    assert ours.tops_per_watt > 3.0
    assert ours.tops_per_mm2 > 0.5
    assert ours.tops_per_watt_1b > 50.0

    benchmark(
        lambda: measure_efficiency(
            energy_per_mac_cycle_pj=energy_sparse,
            leakage_mw=leakage,
            critical_path_ns=crit,
            area_um2=area,
            process=process,
            vdd=0.7,
            height=64,
            width=64,
            input_bits=4,
            weight_bits=4,
        )
    )
