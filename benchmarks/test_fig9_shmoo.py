"""Fig. 9 — shmoo plot of the SynDCIM-generated test macro.

The fabricated 64x64 MCR=2 chip shows ~1.1 GHz at 1.2 V and ~300 MHz at
0.7 V.  Here the compiled macro's post-layout critical path is swept
through the alpha-power voltage model with on-die variation, producing
the same pass/fail grid.  Checked shape:

* a monotone pass boundary (higher V -> higher fmax);
* fmax(1.2 V) in the paper's band around 1.1 GHz (x0.65..x1.45);
* fmax(0.7 V) in the band around 300 MHz;
* the fmax(1.2V)/fmax(0.7V) ratio near the silicon's ~3.7.
"""

import numpy as np
import pytest

from repro.sim.shmoo import run_shmoo

VOLTAGES = [round(v, 2) for v in np.arange(0.6, 1.25, 0.05)]
FREQS = [float(f) for f in range(100, 1500, 100)]


@pytest.mark.benchmark(group="fig9")
def test_fig9_shmoo(benchmark, testchip_implementation, process, save_result):
    impl = testchip_implementation.implementation
    crit = impl.min_period_ns

    result = run_shmoo(crit, process, VOLTAGES, FREQS, sigma=0.02)
    f12 = result.max_frequency_mhz(1.2)
    f07 = result.max_frequency_mhz(0.7)
    f09 = result.max_frequency_mhz(0.9)

    header = (
        f"post-layout critical path @0.9V: {crit:.3f} ns\n"
        f"fmax: {f12:.0f} MHz @1.2V | {f09:.0f} MHz @0.9V | "
        f"{f07:.0f} MHz @0.7V   (paper: 1100 MHz @1.2V, ~300 MHz @0.7V)\n"
    )
    save_result("fig9_shmoo", header + "\n" + result.render())

    # Paper bands (shape reproduction, wide tolerance for the substrate).
    assert 0.65 * 1100 <= f12 <= 1.45 * 1100, f12
    assert 0.55 * 300 <= f07 <= 1.8 * 300, f07
    ratio = f12 / f07
    assert 2.5 < ratio < 5.0, ratio
    # The implemented design still honors the 800 MHz @0.9V spec.
    assert f09 >= 800.0

    benchmark(
        lambda: run_shmoo(crit, process, VOLTAGES, FREQS, sigma=0.02)
    )


SIGMAS = (0.0, 0.02, 0.05, 0.10)


def _shmoo_at(args):
    """Top-level so the batch engine's process pool can pickle it."""
    crit, process, sigma = args
    return run_shmoo(crit, process, VOLTAGES, FREQS, sigma=sigma)


@pytest.mark.benchmark(group="fig9")
def test_fig9_variation_sensitivity(benchmark, testchip_implementation,
                                    process, save_result, batch_engine):
    """The ragged edge: more on-die variation erodes the pass region but
    never violates monotonicity of the boundary."""
    crit = testchip_implementation.implementation.min_period_ns
    if batch_engine is not None:
        sweeps = batch_engine.map(
            _shmoo_at, [(crit, process, s) for s in SIGMAS]
        )
    else:
        sweeps = [_shmoo_at((crit, process, s)) for s in SIGMAS]
    rows = []
    prev_pass = None
    for sigma, res in zip(SIGMAS, sweeps):
        n_pass = sum(sum(row) for row in res.passed)
        rows.append([sigma, n_pass, round(res.max_frequency_mhz(1.2), 0)])
        if prev_pass is not None:
            assert n_pass <= prev_pass + 2  # small jitter tolerance
        prev_pass = n_pass
    from repro.compiler.report import format_table

    save_result(
        "fig9_variation",
        format_table(["sigma", "passing_cells", "fmax@1.2V"], rows),
    )
    benchmark(
        lambda: run_shmoo(crit, process, VOLTAGES, FREQS, sigma=0.05)
    )
