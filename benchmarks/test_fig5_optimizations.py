"""Fig. 5 — the searcher's optimization techniques, quantified.

Reproduces the content of the paper's optimization illustration as an
ablation: the full searcher versus variants with individual fix families
disabled (no faster-adder substitution, no retiming, no column split,
no register merging), swept over a tightening frequency target.  The
claims:

* every technique extends the feasible frequency range or improves the
  result quality somewhere in the sweep;
* the full searcher dominates each ablation (it never loses feasibility
  the ablation had).
"""

import pytest

from repro.compiler.report import format_table
from repro.search.algorithm import MSOSearcher
from repro.search.fixes import MAC_FIXES, MERGE_MOVES, OFU_FIXES, TUNING_MOVES
from repro.spec import INT4, INT8, MacroSpec

FREQUENCIES = (400.0, 600.0, 800.0, 900.0)


def _spec(freq):
    return MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=freq,
    )


def _without(moves, banned):
    return tuple((n, m) for n, m in moves if n not in banned)


VARIANTS = {
    "full": {},
    "no faster adders": {
        "mac_fixes": _without(MAC_FIXES, {"faster_adder"}),
        "ofu_fixes": _without(OFU_FIXES, {"ofu_faster_adder"}),
    },
    "no retiming": {
        "mac_fixes": _without(MAC_FIXES, {"tree_register"}),
        "ofu_fixes": _without(OFU_FIXES, {"ofu_retime"}),
    },
    "no column split": {"mac_fixes": _without(MAC_FIXES, {"column_split"})},
    "no register merge": {"merge_moves": ()},
    "no ofu pipeline": {"ofu_fixes": _without(OFU_FIXES, {"ofu_pipeline"})},
}


@pytest.mark.benchmark(group="fig5")
def test_fig5_optimization_ablation(benchmark, scl, save_result):
    rows = []
    feasible = {}
    best_power = {}
    for name, overrides in VARIANTS.items():
        searcher = MSOSearcher(scl, **overrides)
        for freq in FREQUENCIES:
            result = searcher.search(_spec(freq))
            ok = bool(result.frontier)
            feasible[(name, freq)] = ok
            best_power[(name, freq)] = (
                min(e.power_mw for e in result.frontier) if ok else None
            )
            rows.append(
                [
                    name,
                    int(freq),
                    "yes" if ok else "no",
                    round(best_power[(name, freq)], 1) if ok else "-",
                    len(result.frontier),
                    sum(result.fix_counts.values()),
                ]
            )

    table = format_table(
        ["searcher", "freq_mhz", "feasible", "best_mw", "frontier", "fixes"],
        rows,
    )
    save_result("fig5_optimization_ablation", table)

    # The full searcher is feasible wherever any ablation is.
    for name in VARIANTS:
        for freq in FREQUENCIES:
            if feasible[(name, freq)]:
                assert feasible[("full", freq)], (name, freq)
    # At the tightest target, at least one ablation loses something the
    # full searcher keeps (coverage or power quality).
    tight = FREQUENCIES[-1]
    degraded = []
    for name in VARIANTS:
        if name == "full":
            continue
        if not feasible[(name, tight)]:
            degraded.append(name)
        elif (
            best_power[(name, tight)] is not None
            and best_power[("full", tight)] is not None
            and best_power[(name, tight)]
            > best_power[("full", tight)] + 1e-9
        ):
            degraded.append(name)
    assert degraded, "ablations should cost something at tight timing"

    benchmark(lambda: MSOSearcher(scl).search(_spec(800.0)))


@pytest.mark.benchmark(group="fig5")
def test_fig5_fix_application_counts(benchmark, scl, save_result):
    """Which fixes fire as the constraint tightens (the arrows of
    Fig. 5)."""
    rows = []
    for freq in FREQUENCIES:
        result = MSOSearcher(scl).search(_spec(freq))
        counts = result.fix_counts
        rows.append(
            [
                int(freq),
                counts.get("faster_adder", 0),
                counts.get("ofu_faster_adder", 0),
                counts.get("ofu_retime", 0),
                counts.get("ofu_pipeline", 0),
                counts.get("column_split", 0),
                counts.get("merge_tree_register", 0)
                + counts.get("merge_sna_register", 0),
            ]
        )
    table = format_table(
        [
            "freq_mhz",
            "faster_adder",
            "ofu_fast_adder",
            "retime",
            "pipeline",
            "col_split",
            "reg_merge",
        ],
        rows,
    )
    save_result("fig5_fix_counts", table)
    # Harder targets need at least as many total repairs.
    totals = [sum(r[1:6]) for r in rows]
    assert totals[-1] >= totals[0]
    benchmark(lambda: MSOSearcher(scl).search(_spec(600.0)))
