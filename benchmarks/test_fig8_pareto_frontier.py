"""Fig. 8 — searched and generated Pareto frontier.

The paper's specification: H=W=64, MCR=2, INT4/8 + FP4/8, MAC and
weight-update frequency 800 MHz @ 0.9 V.  The MSO searcher produces a
series of design points; "four typical designs are selected and
implemented into layouts, forming a Pareto frontier".  Claims:

* the frontier spans an energy-biased end and an area-biased end;
* implemented (post-layout) points preserve the frontier ordering;
* the searched designs dominate the non-performance-aware baselines
  (AutoDCIM misses timing outright; ARCTIC needs more power/area for
  the same constraint when feasible).
"""

import pytest

from repro.baselines.arctic import ArcticCompiler
from repro.baselines.autodcim import AutoDCIMCompiler
from repro.compiler.flow import implement
from repro.compiler.report import format_pareto_ascii, format_table
from repro.compiler.syndcim import implementation_record
from repro.search.algorithm import MSOSearcher
from repro.search.pareto import dominates


@pytest.mark.benchmark(group="fig8")
def test_fig8_pareto_frontier(
    benchmark, scl, library, process, paper_spec, save_result, batch_engine
):
    searcher = MSOSearcher(scl)
    result = searcher.search(paper_spec)
    assert result.frontier, "paper spec must be feasible"

    # Implement up to four representative frontier points — through the
    # batch engine's process pool when REPRO_BENCH_JOBS enables it,
    # serially otherwise (identical records either way).
    picks = result.frontier[:: max(1, len(result.frontier) // 4)][:4]
    if batch_engine is not None:
        # Batch workers rebuild the *default* toolchain; if these
        # fixtures are ever parameterized away from the defaults, the
        # env-var path would silently measure a different library.
        from repro.tech.process import GENERIC_40NM
        from repro.tech.stdcells import default_library

        assert process is GENERIC_40NM and library is default_library(), (
            "REPRO_BENCH_JOBS batch path only supports the default "
            "library/process fixtures"
        )
        batch = batch_engine.implement_archs(
            paper_spec, [est.arch for est in picks]
        )
        for record in batch:
            assert record["status"] == "ok", record["error"]
        impl_records = [r["implementation"] for r in batch]
    else:
        impl_records = [
            implementation_record(
                implement(paper_spec, est.arch, library=library, process=process)
            )
            for est in picks
        ]
    impl_rows = []
    impl_points = []
    for est, impl in zip(picks, impl_records):
        assert impl["signoff_clean"]
        impl_rows.append(
            [
                est.arch.knob_summary(),
                round(est.power_mw, 1),
                round(impl["power_mw"], 1),
                round(est.area_um2 / 1e6, 4),
                round(impl["area_um2"] / 1e6, 4),
                round(impl["max_frequency_mhz"], 0),
            ]
        )
        impl_points.append((impl["area_um2"] / 1e6, impl["power_mw"]))

    # Baselines under the same spec.
    auto = AutoDCIMCompiler(scl).compile(paper_spec)
    arctic = ArcticCompiler(scl).compile(paper_spec)

    rows = [
        [
            e.arch.knob_summary(),
            round(e.power_mw, 1),
            round(e.area_um2 / 1e6, 4),
            "yes" if e.met else "no",
        ]
        for e in result.frontier
    ]
    rows.append(
        [
            "AutoDCIM template",
            round(auto.estimate.power_mw, 1),
            round(auto.estimate.area_um2 / 1e6, 4),
            "yes" if auto.meets_timing else "no",
        ]
    )
    rows.append(
        [
            "ARCTIC pipeline-only",
            round(arctic.estimate.power_mw, 1),
            round(arctic.estimate.area_um2 / 1e6, 4),
            "yes" if arctic.meets_timing else "no",
        ]
    )
    table = format_table(
        ["design", "power_mw", "area_mm2", "meets 800MHz"], rows
    )

    points = [
        (e.area_um2 / 1e6, e.power_mw, 0) for e in result.frontier
    ]
    points += [(p[0], p[1], 1) for p in impl_points]
    points.append(
        (arctic.estimate.area_um2 / 1e6, arctic.estimate.power_mw, 2)
    )
    plot = format_pareto_ascii(
        points, "area [mm^2]", "power [mW]"
    )
    impl_table = format_table(
        [
            "architecture",
            "est_mW",
            "impl_mW",
            "est_mm2",
            "impl_mm2",
            "fmax_MHz",
        ],
        impl_rows,
    )
    save_result(
        "fig8_pareto_frontier",
        table
        + "\n\nimplemented points (o = searched frontier, * = implemented,"
        " + = ARCTIC):\n"
        + plot
        + "\n\n"
        + impl_table,
    )

    # Claims.
    assert not auto.meets_timing, "template baseline must miss 800 MHz"
    powers = [e.power_mw for e in result.frontier]
    areas = [e.area_um2 for e in result.frontier]
    assert min(powers) < max(powers) or min(areas) < max(areas)
    if arctic.meets_timing:
        # Some searched point dominates the pipeline-only ARCTIC result.
        assert any(
            dominates(
                (e.power_mw, e.area_um2),
                (arctic.estimate.power_mw, arctic.estimate.area_um2),
            )
            for e in result.frontier
        )
    # Implemented fmax honors the spec for every chosen design.
    assert all(row[5] >= paper_spec.mac_frequency_mhz for row in impl_rows)

    benchmark(lambda: searcher.search(paper_spec))
