"""Benchmark-suite fixtures and the results sink.

Every bench regenerates one table or figure of the paper; the rendered
text lands in ``benchmarks/results/<name>.txt`` (and on stdout with
``-s``) so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def batch_engine():
    """Opt-in batch engine for the multi-point benches.

    ``REPRO_BENCH_JOBS=N`` (N >= 2) makes the Fig. 8 frontier
    implementations and the Fig. 9 variation sweep run through
    :class:`repro.batch.BatchCompiler`'s process pool; unset (the
    default, and what CI uses) they run serially in-process so bench
    timings stay comparable.  The engine's disk cache stays off — the
    benches must measure real compilations.
    """
    raw = os.environ.get("REPRO_BENCH_JOBS", "")
    try:
        jobs = int(raw.strip() or 0)
    except ValueError:
        import warnings

        warnings.warn(
            f"REPRO_BENCH_JOBS={raw!r} is not an integer; running serially"
        )
        return None
    if jobs < 2:
        return None
    from repro.batch import BatchCompiler

    return BatchCompiler(jobs=jobs, use_cache=False)


@pytest.fixture(scope="session")
def scl():
    from repro.scl.library import default_scl

    return default_scl()


@pytest.fixture(scope="session")
def library():
    from repro.tech.stdcells import default_library

    return default_library()


@pytest.fixture(scope="session")
def process():
    from repro.tech.process import GENERIC_40NM

    return GENERIC_40NM


@pytest.fixture(scope="session")
def paper_spec():
    """Fig. 8 spec: H=W=64, MCR=2, INT4/8 + FP4/8, 800 MHz @ 0.9 V."""
    from repro.spec import FP4, FP8, INT4, INT8, MacroSpec

    return MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8, FP4, FP8),
        weight_formats=(INT4, INT8, FP4, FP8),
        mac_frequency_mhz=800.0,
    )


@pytest.fixture(scope="session")
def testchip_implementation(scl):
    """The silicon-validation macro (Section IV.B): 64x64, MCR=2,
    INT1/2/4/8 + FP4/8 — compiled once, shared by Figs. 9/10 and
    Table II."""
    from repro import SynDCIM
    from repro.spec import FP4, FP8, INT1, INT2, INT4, INT8, MacroSpec

    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT1, INT2, INT4, INT8, FP4, FP8),
        weight_formats=(INT1, INT2, INT4, INT8, FP4, FP8),
        mac_frequency_mhz=800.0,
    )
    compiler = SynDCIM(scl=scl)
    result = compiler.compile(
        spec, input_sparsity=0.875, weight_sparsity=0.5
    )
    assert result.implementation is not None
    return result


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _save
