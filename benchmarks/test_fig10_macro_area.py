"""Fig. 10 — die photo / macro floorplan of the fabricated test chip.

The photo itself cannot be reproduced; its quantitative content can:
one 64x64 MCR=2 macro occupies 0.112 mm^2 (455 x 246 um) in 40 nm.  The
bench reports the compiled macro's outline, region budget and signoff
status, and checks the area lands in a band around the silicon number.
"""

import pytest

from repro.compiler.report import format_table

PAPER_AREA_MM2 = 0.112
PAPER_W_UM = 455.0
PAPER_H_UM = 246.0


@pytest.mark.benchmark(group="fig10")
def test_fig10_macro_area(benchmark, testchip_implementation, save_result):
    impl = testchip_implementation.implementation
    pl = impl.placement

    area_mm2 = pl.area_um2 / 1e6
    rows = [
        ["width_um", round(PAPER_W_UM, 1), round(pl.width_um, 1)],
        ["height_um", round(PAPER_H_UM, 1), round(pl.height_um, 1)],
        ["area_mm2", PAPER_AREA_MM2, round(area_mm2, 4)],
        ["utilization", "-", round(pl.utilization, 2)],
        ["column_pitch_um", "-", round(pl.column_pitch_um, 2)],
        ["cells", "-", impl.netlist.leaf_count()],
        ["DRC", "clean", "clean" if impl.drc.clean else "FAIL"],
        ["LVS", "clean", "clean" if impl.lvs.clean else "FAIL"],
    ]
    table = format_table(["metric", "paper", "this repo"], rows)

    region_rows = [
        [name, round(rect.width, 1), round(rect.height, 1)]
        for name, rect in pl.regions.items()
    ]
    table += "\n\nfloorplan regions:\n" + format_table(
        ["region", "width_um", "height_um"], region_rows
    )
    save_result("fig10_macro_area", table)

    assert impl.drc.clean and impl.lvs.clean
    # Area within +-45% of the fabricated macro — our custom cells are
    # analytical, so only the magnitude is meaningful.
    assert 0.55 * PAPER_AREA_MM2 < area_mm2 < 1.45 * PAPER_AREA_MM2, area_mm2
    # SDP structure: the column region dominates the floorplan.
    col = pl.regions["columns"]
    assert col.area > 0.5 * pl.outline.area

    benchmark(lambda: impl.placement.describe())


@pytest.mark.benchmark(group="fig10")
def test_fig10_gds_stream(benchmark, testchip_implementation, library,
                          save_result):
    """The deliverable behind the photo: a complete layout database."""
    from repro.layout.gds import read_gds_json, write_gds_json

    impl = testchip_implementation.implementation
    gds = write_gds_json(impl.netlist, impl.placement, library)
    back = read_gds_json(gds)
    assert len(back["instances"]) == impl.netlist.leaf_count()
    save_result(
        "fig10_gds_stats",
        f"GDS stream: {len(gds)} bytes, "
        f"{len(back['instances'])} placed instances",
    )
    benchmark(lambda: write_gds_json(impl.netlist, impl.placement, library))
