#!/usr/bin/env python
"""Performance benchmark harness (``make perf``).

Times the hot paths this repo's throughput hangs on and appends the
numbers to ``benchmarks/results/BENCH_perf.json`` so the perf
trajectory is tracked PR over PR:

``scl_cold_build_s``
    ``default_scl()`` in a fresh process against an empty cache
    directory — full characterization plus the artifact store.
``scl_warm_load_s``
    ``default_scl()`` in a second fresh process against the artifact
    the cold run just wrote (the per-process cost every CLI call,
    pytest session and batch worker actually pays).
``scl_single_vt_warm_load_s`` / ``scl_warm_multivt_ratio``
    the same warm load against the single-Vt library view versus the
    full Vt x drive variant grid.  The grid multiplies the cell count,
    not the subcircuit tables, so the multi-Vt library's contract is
    that its warm load stays under 3x the single-Vt time (guarded by
    ``check_regression.py``).
``search_s``
    one ``MSOSearcher.search()`` on the paper's 64x64 spec (median of
    repeats, warm SCL).
``implement_s`` / ``place_s`` / ``drc_s`` / ``route_s``
    one full ``SynDCIM().compile()`` **with implementation** on the
    quickstart 64x64 spec (median of fresh compiles, warm SCL), plus
    the isolated hot stages of the physical flow on the same netlist —
    the numbers the vectorized layout/DRC/routing kernels moved.
``implement_warm_ms``
    a forced full re-implementation (place, route, DRC, LVS, STA,
    power) of the same architecture inside a warm
    ``ImplementSession`` — the layout arena replays the floorplan
    decision and reuses the routing estimate, so this is the
    incremental-recompile latency.  Floored at 100 ms by the gate.
``vecsim_tiled_vectors_per_s``
    raw ``run_mac`` throughput of the tile-major vectorized simulator
    on the quickstart netlist (4096-lane batch, weight loads and
    golden-model checking excluded), counted as driven input vectors
    clocked through the netlist per wall second (lanes x pipeline
    cycles) — the number the word-tiled propagate loop moves.  Floored
    at 100k vector-cycles/s by the gate.
``shm_netview_attach_ms`` / ``shm_netview_build_ms`` / ``shm_worker_scl_source``
    zero-copy worker warmup proof: inside real spawn-started pool
    workers, hydrating the parent's published NetView tensors from
    shared memory versus re-walking the module locally, and where the
    worker's default SCL resolved from (``"shm"`` = tensor attach, no
    disk read, no characterization).
``sweep_s`` / ``sweep_points`` / ``worker_scl_load_max_s``
    an end-to-end 64-point search sweep through the batch engine's
    process pool with the result cache off — plus the slowest
    per-worker SCL resolution time, which proves workers warm from the
    persistent cache instead of re-characterizing.
``sweep_impl_s`` / ``sweep_impl_points``
    a 16-point **implemented** sweep (search + full physical flow per
    point) through the batch engine — the workload the implement-flow
    kernels exist for.
``signoff3_s`` / ``signoff_single_s`` / ``signoff_corner_ratio``
    one full compile with 3-corner (SS/TT/FF) PVT signoff on the same
    quickstart spec versus a single-corner compile, both measured
    interleaved under identical warm-cache conditions — the
    multi-corner subsystem's contract is that the per-view cache
    sharing keeps the ratio under 2x (guarded by the CI
    perf-regression job; ``signoff_ss_clean`` must also hold).
``vecsim_vectors_per_s`` / ``gatesim_vectors_per_s`` / ``vecsim_speedup``
    batch functional verification of the quickstart macro netlist:
    end-to-end ``verify_macro`` throughput (stimulus generation, weight
    loads, simulation and checking included) versus the scalar
    ``GateSimulator`` reference driving the same netlist — the
    vectorized sim's acceptance contract is a >= 100x per-vector
    speedup (``vecsim_verified_clean`` must also hold).

Run directly (``python benchmarks/perf/run_perf.py``) or via
``make perf``.  ``--output`` overrides the JSON path; ``--quick`` skips
the sweeps.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import platform
import statistics
import subprocess
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).resolve().parent
REPO_ROOT = HERE.parents[1]
DEFAULT_OUTPUT = HERE.parent / "results" / "BENCH_perf.json"

_TIMED_SCL = """
import time
import repro.scl.builder  # warm the imports; we time the call, not python startup
from repro.scl.library import default_scl, default_scl_source
from repro.tech.stdcells import default_library
default_library()  # warm the cell-library singleton; we time the SCL resolution
t0 = time.perf_counter()
scl = default_scl()
t1 = time.perf_counter()
print(f"{t1 - t0:.6f} {default_scl_source()} {scl.entry_count()}")
"""

_TIMED_SINGLE_VT_SCL = """
import time
import repro.scl.builder  # warm the imports; we time the call, not python startup
from repro.scl.cache import load_cached_scl
from repro.scl.library import default_scl
from repro.tech.process import GENERIC_40NM
from repro.tech.stdcells import single_vt_library
library = single_vt_library()
# default_scl_source() only tracks the default-library path, so probe
# the artifact store directly to classify this run as built vs disk.
source = "disk" if load_cached_scl(library, GENERIC_40NM) else "built"
t0 = time.perf_counter()
scl = default_scl(library=library)
t1 = time.perf_counter()
print(f"{t1 - t0:.6f} {source} {scl.entry_count()}")
"""


def _subprocess_env(cache_dir: pathlib.Path) -> dict:
    env = dict(os.environ)
    env["REPRO_SCL_CACHE"] = str(cache_dir)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _timed_scl_process(cache_dir: pathlib.Path, script: str = _TIMED_SCL) -> tuple:
    """(seconds, source, entries) for default_scl() in a fresh process."""
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=_subprocess_env(cache_dir),
        cwd=REPO_ROOT,
    ).stdout.split()
    return float(out[0]), out[1], int(out[2])


def bench_scl(cache_dir: pathlib.Path) -> dict:
    """Cold build + warm load, each in its own process.

    Also warms and times the single-Vt library view against the same
    cache directory (its artifact key differs, so it gets its own
    cold/warm pair) — the full-grid warm load divided by the single-Vt
    warm load is the multi-Vt library's load-cost ratio.
    """
    cold_s, cold_source, entries = _timed_scl_process(cache_dir)
    assert cold_source == "built", f"expected cold build, got {cold_source}"

    def _best_warm(script: str) -> float:
        """Best of three warm loads — each a fresh process, so the
        minimum is the least-noisy estimate of the real load cost."""
        samples = []
        for _ in range(3):
            s, source, warm_entries = _timed_scl_process(cache_dir, script)
            assert source == "disk", f"expected disk load, got {source}"
            if script is _TIMED_SCL:
                assert warm_entries == entries
            samples.append(s)
        return min(samples)

    warm_s = _best_warm(_TIMED_SCL)
    single_cold_s, single_cold_source, _ = _timed_scl_process(
        cache_dir, _TIMED_SINGLE_VT_SCL
    )
    assert single_cold_source == "built", (
        f"expected single-Vt cold build, got {single_cold_source}"
    )
    single_warm_s = _best_warm(_TIMED_SINGLE_VT_SCL)
    return {
        "scl_cold_build_s": round(cold_s, 4),
        "scl_warm_load_s": round(warm_s, 4),
        "scl_single_vt_warm_load_s": round(single_warm_s, 4),
        "scl_warm_multivt_ratio": round(warm_s / single_warm_s, 4),
        "scl_entries": entries,
    }


def bench_search(repeats: int = 5) -> dict:
    """Single MSO search on the paper's 64x64 spec, warm SCL."""
    from repro.scl.library import default_scl
    from repro.search.algorithm import MSOSearcher
    from repro.spec import FP4, FP8, INT4, INT8, MacroSpec

    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8, FP4, FP8),
        weight_formats=(INT4, INT8, FP4, FP8),
        mac_frequency_mhz=800.0,
    )
    searcher = MSOSearcher(default_scl())
    samples = []
    candidates = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = searcher.search(spec)
        samples.append(time.perf_counter() - t0)
        candidates = len(result.candidates)
    return {
        "search_s": round(statistics.median(samples), 4),
        "search_candidates": candidates,
    }


def _quickstart_spec():
    from repro.spec import FP4, FP8, INT4, INT8, MacroSpec

    return MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8, FP4, FP8),
        weight_formats=(INT4, INT8, FP4, FP8),
        mac_frequency_mhz=800.0,
    )


def bench_implement(repeats: int = 3) -> dict:
    """Full compile-with-implementation plus isolated physical stages.

    Each repeat runs a fresh ``SynDCIM().compile(spec)`` (only the
    process-wide SCL cache is warm), so ``implement_s`` measures the
    complete quickstart flow: search, RTL generation, flatten,
    synthesis passes, SDP placement, routing, DRC/LVS and post-layout
    STA/power.  A ``gc.collect()`` between repeats keeps prior results
    from inflating later collector pauses (standard timing hygiene).
    """
    from repro.compiler.flow import ImplementSession
    from repro.compiler.syndcim import SynDCIM
    from repro.layout.drc import run_drc
    from repro.layout.route import estimate_routing
    from repro.layout.sdp import place_macro

    spec = _quickstart_spec()
    SynDCIM().compile(spec)  # warm SCL + interpolation caches

    samples = []
    result = None
    for _ in range(repeats):
        gc.collect()
        compiler = SynDCIM()
        t0 = time.perf_counter()
        result = compiler.compile(spec)
        samples.append(time.perf_counter() - t0)
    impl = result.implementation

    # Isolated hot stages on a fresh optimized netlist.
    session = ImplementSession(spec)
    flat, _shape, _stats = session.netlist(impl.arch)
    place_samples, drc_samples, route_samples = [], [], []
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        placement = place_macro(flat, session.library)
        place_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        estimate_routing(flat, placement, session.library, session.process)
        route_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        report = run_drc(flat, placement, session.library)
        drc_samples.append(time.perf_counter() - t0)
        if not report.clean:  # never time a broken layout (-O safe)
            raise RuntimeError(f"DRC regression: {report.describe()}")

    # Warm full re-implementation over the session's layout arena: the
    # first implement() populated the arena and the derived caches;
    # force=True then re-runs every stage (place replay, route reuse,
    # honest DRC/LVS, STA, power) bit-identically.
    cold = session.implement(impl.arch)
    warm_samples = []
    for _ in range(max(repeats * 2, 5)):
        gc.collect()
        t0 = time.perf_counter()
        warm = session.implement(impl.arch, force=True)
        warm_samples.append(time.perf_counter() - t0)
    if warm.min_period_ns != cold.min_period_ns:  # -O safe
        raise RuntimeError("warm re-implement diverged from cold")
    return {
        "implement_s": round(statistics.median(samples), 4),
        "implement_signoff_clean": bool(impl.signoff_clean),
        "implement_cells": int(impl.summary()["cells"]),
        "implement_warm_ms": round(
            statistics.median(warm_samples) * 1e3, 2
        ),
        "place_s": round(statistics.median(place_samples), 4),
        "route_s": round(statistics.median(route_samples), 4),
        "drc_s": round(statistics.median(drc_samples), 4),
    }


def bench_signoff(repeats: int = 3) -> dict:
    """3-corner signoff compile vs the single-corner baseline.

    Both sides are measured here, interleaved under identical warm
    conditions (SCL artifacts resolved, interpolation caches primed) —
    ``implement_s`` from :func:`bench_implement` runs minutes earlier
    under different heap/cache state and is not a valid denominator.
    The acceptance contract: a warm-cache 3-corner run must cost less
    than twice a single-corner run.
    """
    from repro.compiler.syndcim import SynDCIM
    from repro.signoff import SIGNOFF3

    spec = _quickstart_spec()
    SynDCIM().compile(spec)  # warm nominal caches
    SynDCIM(corners=SIGNOFF3).compile(spec)  # warm corner SCL + caches

    single_samples, triple_samples = [], []
    result = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        SynDCIM().compile(spec)
        single_samples.append(time.perf_counter() - t0)
        gc.collect()
        t0 = time.perf_counter()
        result = SynDCIM(corners=SIGNOFF3).compile(spec)
        triple_samples.append(time.perf_counter() - t0)
    impl = result.implementation
    signoff = impl.signoff
    single_s = statistics.median(single_samples)
    signoff3_s = statistics.median(triple_samples)
    return {
        "signoff_single_s": round(single_s, 4),
        "signoff3_s": round(signoff3_s, 4),
        "signoff_corner_ratio": round(signoff3_s / single_s, 4),
        "signoff_ss_clean": bool(signoff.corner("SS").met),
        "signoff_worst_corner": signoff.worst.corner.name,
        "signoff_ss_fmax_mhz": round(signoff.corner("SS").fmax_mhz, 1),
    }


def _scalar_reference_rate(spec, arch, flat, shape, vectors: int = 2) -> float:
    """MAC vectors/second through the scalar ``GateSimulator`` on one
    generated macro netlist, driven with the *shared* cycle protocol
    (:meth:`repro.verify.testbench.VecMacroTestbench.scalar_mac_rate` —
    one protocol definition for the harness, the perf suite and the
    smoke tests)."""
    import numpy as np

    from repro.sim.formats import int_range
    from repro.spec import INT8
    from repro.verify import VecMacroTestbench

    tb = VecMacroTestbench(spec, arch, batch=1, netlist=flat, shape=shape)
    rng = np.random.default_rng(0)
    lo, hi = int_range(INT8.bits)
    tb.load_weights(
        0,
        rng.integers(lo, hi + 1, size=(spec.height, tb.model.n_groups)),
        INT8,
    )
    return tb.scalar_mac_rate(vectors=vectors)


def bench_vecsim(vectors: int = 4096) -> dict:
    """Vectorized batch verification vs the scalar simulator."""
    from repro.arch import MacroArchitecture
    from repro.rtl.gen.macro import generate_macro
    from repro.verify import verify_macro

    spec = _quickstart_spec()
    arch = MacroArchitecture()
    module, shape = generate_macro(spec, arch)
    flat = module.flatten()
    report = verify_macro(
        spec, arch, netlist=flat, shape=shape, vectors=vectors, seed=1
    )
    scalar_rate = _scalar_reference_rate(spec, arch, flat, shape)

    # Raw tiled-propagate throughput: run_mac only (no weight loads, no
    # golden model, no mismatch bookkeeping) on a 4096-lane batch — the
    # number the word-tiled value cube moves.
    import numpy as np

    from repro.sim.formats import int_range
    from repro.spec import INT8
    from repro.verify import VecMacroTestbench

    batch = 4096
    tb = VecMacroTestbench(spec, arch, batch=batch, netlist=flat, shape=shape)
    rng = np.random.default_rng(2)
    lo, hi = int_range(INT8.bits)
    tb.load_weights(
        0,
        rng.integers(lo, hi + 1, size=(spec.height, tb.model.n_groups)),
        INT8,
    )
    xs = rng.integers(lo, hi + 1, size=(batch, spec.height))
    tb.run_mac(xs)  # warm the compiled schedule
    # Every clock() consumes one driven input row per lane, and one MAC
    # result costs latency_cycles clocks — so lane-cycles per wall
    # second is the tiled kernel's raw rate (a 4096-lane batch at 12
    # pipeline cycles is 49k simulated vector-cycles per run_mac).
    cycles = batch * shape.latency_cycles
    tiled_samples = []
    for _ in range(3):
        gc.collect()
        t0 = time.perf_counter()
        tb.run_mac(xs)
        tiled_samples.append(cycles / (time.perf_counter() - t0))
    return {
        "vecsim_vectors": vectors,
        "vecsim_verify_s": round(report.elapsed_s, 4),
        "vecsim_vectors_per_s": round(report.vectors_per_s, 1),
        "vecsim_tiled_vectors_per_s": round(
            statistics.median(tiled_samples), 1
        ),
        "gatesim_vectors_per_s": round(scalar_rate, 3),
        "vecsim_speedup": round(report.vectors_per_s / scalar_rate, 1),
        "vecsim_verified_clean": bool(report.passed),
    }


def bench_implement_sweep(jobs: int = 0) -> dict:
    """16-point implemented sweep through the batch engine."""
    from repro.batch.engine import BatchCompiler
    from repro.batch.sweep import expand_grid, parse_format_sets

    jobs = jobs or min(4, os.cpu_count() or 1)
    specs = expand_grid(
        heights=[8, 16, 32, 64],
        widths=[8, 16],
        mcrs=[2],
        format_sets=parse_format_sets(["INT4,INT8"]),
        frequencies=[400.0, 800.0],
        vdds=[0.9],
    )
    # 4 x 2 x 2 = 16 implemented design points.
    engine = BatchCompiler(jobs=jobs, use_cache=False)
    t0 = time.perf_counter()
    result = engine.compile_specs(specs, implement=True)
    elapsed = time.perf_counter() - t0
    statuses = [r.get("status") for r in result.records]
    return {
        "sweep_impl_points": len(specs),
        "sweep_impl_jobs": jobs,
        "sweep_impl_s": round(elapsed, 4),
        "sweep_impl_point_avg_s": round(elapsed / len(specs), 5),
        "sweep_impl_ok": statuses.count("ok"),
        "sweep_impl_infeasible": statuses.count("infeasible"),
    }


def _worker_netview_probe(module) -> tuple:
    """Runs inside a pool worker: time hydrating the parent's published
    NetView tensors from shared memory versus compiling the same view
    locally.  Returns (attach_s, build_s, attach_hit)."""
    from repro.rtl.netview import NetView
    from repro.shm.netview import try_attach_net_view
    from repro.tech.stdcells import default_library

    library = default_library()
    t0 = time.perf_counter()
    view = try_attach_net_view(module, library)
    attach_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    NetView(module, library)
    build_s = time.perf_counter() - t0
    return (attach_s, build_s, view is not None)


def _worker_scl_source_probe(_arg) -> str:
    """Runs inside a pool worker: where the default SCL resolved from
    (``"shm"`` proves the zero-copy attach beat every fallback)."""
    from repro.scl.library import default_scl, default_scl_source

    default_scl()
    return default_scl_source() or "unresolved"


def bench_shm(jobs: int = 2) -> dict:
    """Zero-copy shared-memory worker warmup on a real spawn pool.

    The parent publishes the quickstart macro's compiled NetView and
    the sealed SCL tensors (the engine does the latter in its prewarm),
    then asks the workers themselves to time attach-vs-rebuild — the
    numbers that justify the shm plumbing have to come from inside the
    pool, not from a parent-side simulation.
    """
    from repro.batch.engine import BatchCompiler
    from repro.compiler.flow import ImplementSession
    from repro.compiler.syndcim import SynDCIM

    spec = _quickstart_spec()
    result = SynDCIM().compile(spec)
    session = ImplementSession(spec)
    flat, _shape, _stats = session.netlist(result.implementation.arch)
    engine = BatchCompiler(jobs=jobs, use_cache=False)
    name = engine.publish_net_view(flat, session.library)
    n = max(jobs, 2)
    probes = engine.map(_worker_netview_probe, [flat] * n)
    sources = engine.map(_worker_scl_source_probe, range(n))
    attach_ms = min(p[0] for p in probes) * 1e3
    build_ms = min(p[1] for p in probes) * 1e3
    return {
        "shm_netview_attach_ms": round(attach_ms, 2),
        "shm_netview_build_ms": round(build_ms, 2),
        "shm_netview_attach_speedup": round(build_ms / attach_ms, 2),
        "shm_worker_scl_source": sources[0] if sources else "unresolved",
        "shm_workers_zero_copy": bool(
            name is not None
            and all(p[2] for p in probes)
            and all(s == "shm" for s in sources)
        ),
    }


def _worker_scl_probe(_arg) -> float:
    """Runs inside a pool worker: how long the worker spends resolving
    the default SCL (milliseconds when the cache/initializer did its
    job, about a second if it had to re-characterize)."""
    t0 = time.perf_counter()
    from repro.scl.library import default_scl

    default_scl()
    return time.perf_counter() - t0


def bench_sweep(jobs: int = 0) -> dict:
    """64-point search-only sweep through the batch engine's pool."""
    from repro.batch.engine import BatchCompiler
    from repro.batch.sweep import expand_grid, parse_format_sets

    jobs = jobs or min(4, os.cpu_count() or 1)
    specs = expand_grid(
        heights=[8, 16, 32, 64],
        widths=[8, 16, 32, 64],
        mcrs=[2],
        format_sets=parse_format_sets(["INT4,INT8"]),
        frequencies=[400.0, 800.0],
        vdds=[0.9, 1.1],
    )
    # 4 x 4 x 2 x 2 = 64 design points.
    engine = BatchCompiler(jobs=jobs, use_cache=False)
    probes = engine.map(_worker_scl_probe, range(max(jobs, 2)))
    t0 = time.perf_counter()
    result = engine.compile_specs(specs, implement=False)
    elapsed = time.perf_counter() - t0
    statuses = [r.get("status") for r in result.records]
    return {
        "sweep_points": len(specs),
        "sweep_jobs": jobs,
        "sweep_s": round(elapsed, 4),
        "sweep_point_avg_s": round(elapsed / len(specs), 5),
        "sweep_ok": statuses.count("ok"),
        "sweep_infeasible": statuses.count("infeasible"),
        "worker_scl_load_max_s": round(max(probes), 4) if probes else None,
    }


def collect(quick: bool = False) -> dict:
    metrics: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-perf-scl-") as tmp:
        metrics.update(bench_scl(pathlib.Path(tmp)))
        metrics.update(bench_search())
        metrics.update(bench_implement())
        metrics.update(bench_signoff())
        metrics.update(bench_vecsim())
        metrics.update(bench_shm())
        if not quick:
            # The sweeps run against the freshly primed temporary cache
            # so worker warmup exercises the disk artifact path.
            os.environ["REPRO_SCL_CACHE"] = tmp
            try:
                metrics.update(bench_sweep())
                metrics.update(bench_implement_sweep())
            finally:
                os.environ.pop("REPRO_SCL_CACHE", None)
    return metrics


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(DEFAULT_OUTPUT),
        help=f"result JSON (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="skip the 64-point sweep"
    )
    args = parser.parse_args(argv)

    metrics = collect(quick=args.quick)
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "revision": _git_revision(),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "metrics": metrics,
    }

    path = pathlib.Path(args.output)
    history = []
    if path.is_file():
        try:
            history = json.loads(path.read_text())
            if not isinstance(history, list):
                history = []
        except ValueError:
            history = []
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2) + "\n")

    width = max(len(k) for k in metrics)
    for key, value in metrics.items():
        print(f"{key:<{width}}  {value}")
    print(f"\nappended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
