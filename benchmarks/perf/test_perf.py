"""Perf smoke checks (tier-1): the regressions we refuse to ship.

Full numbers come from ``make perf`` (see ``run_perf.py``); these tests
only assert the properties that must *never* silently regress, with
thresholds generous enough for loaded CI runners:

* a warm process loads the persisted SCL from disk — and does so well
  under the budget that makes per-process re-characterization pointless;
* a single search on a warm SCL stays interactive;
* a full compile **with implementation** (the vectorized layout/DRC/
  routing/synthesis kernels) stays interactive — the regression guard
  for the implement-flow rewrite.
"""

from __future__ import annotations

import gc
import pathlib
import time

import run_perf

#: Generous ceilings (the measured values are ~2.5 ms, ~6 ms and
#: ~0.55 s; the point is catching a return to seconds-per-call, not
#: timing noise on loaded CI runners).
WARM_LOAD_CEILING_S = 2.0
SEARCH_CEILING_S = 2.0
IMPLEMENT_CEILING_S = 3.0
#: Multi-corner contract: a warm 3-corner signoff run costs less than
#: twice a single-corner run (measured ~1.15x; the per-view STA/power
#: caches are what hold this — losing them costs ~3x).
SIGNOFF_RATIO_CEILING = 2.0
#: Batch-verification contract: the vectorized simulator delivers at
#: least 100x the scalar simulator's vectors/second on the quickstart
#: macro (measured ~10,000x; the floor only trips if the engine
#: de-vectorizes into a per-vector loop).
VECSIM_SPEEDUP_FLOOR = 100.0


def test_warm_scl_load_smoke(tmp_path: pathlib.Path):
    """Cold build persists the artifact; a second process must resolve
    the library from disk (not rebuild) within the ceiling."""
    cold_s, cold_source, entries = run_perf._timed_scl_process(tmp_path)
    assert cold_source == "built"
    assert entries > 150
    warm_s, warm_source, warm_entries = run_perf._timed_scl_process(tmp_path)
    assert warm_source == "disk", "second process re-characterized the SCL"
    assert warm_entries == entries
    assert warm_s < WARM_LOAD_CEILING_S, (
        f"warm SCL load took {warm_s:.3f}s (ceiling {WARM_LOAD_CEILING_S}s); "
        f"cold build was {cold_s:.3f}s"
    )


def test_single_search_smoke(scl):
    from repro.search.algorithm import MSOSearcher
    from repro.spec import INT4, INT8, MacroSpec

    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=800.0,
    )
    searcher = MSOSearcher(scl)
    searcher.search(spec)  # warm the LUT interpolation caches
    t0 = time.perf_counter()
    result = searcher.search(spec)
    elapsed = time.perf_counter() - t0
    assert result.frontier
    assert elapsed < SEARCH_CEILING_S, f"search took {elapsed:.3f}s"


def test_full_implement_smoke(scl):
    """One complete compile with implementation on the quickstart spec
    must stay well under the ceiling — this is the tier-1 guard for the
    vectorized implement-flow kernels (DRC overlap sweep, routing
    reductions, NetView synthesis passes, array shelf packing)."""
    from repro.compiler.syndcim import SynDCIM

    spec = run_perf._quickstart_spec()
    compiler = SynDCIM(scl=scl)
    compiler.compile(spec)  # warm interpolation caches
    gc.collect()
    t0 = time.perf_counter()
    result = SynDCIM(scl=scl).compile(spec)
    elapsed = time.perf_counter() - t0
    impl = result.implementation
    assert impl is not None and impl.signoff_clean
    assert impl.drc.clean and impl.lvs.clean and impl.timing.met
    assert elapsed < IMPLEMENT_CEILING_S, (
        f"full implement took {elapsed:.3f}s (ceiling {IMPLEMENT_CEILING_S}s)"
    )


def test_vecsim_speedup_smoke():
    """The vectorized batch verifier must stay >= 100x faster per
    vector than the scalar reference on the quickstart macro — and the
    generated netlist must verify clean against the golden model.
    Both rates are measured here on the same machine and netlist, so
    the ratio is immune to runner speed."""
    from repro.arch import MacroArchitecture
    from repro.rtl.gen.macro import generate_macro
    from repro.verify import verify_macro

    spec = run_perf._quickstart_spec()
    arch = MacroArchitecture()
    module, shape = generate_macro(spec, arch)
    flat = module.flatten()
    report = verify_macro(
        spec, arch, netlist=flat, shape=shape, vectors=2048, seed=1
    )
    assert report.passed, report.describe()
    scalar_rate = run_perf._scalar_reference_rate(spec, arch, flat, shape)
    speedup = report.vectors_per_s / scalar_rate
    assert speedup >= VECSIM_SPEEDUP_FLOOR, (
        f"vecsim only {speedup:.0f}x the scalar simulator "
        f"({report.vectors_per_s:.0f} vs {scalar_rate:.2f} vectors/s; "
        f"floor {VECSIM_SPEEDUP_FLOOR}x)"
    )


def test_multi_corner_signoff_smoke(scl):
    """The acceptance contract of the multi-corner subsystem on the
    quickstart spec: the SS/TT/FF compile reports per-corner fmax and
    power, signs off clean at the worst (SS) corner, and a warm-cache
    3-corner run costs less than twice the single-corner run — the
    per-view cache sharing is what keeps the extra corners cheap."""
    from repro.compiler.syndcim import SynDCIM
    from repro.signoff import SIGNOFF3

    spec = run_perf._quickstart_spec()
    # Warm everything both measurements share: interpolation caches,
    # the corner-characterized SCL (disk-cached after the first ever
    # run on a machine) and the result structures.
    SynDCIM(scl=scl).compile(spec)
    SynDCIM(scl=scl, corners=SIGNOFF3).compile(spec)

    # Best-of-2 per side: a single sample flakes on shared CI runners
    # (one GC pause or contention spike inverts the ratio); the min is
    # robust to one-sided spikes without the cost of full medians.
    single_samples, triple_samples = [], []
    single = triple = None
    for _ in range(2):
        gc.collect()
        t0 = time.perf_counter()
        single = SynDCIM(scl=scl).compile(spec)
        single_samples.append(time.perf_counter() - t0)
        gc.collect()
        t0 = time.perf_counter()
        triple = SynDCIM(scl=scl, corners=SIGNOFF3).compile(spec)
        triple_samples.append(time.perf_counter() - t0)
    single_s = min(single_samples)
    triple_s = min(triple_samples)

    impl = triple.implementation
    assert impl is not None and impl.signoff is not None
    report = impl.signoff
    assert {r.corner.name for r in report.results} == {"SS", "TT", "FF"}
    for result in report.results:
        assert result.fmax_mhz > 0.0
        assert result.power.total_mw > 0.0
    # SS is the setup-critical corner and must still meet the clock.
    assert report.worst.corner.name == "SS"
    assert report.corner("SS").met, (
        f"SS corner violated: {report.describe()}"
    )
    assert impl.signoff_clean
    # fmax ordering follows the composed derates: SS < TT < FF.
    assert (
        report.corner("SS").fmax_mhz
        < report.corner("TT").fmax_mhz
        < report.corner("FF").fmax_mhz
    )
    assert single.implementation is not None
    ratio = triple_s / single_s
    assert ratio < SIGNOFF_RATIO_CEILING, (
        f"3-corner signoff cost {ratio:.2f}x a single-corner run "
        f"({triple_s:.3f}s vs {single_s:.3f}s; "
        f"ceiling {SIGNOFF_RATIO_CEILING}x)"
    )
