#!/usr/bin/env python
"""CI perf-regression gate: latest ``make perf`` run vs the baseline.

Compares the newest entry of ``benchmarks/results/BENCH_perf.json``
against the checked-in ``benchmarks/perf/baseline.json`` and fails
(exit 1) when a guarded timing regressed past its tolerance.  The
tolerances are deliberately generous — CI runners are slow, shared and
noisy; the gate exists to catch a *return to seconds-per-call* (an
accidentally disabled cache, a de-vectorized kernel), not 20 % jitter.

Guarded metrics (each ``(name, multiplier)``: fail when
``measured > baseline * multiplier``):

* ``scl_warm_load_s``     — the persistent SCL cache still loads fast;
* ``search_s``            — a single MSO search stays interactive;
* ``implement_s``         — the full implement flow stays interactive;
* ``signoff3_s``          — 3-corner signoff rides the shared caches.

Absolute invariants (not ratios — these hold on any machine):

* ``signoff_corner_ratio`` <= 2.0 — a warm 3-corner run costs less
  than twice a single-corner run (the multi-corner subsystem's
  acceptance contract);
* ``scl_warm_multivt_ratio`` <= 3.0 — the warm ``default_scl()`` load
  with the full Vt x drive variant grid stays under 3x the single-Vt
  warm load (the multi-Vt library's acceptance contract);
* ``signoff_ss_clean`` — the quickstart macro signs off at SS;
* ``vecsim_speedup`` >= 100 — the vectorized batch verifier stays at
  least 100x faster per vector than the scalar simulator (same-machine
  ratio), and ``vecsim_verified_clean`` — the quickstart netlist
  verifies clean against the golden model.  ``vecsim_vectors_per_s``
  is additionally floored at half its baseline;
* ``vecsim_tiled_vectors_per_s`` >= 100000 — the word-tiled propagate
  loop's raw ``run_mac`` throughput on the quickstart netlist (the
  tiled-simulator acceptance contract);
* ``implement_warm_ms`` <= 100 — a forced full re-implementation in a
  warm ``ImplementSession`` (arena replay + route reuse) stays under
  a tenth of a second (the incremental-recompile contract);
* ``shm_netview_attach_speedup`` >= 1.0 and ``shm_workers_zero_copy``
  — hydrating published NetView tensors inside a pool worker beats
  rebuilding locally, and workers resolve their SCL from the
  shared-memory attach, not the disk cache or a characterization.

Run after ``make perf``::

    python benchmarks/perf/check_regression.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
DEFAULT_RESULTS = HERE.parent / "results" / "BENCH_perf.json"
DEFAULT_BASELINE = HERE / "baseline.json"

#: (metric, allowed multiplier over baseline).  2x across the board:
#: generous enough for loaded CI runners, tight enough that losing a
#: cache or a vectorized kernel (5-100x slowdowns) always trips it.
GUARDED = (
    ("scl_warm_load_s", 2.0),
    ("search_s", 2.0),
    ("implement_s", 2.0),
    ("signoff3_s", 2.0),
)

#: Machine-independent invariants: (metric, max allowed value).
RATIO_CEILINGS = (
    ("signoff_corner_ratio", 2.0),
    ("scl_warm_multivt_ratio", 3.0),
    ("implement_warm_ms", 100.0),
)

#: Machine-independent invariants: (metric, min allowed value).
#: ``vecsim_speedup`` is the batch-verification engine's acceptance
#: contract — both rates are measured on the same machine, so the
#: ratio holds anywhere; falling under 100x means the vectorized
#: kernels de-vectorized.
RATIO_FLOORS = (
    ("vecsim_speedup", 100.0),
    ("vecsim_tiled_vectors_per_s", 100000.0),
    ("shm_netview_attach_speedup", 1.0),
)

#: Throughput metrics (higher is better): fail when
#: ``measured < baseline / divisor``.
THROUGHPUT_FLOORS = (("vecsim_vectors_per_s", 2.0),)

#: Boolean metrics that must be true.
REQUIRED_TRUE = (
    "implement_signoff_clean",
    "signoff_ss_clean",
    "vecsim_verified_clean",
    "shm_workers_zero_copy",
)


def latest_metrics(results_path: pathlib.Path) -> dict:
    history = json.loads(results_path.read_text())
    if not isinstance(history, list) or not history:
        raise SystemExit(f"error: {results_path} holds no perf entries")
    return history[-1]["metrics"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default=str(DEFAULT_RESULTS))
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    args = parser.parse_args(argv)

    metrics = latest_metrics(pathlib.Path(args.results))
    baseline = json.loads(pathlib.Path(args.baseline).read_text())["metrics"]

    failures = []
    lines = []
    for name, mult in GUARDED:
        base = baseline.get(name)
        got = metrics.get(name)
        if base is None or got is None:
            failures.append(f"{name}: missing (baseline={base}, run={got})")
            continue
        limit = base * mult
        verdict = "ok" if got <= limit else "REGRESSED"
        lines.append(
            f"{name:<22} {got:>9.4f}s  baseline {base:.4f}s "
            f"(limit {limit:.4f}s) {verdict}"
        )
        if got > limit:
            failures.append(
                f"{name}: {got:.4f}s > {mult:.1f}x baseline {base:.4f}s"
            )
    for name, ceiling in RATIO_CEILINGS:
        got = metrics.get(name)
        if got is None:
            failures.append(f"{name}: missing from run")
            continue
        verdict = "ok" if got <= ceiling else "REGRESSED"
        lines.append(f"{name:<22} {got:>9.4f}   ceiling {ceiling} {verdict}")
        if got > ceiling:
            failures.append(f"{name}: {got:.4f} > ceiling {ceiling}")
    for name, floor in RATIO_FLOORS:
        got = metrics.get(name)
        if got is None:
            failures.append(f"{name}: missing from run")
            continue
        verdict = "ok" if got >= floor else "REGRESSED"
        lines.append(f"{name:<22} {got:>9.1f}   floor {floor} {verdict}")
        if got < floor:
            failures.append(f"{name}: {got:.1f} < floor {floor}")
    for name, divisor in THROUGHPUT_FLOORS:
        base = baseline.get(name)
        got = metrics.get(name)
        if base is None or got is None:
            failures.append(f"{name}: missing (baseline={base}, run={got})")
            continue
        limit = base / divisor
        verdict = "ok" if got >= limit else "REGRESSED"
        lines.append(
            f"{name:<22} {got:>9.1f}   baseline {base:.1f} "
            f"(floor {limit:.1f}) {verdict}"
        )
        if got < limit:
            failures.append(
                f"{name}: {got:.1f} < baseline {base:.1f} / {divisor:.1f}"
            )
    for name in REQUIRED_TRUE:
        got = metrics.get(name)
        verdict = "ok" if got else "FAILED"
        lines.append(f"{name:<22} {got!s:>9}   {verdict}")
        if not got:
            failures.append(f"{name}: expected true, got {got!r}")

    print("\n".join(lines))
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
