"""Fig. 7 — post-layout energy efficiency across precisions and
dimensions.

The paper generates macros from 32x32 to 256x256 and measures INT4/8,
FP8 and BF16 energy efficiency.  Shape claims reproduced here:

* efficiency improves with array dimension (peripheral overhead per bit
  amortizes; the CSA gets more efficient);
* FP8 costs ~10% more power than INT4 and BF16 ~20% more than INT8
  (alignment-unit overhead) — we check the FP overheads land in a band
  around those ratios;
* lower precision modes are more efficient (fewer serial phases).

32x32 and 64x64 run through the full post-layout flow; 128 and 256 use
the calibrated LUT estimator (the paper's own scaled-from-synthesis
path) — the estimator is cross-checked against the implemented sizes
first.
"""

import pytest

from repro.arch import MacroArchitecture
from repro.compiler.flow import implement
from repro.compiler.report import format_table
from repro.search.estimate import estimate_macro
from repro.spec import BF16, FP8, INT4, INT8, MacroSpec

DIMS = (32, 64, 128, 256)
MODES = (
    ("INT4", INT4, INT4),
    ("INT8", INT8, INT8),
    ("FP8", FP8, FP8),
    ("BF16", BF16, BF16),
)
IMPLEMENT_UP_TO = 64


def _spec(dim):
    return MacroSpec(
        height=dim,
        width=dim,
        mcr=2,
        input_formats=(INT4, INT8, FP8, BF16),
        weight_formats=(INT4, INT8, FP8, BF16),
        mac_frequency_mhz=500.0,
    )


def _mode_metrics(scl, spec, arch, power_scale=1.0):
    """TOPS/W per mode from the estimator (optionally rescaled to an
    implemented power measurement)."""
    out = {}
    for name, fi, fw in MODES:
        est = estimate_macro(spec, arch, scl, mode=(fi, fw))
        power = est.power_mw * power_scale
        out[name] = {
            "power_mw": power,
            "tops": est.tops,
            "tops_w": est.tops / (power * 1e-3),
        }
    return out


@pytest.mark.benchmark(group="fig7")
def test_fig7_energy_efficiency(benchmark, scl, library, process, save_result):
    arch = MacroArchitecture(ofu_csel=True, ofu_retimed=True, ofu_pipeline=1)
    rows = []
    eff = {}
    for dim in DIMS:
        spec = _spec(dim)
        power_scale = 1.0
        if dim <= IMPLEMENT_UP_TO:
            impl = implement(spec, arch, library=library, process=process)
            # anchor the estimator to the signoff power measurement
            base_est = estimate_macro(spec, arch, scl)
            power_scale = impl.power.total_mw / base_est.power_mw
        metrics = _mode_metrics(scl, spec, arch, power_scale)
        eff[dim] = metrics
        rows.append(
            [f"{dim}x{dim}"]
            + [round(metrics[m]["tops_w"], 2) for m, _, _ in MODES]
            + [round(metrics[m]["power_mw"], 1) for m, _, _ in MODES]
        )

    headers = (
        ["macro"]
        + [f"{m}_TOPS/W" for m, _, _ in MODES]
        + [f"{m}_mW" for m, _, _ in MODES]
    )
    table = format_table(headers, rows)
    save_result("fig7_energy_efficiency", table)

    # Shape 1: efficiency grows with dimension in every mode.
    for mode, _, _ in MODES:
        series = [eff[d][mode]["tops_w"] for d in DIMS]
        assert series[-1] > series[0], f"{mode} efficiency must scale up"

    # Shape 2: FP overhead bands at the largest macro (alignment
    # amortized per serial phase): FP8 vs INT4 and BF16 vs INT8.
    big = eff[256]
    fp8_overhead = big["FP8"]["power_mw"] / big["INT4"]["power_mw"] - 1.0
    bf16_overhead = big["BF16"]["power_mw"] / big["INT8"]["power_mw"] - 1.0
    assert 0.0 < fp8_overhead < 0.35, fp8_overhead
    assert 0.0 < bf16_overhead < 0.50, bf16_overhead
    assert bf16_overhead > fp8_overhead * 0.8

    # Shape 3: INT4 beats INT8 on TOPS/W everywhere (fewer phases).
    for d in DIMS:
        assert eff[d]["INT4"]["tops_w"] > eff[d]["INT8"]["tops_w"]

    benchmark(
        lambda: _mode_metrics(scl, _spec(128), arch)
    )


@pytest.mark.benchmark(group="fig7")
def test_fig7_estimator_anchoring(benchmark, scl, library, process, save_result):
    """Cross-check: for the implemented sizes the LUT estimator must
    track the signoff flow within calibration bands, justifying its use
    for the 128/256 points."""
    arch = MacroArchitecture(ofu_csel=True, ofu_retimed=True, ofu_pipeline=1)
    rows = []
    for dim in (32, 64):
        spec = _spec(dim)
        impl = implement(spec, arch, library=library, process=process)
        est = estimate_macro(spec, arch, scl)
        ratio_p = impl.power.total_mw / est.power_mw
        ratio_a = impl.area_um2 / est.area_um2
        rows.append(
            [
                f"{dim}x{dim}",
                round(est.power_mw, 1),
                round(impl.power.total_mw, 1),
                round(ratio_p, 2),
                round(est.area_um2 / 1e6, 4),
                round(impl.area_um2 / 1e6, 4),
                round(ratio_a, 2),
            ]
        )
        assert 0.3 < ratio_p < 3.0
        assert 0.4 < ratio_a < 2.5
    table = format_table(
        [
            "macro",
            "est_mW",
            "impl_mW",
            "p_ratio",
            "est_mm2",
            "impl_mm2",
            "a_ratio",
        ],
        rows,
    )
    save_result("fig7_estimator_anchoring", table)
    benchmark(lambda: estimate_macro(_spec(64), arch, scl))
