"""Packaging for the SynDCIM reproduction.

``pip install -e .`` puts ``repro`` on the path (no PYTHONPATH tricks)
and installs the ``syndcim`` console script, an alias for
``python -m repro``.
"""

import pathlib
import re

from setuptools import find_packages, setup


def _version() -> str:
    init = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(
        r'__version__ = "([^"]+)"', init.read_text(encoding="utf-8")
    )
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="syndcim-repro",
    version=_version(),
    description=(
        "Reproduction of SynDCIM (DATE 2025): a performance-aware "
        "digital computing-in-memory compiler with multi-spec-oriented "
        "subcircuit synthesis, batch design-space exploration and a "
        "persistent result cache"
    ),
    long_description=(pathlib.Path(__file__).parent / "README.md").read_text(
        encoding="utf-8"
    ),
    long_description_content_type="text/markdown",
    url="https://arxiv.org/abs/2411.16806",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
    ],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "pytest-cov", "ruff"],
    },
    entry_points={
        "console_scripts": [
            "syndcim = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
