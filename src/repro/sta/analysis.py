"""Arrival-time propagation, slack and critical-path extraction.

Implements the PrimeTime-style checks the paper's flow relies on
("we evaluate the PPA of the netlist through gate-level simulation" and
post-layout STA, Section III.D):

* topological (Kahn) longest-path propagation of arrival times and
  slews over the combinational graph;
* setup checks at register data pins and output ports against the clock
  period;
* worst-negative-slack, per-endpoint slack and critical-path traceback.

Delays come from the same equation the characterization flow tabulates
(:func:`repro.tech.characterization.arc_delay_ns`), so pre-layout STA,
Liberty views and the subcircuit-library LUTs are mutually consistent.
Post-layout runs pass a wire-load function built from the placement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TimingError
from ..rtl.ir import Module
from ..tech.characterization import arc_delay_ns, arc_slew_ns
from ..tech.stdcells import StdCellLibrary
from .graph import TimingGraph, WireLoadFn, build_timing_graph

#: Assumed transition time at startpoints (registered outputs / ports).
START_SLEW_NS = 0.02


@dataclass(frozen=True)
class PathStep:
    """One hop of a reported critical path."""

    instance: str
    cell: str
    input_pin: str
    output_pin: str
    net: str
    arrival_ns: float


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run."""

    clock_period_ns: float
    critical_path_ns: float
    wns_ns: float
    endpoint: str
    endpoint_kind: str
    path: Tuple[PathStep, ...]
    endpoint_slacks: Dict[str, float]

    @property
    def met(self) -> bool:
        return self.wns_ns >= 0.0

    @property
    def max_frequency_mhz(self) -> float:
        if self.critical_path_ns <= 0.0:
            raise TimingError("empty design has no maximum frequency")
        return 1e3 / self.critical_path_ns

    def describe(self) -> str:
        status = "MET" if self.met else "VIOLATED"
        lines = [
            f"clock period {self.clock_period_ns:.4f} ns: {status} "
            f"(WNS {self.wns_ns:+.4f} ns)",
            f"critical path {self.critical_path_ns:.4f} ns -> "
            f"{self.endpoint} ({self.endpoint_kind}), "
            f"fmax {self.max_frequency_mhz:.1f} MHz",
        ]
        for step in self.path[-12:]:
            lines.append(
                f"  {step.arrival_ns:8.4f} ns  {step.cell:10s} "
                f"{step.instance} {step.input_pin}->{step.output_pin} "
                f"({step.net})"
            )
        return "\n".join(lines)


def analyze(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
) -> TimingReport:
    """Run STA on a flat module against ``clock_period_ns``.

    ``derate`` is a global delay multiplier for corner analysis — e.g.
    pass ``CORNERS["SS"].delay_factor`` for slow-corner signoff.
    """
    graph = build_timing_graph(module, library, wire_load)
    return analyze_graph(graph, clock_period_ns, derate)


def analyze_graph(
    graph: TimingGraph, clock_period_ns: float, derate: float = 1.0
) -> TimingReport:
    if clock_period_ns <= 0.0:
        raise TimingError("clock period must be positive")
    if derate <= 0.0:
        raise TimingError("derate must be positive")
    arrivals, slews, parent = propagate(graph, derate)

    worst_req = float("inf")
    worst_net = ""
    worst_kind = ""
    worst_arrival = 0.0
    endpoint_slacks: Dict[str, float] = {}
    for net, (kind, setup) in graph.endpoints.items():
        arrival = arrivals.get(net, 0.0)
        slack = clock_period_ns - setup - arrival
        endpoint_slacks[net] = slack
        if slack < worst_req:
            worst_req = slack
            worst_net = net
            worst_kind = kind
            worst_arrival = arrival + setup
    if not endpoint_slacks:
        raise TimingError("design has no timing endpoints")

    path = _trace_path(graph, parent, worst_net, arrivals)
    return TimingReport(
        clock_period_ns=clock_period_ns,
        critical_path_ns=worst_arrival,
        wns_ns=worst_req,
        endpoint=worst_net,
        endpoint_kind=worst_kind,
        path=tuple(path),
        endpoint_slacks=endpoint_slacks,
    )


def propagate(
    graph: TimingGraph,
    derate: float = 1.0,
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Optional[object]]]:
    """Kahn-ordered longest-path arrival propagation.

    Returns (arrival per net, slew per net, predecessor edge per net).
    Raises :class:`TimingError` if a combinational cycle prevents a full
    topological order.
    """
    arrivals: Dict[str, float] = {}
    slews: Dict[str, float] = {}
    parent: Dict[str, Optional[object]] = {}
    indegree = dict(graph.fanin_count)

    queue: deque = deque()
    for net in graph.module.nets:
        if indegree.get(net, 0) == 0:
            arrivals[net] = graph.startpoints.get(net, 0.0)
            slews[net] = START_SLEW_NS
            parent[net] = None
            queue.append(net)

    processed = 0
    total_edges = sum(len(v) for v in graph.edges_from.values())
    relaxed = 0
    while queue:
        net = queue.popleft()
        processed += 1
        for edge in graph.edges_from.get(net, ()):  # type: ignore[arg-type]
            load = graph.net_load_ff[edge.dst_net]
            delay = arc_delay_ns(edge.arc, slews[net], load) * derate
            cand = arrivals[net] + delay
            if cand > arrivals.get(edge.dst_net, float("-inf")):
                arrivals[edge.dst_net] = cand
                slews[edge.dst_net] = arc_slew_ns(edge.arc, load)
                parent[edge.dst_net] = edge
            relaxed += 1
            indegree[edge.dst_net] -= 1
            if indegree[edge.dst_net] == 0:
                # Launch offsets (reg Q driving a net also fed by logic
                # cannot happen: single-driver rule), so only max with
                # startpoints for safety.
                start = graph.startpoints.get(edge.dst_net)
                if start is not None and start > arrivals[edge.dst_net]:
                    arrivals[edge.dst_net] = start
                    parent[edge.dst_net] = None
                queue.append(edge.dst_net)

    if relaxed != total_edges:
        raise TimingError(
            f"combinational cycle detected: relaxed {relaxed} of "
            f"{total_edges} arcs"
        )
    return arrivals, slews, parent


def _trace_path(
    graph: TimingGraph,
    parent: Dict[str, Optional[object]],
    endpoint: str,
    arrivals: Dict[str, float],
) -> List[PathStep]:
    path: List[PathStep] = []
    net = endpoint
    guard = 0
    while net in parent and parent[net] is not None:
        edge = parent[net]
        path.append(
            PathStep(
                instance=edge.inst.name,  # type: ignore[union-attr]
                cell=edge.cell.name,  # type: ignore[union-attr]
                input_pin=edge.arc.input_pin,  # type: ignore[union-attr]
                output_pin=edge.arc.output_pin,  # type: ignore[union-attr]
                net=net,
                arrival_ns=arrivals.get(net, 0.0),
            )
        )
        net = edge.src_net  # type: ignore[union-attr]
        guard += 1
        if guard > 1_000_000:  # pragma: no cover - defensive
            raise TimingError("path traceback did not terminate")
    path.reverse()
    return path


@dataclass(frozen=True)
class HoldReport:
    """Result of a min-delay (hold) check."""

    worst_slack_ns: float
    endpoint: str

    @property
    def met(self) -> bool:
        return self.worst_slack_ns >= 0.0


def analyze_hold(
    module: Module,
    library: StdCellLibrary,
    wire_load: Optional[WireLoadFn] = None,
) -> HoldReport:
    """Shortest-path (early-arrival) check against register hold times.

    Same-edge capture: data launched at clock-to-Q must not beat the
    capturing register's hold window.  Our single-clock, buffered-tree
    macros have no clock skew model, so slack = min_arrival - hold.
    """
    graph = build_timing_graph(module, library, wire_load)
    # External inputs are assumed to arrive with at least the hold
    # window already elapsed (standard input-delay constraint).
    input_delay = 0.05
    input_ports = set(module.input_ports)
    arrivals: Dict[str, float] = {}
    indegree = dict(graph.fanin_count)
    queue: deque = deque()
    for net in graph.module.nets:
        if indegree.get(net, 0) == 0:
            start = graph.startpoints.get(net, 0.0)
            if net in input_ports:
                start = max(start, input_delay)
            arrivals[net] = start
            queue.append(net)
    while queue:
        net = queue.popleft()
        for edge in graph.edges_from.get(net, ()):  # type: ignore[arg-type]
            load = graph.net_load_ff[edge.dst_net]
            cand = arrivals[net] + arc_delay_ns(edge.arc, START_SLEW_NS, load)
            prev = arrivals.get(edge.dst_net)
            if prev is None or cand < prev:
                arrivals[edge.dst_net] = cand
            indegree[edge.dst_net] -= 1
            if indegree[edge.dst_net] == 0:
                queue.append(edge.dst_net)

    worst = float("inf")
    worst_net = ""
    for inst in graph.sequential:
        cell = graph.library.cell(inst.cell_name)
        d_net = inst.conn.get("D")
        if d_net is None or d_net not in arrivals:
            continue
        slack = arrivals[d_net] - cell.hold_ns
        if slack < worst:
            worst = slack
            worst_net = d_net
    if worst == float("inf"):
        worst = 0.0
    return HoldReport(worst_slack_ns=worst, endpoint=worst_net)


def minimum_period_ns(
    module: Module,
    library: StdCellLibrary,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
) -> float:
    """Smallest period with non-negative slack (critical path + setup)."""
    graph = build_timing_graph(module, library, wire_load)
    report = analyze_graph(graph, clock_period_ns=1e9, derate=derate)
    return 1e9 - report.wns_ns
