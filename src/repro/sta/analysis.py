"""Arrival-time propagation, slack and critical-path extraction.

Implements the PrimeTime-style checks the paper's flow relies on
("we evaluate the PPA of the netlist through gate-level simulation" and
post-layout STA, Section III.D):

* topological (Kahn) longest-path propagation of arrival times and
  slews over the combinational graph;
* setup checks at register data pins and output ports against the clock
  period;
* worst-negative-slack, per-endpoint slack and critical-path traceback.

Delays come from the same equation the characterization flow tabulates
(:func:`repro.tech.characterization.arc_delay_ns`), so pre-layout STA,
Liberty views and the subcircuit-library LUTs are mutually consistent.
Post-layout runs pass a wire-load function built from the placement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import TimingError
from ..rtl.ir import Module
from ..rtl.netview import NetView, net_view
from ..tech.characterization import (
    SLEW_GAIN,
    SLEW_SENSITIVITY,
    arc_delay_ns,
    arc_slew_ns,
)
from ..tech.stdcells import StdCellLibrary
from .graph import TimingGraph, WireLoadFn, build_timing_graph, net_loads_vector

#: Assumed transition time at startpoints (registered outputs / ports).
START_SLEW_NS = 0.02


@dataclass(frozen=True)
class PathStep:
    """One hop of a reported critical path."""

    instance: str
    cell: str
    input_pin: str
    output_pin: str
    net: str
    arrival_ns: float


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run."""

    clock_period_ns: float
    critical_path_ns: float
    wns_ns: float
    endpoint: str
    endpoint_kind: str
    path: Tuple[PathStep, ...]
    endpoint_slacks: Dict[str, float]

    @property
    def met(self) -> bool:
        return self.wns_ns >= 0.0

    @property
    def max_frequency_mhz(self) -> float:
        if self.critical_path_ns <= 0.0:
            raise TimingError("empty design has no maximum frequency")
        return 1e3 / self.critical_path_ns

    def describe(self) -> str:
        status = "MET" if self.met else "VIOLATED"
        lines = [
            f"clock period {self.clock_period_ns:.4f} ns: {status} "
            f"(WNS {self.wns_ns:+.4f} ns)",
            f"critical path {self.critical_path_ns:.4f} ns -> "
            f"{self.endpoint} ({self.endpoint_kind}), "
            f"fmax {self.max_frequency_mhz:.1f} MHz",
        ]
        for step in self.path[-12:]:
            lines.append(
                f"  {step.arrival_ns:8.4f} ns  {step.cell:10s} "
                f"{step.instance} {step.input_pin}->{step.output_pin} "
                f"({step.net})"
            )
        return "\n".join(lines)


def analyze(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
) -> TimingReport:
    """Run STA on a flat module against ``clock_period_ns``.

    ``derate`` is a global delay multiplier for corner analysis — e.g.
    pass ``CORNERS["SS"].delay_factor`` for slow-corner signoff.

    Runs the vectorized forward pass (see :class:`_TimingArrays`);
    :func:`analyze_graph` on an explicitly built graph remains the
    scalar reference implementation.
    """
    view = net_view(module, library)
    return _analyze_view(view, clock_period_ns, derate, wire_load)


def analyze_graph(
    graph: TimingGraph, clock_period_ns: float, derate: float = 1.0
) -> TimingReport:
    if clock_period_ns <= 0.0:
        raise TimingError("clock period must be positive")
    if derate <= 0.0:
        raise TimingError("derate must be positive")
    arrivals, slews, parent = propagate(graph, derate)

    worst_req = float("inf")
    worst_net = ""
    worst_kind = ""
    worst_arrival = 0.0
    endpoint_slacks: Dict[str, float] = {}
    for net, (kind, setup) in graph.endpoints.items():
        arrival = arrivals.get(net, 0.0)
        slack = clock_period_ns - setup - arrival
        endpoint_slacks[net] = slack
        if slack < worst_req:
            worst_req = slack
            worst_net = net
            worst_kind = kind
            worst_arrival = arrival + setup
    if not endpoint_slacks:
        raise TimingError("design has no timing endpoints")

    path = _trace_path(graph, parent, worst_net, arrivals)
    return TimingReport(
        clock_period_ns=clock_period_ns,
        critical_path_ns=worst_arrival,
        wns_ns=worst_req,
        endpoint=worst_net,
        endpoint_kind=worst_kind,
        path=tuple(path),
        endpoint_slacks=endpoint_slacks,
    )


class _TimingArrays:
    """Structure-only timing arrays for one compiled net view.

    Everything load- and derate-independent is precomputed once per
    flat module: the edge list as parallel numpy columns (source net,
    destination net, intrinsic delay, drive resistance), a topological
    level schedule grouping edges by source level, launch/capture
    boundary tables, and per-edge provenance for path traceback.  The
    per-call work in :func:`_analyze_view` is then a handful of
    vectorized passes over these arrays.
    """

    __slots__ = (
        "n_nets", "src", "dst", "d0", "r", "edge_inst", "arc_block_ends",
        "arc_blocks", "fanin", "edge_order", "src_list", "dst_list",
        "input_start_ids", "seq_q_ids", "seq_q_clk2q", "seq_q_r",
        "endpoints", "is_start",
    )

    def __init__(self, view: NetView) -> None:
        module = view.module
        n = view.n_nets
        self.n_nets = n
        net_id = view.net_id
        clock_mask = np.zeros(n, dtype=bool)
        for c in module.clock_nets:
            cid = net_id.get(c)
            if cid is not None:
                clock_mask[cid] = True
        has_clocks = bool(module.clock_nets)

        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        d0s: List[np.ndarray] = []
        rs: List[np.ndarray] = []
        einst: List[np.ndarray] = []
        arc_blocks: List[Tuple[object, object]] = []  # (cell, arc)
        block_ends: List[int] = []
        total = 0
        for group in view.groups:
            cell = group.cell
            if cell.is_sequential:
                continue
            pin_index = {p: j for j, p in enumerate(cell.input_caps_ff)}
            out_index = {o: j for j, o in enumerate(cell.outputs)}
            for arc in cell.arcs:
                i = pin_index.get(arc.input_pin)
                o = out_index.get(arc.output_pin)
                if i is None or o is None:
                    continue
                s = group.in_ids[:, i]
                t = group.out_ids[:, o]
                valid = (s >= 0) & (t >= 0)
                if has_clocks and valid.any():
                    valid &= ~clock_mask[np.where(valid, s, 0)]
                count = int(np.count_nonzero(valid))
                if count == 0:
                    continue
                srcs.append(s[valid])
                dsts.append(t[valid])
                d0s.append(np.full(count, arc.d0_ns))
                rs.append(np.full(count, arc.r_kohm))
                einst.append(group.inst_idx[valid])
                total += count
                arc_blocks.append((cell, arc))
                block_ends.append(total)
        if srcs:
            self.src = np.concatenate(srcs)
            self.dst = np.concatenate(dsts)
            self.d0 = np.concatenate(d0s)
            self.r = np.concatenate(rs)
            self.edge_inst = np.concatenate(einst)
        else:
            self.src = np.zeros(0, dtype=np.int64)
            self.dst = np.zeros(0, dtype=np.int64)
            self.d0 = np.zeros(0)
            self.r = np.zeros(0)
            self.edge_inst = np.zeros(0, dtype=np.int64)
        self.arc_blocks = arc_blocks
        self.arc_block_ends = np.asarray(block_ends, dtype=np.int64)

        self.fanin = np.bincount(self.dst, minlength=n).astype(np.int64)

        # Flat topological edge order (Kahn): an edge appears only after
        # every edge into its source net, so one in-order scalar relax
        # pass computes final arrivals.  Processing order matches the
        # reference propagate()'s queue discipline, tie-breaks included.
        edge_order: List[int] = []
        n_edges = int(self.src.size)
        src_list: List[int] = []
        dst_list: List[int] = []
        if n_edges:
            order_src = np.argsort(self.src, kind="stable")
            row_ptr = np.searchsorted(
                self.src[order_src], np.arange(n + 1), side="left"
            ).tolist()
            adj = order_src.tolist()
            indeg = self.fanin.tolist()
            dst_l = self.dst.tolist()
            ready = deque(i for i in range(n) if indeg[i] == 0)
            while ready:
                net = ready.popleft()
                lo = row_ptr[net]
                hi = row_ptr[net + 1]
                if hi <= lo:
                    continue
                for ei in adj[lo:hi]:
                    edge_order.append(ei)
                    d = dst_l[ei]
                    left = indeg[d] - 1
                    indeg[d] = left
                    if left == 0:
                        ready.append(d)
            if len(edge_order) != n_edges:
                raise TimingError(
                    f"combinational cycle detected: relaxed "
                    f"{len(edge_order)} of {n_edges} arcs"
                )
            src_list = self.src.tolist()
            dst_list = dst_l
        self.edge_order = edge_order
        self.src_list = src_list
        self.dst_list = dst_list

        # Launch points: non-clock input ports at offset 0, register Q
        # pins at clock-to-Q plus the (load-dependent) output RC term.
        self.input_start_ids = np.asarray(
            [
                net_id[p]
                for p in module.input_ports
                if not clock_mask[net_id[p]]
            ],
            dtype=np.int64,
        )
        q_ids: List[int] = []
        q_clk2q: List[float] = []
        q_r: List[float] = []
        endpoints: Dict[int, Tuple[str, float]] = {}
        for port in module.output_ports:
            endpoints[net_id[port]] = ("output", 0.0)
        seq_idx: List[int] = []
        for group in view.groups:
            if group.cell.is_sequential:
                seq_idx.extend(group.inst_idx.tolist())
        seq_idx.sort()  # endpoint insertion order = instance order
        for idx in seq_idx:
            cell = view.cells[idx]
            conn = module.instances[idx].conn
            q_net = conn.get("Q")
            if q_net is not None:
                arc = cell.worst_arc_to("Q")
                q_ids.append(net_id[q_net])
                q_clk2q.append(cell.clk_to_q_ns)
                q_r.append(arc.r_kohm)
            d_net = conn.get("D")
            if d_net is not None:
                d_id = net_id[d_net]
                prev = endpoints.get(d_id)
                setup = max(cell.setup_ns, prev[1] if prev else 0.0)
                endpoints[d_id] = ("setup", setup)
        self.seq_q_ids = np.asarray(q_ids, dtype=np.int64)
        self.seq_q_clk2q = np.asarray(q_clk2q)
        self.seq_q_r = np.asarray(q_r)
        self.endpoints = endpoints
        is_start = np.zeros(n, dtype=bool)
        if self.input_start_ids.size:
            is_start[self.input_start_ids] = True
        if self.seq_q_ids.size:
            is_start[self.seq_q_ids] = True
        self.is_start = is_start


def _timing_arrays(view: NetView) -> _TimingArrays:
    arrays = view.derived.get("sta")
    if arrays is None:
        arrays = view.derived["sta"] = _TimingArrays(view)
    return arrays


def _propagate_view(
    view: NetView,
    derate: float,
    wire_load: Optional[WireLoadFn],
) -> Tuple[List[float], List[int], List[float]]:
    """Arrival propagation over a view: ``(arrivals, parent, slews)``.

    Arrivals are independent of the clock period, so the pass is cached
    on the view for the latest ``(wire_load, derate)`` pair — ``analyze``
    and ``minimum_period_ns`` on the same placed design (the signoff
    pair the implementation flow always runs) propagate once.  The
    cache holds a single entry, so callers cycling through fresh
    wire-load closures replace rather than accumulate state.
    """
    cached = view.derived.get("sta_prop")
    if (
        cached is not None
        and cached[2] is wire_load
        and cached[3] == derate
    ):
        return cached[0], cached[1], cached[4]

    ta = _timing_arrays(view)
    n = ta.n_nets
    load = net_loads_vector(view, wire_load)

    # Launch offsets (max over the registers driving each Q net).
    offset = np.zeros(n)
    if ta.seq_q_ids.size:
        launch = ta.seq_q_clk2q + ta.seq_q_r * load[ta.seq_q_ids] * 1e-3
        np.maximum.at(offset, ta.seq_q_ids, launch)

    arr0 = np.full(n, -np.inf)
    arr0[ta.fanin == 0] = 0.0
    arr0[ta.is_start] = offset[ta.is_start]
    arrivals: List[float] = arr0.tolist()
    slews: List[float] = [START_SLEW_NS] * n
    parent: List[int] = [-1] * n

    if ta.edge_order:
        # Load-dependent edge terms as vectors (same expression order as
        # arc_delay_ns/arc_slew_ns); the relax pass itself runs scalar
        # over the precomputed topological edge order — at subcircuit
        # sizes that beats per-wave numpy dispatch and reproduces the
        # reference queue discipline exactly, tie-breaks included.
        base = ta.d0 + ta.r * load[ta.dst] * 1e-3
        eslew_l = (SLEW_GAIN * base).tolist()
        base_l = base.tolist()
        src_l = ta.src_list
        dst_l = ta.dst_list
        for ei in ta.edge_order:
            s = src_l[ei]
            t = dst_l[ei]
            cand = arrivals[s] + (
                base_l[ei] + SLEW_SENSITIVITY * slews[s]
            ) * derate
            if cand > arrivals[t]:
                arrivals[t] = cand
                slews[t] = eslew_l[ei]
                parent[t] = ei

    view.derived["sta_prop"] = (arrivals, parent, wire_load, derate, slews)
    return arrivals, parent, slews


def _analyze_view(
    view: NetView,
    clock_period_ns: float,
    derate: float = 1.0,
    wire_load: Optional[WireLoadFn] = None,
) -> TimingReport:
    """Vectorized arrival propagation + slack extraction over a view."""
    if clock_period_ns <= 0.0:
        raise TimingError("clock period must be positive")
    if derate <= 0.0:
        raise TimingError("derate must be positive")
    ta = _timing_arrays(view)
    arrivals, parent, _ = _propagate_view(view, derate, wire_load)

    if not ta.endpoints:
        raise TimingError("design has no timing endpoints")
    names = view.net_names
    neg_inf = float("-inf")
    worst_slack = float("inf")
    worst_id = -1
    worst_kind = ""
    worst_arrival = 0.0
    endpoint_slacks: Dict[str, float] = {}
    for ep_id, (kind, setup) in ta.endpoints.items():
        arrival = arrivals[ep_id]
        if arrival == neg_inf:
            arrival = 0.0
        slack = clock_period_ns - setup - arrival
        endpoint_slacks[names[ep_id]] = slack
        if slack < worst_slack:
            worst_slack = slack
            worst_id = ep_id
            worst_kind = kind
            worst_arrival = arrival + setup

    # Traceback over parent edge ids.
    path: List[PathStep] = []
    net = worst_id
    instances = view.module.instances
    guard = 0
    while parent[net] >= 0:
        e = parent[net]
        block = int(np.searchsorted(ta.arc_block_ends, e, side="right"))
        cell, arc = ta.arc_blocks[block]
        path.append(
            PathStep(
                instance=instances[int(ta.edge_inst[e])].name,
                cell=cell.name,
                input_pin=arc.input_pin,
                output_pin=arc.output_pin,
                net=names[net],
                arrival_ns=arrivals[net],
            )
        )
        net = ta.src_list[e]
        guard += 1
        if guard > 1_000_000:  # pragma: no cover - defensive
            raise TimingError("path traceback did not terminate")
    path.reverse()

    return TimingReport(
        clock_period_ns=clock_period_ns,
        critical_path_ns=worst_arrival,
        wns_ns=worst_slack,
        endpoint=names[worst_id],
        endpoint_kind=worst_kind,
        path=tuple(path),
        endpoint_slacks=endpoint_slacks,
    )


def _required_times(
    view: NetView,
    clock_period_ns: float,
    derate: float,
    wire_load: Optional[WireLoadFn],
) -> Tuple[List[float], List[float], List[float], List[float]]:
    """Forward + backward pass: per-net arrivals, requireds, slews and
    per-edge delays.

    The backward pass relaxes required times over the *reversed*
    topological edge order — each edge's destination is final before
    the edge is visited, mirroring the forward discipline exactly, so
    ``required - arrival`` is the classic per-net slack.
    """
    if clock_period_ns <= 0.0:
        raise TimingError("clock period must be positive")
    if derate <= 0.0:
        raise TimingError("derate must be positive")
    ta = _timing_arrays(view)
    if not ta.endpoints:
        raise TimingError("design has no timing endpoints")
    arrivals, _, slews = _propagate_view(view, derate, wire_load)

    load = net_loads_vector(view, wire_load)
    inf = float("inf")
    required: List[float] = [inf] * ta.n_nets
    for ep_id, (_kind, setup) in ta.endpoints.items():
        req = clock_period_ns - setup
        if req < required[ep_id]:
            required[ep_id] = req

    delays: List[float] = []
    if ta.edge_order:
        base_l = (ta.d0 + ta.r * load[ta.dst] * 1e-3).tolist()
        src_l = ta.src_list
        dst_l = ta.dst_list
        delays = [0.0] * len(base_l)
        for ei in reversed(ta.edge_order):
            s = src_l[ei]
            d = (base_l[ei] + SLEW_SENSITIVITY * slews[s]) * derate
            delays[ei] = d
            req = required[dst_l[ei]]
            if req == inf:
                continue
            cand = req - d
            if cand < required[s]:
                required[s] = cand
    return arrivals, required, slews, delays


def net_slacks(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
) -> Dict[str, float]:
    """Per-net setup slack (``required - arrival``) for every net on a
    path to a timing endpoint.

    Nets that reach no endpoint (e.g. dangling probe nets) are omitted
    rather than reported as infinitely slack.
    """
    view = net_view(module, library)
    arrivals, required, _, _ = _required_times(
        view, clock_period_ns, derate, wire_load
    )
    inf = float("inf")
    neg_inf = float("-inf")
    names = view.net_names
    out: Dict[str, float] = {}
    for i, req in enumerate(required):
        if req == inf:
            continue
        arrival = arrivals[i]
        if arrival == neg_inf:
            arrival = 0.0
        out[names[i]] = req - arrival
    return out


def instance_slacks(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
) -> Dict[str, float]:
    """Worst setup slack through each combinational instance.

    For every timing arc ``s -> t`` of an instance the edge slack is
    ``required[t] - arrival[s] - delay``; the instance's slack is the
    minimum over its arcs — how much slower this one cell could get
    before some endpoint misses the period.  Instances with no
    constrained arcs (sequential cells, tie cells, logic feeding only
    dangling nets) report ``+inf``: they never bound the period, so
    leakage-recovery passes may treat them as freely swappable.
    """
    view = net_view(module, library)
    ta = _timing_arrays(view)
    arrivals, required, _, delays = _required_times(
        view, clock_period_ns, derate, wire_load
    )
    inf = float("inf")
    slacks: Dict[int, float] = {}
    src_l = ta.src_list
    dst_l = ta.dst_list
    einst = ta.edge_inst
    for ei in range(len(src_l)):
        req = required[dst_l[ei]]
        if req == inf:
            continue
        slack = req - arrivals[src_l[ei]] - delays[ei]
        idx = int(einst[ei])
        prev = slacks.get(idx)
        if prev is None or slack < prev:
            slacks[idx] = slack
    instances = module.instances
    out: Dict[str, float] = {}
    for idx, inst in enumerate(instances):
        out[inst.name] = slacks.get(idx, inf)
    return out


def propagate(
    graph: TimingGraph,
    derate: float = 1.0,
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Optional[object]]]:
    """Kahn-ordered longest-path arrival propagation.

    Returns (arrival per net, slew per net, predecessor edge per net).
    Raises :class:`TimingError` if a combinational cycle prevents a full
    topological order.
    """
    arrivals: Dict[str, float] = {}
    slews: Dict[str, float] = {}
    parent: Dict[str, Optional[object]] = {}
    indegree = dict(graph.fanin_count)

    queue: deque = deque()
    for net in graph.module.nets:
        if indegree.get(net, 0) == 0:
            arrivals[net] = graph.startpoints.get(net, 0.0)
            slews[net] = START_SLEW_NS
            parent[net] = None
            queue.append(net)

    processed = 0
    total_edges = sum(len(v) for v in graph.edges_from.values())
    relaxed = 0
    while queue:
        net = queue.popleft()
        processed += 1
        for edge in graph.edges_from.get(net, ()):  # type: ignore[arg-type]
            load = graph.net_load_ff[edge.dst_net]
            delay = arc_delay_ns(edge.arc, slews[net], load) * derate
            cand = arrivals[net] + delay
            if cand > arrivals.get(edge.dst_net, float("-inf")):
                arrivals[edge.dst_net] = cand
                slews[edge.dst_net] = arc_slew_ns(edge.arc, load)
                parent[edge.dst_net] = edge
            relaxed += 1
            indegree[edge.dst_net] -= 1
            if indegree[edge.dst_net] == 0:
                # Launch offsets (reg Q driving a net also fed by logic
                # cannot happen: single-driver rule), so only max with
                # startpoints for safety.
                start = graph.startpoints.get(edge.dst_net)
                if start is not None and start > arrivals[edge.dst_net]:
                    arrivals[edge.dst_net] = start
                    parent[edge.dst_net] = None
                queue.append(edge.dst_net)

    if relaxed != total_edges:
        raise TimingError(
            f"combinational cycle detected: relaxed {relaxed} of "
            f"{total_edges} arcs"
        )
    return arrivals, slews, parent


def _trace_path(
    graph: TimingGraph,
    parent: Dict[str, Optional[object]],
    endpoint: str,
    arrivals: Dict[str, float],
) -> List[PathStep]:
    path: List[PathStep] = []
    net = endpoint
    guard = 0
    while net in parent and parent[net] is not None:
        edge = parent[net]
        path.append(
            PathStep(
                instance=edge.inst.name,  # type: ignore[union-attr]
                cell=edge.cell.name,  # type: ignore[union-attr]
                input_pin=edge.arc.input_pin,  # type: ignore[union-attr]
                output_pin=edge.arc.output_pin,  # type: ignore[union-attr]
                net=net,
                arrival_ns=arrivals.get(net, 0.0),
            )
        )
        net = edge.src_net  # type: ignore[union-attr]
        guard += 1
        if guard > 1_000_000:  # pragma: no cover - defensive
            raise TimingError("path traceback did not terminate")
    path.reverse()
    return path


@dataclass(frozen=True)
class HoldReport:
    """Result of a min-delay (hold) check."""

    worst_slack_ns: float
    endpoint: str

    @property
    def met(self) -> bool:
        return self.worst_slack_ns >= 0.0


def analyze_hold(
    module: Module,
    library: StdCellLibrary,
    wire_load: Optional[WireLoadFn] = None,
) -> HoldReport:
    """Shortest-path (early-arrival) check against register hold times.

    Same-edge capture: data launched at clock-to-Q must not beat the
    capturing register's hold window.  Our single-clock, buffered-tree
    macros have no clock skew model, so slack = min_arrival - hold.
    """
    graph = build_timing_graph(module, library, wire_load)
    # External inputs are assumed to arrive with at least the hold
    # window already elapsed (standard input-delay constraint).
    input_delay = 0.05
    input_ports = set(module.input_ports)
    arrivals: Dict[str, float] = {}
    indegree = dict(graph.fanin_count)
    queue: deque = deque()
    for net in graph.module.nets:
        if indegree.get(net, 0) == 0:
            start = graph.startpoints.get(net, 0.0)
            if net in input_ports:
                start = max(start, input_delay)
            arrivals[net] = start
            queue.append(net)
    while queue:
        net = queue.popleft()
        for edge in graph.edges_from.get(net, ()):  # type: ignore[arg-type]
            load = graph.net_load_ff[edge.dst_net]
            cand = arrivals[net] + arc_delay_ns(edge.arc, START_SLEW_NS, load)
            prev = arrivals.get(edge.dst_net)
            if prev is None or cand < prev:
                arrivals[edge.dst_net] = cand
            indegree[edge.dst_net] -= 1
            if indegree[edge.dst_net] == 0:
                queue.append(edge.dst_net)

    worst = float("inf")
    worst_net = ""
    for inst in graph.sequential:
        cell = graph.library.cell(inst.cell_name)
        d_net = inst.conn.get("D")
        if d_net is None or d_net not in arrivals:
            continue
        slack = arrivals[d_net] - cell.hold_ns
        if slack < worst:
            worst = slack
            worst_net = d_net
    if worst == float("inf"):
        worst = 0.0
    return HoldReport(worst_slack_ns=worst, endpoint=worst_net)


def minimum_period_ns(
    module: Module,
    library: StdCellLibrary,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
) -> float:
    """Smallest period with non-negative slack (critical path + setup)."""
    view = net_view(module, library)
    report = _analyze_view(view, clock_period_ns=1e9, derate=derate,
                           wire_load=wire_load)
    return 1e9 - report.wns_ns
