"""Pin-level timing graph construction.

Builds the directed graph STA walks: nodes are nets of a *flat* module;
edges are the timing arcs of combinational cells.  Sequential cells cut
the graph — their ``Q`` outputs launch paths (clock-to-Q) and their
``D``/data inputs capture them (setup) — so the longest register-to-
register combinational walk against the clock period is exactly what
Synopsys PrimeTime would report for the same netlist.

Memory bitcells are treated as combinational WL->RD arcs: the word line
is driven by the (registered) WL driver, so array read paths appear
naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..rtl.ir import Instance, Module
from ..rtl.netview import NetView, net_view
from ..tech.stdcells import Cell, StdCellLibrary, TimingArc

#: Extra wire capacitance per fanout pin when no placement data exists
#: (pre-layout wire-load model, fF per sink).
DEFAULT_WLM_FF_PER_SINK = 0.35

WireLoadFn = Callable[[str], float]


@dataclass
class TimingEdge:
    """One cell arc instantiated in the design."""

    inst: Instance
    cell: Cell
    arc: TimingArc
    src_net: str
    dst_net: str


@dataclass
class TimingGraph:
    """Flattened design view ready for arrival-time propagation."""

    module: Module
    library: StdCellLibrary
    net_load_ff: Dict[str, float]
    edges_from: Dict[str, List[TimingEdge]]
    fanin_count: Dict[str, int]
    startpoints: Dict[str, float]  # net -> launch offset (ns)
    endpoints: Dict[str, Tuple[str, float]]  # net -> (kind, setup_ns)
    sequential: List[Instance] = field(default_factory=list)

    @property
    def net_count(self) -> int:
        return len(self.module.nets)


def net_loads_vector(
    view: NetView, wire_load: Optional[WireLoadFn] = None
) -> np.ndarray:
    """Per-net total load (fF) as a dense vector over the view's net ids.

    The sink-capacitance and fanout-count accumulations are structural
    and cached on the view; only the wire-load model is applied per
    call (the default WLM vectorizes, a custom function is evaluated
    once per net)."""
    cached = view.derived.get("net_loads")
    if cached is None:
        n = view.n_nets
        sink_cap = np.zeros(n, dtype=np.float64)
        sink_count = np.zeros(n, dtype=np.float64)
        for group in view.groups:
            caps = group.cell.input_caps_ff
            for j, pin in enumerate(caps):
                ids = group.in_ids[:, j]
                ids = ids[ids >= 0]
                if ids.size:
                    np.add.at(sink_cap, ids, caps[pin])
                    np.add.at(sink_count, ids, 1.0)
        cached = view.derived["net_loads"] = (sink_cap, sink_count)
    sink_cap, sink_count = cached
    if wire_load is None:
        return sink_cap + DEFAULT_WLM_FF_PER_SINK * sink_count
    # One custom wire-load function is typically applied several times
    # per view (min-period, clocked STA and power of the signoff pass),
    # so its per-net evaluation is cached too.  The cache holds a
    # single entry — the latest function — keyed by identity, so a
    # caller cycling through fresh closures replaces rather than
    # accumulates entries.
    entry = view.derived.get("wire_vec")
    if entry is None or entry[1] is not wire_load:
        wire = np.fromiter(
            (wire_load(name) for name in view.net_names),
            dtype=np.float64,
            count=view.n_nets,
        )
        entry = view.derived["wire_vec"] = (wire, wire_load)
    return sink_cap + entry[0]


def net_capacitance(
    module: Module,
    library: StdCellLibrary,
    wire_load: Optional[WireLoadFn] = None,
) -> Dict[str, float]:
    """Total load on each net: sink pin caps plus the wire model."""
    view = net_view(module, library)
    loads = net_loads_vector(view, wire_load)
    return dict(zip(view.net_names, loads.tolist()))


def build_timing_graph(
    module: Module,
    library: StdCellLibrary,
    wire_load: Optional[WireLoadFn] = None,
) -> TimingGraph:
    """Construct the graph; raises on combinational cycles at traversal
    time (see :func:`repro.sta.analysis.propagate`)."""
    net_load = net_capacitance(module, library, wire_load)
    edges_from: Dict[str, List[TimingEdge]] = {}
    fanin_count: Dict[str, int] = {net: 0 for net in module.nets}
    startpoints: Dict[str, float] = {}
    endpoints: Dict[str, Tuple[str, float]] = {}
    sequential: List[Instance] = []

    clock_nets: Set[str] = set(module.clock_nets)
    for port in module.input_ports:
        if port not in clock_nets:
            startpoints[port] = 0.0
    for port in module.output_ports:
        endpoints[port] = ("output", 0.0)

    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential:
            sequential.append(inst)
            q_net = inst.conn.get("Q")
            if q_net is not None:
                arc = cell.worst_arc_to("Q")
                launch = cell.clk_to_q_ns + arc.r_kohm * net_load[q_net] * 1e-3
                startpoints[q_net] = max(startpoints.get(q_net, 0.0), launch)
            d_net = inst.conn.get("D")
            if d_net is not None:
                prev = endpoints.get(d_net)
                setup = max(cell.setup_ns, prev[1] if prev else 0.0)
                endpoints[d_net] = ("setup", setup)
            continue
        for arc in cell.arcs:
            src = inst.conn.get(arc.input_pin)
            dst = inst.conn.get(arc.output_pin)
            if src is None or dst is None or src in clock_nets:
                continue
            edge = TimingEdge(inst, cell, arc, src, dst)
            edges_from.setdefault(src, []).append(edge)
            fanin_count[dst] = fanin_count.get(dst, 0) + 1

    return TimingGraph(
        module=module,
        library=library,
        net_load_ff=net_load,
        edges_from=edges_from,
        fanin_count=fanin_count,
        startpoints=startpoints,
        endpoints=endpoints,
        sequential=sequential,
    )
