"""Static timing analysis over flat gate netlists.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .analysis import (
    PathStep,
    TimingReport,
    analyze,
    analyze_graph,
    instance_slacks,
    minimum_period_ns,
    net_slacks,
    propagate,
)
from .graph import (
    DEFAULT_WLM_FF_PER_SINK,
    TimingEdge,
    TimingGraph,
    build_timing_graph,
    net_capacitance,
)

__all__ = [
    "PathStep",
    "TimingReport",
    "analyze",
    "analyze_graph",
    "instance_slacks",
    "minimum_period_ns",
    "net_slacks",
    "propagate",
    "DEFAULT_WLM_FF_PER_SINK",
    "TimingEdge",
    "TimingGraph",
    "build_timing_graph",
    "net_capacitance",
]
