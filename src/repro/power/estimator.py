"""Dynamic and leakage power estimation.

Combines the activity map with the capacitance and energy data of the
cell library:

* *net switching power* — ``0.5 * C_net * Vdd^2 * D(net) * f`` per net;
* *cell internal power* — each output toggle spends the characterized
  internal energy (short-circuit + internal node charge);
* *memory read energy* — bitcell read events per cycle;
* *leakage* — per-cell static power, voltage-derated through the
  process model.

Voltage scaling uses the process's CV^2 energy rule so one nominal-
voltage analysis serves the whole shmoo sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import SimulationError
from ..rtl.ir import Module
from ..sta.graph import WireLoadFn, net_capacitance
from ..tech.process import Process
from ..tech.stdcells import StdCellLibrary
from .activity import NetActivity, propagate_activity


@dataclass(frozen=True)
class PowerReport:
    """Breakdown of one power analysis run (mW at the analysis corner)."""

    frequency_mhz: float
    vdd: float
    switching_mw: float
    internal_mw: float
    memory_mw: float
    leakage_mw: float

    @property
    def dynamic_mw(self) -> float:
        return self.switching_mw + self.internal_mw + self.memory_mw

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    @property
    def energy_per_cycle_pj(self) -> float:
        if self.frequency_mhz <= 0:
            raise SimulationError("frequency must be positive")
        return self.dynamic_mw / self.frequency_mhz * 1e3

    def describe(self) -> str:
        return (
            f"power @{self.frequency_mhz:.0f} MHz, {self.vdd:.2f} V: "
            f"total {self.total_mw:.3f} mW "
            f"(net {self.switching_mw:.3f}, internal {self.internal_mw:.3f}, "
            f"memory {self.memory_mw:.3f}, leak {self.leakage_mw:.3f})"
        )


def estimate_power(
    module: Module,
    library: StdCellLibrary,
    process: Process,
    frequency_mhz: float,
    vdd: float = 0.0,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
    wire_load: Optional[WireLoadFn] = None,
    activity: Optional[Dict[str, NetActivity]] = None,
) -> PowerReport:
    """Estimate power of a flat module.

    ``activity`` may be supplied to reuse a previous propagation (e.g.
    when sweeping voltage); otherwise it is computed from
    ``input_stats``.
    """
    if frequency_mhz <= 0:
        raise SimulationError("frequency must be positive")
    vdd = vdd or process.vdd_nominal
    if activity is None:
        activity = propagate_activity(module, library, input_stats)
    loads = net_capacitance(module, library, wire_load)
    e_scale = process.energy_scale(vdd)
    l_scale = process.leakage_scale(vdd)

    # Net switching: 0.5 C V^2 per transition; D counts transitions/cycle.
    v_nom = process.vdd_nominal
    switching_fj_per_cycle = 0.0
    for net, cap in loads.items():
        act = activity.get(net)
        if act is None:
            continue
        switching_fj_per_cycle += 0.5 * cap * v_nom * v_nom * act.density

    internal_fj_per_cycle = 0.0
    memory_fj_per_cycle = 0.0
    leakage_nw = 0.0
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        leakage_nw += cell.leakage_nw
        if cell.is_memory:
            rd_net = inst.conn.get("RD")
            wl_net = inst.conn.get("WL")
            wl_act = activity.get(wl_net) if wl_net else None
            reads = wl_act.density if wl_act else 0.0
            memory_fj_per_cycle += cell.internal_energy_fj.get("RD", 0.0) * reads
            continue
        for out_pin, energy_fj in cell.internal_energy_fj.items():
            net = inst.conn.get(out_pin)
            if net is None:
                continue
            act = activity.get(net)
            if act is None:
                continue
            internal_fj_per_cycle += energy_fj * act.density
        if cell.is_sequential:
            # Clock pin energy: the clock toggles twice per cycle into the
            # register's clock cap even when Q is quiet.
            ck_cap = cell.input_caps_ff.get(cell.clk_pin, 0.0)
            internal_fj_per_cycle += 0.5 * ck_cap * v_nom * v_nom * 2.0

    # fJ/cycle * MHz = nW; /1e6 -> mW.  Energy scales with (V/Vnom)^2.
    to_mw = frequency_mhz * 1e-6 * e_scale
    return PowerReport(
        frequency_mhz=frequency_mhz,
        vdd=vdd,
        switching_mw=switching_fj_per_cycle * to_mw,
        internal_mw=internal_fj_per_cycle * to_mw,
        memory_mw=memory_fj_per_cycle * to_mw,
        leakage_mw=leakage_nw * l_scale * 1e-6,
    )


def sparsity_input_stats(
    module: Module,
    input_density: float = 1.0,
    input_one_probability: float = 0.5,
    weight_one_probability: float = 0.5,
) -> Dict[str, NetActivity]:
    """Build port statistics for a DCIM workload.

    ``input_density`` is the per-cycle toggle rate of the serial input
    bits; sparse activations lower both the one-probability and the
    density.  Weight nets (``wb``) are quasi-static during MAC bursts —
    density 0 — but their one-probability still shapes the product
    statistics (``wb`` carries complements, hence ``1 - p``).
    """
    stats: Dict[str, NetActivity] = {}
    for net in module.input_ports:
        if net.startswith("x["):
            p = input_one_probability
            stats[net] = NetActivity(p, min(input_density, 2 * p * (1 - p) + 1e-9))
        elif net.startswith("wb["):
            stats[net] = NetActivity(1.0 - weight_one_probability, 0.0)
        elif net.startswith(("neg", "clear", "sub[", "sel[", "we")):
            stats[net] = NetActivity(0.2, 0.25)
    return stats
