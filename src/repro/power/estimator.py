"""Dynamic and leakage power estimation.

Combines the activity map with the capacitance and energy data of the
cell library:

* *net switching power* — ``0.5 * C_net * Vdd^2 * D(net) * f`` per net;
* *cell internal power* — each output toggle spends the characterized
  internal energy (short-circuit + internal node charge);
* *memory read energy* — bitcell read events per cycle;
* *leakage* — per-cell static power, voltage-derated through the
  process model.

Voltage scaling uses the process's CV^2 energy rule so one nominal-
voltage analysis serves the whole shmoo sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..errors import SimulationError
from ..rtl.ir import Module
from ..rtl.netview import NetView, net_view
from ..sta.graph import WireLoadFn, net_loads_vector
from ..tech.process import Process
from ..tech.stdcells import StdCellLibrary
from .activity import NetActivity, _propagate_arrays


@dataclass(frozen=True)
class PowerReport:
    """Breakdown of one power analysis run (mW at the analysis corner)."""

    frequency_mhz: float
    vdd: float
    switching_mw: float
    internal_mw: float
    memory_mw: float
    leakage_mw: float

    @property
    def dynamic_mw(self) -> float:
        return self.switching_mw + self.internal_mw + self.memory_mw

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    @property
    def energy_per_cycle_pj(self) -> float:
        if self.frequency_mhz <= 0:
            raise SimulationError("frequency must be positive")
        return self.dynamic_mw / self.frequency_mhz * 1e3

    def describe(self) -> str:
        return (
            f"power @{self.frequency_mhz:.0f} MHz, {self.vdd:.2f} V: "
            f"total {self.total_mw:.3f} mW "
            f"(net {self.switching_mw:.3f}, internal {self.internal_mw:.3f}, "
            f"memory {self.memory_mw:.3f}, leak {self.leakage_mw:.3f})"
        )


class _PowerTerms:
    """Activity-independent power tables for one compiled net view.

    Built once per flat module: total leakage, the registers' clock-pin
    capacitance, and flat (net id, energy) arrays for cell internal
    energy and memory read energy — so each :func:`estimate_power` call
    reduces to a few dot products against the density vector.
    """

    __slots__ = (
        "leakage_nw", "seq_ck_cap_ff", "internal_ids", "internal_fj",
        "memory_ids", "memory_fj",
    )

    def __init__(self, view: NetView) -> None:
        leakage = 0.0
        seq_ck_cap = 0.0
        internal_ids: list = []
        internal_fj: list = []
        memory_ids: list = []
        memory_fj: list = []
        for group in view.groups:
            cell = group.cell
            count = len(group)
            leakage += cell.leakage_nw * count
            if cell.is_memory:
                # Read energy is spent per word-line transition.
                e_rd = cell.internal_energy_fj.get("RD", 0.0)
                wl_col = None
                for j, pin in enumerate(cell.input_caps_ff):
                    if pin == "WL":
                        wl_col = j
                        break
                if wl_col is not None and e_rd:
                    ids = group.in_ids[:, wl_col]
                    ids = ids[ids >= 0]
                    memory_ids.append(ids)
                    memory_fj.append(np.full(ids.size, e_rd))
                continue
            if cell.is_sequential:
                seq_ck_cap += cell.input_caps_ff.get(cell.clk_pin, 0.0) * count
            out_index = {o: j for j, o in enumerate(cell.outputs)}
            for out_pin, energy_fj in cell.internal_energy_fj.items():
                j = out_index.get(out_pin)
                if j is None:
                    continue
                ids = group.out_ids[:, j]
                ids = ids[ids >= 0]
                if ids.size:
                    internal_ids.append(ids)
                    internal_fj.append(np.full(ids.size, energy_fj))
        self.leakage_nw = leakage
        self.seq_ck_cap_ff = seq_ck_cap
        if internal_ids:
            self.internal_ids = np.concatenate(internal_ids)
            self.internal_fj = np.concatenate(internal_fj)
        else:
            self.internal_ids = np.zeros(0, dtype=np.int64)
            self.internal_fj = np.zeros(0)
        if memory_ids:
            self.memory_ids = np.concatenate(memory_ids)
            self.memory_fj = np.concatenate(memory_fj)
        else:
            self.memory_ids = np.zeros(0, dtype=np.int64)
            self.memory_fj = np.zeros(0)


def _power_terms(view: NetView) -> _PowerTerms:
    terms = view.derived.get("power")
    if terms is None:
        terms = view.derived["power"] = _PowerTerms(view)
    return terms


def estimate_power(
    module: Module,
    library: StdCellLibrary,
    process: Process,
    frequency_mhz: float,
    vdd: float = 0.0,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
    wire_load: Optional[WireLoadFn] = None,
    activity: Optional[Dict[str, NetActivity]] = None,
) -> PowerReport:
    """Estimate power of a flat module.

    ``activity`` may be supplied to reuse a previous propagation (e.g.
    when sweeping voltage); otherwise it is computed from
    ``input_stats``.
    """
    if frequency_mhz <= 0:
        raise SimulationError("frequency must be positive")
    vdd = vdd or process.vdd_nominal
    view = net_view(module, library)
    n = view.n_nets
    if activity is None:
        _prob, dens_l, known_l, _extra = _propagate_arrays(view, input_stats)
        density = np.asarray(dens_l)
        known = np.asarray(known_l, dtype=bool)
    else:
        density = np.zeros(n)
        known = np.zeros(n, dtype=bool)
        net_id = view.net_id
        for name, act in activity.items():
            i = net_id.get(name)
            if i is not None:
                density[i] = act.density
                known[i] = True
    density = np.where(known, density, 0.0)
    loads = net_loads_vector(view, wire_load)
    terms = _power_terms(view)
    e_scale = process.energy_scale(vdd)
    l_scale = process.leakage_scale(vdd)

    # Net switching: 0.5 C V^2 per transition; D counts transitions/cycle.
    v_nom = process.vdd_nominal
    half_v2 = 0.5 * v_nom * v_nom
    switching_fj_per_cycle = half_v2 * float(loads @ density)

    internal_fj_per_cycle = float(
        terms.internal_fj @ density[terms.internal_ids]
    )
    # Clock pin energy: the clock toggles twice per cycle into each
    # register's clock cap even when Q is quiet.
    internal_fj_per_cycle += half_v2 * terms.seq_ck_cap_ff * 2.0
    memory_fj_per_cycle = float(terms.memory_fj @ density[terms.memory_ids])
    leakage_nw = terms.leakage_nw

    # fJ/cycle * MHz = nW; /1e6 -> mW.  Energy scales with (V/Vnom)^2.
    to_mw = frequency_mhz * 1e-6 * e_scale
    return PowerReport(
        frequency_mhz=frequency_mhz,
        vdd=vdd,
        switching_mw=switching_fj_per_cycle * to_mw,
        internal_mw=internal_fj_per_cycle * to_mw,
        memory_mw=memory_fj_per_cycle * to_mw,
        leakage_mw=leakage_nw * l_scale * 1e-6,
    )


def sparsity_input_stats(
    module: Module,
    input_density: float = 1.0,
    input_one_probability: float = 0.5,
    weight_one_probability: float = 0.5,
) -> Dict[str, NetActivity]:
    """Build port statistics for a DCIM workload.

    ``input_density`` is the per-cycle toggle rate of the serial input
    bits; sparse activations lower both the one-probability and the
    density.  Weight nets (``wb``) are quasi-static during MAC bursts —
    density 0 — but their one-probability still shapes the product
    statistics (``wb`` carries complements, hence ``1 - p``).
    """
    stats: Dict[str, NetActivity] = {}
    for net in module.input_ports:
        if net.startswith("x["):
            p = input_one_probability
            stats[net] = NetActivity(p, min(input_density, 2 * p * (1 - p) + 1e-9))
        elif net.startswith("wb["):
            stats[net] = NetActivity(1.0 - weight_one_probability, 0.0)
        elif net.startswith(("neg", "clear", "sub[", "sel[", "we")):
            stats[net] = NetActivity(0.2, 0.25)
    return stats
