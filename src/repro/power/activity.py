"""Switching-activity estimation over gate netlists.

Propagates static signal probabilities and transition densities from the
primary inputs through the combinational network, using the Boolean-
difference formulation (Najm): for output ``f`` of a cell,

``D(f) = sum_i P(df/dx_i) * D(x_i)``

where ``P(df/dx_i)`` — the probability the output is sensitized to input
``i`` — is evaluated exactly by enumerating the cell's truth table
weighted by the other inputs' probabilities (our largest cell has five
inputs, so enumeration is cheap and exact).

Register outputs toggle when consecutive samples differ; under the
temporal-independence assumption ``D(Q) = 2 p (1 - p)`` with ``p`` the
data-input probability.  Clock nets carry two transitions per cycle.

Input statistics express workloads: the Table II measurement conditions
(12.5 % input sparsity, 50 % weight sparsity) enter as probabilities on
the macro's ``x``/``wb`` ports.

Implementation notes (the SCL-build hot path)
---------------------------------------------
Characterizing the default subcircuit library evaluates ~70 k cells, but
only ~2 k *distinct* ``(cell, input statistics)`` combinations — deep
regular fabrics feed identical statistics into identical cells level
after level.  Each cell type therefore compiles once into a
:class:`_CellKernel`: its truth table, per-assignment output values and
Boolean-difference flip masks become small numpy tensors, and every
evaluation result is memoized by the exact input-statistics tuple.  The
propagation itself runs over the integer tables of
:func:`repro.rtl.netview.net_view` (net-indexed state lists, precompiled
consumer adjacency) instead of chasing ``inst.conn`` dictionaries.

:func:`propagate_activity_reference` keeps the original, obviously-
correct per-cell walk as an executable specification; the equivalence
suite (``tests/test_vector_kernels.py``) pins the fast path to it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..rtl.ir import Module
from ..rtl.netview import NetView, net_view
from ..tech.stdcells import Cell, StdCellLibrary

#: Default signal probability / transition density for unannotated inputs.
DEFAULT_PROBABILITY = 0.5
DEFAULT_DENSITY = 0.5
#: Transitions per cycle on a clock net (rise + fall).
CLOCK_DENSITY = 2.0
#: Inertial glitch cap: the Boolean-difference algebra adds densities
#: through XOR-rich fabrics without bound, but real gates low-pass
#: filter pulses shorter than their delay.  Clamping per-net density
#: keeps deep adder trees' glitch power finite (and measured-realistic).
GLITCH_DENSITY_CAP = 1.5


@dataclass(frozen=True)
class NetActivity:
    probability: float
    density: float


#: Safety valve for long-lived processes: a kernel's memo is cleared if
#: a pathological workload ever produces this many distinct stat tuples.
_MEMO_LIMIT = 65536

#: Compiled kernels keyed by cell identity.  The kernel holds a strong
#: reference to its cell, so the id() key can never be recycled while
#: the entry is alive.
_KERNELS: Dict[int, "_CellKernel"] = {}


class _CellKernel:
    """Truth-table tensors + memoized evaluations for one cell type."""

    __slots__ = ("cell", "pins", "n", "n_out", "assign", "out_vals",
                 "flip_diff", "memo")

    def __init__(self, cell: Cell) -> None:
        if cell.function is None:
            raise SimulationError(
                f"{cell.name} has no logic function for activity"
            )
        self.cell = cell
        pins = tuple(cell.input_caps_ff)
        self.pins = pins
        n = len(pins)
        self.n = n
        outs = cell.outputs
        self.n_out = len(outs)
        m = 1 << n
        out_vals = np.zeros((m, self.n_out), dtype=np.float64)
        for idx, assignment in enumerate(itertools.product((0, 1), repeat=n)):
            result = cell.function(dict(zip(pins, assignment)))
            for oi, name in enumerate(outs):
                if result.get(name, 0):
                    out_vals[idx, oi] = 1.0
        self.out_vals = out_vals
        #: (2^n, n) matrix of assignment bits; itertools.product order,
        #: i.e. pin 0 is the most significant bit of the row index.
        self.assign = np.array(
            list(itertools.product((0.0, 1.0), repeat=n)), dtype=np.float64
        ).reshape(m, n)
        #: flip_diff[i, a, o] = 1 when toggling pin i flips output o
        #: under assignment a (the Boolean difference indicator).
        flip_diff = np.zeros((n, m, self.n_out), dtype=np.float64)
        rows = np.arange(m)
        for i in range(n):
            partner = rows ^ (1 << (n - 1 - i))
            flip_diff[i] = (out_vals != out_vals[partner]).astype(np.float64)
        self.flip_diff = flip_diff
        self.memo: Dict[tuple, Tuple[NetActivity, ...]] = {}

    def evaluate(
        self, probs: Tuple[float, ...], densities: Tuple[float, ...]
    ) -> Tuple[NetActivity, ...]:
        """Exact output activity for the given input statistics, one
        :class:`NetActivity` per cell output (memoized)."""
        return self.evaluate_key(tuple(probs) + tuple(densities))

    def evaluate_key(self, key: Tuple[float, ...]) -> Tuple[NetActivity, ...]:
        """Like :meth:`evaluate` with the memo key pre-built: the first
        ``n`` entries are pin probabilities, the rest pin densities."""
        hit = self.memo.get(key)
        if hit is not None:
            return hit
        n = self.n
        probs = key[:n]
        densities = key[n:]
        if n == 0:
            # Tie cells: constant output, no transitions.
            result = tuple(
                NetActivity(float(v), 0.0) for v in self.out_vals[0]
            )
        else:
            p = np.asarray(probs, dtype=np.float64)
            assign = self.assign
            # Per-assignment, per-pin probability factor; weights are the
            # row products, multiplied in pin order like the reference.
            factors = assign * p + (1.0 - assign) * (1.0 - p)
            weights = factors[:, 0].copy()
            for j in range(1, n):
                weights *= factors[:, j]
            out_prob = weights @ self.out_vals
            # other_weight = weight / factor_i, with the reference's skip
            # rules: zero-weight assignments and zero-probability pin
            # states contribute nothing.
            w_excl = np.divide(
                weights[:, None],
                factors,
                out=np.zeros_like(factors),
                where=factors > 0.0,
            )
            sens = 0.5 * np.einsum("iao,ai->oi", self.flip_diff, w_excl)
            density = sens @ np.asarray(densities, dtype=np.float64)
            result = tuple(
                NetActivity(
                    min(max(float(out_prob[oi]), 0.0), 1.0),
                    min(float(density[oi]), GLITCH_DENSITY_CAP),
                )
                for oi in range(self.n_out)
            )
        if len(self.memo) >= _MEMO_LIMIT:
            self.memo.clear()
        self.memo[key] = result
        return result


def _kernel(cell: Cell) -> _CellKernel:
    kernel = _KERNELS.get(id(cell))
    if kernel is None:
        kernel = _KERNELS[id(cell)] = _CellKernel(cell)
    return kernel


def _cell_output_stats(
    cell: Cell,
    in_probs: Mapping[str, float],
    in_densities: Mapping[str, float],
) -> Dict[str, NetActivity]:
    """Exact probability and Najm density for every cell output."""
    kernel = _kernel(cell)
    probs = tuple(
        in_probs.get(pin, DEFAULT_PROBABILITY) for pin in kernel.pins
    )
    densities = tuple(
        in_densities.get(pin, DEFAULT_DENSITY) for pin in kernel.pins
    )
    acts = kernel.evaluate(probs, densities)
    return dict(zip(cell.outputs, acts))


class _ActivitySchedule:
    """Input-statistics-independent propagation structure for one view:
    classified instances, pin id tuples, consumer adjacency (CSR)."""

    __slots__ = (
        "comb",          # [(kernel, memo, in_ids, out_ids, fully_connected)]
        "cons_ptr",      # CSR row pointers per net id (python list)
        "cons_idx",      # CSR column values: comb indices (python list)
        "pair_inst",     # np arrays: one entry per (comb inst, input pin)
        "pair_net",
        "seq",           # [(d_id, q_id)]
        "mem",           # [rd_id]
        "input_seed",    # [(net_id, is_clock)] for the primary inputs
    )

    def __init__(self, view: NetView) -> None:
        module = view.module
        net_id = view.net_id
        clock_ids = {
            net_id[c] for c in module.clock_nets if c in net_id
        }
        self.input_seed = [
            (net_id[p], net_id[p] in clock_ids)
            for p in module.input_ports
        ]
        comb: List[tuple] = []
        pair_inst: List[np.ndarray] = []
        pair_net: List[np.ndarray] = []
        seq: List[Tuple[int, int]] = []
        mem: List[int] = []
        in_ids = view.in_ids
        out_ids = view.out_ids

        def pin_column(group, name: str, outputs: bool) -> List[int]:
            cell = group.cell
            pins = cell.outputs if outputs else tuple(cell.input_caps_ff)
            table = group.out_ids if outputs else group.in_ids
            for j, pin in enumerate(pins):
                if pin == name:
                    return table[:, j].tolist()
            return [-1] * len(group)

        for group in view.groups:
            cell = group.cell
            if cell.is_sequential:
                seq.extend(
                    zip(
                        pin_column(group, "D", outputs=False),
                        pin_column(group, "Q", outputs=True),
                    )
                )
                continue
            if cell.is_memory:
                mem.extend(pin_column(group, "RD", outputs=True))
                continue
            kern = _kernel(cell)
            memo = kern.memo
            base = len(comb)
            if group.in_ids.shape[1]:
                fully = (group.in_ids >= 0).all(axis=1).tolist()
            else:
                fully = [True] * len(group)
            for k, idx in enumerate(group.inst_idx.tolist()):
                comb.append(
                    (kern, memo, in_ids[idx], out_ids[idx], fully[k])
                )
            ins_mat = group.in_ids
            valid = ins_mat >= 0
            if valid.any():
                rows = np.nonzero(valid)[0]
                pair_inst.append(rows + base)
                pair_net.append(ins_mat[valid])
        self.comb = comb
        if pair_inst:
            p_inst = np.concatenate(pair_inst)
            p_net = np.concatenate(pair_net)
        else:
            p_inst = np.zeros(0, dtype=np.int64)
            p_net = np.zeros(0, dtype=np.int64)
        self.pair_inst = p_inst
        self.pair_net = p_net
        # Consumer adjacency in CSR form: which combinational cells wait
        # on each net (one entry per sink pin, as in the reference).
        order = np.argsort(p_net, kind="stable")
        self.cons_idx = p_inst[order].tolist()
        self.cons_ptr = np.searchsorted(
            p_net[order], np.arange(view.n_nets + 1), side="left"
        ).tolist()
        self.seq = seq
        self.mem = mem


def _schedule(view: NetView) -> _ActivitySchedule:
    sched = view.derived.get("activity")
    if sched is None:
        sched = view.derived["activity"] = _ActivitySchedule(view)
    return sched


def _propagate_arrays(
    view: NetView,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
) -> Tuple[List[float], List[float], List[bool], Dict[str, NetActivity]]:
    """Core propagation over the compiled view, memoized per stats
    content.

    Returns (probability, density, known) lists indexed by net id plus
    the pass-through stats for ``input_stats`` keys naming no net.
    Callers must treat the returned lists as read-only: repeated power
    estimates with identical input statistics (the common case — a
    session's sparsity knobs are fixed) return the cached propagation.
    Like STA's ``sta_prop`` cache the memo holds a single entry, so
    sweeps that alternate between two stat sets recompute each time
    instead of growing without bound.
    """
    key = (
        None if input_stats is None else frozenset(input_stats.items())
    )
    cached = view.derived.get("activity_prop")
    if cached is not None and cached[0] == key:
        return cached[1]
    result = _propagate_arrays_uncached(view, input_stats)
    view.derived["activity_prop"] = (key, result)
    return result


def _propagate_arrays_uncached(
    view: NetView,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
) -> Tuple[List[float], List[float], List[bool], Dict[str, NetActivity]]:
    module = view.module
    sched = _schedule(view)
    n = view.n_nets
    prob: List[float] = [0.0] * n
    dens: List[float] = [0.0] * n
    known: List[bool] = [False] * n
    extra: Dict[str, NetActivity] = {}
    net_id = view.net_id

    for i, is_clock in sched.input_seed:
        if is_clock:
            prob[i], dens[i] = 0.5, CLOCK_DENSITY
        else:
            prob[i], dens[i] = DEFAULT_PROBABILITY, DEFAULT_DENSITY
        known[i] = True
    if input_stats:
        for name, act in input_stats.items():
            i = net_id.get(name)
            if i is None:
                extra[name] = act
            else:
                prob[i], dens[i] = act.probability, act.density
                known[i] = True

    # Seed sequential/memory outputs first — they are the startpoints
    # that break the fabric into an acyclic region.
    for _d_id, q_id in sched.seq:
        if q_id >= 0 and not known[q_id]:
            prob[q_id], dens[q_id] = 0.5, 0.5
            known[q_id] = True
    for rd_id in sched.mem:
        if rd_id >= 0 and not known[rd_id]:
            prob[rd_id], dens[rd_id] = 0.5, 0.0
            known[rd_id] = True

    # Kahn order over combinational cells; sequential and memory cells
    # break cycles.  Indegrees count the not-yet-known input pins.
    n_comb = len(sched.comb)
    if sched.pair_net.size:
        known_arr = np.asarray(known, dtype=bool)
        unresolved = ~known_arr[sched.pair_net]
        indegree_arr = np.bincount(
            sched.pair_inst[unresolved], minlength=n_comb
        )
        indegree = indegree_arr.tolist()
    else:
        indegree = [0] * n_comb

    queue = deque(ci for ci in range(n_comb) if indegree[ci] == 0)
    cons_ptr = sched.cons_ptr
    cons_idx = sched.cons_idx
    comb = sched.comb
    resolved_cells = 0
    pget = prob.__getitem__
    dget = dens.__getitem__
    # In Kahn order every connected input net is resolved by the time a
    # cell leaves the queue (a driverless input would have stalled it),
    # so only unconnected pins (-1) need the defaults.
    while queue:
        kernel, memo, in_ids, out_ids, fully_connected = comb[queue.popleft()]
        if fully_connected:
            key = tuple(map(pget, in_ids)) + tuple(map(dget, in_ids))
        else:
            key = tuple(
                [
                    prob[i] if i >= 0 else DEFAULT_PROBABILITY
                    for i in in_ids
                ]
                + [dens[i] if i >= 0 else DEFAULT_DENSITY for i in in_ids]
            )
        acts = memo.get(key)
        if acts is None:
            acts = kernel.evaluate_key(key)
        for net, act in zip(out_ids, acts):
            if net < 0:
                continue
            prob[net] = act.probability
            dens[net] = act.density
            if not known[net]:
                known[net] = True
                for consumer in cons_idx[cons_ptr[net]:cons_ptr[net + 1]]:
                    indegree[consumer] -= 1
                    if indegree[consumer] == 0:
                        queue.append(consumer)
        resolved_cells += 1
    if resolved_cells != n_comb:
        raise SimulationError(
            f"activity propagation stalled: {resolved_cells} of "
            f"{n_comb} combinational cells resolved "
            "(combinational cycle?)"
        )

    # Two-pass refinement: register outputs seeded at p=0.5 get their real
    # data probability now that the fabric has been evaluated once.
    for d_id, q_id in sched.seq:
        if d_id >= 0 and known[d_id] and q_id >= 0:
            p = prob[d_id]
            prob[q_id] = p
            dens[q_id] = 2.0 * p * (1.0 - p)
            known[q_id] = True
    return prob, dens, known, extra


def propagate_activity(
    module: Module,
    library: StdCellLibrary,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
) -> Dict[str, NetActivity]:
    """Topologically propagate activity across a flat module.

    ``input_stats`` maps primary-input nets (and optionally any net to
    force) to their statistics; unannotated inputs default to
    probability/density 0.5.
    """
    view = net_view(module, library)
    prob, dens, known, extra = _propagate_arrays(view, input_stats)
    stats: Dict[str, NetActivity] = {}
    names = view.net_names
    for i, name in enumerate(names):
        if known[i]:
            stats[name] = NetActivity(prob[i], dens[i])
    stats.update(extra)
    return stats


# --------------------------------------------------------------------------
# Reference implementation (executable specification for the fast path).
# --------------------------------------------------------------------------


def _cell_output_stats_reference(
    cell: Cell,
    in_probs: Mapping[str, float],
    in_densities: Mapping[str, float],
) -> Dict[str, NetActivity]:
    """Scalar truth-table walk the vectorized kernel must agree with."""
    pins = list(cell.input_caps_ff)
    if cell.function is None:
        raise SimulationError(f"{cell.name} has no logic function for activity")
    n = len(pins)
    out_prob: Dict[str, float] = {o: 0.0 for o in cell.outputs}
    sens_prob: Dict[Tuple[str, str], float] = {
        (o, p): 0.0 for o in cell.outputs for p in pins
    }
    for assignment in itertools.product((0, 1), repeat=n):
        vec = dict(zip(pins, assignment))
        weight = 1.0
        for pin, val in vec.items():
            p = in_probs.get(pin, DEFAULT_PROBABILITY)
            weight *= p if val else (1.0 - p)
        if weight == 0.0:
            continue
        outs = cell.function(vec)
        for o, val in outs.items():
            if val:
                out_prob[o] += weight
        # Boolean difference: toggle input i, see which outputs flip.
        for i, pin in enumerate(pins):
            flipped = dict(vec)
            flipped[pin] = 1 - flipped[pin]
            # Weight of the *other* inputs only.
            p_i = in_probs.get(pin, DEFAULT_PROBABILITY)
            base = p_i if vec[pin] else (1.0 - p_i)
            if base == 0.0:
                continue
            other_weight = weight / base
            outs_f = cell.function(flipped)
            for o in cell.outputs:
                if outs.get(o, 0) != outs_f.get(o, 0):
                    sens_prob[(o, pin)] += 0.5 * other_weight
    result: Dict[str, NetActivity] = {}
    for o in cell.outputs:
        density = sum(
            sens_prob[(o, p)] * in_densities.get(p, DEFAULT_DENSITY)
            for p in pins
        )
        density = min(density, GLITCH_DENSITY_CAP)
        result[o] = NetActivity(min(max(out_prob[o], 0.0), 1.0), density)
    return result


def propagate_activity_reference(
    module: Module,
    library: StdCellLibrary,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
) -> Dict[str, NetActivity]:
    """The original per-cell dictionary walk, kept as the executable
    specification the vectorized path is tested against."""
    stats: Dict[str, NetActivity] = {}
    clock_nets = set(module.clock_nets)
    for net in module.input_ports:
        if net in clock_nets:
            stats[net] = NetActivity(0.5, CLOCK_DENSITY)
        else:
            stats[net] = NetActivity(DEFAULT_PROBABILITY, DEFAULT_DENSITY)
    if input_stats:
        stats.update(input_stats)

    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential:
            q_net = inst.conn.get("Q")
            if q_net is not None:
                stats.setdefault(q_net, NetActivity(0.5, 0.5))
        elif cell.is_memory:
            rd = inst.conn.get("RD")
            if rd is not None:
                stats.setdefault(rd, NetActivity(0.5, 0.0))

    indegree: Dict[str, int] = {}
    consumers: Dict[str, list] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential or cell.is_memory:
            continue
        unresolved = 0
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is None or net in stats:
                continue
            unresolved += 1
            consumers.setdefault(net, []).append(inst)
        indegree[inst.name] = unresolved

    queue = deque(
        inst for inst in module.instances
        if indegree.get(inst.name, -1) == 0
    )
    resolved_nets = set(stats)

    def resolve(inst) -> None:
        cell = library.cell(inst.cell_name)
        in_p = {}
        in_d = {}
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            s = stats.get(net, NetActivity(DEFAULT_PROBABILITY, DEFAULT_DENSITY))
            in_p[pin] = s.probability
            in_d[pin] = s.density
        outs = _cell_output_stats_reference(cell, in_p, in_d)
        for o, act in outs.items():
            net = inst.conn.get(o)
            if net is None:
                continue
            stats[net] = act
            if net not in resolved_nets:
                resolved_nets.add(net)
                for consumer in consumers.get(net, ()):  # type: ignore[arg-type]
                    indegree[consumer.name] -= 1
                    if indegree[consumer.name] == 0:
                        queue.append(consumer)

    resolved_cells = 0
    while queue:
        resolve(queue.popleft())
        resolved_cells += 1
    if resolved_cells != len(indegree):
        raise SimulationError(
            f"activity propagation stalled: {resolved_cells} of "
            f"{len(indegree)} combinational cells resolved "
            "(combinational cycle?)"
        )

    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if not cell.is_sequential:
            continue
        d_net = inst.conn.get("D")
        q_net = inst.conn.get("Q")
        if d_net in stats and q_net is not None:
            p = stats[d_net].probability
            stats[q_net] = NetActivity(p, 2.0 * p * (1.0 - p))
    return stats
