"""Switching-activity estimation over gate netlists.

Propagates static signal probabilities and transition densities from the
primary inputs through the combinational network, using the Boolean-
difference formulation (Najm): for output ``f`` of a cell,

``D(f) = sum_i P(df/dx_i) * D(x_i)``

where ``P(df/dx_i)`` — the probability the output is sensitized to input
``i`` — is evaluated exactly by enumerating the cell's truth table
weighted by the other inputs' probabilities (our largest cell has five
inputs, so enumeration is cheap and exact).

Register outputs toggle when consecutive samples differ; under the
temporal-independence assumption ``D(Q) = 2 p (1 - p)`` with ``p`` the
data-input probability.  Clock nets carry two transitions per cycle.

Input statistics express workloads: the Table II measurement conditions
(12.5 % input sparsity, 50 % weight sparsity) enter as probabilities on
the macro's ``x``/``wb`` ports.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..rtl.ir import Module
from ..tech.stdcells import Cell, StdCellLibrary

#: Default signal probability / transition density for unannotated inputs.
DEFAULT_PROBABILITY = 0.5
DEFAULT_DENSITY = 0.5
#: Transitions per cycle on a clock net (rise + fall).
CLOCK_DENSITY = 2.0
#: Inertial glitch cap: the Boolean-difference algebra adds densities
#: through XOR-rich fabrics without bound, but real gates low-pass
#: filter pulses shorter than their delay.  Clamping per-net density
#: keeps deep adder trees' glitch power finite (and measured-realistic).
GLITCH_DENSITY_CAP = 1.5


@dataclass(frozen=True)
class NetActivity:
    probability: float
    density: float


def _cell_output_stats(
    cell: Cell,
    in_probs: Mapping[str, float],
    in_densities: Mapping[str, float],
) -> Dict[str, NetActivity]:
    """Exact probability and Najm density for every cell output."""
    pins = list(cell.input_caps_ff)
    if cell.function is None:
        raise SimulationError(f"{cell.name} has no logic function for activity")
    n = len(pins)
    out_prob: Dict[str, float] = {o: 0.0 for o in cell.outputs}
    sens_prob: Dict[Tuple[str, str], float] = {
        (o, p): 0.0 for o in cell.outputs for p in pins
    }
    for assignment in itertools.product((0, 1), repeat=n):
        vec = dict(zip(pins, assignment))
        weight = 1.0
        for pin, val in vec.items():
            p = in_probs.get(pin, DEFAULT_PROBABILITY)
            weight *= p if val else (1.0 - p)
        if weight == 0.0:
            continue
        outs = cell.function(vec)
        for o, val in outs.items():
            if val:
                out_prob[o] += weight
        # Boolean difference: toggle input i, see which outputs flip.
        for i, pin in enumerate(pins):
            flipped = dict(vec)
            flipped[pin] = 1 - flipped[pin]
            # Weight of the *other* inputs only.
            p_i = in_probs.get(pin, DEFAULT_PROBABILITY)
            base = p_i if vec[pin] else (1.0 - p_i)
            if base == 0.0:
                continue
            other_weight = weight / base
            outs_f = cell.function(flipped)
            for o in cell.outputs:
                if outs.get(o, 0) != outs_f.get(o, 0):
                    sens_prob[(o, pin)] += 0.5 * other_weight
    result: Dict[str, NetActivity] = {}
    for o in cell.outputs:
        density = sum(
            sens_prob[(o, p)] * in_densities.get(p, DEFAULT_DENSITY)
            for p in pins
        )
        density = min(density, GLITCH_DENSITY_CAP)
        result[o] = NetActivity(min(max(out_prob[o], 0.0), 1.0), density)
    return result


def propagate_activity(
    module: Module,
    library: StdCellLibrary,
    input_stats: Optional[Mapping[str, NetActivity]] = None,
) -> Dict[str, NetActivity]:
    """Topologically propagate activity across a flat module.

    ``input_stats`` maps primary-input nets (and optionally any net to
    force) to their statistics; unannotated inputs default to
    probability/density 0.5.
    """
    stats: Dict[str, NetActivity] = {}
    clock_nets = set(module.clock_nets)
    for net in module.input_ports:
        if net in clock_nets:
            stats[net] = NetActivity(0.5, CLOCK_DENSITY)
        else:
            stats[net] = NetActivity(DEFAULT_PROBABILITY, DEFAULT_DENSITY)
    if input_stats:
        stats.update(input_stats)

    # Seed sequential/memory outputs first — they are the startpoints
    # that break the fabric into an acyclic region.
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential:
            q_net = inst.conn.get("Q")
            if q_net is not None:
                stats.setdefault(q_net, NetActivity(0.5, 0.5))
        elif cell.is_memory:
            rd = inst.conn.get("RD")
            if rd is not None:
                stats.setdefault(rd, NetActivity(0.5, 0.0))

    # Kahn order over combinational cells; sequential and memory cells
    # break cycles.
    indegree: Dict[str, int] = {}
    consumers: Dict[str, list] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential or cell.is_memory:
            continue
        unresolved = 0
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is None or net in stats:
                continue
            unresolved += 1
            consumers.setdefault(net, []).append(inst)
        indegree[inst.name] = unresolved

    queue = deque(
        inst for inst in module.instances
        if indegree.get(inst.name, -1) == 0
    )
    inst_by_name = {inst.name: inst for inst in module.instances}
    resolved_nets = set(stats)

    def resolve(inst) -> None:
        cell = library.cell(inst.cell_name)
        in_p = {}
        in_d = {}
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            s = stats.get(net, NetActivity(DEFAULT_PROBABILITY, DEFAULT_DENSITY))
            in_p[pin] = s.probability
            in_d[pin] = s.density
        outs = _cell_output_stats(cell, in_p, in_d)
        for o, act in outs.items():
            net = inst.conn.get(o)
            if net is None:
                continue
            stats[net] = act
            if net not in resolved_nets:
                resolved_nets.add(net)
                for consumer in consumers.get(net, ()):  # type: ignore[arg-type]
                    indegree[consumer.name] -= 1
                    if indegree[consumer.name] == 0:
                        queue.append(consumer)

    resolved_cells = 0
    while queue:
        resolve(queue.popleft())
        resolved_cells += 1
    if resolved_cells != len(indegree):
        raise SimulationError(
            f"activity propagation stalled: {resolved_cells} of "
            f"{len(indegree)} combinational cells resolved "
            "(combinational cycle?)"
        )

    # Two-pass refinement: register outputs seeded at p=0.5 get their real
    # data probability now that the fabric has been evaluated once.
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if not cell.is_sequential:
            continue
        d_net = inst.conn.get("D")
        q_net = inst.conn.get("Q")
        if d_net in stats and q_net is not None:
            p = stats[d_net].probability
            stats[q_net] = NetActivity(p, 2.0 * p * (1.0 - p))
    return stats
