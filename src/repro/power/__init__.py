"""Activity-based power estimation.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .activity import (
    CLOCK_DENSITY,
    DEFAULT_DENSITY,
    DEFAULT_PROBABILITY,
    NetActivity,
    propagate_activity,
)
from .estimator import PowerReport, estimate_power, sparsity_input_stats

__all__ = [
    "CLOCK_DENSITY",
    "DEFAULT_DENSITY",
    "DEFAULT_PROBABILITY",
    "NetActivity",
    "propagate_activity",
    "PowerReport",
    "estimate_power",
    "sparsity_input_stats",
]
