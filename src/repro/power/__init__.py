"""Activity-based power estimation."""

from .activity import (
    CLOCK_DENSITY,
    DEFAULT_DENSITY,
    DEFAULT_PROBABILITY,
    NetActivity,
    propagate_activity,
)
from .estimator import PowerReport, estimate_power, sparsity_input_stats

__all__ = [
    "CLOCK_DENSITY",
    "DEFAULT_DENSITY",
    "DEFAULT_PROBABILITY",
    "NetActivity",
    "propagate_activity",
    "PowerReport",
    "estimate_power",
    "sparsity_input_stats",
]
