"""Batch compilation: many specs, one engine, a persistent cache.

The paper's headline is *multi-spec-oriented* compilation — one
compiler serving many (height, width, MCR, format, frequency) points.
This package turns the single-spec :class:`~repro.compiler.syndcim.SynDCIM`
facade into a design-space instrument:

* :mod:`repro.batch.jobs` — content-hashed job descriptions;
* :mod:`repro.batch.cache` — the on-disk JSON result store
  (``~/.cache/repro`` by default) that makes repeated sweeps free;
* :mod:`repro.batch.engine` — :class:`BatchCompiler`: dedup, cache
  lookup, ``concurrent.futures`` process pool, progress reporting;
* :mod:`repro.batch.sweep` — the range grammar (``32:256:x2``)
  expanding CLI axes into spec grids;
* :mod:`repro.batch.summarize` — Pareto/scaling reports over a sweep's
  JSONL records;
* :mod:`repro.batch.resilience` — failure taxonomy,
  :class:`RetryPolicy`, the crash-safe :class:`SweepJournal` behind
  ``--resume``;
* :mod:`repro.batch.faults` — the deterministic ``$REPRO_FAULTS``
  chaos harness (see ``docs/robustness.md``).

See ``docs/architecture.md`` for how this package sits on top of the
search and implementation layers.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    MemoryResultStore,
    ResultCache,
    ResultStore,
    cache_corruption_count,
)
from .engine import BatchCompiler, BatchResult, BatchStats
from .faults import FaultPlan, active_plan
from .jobs import CompileJob, ImplementJob
from .resilience import (
    RetryPolicy,
    SweepJournal,
    list_journals,
    prune_journals,
)
from .sweep import expand_grid, parse_axis, parse_format_sets, parse_range

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "BatchCompiler",
    "BatchResult",
    "BatchStats",
    "CacheStats",
    "CompileJob",
    "FaultPlan",
    "ImplementJob",
    "MemoryResultStore",
    "ResultCache",
    "ResultStore",
    "RetryPolicy",
    "SweepJournal",
    "active_plan",
    "cache_corruption_count",
    "expand_grid",
    "list_journals",
    "parse_axis",
    "parse_format_sets",
    "parse_range",
    "prune_journals",
]

# NOTE: `summarize` is deliberately NOT re-exported here.  A lazy
# function re-export would be shadowed by the submodule of the same
# name the moment `from repro.batch import summarize` runs (the import
# system binds the module over the package attribute), leaving the
# name resolving to two different objects.  Use
# `from repro.batch.summarize import summarize`.
