"""The batch compilation engine.

:class:`BatchCompiler` takes many jobs (full compiles of different
specs, or implement-only runs of explicit architectures), deduplicates
identical ones by content hash, satisfies what it can from the
persistent :class:`~repro.batch.cache.ResultCache`, and schedules the
remainder across a ``concurrent.futures`` process pool.  Workers
receive plain-dict payloads and return plain-dict records (see
:func:`repro.compiler.syndcim.execute_job`), so no live compiler
objects ever cross a process boundary.

Scheduling notes
----------------
* ``jobs=1`` (or a single pending job without a watchdog) runs inline
  in this process — no pool, easier debugging, identical results.
  Watchdog timeouts, retries and fault injection are pool features;
  inline mode trades them for debuggability.
* The parent resolves the subcircuit library (persistent disk cache,
  falling back to one characterization) before spawning workers; a
  pool initializer then warms every child from the same artifact, so
  no worker ever re-runs the characterization — under ``fork`` *and*
  ``spawn`` alike.
* Job failures are *data*: infeasible specs come back as
  ``status="infeasible"`` records (and are cached — they are
  deterministic), unexpected compiler errors as ``status="error"``
  (not cached).  A sweep never dies half way because one grid corner
  cannot meet timing.

Resilience (see :mod:`repro.batch.resilience` and
``docs/robustness.md``)
----------------------------------------------------------------------
* ``job_timeout_s`` arms a watchdog: jobs are dispatched in a sliding
  window (never more in flight than workers, so dispatch ≈ start),
  each future carries a deadline, and an overdue future gets its pool
  killed and recycled rather than hanging the sweep forever.
* Transient failures — a broken pool, a watchdog kill, a future that
  raised with the pool alive — are retried under a
  :class:`~repro.batch.resilience.RetryPolicy` with exponential
  backoff; only an exhausted budget yields terminal
  ``error``/``timeout`` records, annotated with ``attempts`` and
  ``retry_history``.
* Every run with a cache root keeps a write-ahead
  :class:`~repro.batch.resilience.SweepJournal`;
  ``BatchCompiler(resume=<run id>)`` restores finished records from it
  and executes only the remainder.
* ``$REPRO_FAULTS`` (see :mod:`repro.batch.faults`) deterministically
  crashes, hangs or corrupts on demand, so every path above is an
  ordinary test subject.
"""

from __future__ import annotations

import copy
import os
import pathlib
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..arch import MacroArchitecture
from ..errors import BatchError
from ..options import CompileOptions
from ..spec import MacroSpec
from ..verify.harness import DEFAULT_VECTORS
from .cache import ResultCache, ResultStore, default_cache_dir
from .faults import FaultPlan, active_plan
from .jobs import CompileJob, ImplementJob
from .resilience import PoolOutcome, RetryPolicy, SweepJournal, new_run_id

Job = Union[CompileJob, ImplementJob]
Record = Dict[str, object]
#: progress(done, total, record) — called after every job completion.
ProgressFn = Callable[[int, int, Record], None]


@dataclass
class BatchStats:
    """Work accounting for one batch run."""

    total: int = 0
    unique: int = 0
    cache_hits: int = 0
    compiled: int = 0
    infeasible: int = 0
    failed: int = 0
    #: Jobs whose record is a terminal watchdog timeout.
    timeouts: int = 0
    #: Unique jobs that needed at least one transient-failure retry.
    retried: int = 0
    #: Jobs restored from a previous run's write-ahead journal.
    resumed: int = 0
    elapsed_s: float = 0.0
    #: Journal identity of this run (``--resume`` takes it); ``None``
    #: when journaling was off.
    run_id: Optional[str] = None

    @property
    def deduplicated(self) -> int:
        return self.total - self.unique

    @property
    def cache_misses(self) -> int:
        return self.unique - self.cache_hits

    def cache_line(self) -> str:
        """The one-line summary every batch CLI run prints; ``compiled
        0`` is the proof that a repeated sweep ran entirely from cache,
        and the recovery clause is the proof of what the resilience
        layer had to absorb."""
        line = (
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses; "
            f"compiled {self.compiled}, folded {self.deduplicated} "
            f"duplicate jobs; elapsed {self.elapsed_s:.1f}s"
        )
        recovery = []
        if self.retried:
            recovery.append(f"retried {self.retried}")
        if self.resumed:
            recovery.append(f"resumed {self.resumed}")
        if self.timeouts:
            recovery.append(f"timeouts {self.timeouts}")
        if recovery:
            line += "; recovery: " + ", ".join(recovery)
        return line


@dataclass
class BatchResult:
    """Records in input-job order plus the run's accounting."""

    records: List[Record]
    stats: BatchStats = field(default_factory=BatchStats)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> List[Record]:
        return [r for r in self.records if r.get("status") == "ok"]

    def describe(self) -> str:
        statuses = [r.get("status") for r in self.records]
        lines = [
            f"batch of {self.stats.total} jobs: "
            f"{statuses.count('ok')} ok, "
            f"{statuses.count('infeasible')} infeasible, "
            f"{statuses.count('error')} failed, "
            f"{statuses.count('timeout')} timed out",
            self.stats.cache_line(),
        ]
        return "\n".join(lines)


class BatchCompiler:
    """Compile many design points with dedup, caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` uses the CPU count, ``1`` runs
        inline.
    cache_dir / use_cache:
        Where the persistent result store lives (default
        ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``); ``use_cache=False``
        disables both lookup and store.
    seed:
        Search-order seed forwarded to every compile job (part of the
        cache key).
    corners:
        Signoff-corner names forwarded to every job (part of the cache
        key); each worker then evaluates its design at every corner, so
        a corner sweep fans out over the same pool as the spec grid.
    verify / verify_vectors:
        Post-synthesis functional verification forwarded to every
        compile job (part of the cache key): each worker drives its
        implemented netlist with that many randomized + directed MAC
        stimuli against the golden model and the record carries the
        report — functional verification as a batch workload.
    job_timeout_s:
        Per-job watchdog deadline (pool mode only): an overdue worker
        is killed with its pool and the job retried; after the retry
        budget it records ``status="timeout"``.  ``None`` (default)
        disables the watchdog.
    retry:
        :class:`~repro.batch.resilience.RetryPolicy` for transient
        failures; the default (two attempts, no backoff) matches the
        engine's historical single-retry behaviour.
    resume:
        A previous run's id (``BatchStats.run_id``): finished records
        are restored from its write-ahead journal and only the
        remainder executes.  Raises
        :class:`~repro.errors.BatchError` for an unknown id.
    journal:
        Force journaling on/off; the default (``None``) journals
        whenever a cache root exists (``use_cache=True`` or an
        explicit ``cache_dir``).
    progress:
        Optional callback invoked after each job resolves.
    store:
        An explicit :class:`~repro.batch.cache.ResultStore` backend to
        consult and populate instead of constructing a
        :class:`~repro.batch.cache.ResultCache` from
        ``cache_dir``/``use_cache`` — how the compile service shares
        one store across many engine runs.  Journaling follows the
        store's filesystem ``root`` when it has one.
    options:
        A :class:`~repro.options.CompileOptions` bundle supplying
        ``seed``/``corners``/``verify``/``verify_vectors``/``vt``/
        ``job_timeout_s`` (and, via :meth:`~repro.options.
        CompileOptions.retry_policy`, ``retry``) in one validated
        object; the individual keyword arguments for those fields are
        ignored when ``options`` is given.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        seed: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        corners: Optional[Sequence[str]] = None,
        verify: bool = False,
        verify_vectors: int = DEFAULT_VECTORS,
        vt: str = "svt",
        job_timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        resume: Optional[str] = None,
        journal: Optional[bool] = None,
        store: Optional[ResultStore] = None,
        options: Optional[CompileOptions] = None,
    ) -> None:
        self.options = options
        if options is not None:
            seed = options.seed
            corners = options.corners
            verify = options.verify
            verify_vectors = options.verify_vectors
            vt = options.vt
            job_timeout_s = options.job_timeout_s
            retry = options.retry_policy() if retry is None else retry
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if store is not None:
            self.cache: Optional[ResultStore] = store if use_cache else None
        elif use_cache:
            self.cache = ResultCache(cache_dir) if cache_dir else ResultCache()
        else:
            self.cache = None
        self.seed = seed
        self.corners = None if corners is None else tuple(corners)
        self.verify = verify
        self.verify_vectors = verify_vectors
        #: Threshold-flavor policy forwarded to every compile job.
        self.vt = vt
        self.progress = progress
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise BatchError("job_timeout_s must be positive")
        self.job_timeout_s = job_timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self._journal_root = self._resolve_journal_root(
            journal, cache_dir, use_cache
        )
        self._resume = resume
        if resume is not None and self._journal_root is None:
            raise BatchError(
                "resume requires a journal root: enable the cache or "
                "pass cache_dir"
            )
        #: The id this run journals under (and prints, so a killed
        #: sweep can come back as ``--resume <run_id>``).
        self.run_id: Optional[str] = (
            resume
            if resume is not None
            else (new_run_id() if self._journal_root is not None else None)
        )
        #: Shared-memory segments published by this engine (SCL tensors
        #: from :meth:`_prewarm`, net views from
        #: :meth:`publish_net_view`); every pool worker receives this
        #: list through its initializer and attaches zero-copy.
        self._shm_segments: List[str] = []

    def _resolve_journal_root(
        self,
        journal: Optional[bool],
        cache_dir: Optional[os.PathLike],
        use_cache: bool,
    ) -> Optional[pathlib.Path]:
        if journal is False:
            return None
        if self.cache is not None:
            # Memory-backed stores have no filesystem root to journal
            # under; they fall through to cache_dir / explicit opt-in.
            root = getattr(self.cache, "root", None)
            if root is not None:
                return pathlib.Path(root)
        if cache_dir is not None:
            return pathlib.Path(cache_dir).expanduser()
        if journal is True:
            return default_cache_dir()
        # No cache root and journaling not requested: stay off rather
        # than surprise-writing under the user's home directory.
        return None

    # -- job construction ---------------------------------------------------

    def compile_specs(
        self,
        specs: Sequence[MacroSpec],
        implement: bool = True,
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
    ) -> BatchResult:
        """Full compile of every spec (the sweep entry point)."""
        return self.run_jobs(
            [
                CompileJob(
                    spec=spec,
                    implement=implement,
                    input_sparsity=input_sparsity,
                    weight_sparsity=weight_sparsity,
                    seed=self.seed,
                    corners=self.corners,
                    verify=self.verify,
                    verify_vectors=self.verify_vectors,
                    vt=self.vt,
                )
                for spec in specs
            ]
        )

    def implement_archs(
        self,
        spec: MacroSpec,
        archs: Sequence[MacroArchitecture],
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
    ) -> BatchResult:
        """Implementation-only jobs for explicit architectures (used by
        benchmarks that already ran the search and picked points)."""
        return self.run_jobs(
            [
                ImplementJob(
                    spec=spec,
                    arch=arch,
                    input_sparsity=input_sparsity,
                    weight_sparsity=weight_sparsity,
                    corners=self.corners,
                    verify=self.verify,
                    verify_vectors=self.verify_vectors,
                )
                for arch in archs
            ]
        )

    # -- execution ----------------------------------------------------------

    def run_jobs(self, jobs: Sequence[Job]) -> BatchResult:
        """Dedup, consult journal + cache, execute the rest (with
        watchdog/retry when pooled), reassemble."""
        from ..compiler.syndcim import (
            CACHEABLE_STATUSES,
            _failure_record,
            execute_job,
        )

        started = time.monotonic()
        stats = BatchStats(total=len(jobs), run_id=self.run_id)
        keys = [job.key() for job in jobs]
        by_key: Dict[str, Job] = {}
        for key, job in zip(keys, jobs):
            by_key.setdefault(key, job)
        stats.unique = len(by_key)

        journal: Optional[SweepJournal] = None
        resumed: Dict[str, Record] = {}
        if self._journal_root is not None:
            if self._resume is not None:
                resumed = SweepJournal.load(self._journal_root, self._resume)
            journal = SweepJournal(self._journal_root, run_id=self.run_id)

        resolved: Dict[str, Record] = {}
        pending: Dict[str, Job] = {}
        for key, job in by_key.items():
            if key in resumed:
                # Journal beats cache: it also holds the error/timeout
                # records the cache deliberately refuses to store.
                stats.resumed += 1
                resolved[key] = dict(
                    resumed[key], cached=False, resumed=True, job_key=key
                )
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                stats.cache_hits += 1
                resolved[key] = dict(cached, cached=True, job_key=key)
            else:
                pending[key] = job

        done = stats.cache_hits + stats.resumed

        #: Transient-failure bookkeeping, keyed by job key: attempts
        #: consumed so far, and one history entry per failed attempt.
        attempts: Dict[str, int] = {}
        history: Dict[str, List[Dict[str, object]]] = {}

        def finish(
            key: str,
            record: Record,
            compiled: bool = True,
            cacheable: Optional[Record] = None,
        ) -> None:
            """Account one terminal record.  ``cacheable`` is the pure
            (bookkeeping-free) record to persist, when it differs from
            ``record`` — cached entries must stay bit-identical to a
            fault-free run's output."""
            nonlocal done
            if compiled:
                stats.compiled += 1
            store = record if cacheable is None else cacheable
            if self.cache is not None and store.get("status") in CACHEABLE_STATUSES:
                self.cache.put(key, store)
            if journal is not None:
                journal.done(key, record)
            record = dict(record, cached=False, job_key=key)
            resolved[key] = record
            done += 1
            if self.progress is not None:
                self.progress(done, stats.unique, record)

        def finish_executed(key: str, record: Record) -> None:
            """A record that came back from an execution: annotate the
            retry bookkeeping (if any) without contaminating the
            cached copy."""
            past = history.get(key)
            if past:
                annotated = dict(
                    record,
                    attempts=attempts.get(key, 0) + 1,
                    retry_history=list(past),
                )
                finish(key, annotated, cacheable=record)
            else:
                finish(key, record)

        if self.progress is not None:
            for i, record in enumerate(resolved.values(), start=1):
                self.progress(i, stats.unique, record)

        try:
            if journal is not None:
                journal.begin(total=stats.total, unique=stats.unique)
                journal.submit(pending.keys())
            if pending:
                use_pool = self.jobs > 1 and (
                    len(pending) > 1 or self.job_timeout_s is not None
                )
                if use_pool:
                    self._prewarm()
                    self._prewarm_corners(pending.values())
                    self._run_resilient(
                        pending,
                        finish,
                        finish_executed,
                        attempts,
                        history,
                        _failure_record,
                    )
                else:
                    for key, job in pending.items():
                        finish_executed(key, execute_job(job.payload()))
        finally:
            if journal is not None:
                journal.close()

        stats.retried = sum(1 for n in attempts.values() if n > 0)
        # Deep copies so duplicate input specs don't alias nested dicts,
        # and status tallies over the *returned* records (cache hits
        # included — finish() never sees them).
        records = [copy.deepcopy(resolved[key]) for key in keys]
        statuses = [r.get("status") for r in records]
        stats.infeasible = statuses.count("infeasible")
        stats.failed = statuses.count("error")
        stats.timeouts = statuses.count("timeout")
        stats.elapsed_s = time.monotonic() - started
        return BatchResult(records=records, stats=stats)

    def _run_resilient(
        self,
        pending: Dict[str, Job],
        finish: Callable[..., None],
        finish_executed: Callable[[str, Record], None],
        attempts: Dict[str, int],
        history: Dict[str, List[Dict[str, object]]],
        _failure_record: Callable[..., Record],
    ) -> None:
        """Pool passes until every pending job is terminal.

        Each pass runs :meth:`_run_pool`; its casualties — watchdog
        timeouts, single-future raises, pool-break victims — are
        *transient* (see :mod:`repro.batch.resilience`) and re-enter
        the next pass until :class:`RetryPolicy` says otherwise, at
        which point they become terminal ``timeout``/``error`` records
        carrying their full retry history.  Watchdog *collateral*
        (jobs killed alongside an overdue one, or never started) re-runs
        without being charged an attempt.
        """
        policy = self.retry
        plan = active_plan()
        remaining = dict(pending)
        while remaining:
            outcome = self._run_pool(
                remaining, finish_executed, attempts, plan
            )
            if outcome.broken and plan is not None:
                # The fault plan is deterministic on both sides of the
                # pool: the parent knows exactly which in-flight job
                # was scheduled to crash, so it alone is charged and
                # its pool-mates re-run free.  Without a plan (a real
                # OOM/segfault) the whole suspect set stays charged —
                # the parent genuinely cannot tell.
                culprits = {
                    key: reason
                    for key, reason in outcome.broken.items()
                    if plan.planned(key, attempts.get(key, 0) + 1) == "crash"
                }
                if culprits:
                    for key in outcome.broken:
                        if key not in culprits:
                            outcome.unfinished[key] = pending[key]
                    outcome.broken = culprits
            casualties: List[Tuple[str, str, str]] = []
            for key, reason in outcome.timed_out.items():
                casualties.append((key, "timeout", reason))
            for key, reason in outcome.raised.items():
                casualties.append((key, "error", f"worker died: {reason}"))
            for key, reason in outcome.broken.items():
                casualties.append((key, "error", f"worker died: {reason}"))
            if outcome.fatal is not None and not outcome.broken:
                # The pool broke before anything was in flight (e.g. a
                # dying initializer): no identifiable suspects, so
                # charge everything — the guard against retrying a
                # pool that can never start, forever.
                for key in outcome.unfinished:
                    casualties.append(
                        (key, "error", f"worker died: {outcome.fatal}")
                    )
            next_round: Dict[str, Job] = {}
            delay = 0.0
            for key, status, reason in casualties:
                n = attempts.get(key, 0) + 1
                attempts[key] = n
                fault = None if plan is None else plan.planned(key, n)
                entry: Dict[str, object] = {
                    "attempt": n,
                    "outcome": status,
                    "reason": reason,
                }
                if fault is not None:
                    entry["fault"] = fault
                history.setdefault(key, []).append(entry)
                if n < policy.max_attempts:
                    next_round[key] = pending[key]
                    delay = max(delay, policy.delay(n))
                else:
                    record = dict(
                        _failure_record(pending[key].spec, status, reason),
                        elapsed_s=0.0,
                        attempts=n,
                        retry_history=list(history[key]),
                    )
                    if fault is not None:
                        record["fault"] = fault
                    finish(key, record, compiled=False)
            if outcome.fatal is None or outcome.broken:
                # Uncharged survivors (never dispatched, or watchdog /
                # pool-break collateral) re-run without spending their
                # retry budget on somebody else's failure.
                for key, job in outcome.unfinished.items():
                    next_round.setdefault(key, job)
            remaining = next_round
            if remaining and delay > 0:
                time.sleep(delay)

    def _run_pool(
        self,
        jobs_map: Dict[str, Job],
        finish_executed: Callable[[str, Record], None],
        attempts: Dict[str, int],
        plan: Optional[FaultPlan],
    ) -> PoolOutcome:
        """One process-pool pass over ``jobs_map``.

        Jobs are dispatched in a sliding window (in-flight count never
        exceeds the worker count), so a future's submit time is its
        start time for watchdog purposes.  Three exits:

        * clean — every job finished (or individually raised);
        * watchdog — an overdue future was detected: the pool is
          killed, the overdue jobs land in ``timed_out``, everything
          else unfinished returns for an uncharged re-run;
        * pool break — a worker died: ``fatal`` is set, the jobs in
          flight at the break (the only possible culprits, at most one
          per worker) land in ``broken``, and the never-dispatched
          remainder returns for an uncharged re-run.

        If the caller's ``finish`` raises (e.g. the CLI aborting on a
        closed output pipe), unstarted futures are cancelled so the
        grid does not keep compiling into the void.
        """
        from concurrent.futures.process import BrokenProcessPool

        from ..compiler.syndcim import execute_job

        outcome = PoolOutcome(unfinished=dict(jobs_map))
        workers = min(self.jobs, len(jobs_map))
        deadline_s = self.job_timeout_s
        poll = (
            None
            if deadline_s is None
            else max(0.02, min(0.25, deadline_s / 20))
        )
        queue = list(jobs_map.items())
        next_i = 0
        in_flight: Dict[object, Tuple[str, Optional[float]]] = {}
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_initializer,
            initargs=(tuple(self._shm_segments),),
        ) as pool:

            def submit_window() -> None:
                nonlocal next_i
                while next_i < len(queue) and len(in_flight) < workers:
                    key, job = queue[next_i]
                    next_i += 1
                    payload = job.payload()
                    if plan is not None:
                        # Ephemeral context (never part of the job
                        # key): lets workers compute the same fault
                        # draws as the parent.
                        payload["fault_ctx"] = {
                            "key": key,
                            "attempt": attempts.get(key, 0) + 1,
                        }
                    try:
                        future = pool.submit(execute_job, payload)
                    except (BrokenProcessPool, RuntimeError) as exc:
                        outcome.fatal = f"{type(exc).__name__}: {exc}"
                        return
                    in_flight[future] = (
                        key,
                        None
                        if deadline_s is None
                        else time.monotonic() + deadline_s,
                    )

            submit_window()
            try:
                while in_flight and outcome.fatal is None:
                    ready, _ = wait(
                        list(in_flight),
                        timeout=poll,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in ready:
                        key, _deadline = in_flight.pop(future)
                        try:
                            record = future.result()
                        except BrokenProcessPool as exc:
                            outcome.fatal = f"{type(exc).__name__}: {exc}"
                            outcome.broken[key] = outcome.fatal
                            outcome.unfinished.pop(key, None)
                            break
                        except Exception as exc:
                            # A single-future failure with the pool
                            # still alive (cancellation, an injected
                            # raise): transient — the caller decides
                            # whether to retry.
                            outcome.raised[key] = (
                                f"{type(exc).__name__}: {exc}"
                            )
                            outcome.unfinished.pop(key, None)
                            continue
                        finish_executed(key, record)
                        outcome.unfinished.pop(key, None)
                    if outcome.fatal is not None:
                        break
                    if deadline_s is not None:
                        now = time.monotonic()
                        overdue = [
                            (future, key)
                            for future, (key, deadline) in in_flight.items()
                            if deadline is not None and now >= deadline
                        ]
                        if overdue:
                            for future, key in overdue:
                                outcome.timed_out[key] = (
                                    "watchdog: exceeded job timeout "
                                    f"{deadline_s:g}s"
                                )
                                outcome.unfinished.pop(key, None)
                                in_flight.pop(future, None)
                            # Running futures cannot be cancelled:
                            # kill the pool, recycle on the next pass.
                            self._kill_pool(pool)
                            break
                    submit_window()
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            if outcome.fatal is not None:
                # Everything still in flight shared the broken pool:
                # they are the suspect set the retry loop charges.
                for future, (key, _deadline) in in_flight.items():
                    outcome.broken.setdefault(key, outcome.fatal)
                    outcome.unfinished.pop(key, None)
                pool.shutdown(wait=False, cancel_futures=True)
        return outcome

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate every worker, then tear the executor down without
        waiting on futures that will never complete.  Reaches into the
        executor's process table — there is no public kill switch, and
        a missing table (API drift) degrades to a plain shutdown."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def map(self, fn: Callable, items: Iterable) -> List[object]:
        """Order-preserving parallel map over picklable ``fn``/``items``
        using this engine's worker budget; serial when ``jobs=1``."""
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        self._prewarm()
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_initializer,
            initargs=(tuple(self._shm_segments),),
        ) as pool:
            return list(pool.map(fn, items))

    def _prewarm(self) -> None:
        """Resolve the subcircuit library once in the parent before any
        worker spawns, then publish its tensors over shared memory.
        Fork-started children inherit the live object; spawn/forkserver
        children attach the published segment zero-copy through
        :func:`_worker_initializer` (falling back to the persistent
        disk artifact, then to a characterization) — either way no
        worker re-runs the characterization.  The one combination where
        a parent build helps nobody — disk cache disabled *and*
        children that cannot inherit memory — still builds when shared
        memory can carry the result across.

        Publishing is best-effort: a shm-less platform degrades to the
        pre-shm behaviour.  The published segment names accumulate in
        ``_shm_segments`` and ride to every worker via the pool
        initializer (alongside any net views published with
        :meth:`publish_net_view`)."""
        from ..scl.library import default_scl
        from ..shm.scl import publish_default_scl

        default_scl()
        name = publish_default_scl()
        if name is not None and name not in self._shm_segments:
            self._shm_segments.append(name)

    def publish_net_view(self, module, library=None) -> Optional[str]:
        """Publish one compiled netlist view's integer tables so pool
        workers hydrate it zero-copy instead of re-walking the module
        (see :mod:`repro.shm.netview`).  Call before :meth:`run_jobs` /
        :meth:`map` with any flat module the workers will analyze —
        e.g. a macro the parent already implemented.  Returns the
        segment name, or ``None`` when publishing was not possible."""
        from ..rtl.netview import net_view
        from ..shm.netview import publish_net_view as _publish
        from ..tech.stdcells import default_library

        view = net_view(module, library or default_library())
        name = _publish(view)
        if name is not None and name not in self._shm_segments:
            self._shm_segments.append(name)
        return name

    def _prewarm_corners(self, jobs: Iterable[Job]) -> None:
        """Corner jobs also need the worst-corner SCL: resolve it once
        per job process in the parent (building + persisting on the
        first ever run) so every worker loads the corner artifact from
        disk.  Shares the compiler's resolution
        (:func:`repro.signoff.corners.worst_corner_scl`), so the
        prewarmed artifact is exactly the one workers will ask for.
        Failure is survivable (workers characterize lazily) but not
        silent: a one-per-process warning names the cause, so a
        misconfigured cache dir reads as a warning, not a mystery
        slowdown."""
        if not self.corners:
            return
        try:
            from ..signoff.corners import CornerSet, worst_corner_scl
            from ..tech.process import process_by_name

            corner_set = CornerSet.from_names(self.corners, name="prewarm")
            for name in {job.process_name for job in jobs}:
                worst_corner_scl(process_by_name(name), corner_set)
        except Exception as exc:
            global _PREWARM_WARNED
            if not _PREWARM_WARNED:
                _PREWARM_WARNED = True
                warnings.warn(
                    "repro: corner-SCL prewarm failed "
                    f"({type(exc).__name__}: {exc}); workers will "
                    "characterize lazily — expect a slow first job "
                    "per process",
                    RuntimeWarning,
                    stacklevel=2,
                )


#: Once-per-process latch for the corner-prewarm warning above.
_PREWARM_WARNED = False


def _worker_initializer(shm_segments: Sequence[str] = ()) -> None:
    """Pool-worker startup hook: attach the parent's published
    shared-memory tensors, then make sure an SCL is resolved before the
    first job lands, so per-job latencies measure compilation, not
    characterization.

    Resolution order for the SCL: the shared-memory segment the parent
    published (zero-copy tensor attach, sub-millisecond), then the
    persistent disk artifact (or the live object inherited under
    fork), then a lazy characterization on first use.  Published net
    views are armed for :func:`repro.rtl.netview.net_view` to hydrate
    on demand.  A worker that cannot preload still works, but says so
    once (this hook runs once per process), because a misconfigured
    cache dir showing up as a uniform slowdown is the kind of mystery
    that eats an afternoon."""
    try:
        from ..shm.netview import install_attachments

        install_attachments(shm_segments)
    except Exception:
        pass
    try:
        from ..scl.library import default_scl
        from ..shm.scl import attach_default_scl

        if attach_default_scl() is None:
            default_scl()
    except Exception as exc:
        warnings.warn(
            "repro: batch worker could not preload the subcircuit "
            f"library ({type(exc).__name__}: {exc}); jobs will "
            "characterize lazily — check the SCL cache directory",
            RuntimeWarning,
            stacklevel=2,
        )
