"""The batch compilation engine.

:class:`BatchCompiler` takes many jobs (full compiles of different
specs, or implement-only runs of explicit architectures), deduplicates
identical ones by content hash, satisfies what it can from the
persistent :class:`~repro.batch.cache.ResultCache`, and schedules the
remainder across a ``concurrent.futures`` process pool.  Workers
receive plain-dict payloads and return plain-dict records (see
:func:`repro.compiler.syndcim.execute_job`), so no live compiler
objects ever cross a process boundary.

Scheduling notes
----------------
* ``jobs=1`` (or a single pending job) runs inline in this process —
  no pool, easier debugging, identical results.
* The parent resolves the subcircuit library (persistent disk cache,
  falling back to one characterization) before spawning workers; a
  pool initializer then warms every child from the same artifact, so
  no worker ever re-runs the characterization — under ``fork`` *and*
  ``spawn`` alike.
* Job failures are *data*: infeasible specs come back as
  ``status="infeasible"`` records (and are cached — they are
  deterministic), unexpected compiler errors as ``status="error"``
  (not cached).  A sweep never dies half way because one grid corner
  cannot meet timing.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..arch import MacroArchitecture
from ..spec import MacroSpec
from ..verify.harness import DEFAULT_VECTORS
from .cache import ResultCache
from .jobs import CompileJob, ImplementJob

Job = Union[CompileJob, ImplementJob]
Record = Dict[str, object]
#: progress(done, total, record) — called after every job completion.
ProgressFn = Callable[[int, int, Record], None]


@dataclass
class BatchStats:
    """Work accounting for one batch run."""

    total: int = 0
    unique: int = 0
    cache_hits: int = 0
    compiled: int = 0
    infeasible: int = 0
    failed: int = 0
    elapsed_s: float = 0.0

    @property
    def deduplicated(self) -> int:
        return self.total - self.unique

    @property
    def cache_misses(self) -> int:
        return self.unique - self.cache_hits

    def cache_line(self) -> str:
        """The one-line summary every batch CLI run prints; ``compiled 0``
        is the proof that a repeated sweep ran entirely from cache."""
        return (
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses; "
            f"compiled {self.compiled}, folded {self.deduplicated} "
            f"duplicate jobs; elapsed {self.elapsed_s:.1f}s"
        )


@dataclass
class BatchResult:
    """Records in input-job order plus the run's accounting."""

    records: List[Record]
    stats: BatchStats = field(default_factory=BatchStats)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> List[Record]:
        return [r for r in self.records if r.get("status") == "ok"]

    def describe(self) -> str:
        statuses = [r.get("status") for r in self.records]
        lines = [
            f"batch of {self.stats.total} jobs: "
            f"{statuses.count('ok')} ok, "
            f"{statuses.count('infeasible')} infeasible, "
            f"{statuses.count('error')} failed",
            self.stats.cache_line(),
        ]
        return "\n".join(lines)


class BatchCompiler:
    """Compile many design points with dedup, caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` uses the CPU count, ``1`` runs
        inline.
    cache_dir / use_cache:
        Where the persistent result store lives (default
        ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``); ``use_cache=False``
        disables both lookup and store.
    seed:
        Search-order seed forwarded to every compile job (part of the
        cache key).
    corners:
        Signoff-corner names forwarded to every job (part of the cache
        key); each worker then evaluates its design at every corner, so
        a corner sweep fans out over the same pool as the spec grid.
    verify / verify_vectors:
        Post-synthesis functional verification forwarded to every
        compile job (part of the cache key): each worker drives its
        implemented netlist with that many randomized + directed MAC
        stimuli against the golden model and the record carries the
        report — functional verification as a batch workload.
    progress:
        Optional callback invoked after each job resolves.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        seed: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        corners: Optional[Sequence[str]] = None,
        verify: bool = False,
        verify_vectors: int = DEFAULT_VECTORS,
        vt: str = "svt",
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if use_cache:
            self.cache: Optional[ResultCache] = (
                ResultCache(cache_dir) if cache_dir else ResultCache()
            )
        else:
            self.cache = None
        self.seed = seed
        self.corners = None if corners is None else tuple(corners)
        self.verify = verify
        self.verify_vectors = verify_vectors
        #: Threshold-flavor policy forwarded to every compile job.
        self.vt = vt
        self.progress = progress

    # -- job construction ---------------------------------------------------

    def compile_specs(
        self,
        specs: Sequence[MacroSpec],
        implement: bool = True,
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
    ) -> BatchResult:
        """Full compile of every spec (the sweep entry point)."""
        return self.run_jobs(
            [
                CompileJob(
                    spec=spec,
                    implement=implement,
                    input_sparsity=input_sparsity,
                    weight_sparsity=weight_sparsity,
                    seed=self.seed,
                    corners=self.corners,
                    verify=self.verify,
                    verify_vectors=self.verify_vectors,
                    vt=self.vt,
                )
                for spec in specs
            ]
        )

    def implement_archs(
        self,
        spec: MacroSpec,
        archs: Sequence[MacroArchitecture],
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
    ) -> BatchResult:
        """Implementation-only jobs for explicit architectures (used by
        benchmarks that already ran the search and picked points)."""
        return self.run_jobs(
            [
                ImplementJob(
                    spec=spec,
                    arch=arch,
                    input_sparsity=input_sparsity,
                    weight_sparsity=weight_sparsity,
                    corners=self.corners,
                    verify=self.verify,
                    verify_vectors=self.verify_vectors,
                )
                for arch in archs
            ]
        )

    # -- execution ----------------------------------------------------------

    def run_jobs(self, jobs: Sequence[Job]) -> BatchResult:
        """Dedup, consult the cache, execute the rest, reassemble."""
        from ..compiler.syndcim import (
            CACHEABLE_STATUSES,
            _failure_record,
            execute_job,
        )

        started = time.monotonic()
        stats = BatchStats(total=len(jobs))
        keys = [job.key() for job in jobs]
        by_key: Dict[str, Job] = {}
        for key, job in zip(keys, jobs):
            by_key.setdefault(key, job)
        stats.unique = len(by_key)

        resolved: Dict[str, Record] = {}
        pending: Dict[str, Job] = {}
        for key, job in by_key.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                stats.cache_hits += 1
                resolved[key] = dict(cached, cached=True, job_key=key)
            else:
                pending[key] = job

        done = stats.cache_hits

        def finish(key: str, record: Record, compiled: bool = True) -> None:
            nonlocal done
            if compiled:
                stats.compiled += 1
            status = record.get("status")
            if self.cache is not None and status in CACHEABLE_STATUSES:
                self.cache.put(key, record)
            record = dict(record, cached=False, job_key=key)
            resolved[key] = record
            done += 1
            if self.progress is not None:
                self.progress(done, stats.unique, record)

        if self.progress is not None:
            for i, record in enumerate(resolved.values(), start=1):
                self.progress(i, stats.unique, record)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._prewarm()
                self._prewarm_corners(pending.values())
                # A broken pool (a worker OOM-killed or segfaulted)
                # must not poison the jobs that never ran: retry the
                # unfinished remainder in a fresh pool once, and only
                # then give the stragglers error records.
                remaining = dict(pending)
                fatal: Optional[str] = None
                for _attempt in range(2):
                    if not remaining:
                        break
                    remaining, fatal = self._run_pool(remaining, finish)
                    if fatal is None:
                        break
                for key, job in remaining.items():
                    finish(
                        key,
                        dict(
                            _failure_record(
                                job.spec, "error", f"worker died: {fatal}"
                            ),
                            elapsed_s=0.0,
                        ),
                        compiled=False,
                    )
            else:
                for key, job in pending.items():
                    finish(key, execute_job(job.payload()))

        # Deep copies so duplicate input specs don't alias nested dicts,
        # and status tallies over the *returned* records (cache hits
        # included — finish() never sees them).
        records = [copy.deepcopy(resolved[key]) for key in keys]
        statuses = [r.get("status") for r in records]
        stats.infeasible = statuses.count("infeasible")
        stats.failed = statuses.count("error")
        stats.elapsed_s = time.monotonic() - started
        return BatchResult(records=records, stats=stats)

    def _run_pool(
        self,
        jobs_map: Dict[str, Job],
        finish: Callable[..., None],
    ) -> "tuple[Dict[str, Job], Optional[str]]":
        """One process-pool pass over ``jobs_map``.

        Returns (unfinished jobs, fatal reason): ``fatal`` is set when
        the pool broke (a worker process died), in which case the
        unfinished jobs were never attempted and are safe to retry.
        If the caller's ``finish`` raises (e.g. the CLI aborting on a
        closed output pipe), unstarted futures are cancelled so the
        grid does not keep compiling into the void.
        """
        from concurrent.futures.process import BrokenProcessPool

        from ..compiler.syndcim import _failure_record, execute_job

        unfinished = dict(jobs_map)
        fatal: Optional[str] = None
        workers = min(self.jobs, len(jobs_map))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_initializer
        ) as pool:
            futures = {
                pool.submit(execute_job, job.payload()): key
                for key, job in jobs_map.items()
            }
            try:
                for future in as_completed(futures):
                    key = futures[future]
                    try:
                        record = future.result()
                    except BrokenProcessPool as exc:
                        fatal = f"{type(exc).__name__}: {exc}"
                        break
                    except Exception as exc:
                        # A single-future failure with the pool still
                        # alive (e.g. cancelled): record it, move on.
                        record = dict(
                            _failure_record(
                                unfinished[key].spec,
                                "error",
                                f"worker died: {type(exc).__name__}: {exc}",
                            ),
                            elapsed_s=0.0,
                        )
                        finish(key, record, compiled=False)
                        unfinished.pop(key, None)
                        continue
                    finish(key, record)
                    unfinished.pop(key, None)
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            if fatal is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return unfinished, fatal

    def map(self, fn: Callable, items: Iterable) -> List[object]:
        """Order-preserving parallel map over picklable ``fn``/``items``
        using this engine's worker budget; serial when ``jobs=1``."""
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        self._prewarm()
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_initializer
        ) as pool:
            return list(pool.map(fn, items))

    @staticmethod
    def _prewarm() -> None:
        """Resolve the subcircuit library once in the parent before any
        worker spawns.  Fork-started children then inherit the live
        object; spawn/forkserver children find the persistent artifact
        this call just built (or verified) and load it in milliseconds
        through :func:`_worker_initializer` — either way no worker
        re-runs the characterization.  The one combination where a
        parent build helps nobody — disk cache disabled *and* children
        that cannot inherit memory — skips it."""
        import multiprocessing

        from ..scl.cache import scl_cache_enabled

        if (
            not scl_cache_enabled()
            and multiprocessing.get_start_method() != "fork"
        ):
            return
        from ..scl.library import default_scl

        default_scl()

    def _prewarm_corners(self, jobs: Iterable[Job]) -> None:
        """Corner jobs also need the worst-corner SCL: resolve it once
        per job process in the parent (building + persisting on the
        first ever run) so every worker loads the corner artifact from
        disk.  Shares the compiler's resolution
        (:func:`repro.signoff.corners.worst_corner_scl`), so the
        prewarmed artifact is exactly the one workers will ask for."""
        if not self.corners:
            return
        try:
            from ..signoff.corners import CornerSet, worst_corner_scl
            from ..tech.process import process_by_name

            corner_set = CornerSet.from_names(self.corners, name="prewarm")
            for name in {job.process_name for job in jobs}:
                worst_corner_scl(process_by_name(name), corner_set)
        except Exception:  # pragma: no cover - best-effort warmup
            pass


def _worker_initializer() -> None:
    """Pool-worker startup hook: load the SCL from the persistent cache
    (or inherit it under fork) before the first job lands, so per-job
    latencies measure compilation, not characterization.  Failures are
    deliberately swallowed — a worker that cannot preload will simply
    build lazily on first use, exactly as before."""
    try:
        from ..scl.library import default_scl

        default_scl()
    except Exception:  # pragma: no cover - best-effort warmup
        pass
