"""Sweep grammar: compact range expressions over spec axes.

The ``repro sweep`` CLI describes design grids with one token per axis
value, where a token is either a literal value or a range::

    32              a single value
    32:256:x2       geometric: 32, 64, 128, 256  (multiply by 2)
    400:1000:+200   arithmetic: 400, 600, 800, 1000  (add 200)

Stops are inclusive when landed on exactly; a geometric step must be an
integer/float > 1, an arithmetic step nonzero (negative steps count
down).  Format axes use comma-joined groups, one group per token:
``INT4,INT8 INT8`` sweeps two format sets.

:func:`expand_grid` takes the per-axis value lists and produces the
cartesian product as :class:`~repro.spec.MacroSpec` objects in a
deterministic row-major order (height, width, mcr, formats, frequency,
vdd) — the order results appear in JSONL outputs and summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SpecificationError
from ..spec import DataFormat, MacroSpec, PPAWeights, parse_format

#: Cap on a single expanded axis, to catch runaway ranges like 1:1e9:+1.
MAX_AXIS_POINTS = 4096


def parse_range(token: str, integer: bool = True) -> List[float]:
    """Expand one axis token into its list of values (see module doc)."""
    token = token.strip()
    if not token:
        raise SpecificationError("empty sweep token")
    parts = token.split(":")
    if len(parts) == 1:
        return [_number(parts[0], integer)]
    if len(parts) != 3:
        raise SpecificationError(
            f"bad sweep range {token!r}; expected VALUE, "
            "START:STOP:xFACTOR or START:STOP:+STEP"
        )
    start = _number(parts[0], integer)
    stop = _number(parts[1], integer)
    step_token = parts[2].strip()
    if not step_token or step_token[0] not in "x+":
        raise SpecificationError(
            f"bad sweep step {parts[2]!r} in {token!r}; "
            "use x<factor> (geometric) or +<step> (arithmetic)"
        )
    values: List[float] = []
    if step_token[0] == "x":
        factor = _number(step_token[1:], integer=False)
        if factor <= 1:
            raise SpecificationError(
                f"geometric step must be > 1, got {factor} in {token!r}"
            )
        if start <= 0:
            raise SpecificationError(
                f"geometric range needs a positive start, got {start}"
            )
        if stop < start:
            raise SpecificationError(
                f"descending geometric range {token!r}; start <= stop required"
            )
        # Values come from start * factor**i (not repeated in-place
        # multiplication) so float error never accumulates — the
        # rendered values feed canonical_json() and the cache key.
        i = 0
        while True:
            value = start * factor**i
            if value > stop * (1 + 1e-9):
                break
            values.append(_round(value, integer))
            i += 1
            _check_axis_size(values, token)
    else:
        step = _number(step_token[1:], integer)
        if step == 0:
            raise SpecificationError(f"arithmetic step is zero in {token!r}")
        if (stop - start) * step < 0:
            raise SpecificationError(
                f"range {token!r} never reaches its stop with step {step:+g}"
            )
        direction = 1 if step > 0 else -1
        i = 0
        while True:
            value = start + i * step
            if (value - stop) * direction > abs(step) * 1e-9:
                break
            values.append(_round(value, integer))
            i += 1
            _check_axis_size(values, token)
    return values


def parse_axis(tokens: Sequence[str], integer: bool = True) -> List[float]:
    """Expand a whole axis (several tokens), deduplicated, order kept."""
    values: List[float] = []
    for token in tokens:
        for value in parse_range(token, integer):
            if value not in values:
                values.append(value)
    return values


def parse_format_sets(tokens: Sequence[str]) -> List[Tuple[DataFormat, ...]]:
    """Each token is a comma-joined format group: ``INT4,INT8,FP8``."""
    sets: List[Tuple[DataFormat, ...]] = []
    for token in tokens:
        names = [n for n in token.split(",") if n]
        if not names:
            raise SpecificationError(f"empty format group {token!r}")
        group = tuple(parse_format(name) for name in names)
        if group not in sets:
            sets.append(group)
    return sets


def expand_grid(
    heights: Sequence[int],
    widths: Sequence[int],
    mcrs: Sequence[int],
    format_sets: Sequence[Tuple[DataFormat, ...]],
    frequencies: Sequence[float],
    vdds: Sequence[float],
    ppa: Optional[PPAWeights] = None,
) -> List[MacroSpec]:
    """Cartesian product of the axes, row-major, as validated specs."""
    for name, axis in (
        ("height", heights),
        ("width", widths),
        ("mcr", mcrs),
        ("formats", format_sets),
        ("frequency", frequencies),
        ("vdd", vdds),
    ):
        if not axis:
            raise SpecificationError(f"sweep axis {name!r} is empty")
    specs: List[MacroSpec] = []
    for height in heights:
        for width in widths:
            for mcr in mcrs:
                for formats in format_sets:
                    for freq in frequencies:
                        for vdd in vdds:
                            # update_frequency_mhz stays at the spec
                            # default so a sweep point hashes the same
                            # as the identical spec entered via the
                            # compile CLI or a `batch --specs` file.
                            specs.append(
                                MacroSpec(
                                    height=int(height),
                                    width=int(width),
                                    mcr=int(mcr),
                                    input_formats=formats,
                                    weight_formats=formats,
                                    mac_frequency_mhz=float(freq),
                                    vdd=float(vdd),
                                    ppa=ppa or PPAWeights(),
                                )
                            )
    return specs


def grid_summary(specs: Sequence[MacroSpec]) -> str:
    """One line naming the swept axes and the grid size."""
    axes: Dict[str, List[object]] = {}
    for spec in specs:
        for name, value in (
            ("height", spec.height),
            ("width", spec.width),
            ("mcr", spec.mcr),
            ("formats", "/".join(f.name for f in spec.input_formats)),
            ("MHz", spec.mac_frequency_mhz),
            ("vdd", spec.vdd),
        ):
            axes.setdefault(name, [])
            if value not in axes[name]:
                axes[name].append(value)
    varied = [
        f"{name}[{', '.join(str(v) for v in values)}]"
        for name, values in axes.items()
        if len(values) > 1
    ]
    return (
        f"{len(specs)}-point grid"
        + (": " + " x ".join(varied) if varied else "")
    )


def _number(text: str, integer: bool) -> float:
    text = text.strip()
    try:
        return int(text) if integer else float(text)
    except ValueError:
        kind = "integer" if integer else "number"
        raise SpecificationError(
            f"bad {kind} {text!r} in sweep expression"
        ) from None


def _round(value: float, integer: bool) -> float:
    # 9 decimals snaps 0.6 + 2*0.1 = 0.7999999999999999 back to 0.8 so
    # sweep-produced values hash identically to hand-typed literals.
    return int(round(value)) if integer else round(value, 9)


def _check_axis_size(values: List[float], token: str) -> None:
    if len(values) > MAX_AXIS_POINTS:
        raise SpecificationError(
            f"sweep range {token!r} expands past {MAX_AXIS_POINTS} points"
        )
