"""Job descriptions for the batch engine.

A *job* is everything a worker process needs to reproduce one
compilation: the spec, the flow options and (for implement-only jobs)
the explicit architecture.  Jobs convert to plain-dict payloads for the
pool (consumed by :func:`repro.compiler.syndcim.execute_job`) and to a
stable content-hash :meth:`key` for deduplication and the on-disk
:class:`~repro.batch.cache.ResultCache`.

Two jobs get the same key iff a compliant compiler would produce the
same record for both — so the key covers the spec, every option that
steers the flow, the process node and the schema version, and nothing
else (no timestamps, no hostnames, no object ids).

The engine may graft *ephemeral* keys onto a payload after hashing
(:data:`EPHEMERAL_PAYLOAD_KEYS`) — per-attempt context the worker
consumes before the job runs.  They are never produced by
:meth:`payload` itself, so the key stays a pure function of the work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..arch import MacroArchitecture
from ..spec import MacroSpec
from ..tech.process import GENERIC_40NM
from ..verify.harness import DEFAULT_VECTORS
from .cache import CACHE_SCHEMA_VERSION

#: Keys the engine may add to a payload *after* hashing: ephemeral
#: per-attempt context (currently the fault-injection coordinates),
#: popped by :func:`repro.compiler.syndcim.execute_job` before the job
#: runs and never part of :meth:`CompileJob.key`.
EPHEMERAL_PAYLOAD_KEYS = ("fault_ctx",)


@dataclass(frozen=True)
class CompileJob:
    """One full search(+implementation) run of a single spec."""

    spec: MacroSpec
    implement: bool = True
    input_sparsity: float = 0.0
    weight_sparsity: float = 0.0
    seed: Optional[int] = None
    process_name: str = GENERIC_40NM.name
    #: Signoff-corner *names* (resolved by the worker against the
    #: registered corners, like the process name); ``None`` = nominal.
    corners: Optional[Tuple[str, ...]] = None
    #: Post-synthesis functional verification of the implemented
    #: netlist (see :mod:`repro.verify`); the vector count steers the
    #: stimulus schedule and so is part of the key.
    verify: bool = False
    verify_vectors: int = DEFAULT_VECTORS
    #: Threshold-flavor policy (``svt``/``hvt``/``lvt``/``ulvt`` or
    #: ``auto``); steers the search moves and leakage recovery, so it
    #: is part of the key.
    vt: str = "svt"

    def payload(self) -> Dict[str, object]:
        return {
            "type": "compile",
            "spec": self.spec.to_dict(),
            "process": self.process_name,
            "options": {
                "implement": self.implement,
                "input_sparsity": self.input_sparsity,
                "weight_sparsity": self.weight_sparsity,
                "seed": self.seed,
                "corners": (
                    None if self.corners is None else list(self.corners)
                ),
                "verify": self.verify,
                "verify_vectors": self.verify_vectors,
                "vt": self.vt,
            },
        }

    def key(self) -> str:
        return _hash_payload(self.payload())


@dataclass(frozen=True)
class ImplementJob:
    """Implementation flow only, for an explicit architecture choice."""

    spec: MacroSpec
    arch: MacroArchitecture
    input_sparsity: float = 0.0
    weight_sparsity: float = 0.0
    process_name: str = GENERIC_40NM.name
    corners: Optional[Tuple[str, ...]] = None
    verify: bool = False
    verify_vectors: int = DEFAULT_VECTORS
    #: Netlist-level hvt leakage recovery during implementation (the
    #: implement-only face of ``--vt auto``).  The architecture's own
    #: ``vt`` knob travels in ``arch``.
    vt_recovery: bool = False

    def payload(self) -> Dict[str, object]:
        return {
            "type": "implement",
            "spec": self.spec.to_dict(),
            "arch": self.arch.to_dict(),
            "process": self.process_name,
            "options": {
                "input_sparsity": self.input_sparsity,
                "weight_sparsity": self.weight_sparsity,
                "corners": (
                    None if self.corners is None else list(self.corners)
                ),
                "verify": self.verify,
                "verify_vectors": self.verify_vectors,
                "vt_recovery": self.vt_recovery,
            },
        }

    def key(self) -> str:
        return _hash_payload(self.payload())


def _hash_payload(payload: Dict[str, object]) -> str:
    """sha256 over the canonical JSON of (payload, schema, compiler
    version); the payload already carries the process name.

    The version term is what ties "same key" to "same result": when a
    later release changes the estimation or search models, its results
    land under fresh keys instead of being served stale from a cache
    populated by an older compiler.
    """
    from .. import __version__

    keyed = {
        "schema": CACHE_SCHEMA_VERSION,
        "compiler": __version__,
        "payload": payload,
    }
    blob = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
