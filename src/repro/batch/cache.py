"""Persistent on-disk result cache for compiled design points.

Compiling one macro takes seconds to minutes (the implementation flow
dominates); design-space sweeps revisit the same (spec, options) points
constantly — re-running a sweep after editing a report, extending a grid
that overlaps the previous one, two users exploring the same corner.
The cache turns all of those into millisecond lookups.

Layout: one JSON file per result under ``<root>/v1/<kk>/<key>.json``
where ``key`` is the job's content hash (see
:meth:`repro.batch.jobs.CompileJob.key`) and ``kk`` its first two hex
digits (keeps directories small on big sweeps).  Files are written
atomically (tempfile + ``os.replace``) so a killed sweep never leaves a
truncated record behind.  A corrupt record file reads as a miss *and*
is quarantined (renamed to ``.corrupt-<key>.json``) with one warning
per artifact, so a bad entry is recompiled once instead of being
re-read — and re-missed — by every later lookup;
:func:`cache_corruption_count` makes the churn visible to CI, mirroring
the SCL cache's corruption accounting.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; every
CLI entry point takes ``--cache-dir`` to override it.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

#: Bump when the record schema changes incompatibly; old entries are
#: simply never looked up again (they live under the old version dir).
#: v2: records carry per-corner signoff metrics (``implementation.
#: signoff``) and jobs key the corner-name tuple.
#: v3: records carry functional-verification results
#: (``implementation.verified`` / ``implementation.verification``) and
#: jobs key the verify options.
#: v4: multi-Vt — architectures carry a ``vt`` knob, compile jobs key
#: the vt policy, implement jobs key the leakage-recovery flag.
#: v5: resilience — records carry a ``fault`` marker (None outside
#: chaos runs) and the batch engine journals terminal records for
#: crash-safe resume.
CACHE_SCHEMA_VERSION = 5


#: Record files found corrupt since process start — one warning each,
#: mirroring the SCL cache's per-artifact corruption accounting.
_CORRUPT_KEYS: Set[str] = set()


def cache_corruption_count() -> int:
    """Distinct corrupt result-cache records hit (and quarantined)
    since process start."""
    return len(_CORRUPT_KEYS)


def _quarantine(path: pathlib.Path, key: str, exc: Exception) -> None:
    """Move a corrupt record aside (``.corrupt-<key>.json``, which the
    dot prefix also hides from :meth:`ResultCache.entry_count`) so the
    next lookup is an honest miss → recompile → overwrite, not an
    eternal re-read of the same bad bytes.  A failed rename degrades
    to the old leave-in-place behaviour."""
    quarantined = path.with_name(f".corrupt-{key}.json")
    try:
        os.replace(path, quarantined)
    except OSError:
        quarantined = path
    if key not in _CORRUPT_KEYS:
        _CORRUPT_KEYS.add(key)
        warnings.warn(
            f"repro: result-cache record {path.name} is corrupt "
            f"({type(exc).__name__}: {exc}); quarantined as "
            f"{quarantined.name}, recompiling",
            RuntimeWarning,
            stacklevel=3,
        )


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path("~/.cache/repro").expanduser()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt records this instance hit (each also quarantined and
    #: counted process-wide by :func:`cache_corruption_count`).
    corruptions: int = 0

    def describe(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stores"


@dataclass
class ResultCache:
    """Content-addressed JSON artifact store.

    ``get``/``put`` speak plain dicts (the record schema of
    :mod:`repro.compiler.syndcim`); the cache neither inspects nor
    validates them beyond JSON round-tripping.
    """

    root: pathlib.Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root).expanduser()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Return the cached record for ``key``, or ``None`` on a miss.

        A missing (or unreadable) file is a quiet miss; a *present but
        unparsable* one is corruption — it is quarantined with a
        warning (see :func:`_quarantine`) and then misses, so the
        caller recompiles and the fresh store lands on a clean path.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            record = entry["record"]
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except OSError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self.stats.misses += 1
            self.stats.corruptions += 1
            _quarantine(path, key, exc)
            return None
        self.stats.hits += 1
        return record

    def put(self, key: str, record: Dict[str, object]) -> None:
        """Store ``record`` under ``key`` atomically.

        Mirrors :meth:`get`'s tolerance: an unwritable/full filesystem
        degrades to "not cached" rather than raising — a cache store
        failure must never abort the batch run that produced the
        record.
        """
        if not self.enabled:
            return
        path = self._path(key)
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA_VERSION,
            "created": time.time(),
            "record": record,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
        except OSError:
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            # TypeError/ValueError: record not JSON-serializable —
            # still "not cached", never a batch abort.
            _unlink_quietly(tmp)
            return
        except BaseException:
            _unlink_quietly(tmp)
            raise
        self.stats.stores += 1
        _maybe_inject_corruption(path, key)

    def __contains__(self, key: str) -> bool:
        return self.enabled and self._path(key).is_file()

    def entry_count(self) -> int:
        """Number of records currently on disk (walks the store)."""
        version_dir = self.root / f"v{CACHE_SCHEMA_VERSION}"
        if not version_dir.is_dir():
            return 0
        # Exclude .tmp-* orphans left by a killed writer and
        # .corrupt-* quarantine leftovers.
        return sum(
            1
            for p in version_dir.glob("*/*.json")
            if not p.name.startswith(".")
        )


def _maybe_inject_corruption(path: pathlib.Path, key: str) -> None:
    """Chaos hook: when ``$REPRO_FAULTS`` arms ``corrupt_cache``,
    truncate the record just written so the *next* lookup exercises the
    quarantine path (see :mod:`repro.batch.faults`).  Free when the
    harness is off — one cached env check."""
    from .faults import active_plan

    plan = active_plan()
    if plan is None or not plan.should("corrupt_cache", key):
        return
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
    except OSError:
        pass
