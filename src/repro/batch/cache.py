"""Persistent on-disk result cache for compiled design points.

Compiling one macro takes seconds to minutes (the implementation flow
dominates); design-space sweeps revisit the same (spec, options) points
constantly — re-running a sweep after editing a report, extending a grid
that overlaps the previous one, two users exploring the same corner.
The cache turns all of those into millisecond lookups.

Layout: one JSON file per result under ``<root>/v1/<kk>/<key>.json``
where ``key`` is the job's content hash (see
:meth:`repro.batch.jobs.CompileJob.key`) and ``kk`` its first two hex
digits (keeps directories small on big sweeps).  Files are written
atomically (tempfile + ``os.replace``) so a killed sweep never leaves a
truncated record behind.  A corrupt record file reads as a miss *and*
is quarantined (renamed to ``.corrupt-<key>.json``) with one warning
per artifact, so a bad entry is recompiled once instead of being
re-read — and re-missed — by every later lookup;
:func:`cache_corruption_count` makes the churn visible to CI, mirroring
the SCL cache's corruption accounting.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; every
CLI entry point takes ``--cache-dir`` to override it.

:class:`ResultStore` is the storage *interface* the batch engine and
the compile service program against — ``get``/``put``/``entry_count``/
``occupancy`` over plain-dict records.  :class:`ResultCache` is the
default filesystem backend; :class:`MemoryResultStore` is the
in-process backend (tests, cache-less services).  Long-lived services
bound the filesystem backend with a size budget
(``$REPRO_CACHE_BUDGET_MB`` or ``ResultCache(budget_mb=...)``): puts
evict least-recently-used records past the budget, while quarantined
``.corrupt-*`` evidence is *never* evicted silently — it counts toward
usage and surfaces in :class:`CacheStats`/:meth:`ResultCache.occupancy`
so an operator decides when the evidence has served its purpose.
"""

from __future__ import annotations

import copy
import json
import os
import pathlib
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Bump when the record schema changes incompatibly; old entries are
#: simply never looked up again (they live under the old version dir).
#: v2: records carry per-corner signoff metrics (``implementation.
#: signoff``) and jobs key the corner-name tuple.
#: v3: records carry functional-verification results
#: (``implementation.verified`` / ``implementation.verification``) and
#: jobs key the verify options.
#: v4: multi-Vt — architectures carry a ``vt`` knob, compile jobs key
#: the vt policy, implement jobs key the leakage-recovery flag.
#: v5: resilience — records carry a ``fault`` marker (None outside
#: chaos runs) and the batch engine journals terminal records for
#: crash-safe resume.
CACHE_SCHEMA_VERSION = 5


#: Record files found corrupt since process start — one warning each,
#: mirroring the SCL cache's per-artifact corruption accounting.
_CORRUPT_KEYS: Set[str] = set()


def cache_corruption_count() -> int:
    """Distinct corrupt result-cache records hit (and quarantined)
    since process start."""
    return len(_CORRUPT_KEYS)


def _quarantine(path: pathlib.Path, key: str, exc: Exception) -> None:
    """Move a corrupt record aside (``.corrupt-<key>.json``, which the
    dot prefix also hides from :meth:`ResultCache.entry_count`) so the
    next lookup is an honest miss → recompile → overwrite, not an
    eternal re-read of the same bad bytes.  A failed rename degrades
    to the old leave-in-place behaviour."""
    quarantined = path.with_name(f".corrupt-{key}.json")
    try:
        os.replace(path, quarantined)
    except OSError:
        quarantined = path
    if key not in _CORRUPT_KEYS:
        _CORRUPT_KEYS.add(key)
        warnings.warn(
            f"repro: result-cache record {path.name} is corrupt "
            f"({type(exc).__name__}: {exc}); quarantined as "
            f"{quarantined.name}, recompiling",
            RuntimeWarning,
            stacklevel=3,
        )


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path("~/.cache/repro").expanduser()


#: Environment override for the result-store size budget (megabytes);
#: unset/empty means unbounded (the historical behaviour).
ENV_CACHE_BUDGET_MB = "REPRO_CACHE_BUDGET_MB"


def _budget_from_env() -> Optional[float]:
    text = os.environ.get(ENV_CACHE_BUDGET_MB)
    if not text:
        return None
    try:
        budget = float(text)
    except ValueError:
        warnings.warn(
            f"repro: ignoring malformed {ENV_CACHE_BUDGET_MB}={text!r}",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return budget if budget > 0 else None


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt records this instance hit (each also quarantined and
    #: counted process-wide by :func:`cache_corruption_count`).
    corruptions: int = 0
    #: Records removed (and their bytes) by the size-budget LRU sweep.
    evictions: int = 0
    evicted_bytes: int = 0
    #: Quarantined ``.corrupt-*`` files the last sweep *kept* — they
    #: count toward the budget but are never silently evicted.
    quarantine_kept: int = 0
    #: Hit-path ``os.utime`` refreshes that failed (read-only store,
    #: permission drift); each also lands in the in-process recency
    #: fallback so the LRU sweep still sees the hit.
    recency_touch_failures: int = 0

    def describe(self) -> str:
        line = (
            f"{self.hits} hits, {self.misses} misses, {self.stores} stores"
        )
        if self.evictions:
            line += (
                f", {self.evictions} evicted"
                f" ({self.evicted_bytes / 1e6:.1f} MB)"
            )
        return line


class ResultStore:
    """Interface between record producers and record storage.

    The batch engine and the compile service speak only this surface:
    ``get(key) -> record | None``, ``put(key, record)``, membership,
    and the occupancy accounting a ``/v1/stats`` endpoint reports.
    Implementations must make ``get`` after ``put`` return an equal
    record and must never let a storage failure raise into the run
    that produced the record.
    """

    #: Hit/miss accounting every backend keeps.
    stats: CacheStats

    def get(self, key: str) -> Optional[Dict[str, object]]:
        raise NotImplementedError

    def put(self, key: str, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def entry_count(self) -> int:
        raise NotImplementedError

    def occupancy(self) -> Dict[str, object]:
        """Store-level accounting for stats endpoints; backends extend
        with whatever they can measure (bytes, budget, quarantine)."""
        return {"entries": self.entry_count()}


class MemoryResultStore(ResultStore):
    """Dict-backed :class:`ResultStore`: per-process, thread-safe,
    optionally LRU-bounded by entry count.  The backend a cache-less
    service uses so in-flight deduplication and result fetches still
    work without touching the filesystem."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._records: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            record = self._records.get(key)
            if record is None:
                self.stats.misses += 1
                return None
            self._records.move_to_end(key)
            self.stats.hits += 1
            return copy.deepcopy(record)

    def put(self, key: str, record: Dict[str, object]) -> None:
        with self._lock:
            self._records[key] = copy.deepcopy(record)
            self._records.move_to_end(key)
            self.stats.stores += 1
            while (
                self.max_entries is not None
                and len(self._records) > self.max_entries
            ):
                self._records.popitem(last=False)
                self.stats.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def entry_count(self) -> int:
        with self._lock:
            return len(self._records)


@dataclass
class ResultCache(ResultStore):
    """Content-addressed JSON artifact store (the default
    :class:`ResultStore` backend).

    ``get``/``put`` speak plain dicts (the record schema of
    :mod:`repro.compiler.syndcim`); the cache neither inspects nor
    validates them beyond JSON round-tripping.

    ``budget_mb`` (default ``$REPRO_CACHE_BUDGET_MB``, unset =
    unbounded) arms the LRU size budget: a hit refreshes its record's
    mtime, and a put past the budget evicts least-recently-used
    records until usage fits.  Quarantined ``.corrupt-*`` evidence is
    counted toward usage but never evicted (see module docstring).
    """

    root: pathlib.Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    budget_mb: Optional[float] = None

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root).expanduser()
        if self.budget_mb is None:
            self.budget_mb = _budget_from_env()
        #: Usage as of the last sweep plus bytes written since; None
        #: until the first sweep.  Lets a put skip the directory walk
        #: while demonstrably under budget.
        self._tracked_bytes: Optional[int] = None
        #: In-process recency fallback (key -> wall-clock hit time) for
        #: records whose hit-path mtime refresh failed — without it a
        #: read-only store makes hot records look *oldest* and the LRU
        #: sweep evicts them first.  Consulted by :meth:`_scan`.
        self._recency_fallback: Dict[str, float] = {}

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Return the cached record for ``key``, or ``None`` on a miss.

        A missing (or unreadable) file is a quiet miss; a *present but
        unparsable* one is corruption — it is quarantined with a
        warning (see :func:`_quarantine`) and then misses, so the
        caller recompiles and the fresh store lands on a clean path.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            record = entry["record"]
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except OSError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self.stats.misses += 1
            self.stats.corruptions += 1
            _quarantine(path, key, exc)
            return None
        self.stats.hits += 1
        if self.budget_mb is not None:
            # Refresh recency so the LRU sweep sees hits, not just
            # writes.  A failed touch (read-only store, permission
            # drift) must not silently age hot records to the front of
            # the eviction queue: count it, warn once per cache, and
            # remember the hit in the in-process fallback map that
            # :meth:`_scan` folds into mtimes for the session.
            try:
                os.utime(path)
            except OSError as exc:
                self.stats.recency_touch_failures += 1
                self._recency_fallback[key] = time.time()
                self._warn_recency_degraded(exc)
            else:
                # Disk recency is authoritative again; drop the stale
                # fallback entry so it cannot pin an old timestamp.
                self._recency_fallback.pop(key, None)
        return record

    def put(self, key: str, record: Dict[str, object]) -> None:
        """Store ``record`` under ``key`` atomically.

        Mirrors :meth:`get`'s tolerance: an unwritable/full filesystem
        degrades to "not cached" rather than raising — a cache store
        failure must never abort the batch run that produced the
        record.
        """
        if not self.enabled:
            return
        path = self._path(key)
        entry = {
            "key": key,
            "schema": CACHE_SCHEMA_VERSION,
            "created": time.time(),
            "record": record,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
        except OSError:
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            # TypeError/ValueError: record not JSON-serializable —
            # still "not cached", never a batch abort.
            _unlink_quietly(tmp)
            return
        except BaseException:
            _unlink_quietly(tmp)
            raise
        self.stats.stores += 1
        _maybe_inject_corruption(path, key)
        self._note_written(path)

    def __contains__(self, key: str) -> bool:
        return self.enabled and self._path(key).is_file()

    def entry_count(self) -> int:
        """Number of records currently on disk (walks the store)."""
        version_dir = self.root / f"v{CACHE_SCHEMA_VERSION}"
        if not version_dir.is_dir():
            return 0
        # Exclude .tmp-* orphans left by a killed writer and
        # .corrupt-* quarantine leftovers.
        return sum(
            1
            for p in version_dir.glob("*/*.json")
            if not p.name.startswith(".")
        )

    # -- size budget --------------------------------------------------------

    @property
    def budget_bytes(self) -> Optional[int]:
        return (
            None if self.budget_mb is None else int(self.budget_mb * 1e6)
        )

    def _note_written(self, path: pathlib.Path) -> None:
        """Amortized budget enforcement: track bytes written since the
        last sweep and only walk the store when the running total could
        exceed the budget."""
        budget = self.budget_bytes
        if budget is None:
            return
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if self._tracked_bytes is not None:
            self._tracked_bytes += size
            if self._tracked_bytes <= budget:
                return
        self.enforce_budget()

    def _scan(
        self,
    ) -> Tuple[List[Tuple[float, int, pathlib.Path]], int, int, int]:
        """Walk every schema-version dir once: evictable records as
        (mtime, size, path), plus total / quarantined byte and file
        counts.  ``.tmp-*`` writer orphans are ignored."""
        records: List[Tuple[float, int, pathlib.Path]] = []
        total = 0
        quarantined_bytes = 0
        quarantined = 0
        for version_dir in sorted(self.root.glob("v*")):
            if not version_dir.is_dir():
                continue
            for path in version_dir.glob("*/*.json"):
                name = path.name
                if name.startswith(".tmp-"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                total += stat.st_size
                if name.startswith("."):
                    # Quarantined (or otherwise hidden) evidence:
                    # counted, never evicted.
                    quarantined += 1
                    quarantined_bytes += stat.st_size
                    continue
                # A hit whose mtime refresh failed still counts as
                # recent for this session (see get()'s fallback map).
                mtime = max(
                    stat.st_mtime,
                    self._recency_fallback.get(path.stem, 0.0),
                )
                records.append((mtime, stat.st_size, path))
        return records, total, quarantined, quarantined_bytes

    def enforce_budget(self) -> int:
        """Evict least-recently-used records until usage fits the
        budget; returns the number evicted.  No-op when unbounded.
        Quarantined evidence survives every sweep — if it alone busts
        the budget, that is reported (via :meth:`occupancy` and a
        one-time warning), not silently resolved."""
        budget = self.budget_bytes
        if budget is None or not self.enabled:
            return 0
        records, usage, quarantined, quarantined_bytes = self._scan()
        self.stats.quarantine_kept = quarantined
        evicted = 0
        if usage > budget:
            records.sort()  # oldest mtime first
            for _mtime, size, path in records:
                if usage <= budget:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                usage -= size
                evicted += 1
                self.stats.evictions += 1
                self.stats.evicted_bytes += size
        if usage > budget and quarantined_bytes:
            # Everything evictable is gone and the store is still over:
            # the overage is quarantined evidence, which only a human
            # may delete.
            self._warn_quarantine_over_budget(quarantined, quarantined_bytes)
        self._tracked_bytes = usage
        return evicted

    _quarantine_warned = False
    _recency_warned = False

    def _warn_recency_degraded(self, exc: Exception) -> None:
        """One warning per cache instance, mirroring the quarantine
        path: LRU recency is degraded to the in-process fallback, which
        dies with the process — an operator should fix the store."""
        if self._recency_warned:
            return
        self._recency_warned = True
        warnings.warn(
            f"repro: result cache could not refresh hit recency under "
            f"{self.root} ({type(exc).__name__}: {exc}); falling back "
            f"to an in-process recency map for this session — LRU "
            f"eviction order degrades across restarts until the store "
            f"is writable again",
            RuntimeWarning,
            stacklevel=3,
        )

    def _warn_quarantine_over_budget(self, count: int, size: int) -> None:
        if self._quarantine_warned:
            return
        self._quarantine_warned = True
        warnings.warn(
            f"repro: result cache exceeds its budget but the excess is "
            f"{count} quarantined .corrupt-* file(s) ({size / 1e6:.1f} "
            f"MB), which are never evicted automatically; inspect and "
            f"delete them under {self.root} to reclaim the space",
            RuntimeWarning,
            stacklevel=2,
        )

    def occupancy(self) -> Dict[str, object]:
        """Entries, bytes, quarantine and budget accounting (one walk)."""
        records, usage, quarantined, quarantined_bytes = self._scan()
        return {
            "entries": len(records),
            "bytes": usage,
            "quarantined": quarantined,
            "quarantined_bytes": quarantined_bytes,
            "budget_mb": self.budget_mb,
            "evictions": self.stats.evictions,
            "evicted_bytes": self.stats.evicted_bytes,
            "recency_touch_failures": self.stats.recency_touch_failures,
        }


def _maybe_inject_corruption(path: pathlib.Path, key: str) -> None:
    """Chaos hook: when ``$REPRO_FAULTS`` arms ``corrupt_cache``,
    truncate the record just written so the *next* lookup exercises the
    quarantine path (see :mod:`repro.batch.faults`).  Free when the
    harness is off — one cached env check."""
    from .faults import active_plan

    plan = active_plan()
    if plan is None or not plan.should("corrupt_cache", key):
        return
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
    except OSError:
        pass
