"""Aggregate sweep results into Pareto and scaling reports.

Consumes the JSONL records a ``repro sweep``/``repro batch`` run writes
(or a list of record dicts in memory) and renders the same styles of
table the paper benchmarks produce: a per-point results table, the
cross-spec Pareto frontier over (power, area) with an ASCII scatter
(``benchmarks/results/fig8_pareto_frontier.txt``), and an array-size
scaling table (``fig4_scaling.txt``).

Also runnable directly::

    python -m repro.batch.summarize sweep_results.jsonl
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence

from ..compiler.report import format_pareto_ascii, format_table
from ..search.pareto import pareto_front

Record = Dict[str, object]


def load_records(path: "pathlib.Path | str") -> List[Record]:
    """Read records from a JSONL file (or a JSON array file)."""
    text = pathlib.Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("["):
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError(f"{path}: expected a JSON array")
        return data
    records = []
    for i, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i}: bad JSONL line: {exc}") from None
    return records


def _spec_name(record: Record) -> str:
    summary = record.get("spec_summary")
    if summary:
        # Every compiler-produced record carries the canonical
        # MacroSpec.describe() string; rebuilding it here would drift.
        return str(summary)
    spec = record.get("spec") or {}
    if isinstance(spec, dict) and spec:
        fmts = "/".join(
            f["name"] for f in spec.get("input_formats", [])  # type: ignore[index]
        )
        freq = spec.get("mac_frequency_mhz")
        freq_txt = f"{freq:.0f}" if isinstance(freq, (int, float)) else "?"
        return (
            f"{spec.get('height')}x{spec.get('width')} "
            f"MCR={spec.get('mcr')} [{fmts}] "
            f"@{freq_txt}MHz {spec.get('vdd')}V"
        )
    return str(record.get("spec_summary", "?"))


def results_table(records: Sequence[Record]) -> str:
    """One row per sweep point: status, selected design, key numbers."""
    rows = []
    for record in records:
        selected = record.get("selected") or {}
        impl = record.get("implementation") or {}
        rows.append(
            [
                _spec_name(record),
                str(record.get("status")),
                selected.get("arch_summary", "-") if selected else "-",
                round(selected["power_mw"], 1) if selected else "-",
                round(selected["area_um2"] / 1e6, 4) if selected else "-",
                round(impl["max_frequency_mhz"], 0) if impl else "-",
                (
                    ("yes" if impl.get("signoff_clean") else "NO")
                    if impl
                    else "-"
                ),
            ]
        )
    return format_table(
        [
            "spec",
            "status",
            "selected",
            "power_mw",
            "area_mm2",
            "fmax_MHz",
            "signoff",
        ],
        rows,
    )


def pareto_table(records: Sequence[Record]) -> str:
    """Cross-spec Pareto frontier over (power, area) of selections."""
    points = [
        r
        for r in records
        if r.get("status") == "ok" and r.get("selected")
    ]
    if not points:
        return "(no feasible points)"
    front = pareto_front(
        points,
        lambda r: (r["selected"]["power_mw"], r["selected"]["area_um2"]),  # type: ignore[index]
    )
    front_ids = {id(r) for r in front}
    rows = [
        [
            _spec_name(r),
            r["selected"]["arch_summary"],  # type: ignore[index]
            round(r["selected"]["power_mw"], 1),  # type: ignore[index]
            round(r["selected"]["area_um2"] / 1e6, 4),  # type: ignore[index]
            round(r["selected"].get("tops_per_watt", 0.0), 2),  # type: ignore[union-attr]
            "*" if id(r) in front_ids else "",
        ]
        for r in sorted(
            points, key=lambda r: r["selected"]["power_mw"]  # type: ignore[index]
        )
    ]
    table = format_table(
        ["spec", "selected", "power_mw", "area_mm2", "TOPS/W", "front"],
        rows,
    )
    plot_points = [
        (
            r["selected"]["area_um2"] / 1e6,  # type: ignore[index]
            r["selected"]["power_mw"],  # type: ignore[index]
            1 if id(r) in front_ids else 0,
        )
        for r in points
    ]
    plot = format_pareto_ascii(plot_points, "area [mm^2]", "power [mW]")
    return (
        table
        + "\n\nsweep points (o) and cross-spec frontier (*):\n"
        + plot
    )


def scaling_table(records: Sequence[Record]) -> Optional[str]:
    """Array-size scaling of the selected designs (fig4 style); ``None``
    when the sweep holds a single array size."""
    groups: Dict[tuple, List[Record]] = {}
    for record in records:
        if record.get("status") != "ok" or not record.get("selected"):
            continue
        spec = record["spec"]  # type: ignore[index]
        groups.setdefault((spec["height"], spec["width"]), []).append(record)  # type: ignore[index]
    if len(groups) < 2:
        return None
    rows = []
    for (height, width), members in sorted(groups.items()):
        best = min(members, key=lambda r: r["selected"]["power_mw"])  # type: ignore[index]
        sel = best["selected"]  # type: ignore[index]
        rows.append(
            [
                f"{height}x{width}",
                len(members),
                round(sel["power_mw"], 1),
                round(sel["area_um2"] / 1e6, 4),
                round(sel["critical_path_ns"], 3),
                round(sel.get("tops_per_watt", 0.0), 2),
            ]
        )
    return format_table(
        ["macro", "points", "best_mW", "area_mm2", "crit_ns", "TOPS/W"],
        rows,
    )


def summarize(records: Sequence[Record]) -> str:
    """Full text report over a sweep's records."""
    statuses = [r.get("status") for r in records]
    lines = [
        f"{len(records)} sweep points: {statuses.count('ok')} ok, "
        f"{statuses.count('infeasible')} infeasible, "
        f"{statuses.count('error')} failed",
        "",
        results_table(records),
        "",
        "Pareto frontier across the sweep:",
        pareto_table(records),
    ]
    scaling = scaling_table(records)
    if scaling is not None:
        lines += ["", "array-size scaling:", scaling]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.batch.summarize",
        description="Aggregate a sweep's JSONL results into tables.",
    )
    parser.add_argument("results", help="JSONL (or JSON array) results file")
    args = parser.parse_args(argv)
    try:
        records = load_records(args.results)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not records:
        print("error: no records found", file=sys.stderr)
        return 1
    print(summarize(records))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
