"""Deterministic fault injection: the batch engine's chaos harness.

A resilient batch engine is only trustworthy if its recovery paths run
in CI, not just in production incidents.  This module turns worker
crashes, hangs and cache corruption into *scheduled, reproducible*
events::

    REPRO_FAULTS=crash:0.2,hang:0.1,corrupt_cache:0.1 \\
        python -m repro sweep --height 8:64:x2 ...

Fault kinds
-----------
``crash``
    The worker calls ``os._exit(70)`` before running its job — the
    process dies without cleanup, exactly like an OOM kill or a
    segfault.  The parent sees ``BrokenProcessPool`` (transient →
    retried).
``hang``
    The worker sleeps ``$REPRO_FAULT_HANG_S`` seconds (default 60)
    before running — long enough to trip any sane ``--job-timeout``,
    driving the watchdog's kill/recycle path.
``raise``
    The worker raises :class:`FaultInjected` from the job function
    itself, with the pool still alive — the single-future failure
    branch (transient → retried).
``corrupt_cache``
    :meth:`repro.batch.cache.ResultCache.put` truncates the record it
    just wrote, so the *next* lookup exercises the quarantine path.

Determinism
-----------
Every decision is a pure function of
``(REPRO_FAULT_SEED, kind, job key, attempt)`` — no global RNG state,
no wall clock.  The parent and every worker (fork or spawn) compute
identical draws, so the engine can annotate records with the fault it
*knows* was injected, and a test can predict exactly which jobs fail.
Because the attempt number is part of the draw, a probabilistic fault
need not recur on retry; the ``:first`` limiter (``crash:1.0:first``)
pins a fault to attempt 1 only — the deterministic way to script
"fail once, then succeed on retry".

See ``docs/robustness.md`` for the cookbook.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import SpecificationError

#: Environment variables steering the harness.
ENV_FAULTS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"
ENV_HANG_S = "REPRO_FAULT_HANG_S"

#: Every fault kind the grammar accepts.  The first three run in the
#: worker (ordered: a job can only die one way per attempt); the last
#: runs wherever the result cache stores records.
WORKER_KINDS = ("crash", "hang", "raise")
KINDS = WORKER_KINDS + ("corrupt_cache",)

#: Exit status of an injected crash — distinctive in process listings.
CRASH_EXIT_CODE = 70


class FaultInjected(RuntimeError):
    """Raised by the ``raise`` fault kind inside a worker."""


@dataclass(frozen=True)
class FaultRule:
    """One armed fault kind: fire with ``probability`` per (key,
    attempt) draw; ``first_attempt_only`` restricts it to attempt 1."""

    kind: str
    probability: float
    first_attempt_only: bool = False


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable fault schedule (see module docstring)."""

    rules: Mapping[str, FaultRule] = field(default_factory=dict)
    seed: int = 0
    hang_s: float = 60.0

    @classmethod
    def parse(
        cls, text: str, seed: int = 0, hang_s: float = 60.0
    ) -> "FaultPlan":
        """Parse ``kind:prob[,kind:prob[:first],...]``.

        Raises :class:`~repro.errors.SpecificationError` on unknown
        kinds, unparsable probabilities or probabilities outside
        ``[0, 1]`` — a typo'd chaos run must fail loudly, not run
        clean and "pass".
        """
        rules: Dict[str, FaultRule] = {}
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            parts = token.split(":")
            if len(parts) not in (2, 3):
                raise SpecificationError(
                    f"fault spec {token!r}: expected kind:prob[:first]"
                )
            kind = parts[0].strip()
            if kind not in KINDS:
                raise SpecificationError(
                    f"fault spec {token!r}: unknown kind {kind!r} "
                    f"(known: {', '.join(KINDS)})"
                )
            try:
                probability = float(parts[1])
            except ValueError:
                raise SpecificationError(
                    f"fault spec {token!r}: bad probability {parts[1]!r}"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise SpecificationError(
                    f"fault spec {token!r}: probability must be in [0, 1]"
                )
            first = False
            if len(parts) == 3:
                if parts[2].strip() != "first":
                    raise SpecificationError(
                        f"fault spec {token!r}: unknown limiter "
                        f"{parts[2]!r} (only 'first')"
                    )
                first = True
            rules[kind] = FaultRule(kind, probability, first)
        return cls(rules=rules, seed=seed, hang_s=hang_s)

    def should(self, kind: str, key: str, attempt: int = 1) -> bool:
        """Deterministic verdict: does ``kind`` fire for this
        (job key, attempt)?  Parent and workers agree by construction."""
        rule = self.rules.get(kind)
        if rule is None or rule.probability <= 0.0:
            return False
        if rule.first_attempt_only and attempt > 1:
            return False
        return _draw(self.seed, kind, key, attempt) < rule.probability

    def planned(self, key: str, attempt: int) -> Optional[str]:
        """The worker-side fault (if any) scheduled for this attempt —
        what the engine stamps into ``record["fault"]``.  Mirrors the
        order :func:`inject_worker_faults` checks, so the annotation
        names the fault that actually fired."""
        for kind in WORKER_KINDS:
            if self.should(kind, key, attempt):
                return kind
        return None

    def describe(self) -> str:
        armed = ", ".join(
            f"{r.kind}:{r.probability:g}" + (":first" if r.first_attempt_only else "")
            for r in self.rules.values()
        )
        return f"faults armed ({armed}; seed {self.seed})"


def _draw(seed: int, kind: str, key: str, attempt: int) -> float:
    """Uniform [0, 1) from a sha256 of the decision coordinates —
    stable across processes, platforms and PYTHONHASHSEED."""
    blob = f"{seed}:{kind}:{key}:{attempt}".encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


# -- environment resolution --------------------------------------------------

#: (env signature, parsed plan) — re-parsed only when the environment
#: actually changes, so the per-record cache hook costs a dict lookup.
_CACHED_SIG: Optional[Tuple[Optional[str], ...]] = None
_CACHED_PLAN: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan armed by ``$REPRO_FAULTS``, or ``None`` (the default,
    fault-free world).  A malformed spec warns once and disarms rather
    than killing whatever process asked — workers must never die to a
    typo'd environment; arm-time validation belongs to the caller (the
    CLI and tests call :meth:`FaultPlan.parse` directly)."""
    global _CACHED_SIG, _CACHED_PLAN
    sig = (
        os.environ.get(ENV_FAULTS),
        os.environ.get(ENV_SEED),
        os.environ.get(ENV_HANG_S),
    )
    if sig == _CACHED_SIG:
        return _CACHED_PLAN
    _CACHED_SIG = sig
    text, seed_text, hang_text = sig
    if not text:
        _CACHED_PLAN = None
        return None
    try:
        seed = int(seed_text) if seed_text else 0
        hang_s = float(hang_text) if hang_text else 60.0
        _CACHED_PLAN = FaultPlan.parse(text, seed=seed, hang_s=hang_s)
    except (SpecificationError, ValueError) as exc:
        warnings.warn(
            f"repro: ignoring malformed {ENV_FAULTS}={text!r} ({exc})",
            RuntimeWarning,
            stacklevel=2,
        )
        _CACHED_PLAN = None
    return _CACHED_PLAN


def inject_worker_faults(key: str, attempt: int) -> None:
    """Worker-side entry point, called by
    :func:`repro.compiler.syndcim.execute_job` before the job runs
    (and only when the engine attached fault context — inline runs in
    the parent process are never crashed).

    At most one fault fires per attempt, in :data:`WORKER_KINDS`
    order; ``hang`` sleeps then *continues*, so without a watchdog the
    job merely finishes late instead of wedging forever.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.should("crash", key, attempt):
        os._exit(CRASH_EXIT_CODE)
    if plan.should("hang", key, attempt):
        time.sleep(plan.hang_s)
    if plan.should("raise", key, attempt):
        raise FaultInjected(
            f"injected worker fault: raise (key {key[:12]}, "
            f"attempt {attempt})"
        )
