"""Resilience layer for the batch engine: failure taxonomy, retry
policy and the crash-safe write-ahead journal.

The engine's contract is that a sweep always terminates with one
*terminal* record per requested point — ``ok`` / ``infeasible`` /
``error`` / ``timeout`` — no matter what the workers do.  This module
holds the three pieces that make that true (the fourth, fault
injection, lives in :mod:`repro.batch.faults`):

Failure taxonomy
----------------
*Deterministic* failures are properties of the job itself: an
infeasible spec, a compile error raised inside the worker and mapped
to a record.  Re-running them reproduces them, so they are **never
retried** (and ``infeasible`` is even cached).

*Transient* failures are properties of the environment: a worker
process dying (``BrokenProcessPool`` — OOM kill, segfault, injected
crash), a watchdog timeout, a future that raised with the pool still
alive.  The job itself might be fine, so these are **retried** under a
:class:`RetryPolicy` with exponential backoff, and only after the
budget is exhausted do they become terminal ``error``/``timeout``
records carrying ``attempts`` and ``retry_history``.

Write-ahead journal
-------------------
:class:`SweepJournal` appends one JSONL line per event under
``<cache root>/journal/<run id>.jsonl``:

* ``{"event": "begin", "run": ..., "total": N, "unique": M}`` once per
  :meth:`~repro.batch.engine.BatchCompiler.run_jobs` call;
* ``{"event": "submit", "key": ...}`` for every job key about to
  execute (the write-ahead half: a killed run knows what it owed);
* ``{"event": "done", "key": ..., "record": {...}}`` for every
  terminal record (the completion half: a killed run knows what it
  finished — including the ``error``/``timeout`` records the result
  cache deliberately refuses to store).

``BatchCompiler(resume=<run id>)`` / ``--resume <run id>`` loads the
``done`` map and re-executes only the unfinished remainder; resumed
records are stamped ``resumed=True`` and counted in
``BatchStats.resumed``.  Journal writes degrade silently (a full disk
must never abort the sweep it was protecting); loads of an unknown run
id raise :class:`~repro.errors.BatchError`.

See ``docs/robustness.md`` for the full semantics table.
"""

from __future__ import annotations

import json
import pathlib
import random
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO

from ..errors import BatchError

#: Statuses a worker-produced record can carry — all deterministic,
#: none retried (see module docstring).
DETERMINISTIC_STATUSES = ("ok", "infeasible", "error")

#: Pool-level failure classes the engine retries (the record never
#: came back, so there is no status yet): a broken pool, a watchdog
#: kill, a single future raising with the pool alive.
TRANSIENT_FAILURES = ("pool-break", "timeout", "worker-raise")

#: Terminal statuses a finished batch may contain.  ``timeout`` is the
#: only parent-synthesized status that survives a full retry budget.
TERMINAL_STATUSES = ("ok", "infeasible", "error", "timeout")


@dataclass(frozen=True)
class RetryPolicy:
    """Transient-failure budget: at most ``max_attempts`` tries per
    job, sleeping ``backoff_s * 2**(attempt-1)`` (scaled up to
    ``1 + jitter`` at random) between rounds.  The default matches the
    engine's historical behaviour — one retry, no sleep."""

    max_attempts: int = 2
    backoff_s: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.jitter < 0:
            raise ValueError("backoff_s and jitter must be >= 0")

    def delay(self, attempt: int) -> float:
        """Sleep before re-running a job whose ``attempt``-th try
        failed transiently."""
        base = self.backoff_s * (2 ** max(0, attempt - 1))
        if base and self.jitter:
            base *= 1.0 + random.random() * self.jitter
        return base


@dataclass
class PoolOutcome:
    """What one process-pool pass left behind.

    ``unfinished`` jobs never produced a verdict (never dispatched, or
    watchdog collateral) and re-run without being charged an attempt;
    ``timed_out``, ``raised`` and ``broken`` map job keys to reason
    strings for jobs charged a transient failure — watchdog-overdue,
    raised with the pool alive, and in flight when the pool broke
    (the sliding-window dispatch keeps the suspect set at most one
    per worker, so a crash cannot burn the whole queue's retry
    budget); ``fatal`` carries the pool-break reason when the pass
    ended early.
    """

    unfinished: Dict[str, object] = field(default_factory=dict)
    timed_out: Dict[str, str] = field(default_factory=dict)
    raised: Dict[str, str] = field(default_factory=dict)
    broken: Dict[str, str] = field(default_factory=dict)
    fatal: Optional[str] = None


def new_run_id() -> str:
    """Sortable-by-start-time, collision-safe run identifier."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def journal_dir(root: pathlib.Path) -> pathlib.Path:
    return pathlib.Path(root).expanduser() / "journal"


def list_journals(root: pathlib.Path) -> List[pathlib.Path]:
    """Journal files under ``root``, newest first (by mtime, run-id
    tiebreak — run ids sort by start time)."""
    directory = journal_dir(root)
    if not directory.is_dir():
        return []
    files = [p for p in directory.glob("*.jsonl") if p.is_file()]

    def sort_key(path: pathlib.Path):
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0
        return (mtime, path.stem)

    return sorted(files, key=sort_key, reverse=True)


def prune_journals(
    root: pathlib.Path,
    keep: Optional[int] = None,
    older_than_s: Optional[float] = None,
    exclude: Iterable[str] = (),
) -> List[pathlib.Path]:
    """Delete old journal files; returns the paths removed.

    Every sweep leaves one JSONL behind, so a long-lived service (or a
    busy workstation) accumulates them forever without this.  A file is
    pruned when it falls outside the newest ``keep`` *or* its mtime is
    older than ``older_than_s`` seconds; with both ``None`` nothing is
    touched (an explicit retention policy is required — this function
    must never surprise-delete resume state).  Run ids in ``exclude``
    are always kept, so a live run can prune around its own journal.
    Unlink failures are skipped, not raised: pruning is housekeeping,
    never worth aborting the sweep that triggered it.
    """
    if keep is None and older_than_s is None:
        return []
    if keep is not None and keep < 0:
        raise ValueError("keep must be >= 0")
    excluded = set(exclude)
    now = time.time()
    removed: List[pathlib.Path] = []
    for index, path in enumerate(list_journals(root)):
        if path.stem in excluded:
            continue
        stale = keep is not None and index >= keep
        if not stale and older_than_s is not None:
            try:
                stale = now - path.stat().st_mtime > older_than_s
            except OSError:
                continue
        if not stale:
            continue
        try:
            path.unlink()
        except OSError:
            continue
        removed.append(path)
    return removed


class SweepJournal:
    """Append-only JSONL write-ahead journal for one batch run (see
    module docstring for the line schema).

    Lines are flushed as written, so a ``kill -9`` loses at most the
    record in flight; :meth:`load` tolerates a torn final line.  Any
    filesystem refusal disables the journal for the rest of the run —
    resumability degrades, the sweep itself never aborts.
    """

    def __init__(
        self, root: pathlib.Path, run_id: Optional[str] = None
    ) -> None:
        self.run_id = run_id or new_run_id()
        self.path = journal_dir(root) / f"{self.run_id}.jsonl"
        self._fh: Optional[TextIO] = None
        self._disabled = False

    # -- writing ------------------------------------------------------------

    def _write(self, obj: Dict[str, object]) -> None:
        if self._disabled:
            return
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(obj) + "\n")
            self._fh.flush()
        except (OSError, TypeError, ValueError):
            self._disabled = True
            self.close()

    def begin(self, total: int, unique: int) -> None:
        self._write(
            {
                "event": "begin",
                "run": self.run_id,
                "time": time.time(),
                "total": total,
                "unique": unique,
            }
        )

    def submit(self, keys: Iterable[str]) -> None:
        for key in keys:
            self._write({"event": "submit", "key": key})

    def done(self, key: str, record: Dict[str, object]) -> None:
        self._write({"event": "done", "key": key, "record": record})

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    # -- reading ------------------------------------------------------------

    @staticmethod
    def load(
        root: pathlib.Path, run_id: str
    ) -> Dict[str, Dict[str, object]]:
        """The ``key -> terminal record`` map of a previous run.

        Unparsable lines (a torn tail from a kill) are skipped; an
        unknown run id raises :class:`~repro.errors.BatchError` so a
        typo'd ``--resume`` fails loudly instead of silently
        recompiling everything.
        """
        path = journal_dir(root) / f"{run_id}.jsonl"
        if not path.is_file():
            raise BatchError(
                f"unknown run id {run_id!r}: no journal at {path}"
            )
        records: Dict[str, Dict[str, object]] = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn final line from a kill
                    if (
                        isinstance(entry, dict)
                        and entry.get("event") == "done"
                        and isinstance(entry.get("record"), dict)
                        and isinstance(entry.get("key"), str)
                    ):
                        records[entry["key"]] = entry["record"]
        except OSError as exc:
            raise BatchError(
                f"cannot read journal for run {run_id!r}: {exc}"
            ) from exc
        return records
