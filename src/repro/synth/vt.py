"""Vt-swap and drive-resize repair passes.

The multi-Vt grid (see :mod:`repro.tech.stdcells`) turns leakage into a
search axis: a mapped netlist can be re-flavored cell by cell without
touching its structure, because every ``(base, drive)`` family point
exists at all four threshold flavors with identical logic.  These
passes are the netlist-level half of that trade:

* :func:`swap_vt` re-flavors the combinational cells wholesale (the
  ``--vt hvt``/``--vt lvt`` compile modes);
* :func:`resize_drive` walks instances up or down the drive ladder and
  loudly rejects a resize that breaks a period bound;
* :func:`recover_leakage` demotes high-slack cells to hvt one
  slack-ordered bisection at a time — the classic post-fix leakage
  recovery loop — using :func:`repro.sta.analysis.instance_slacks`;
* :func:`check_vt_library` validates the flavor orderings a library
  claims, so a stale or hand-edited leakage/delay table fails fast
  instead of silently mis-steering the recovery loop.

Sequential and memory cells are excluded from the automated passes by
default: the architecture estimator prices register clocking and
bitcell arrays from calibrated constants that do not re-scale with
flavor, so re-flavoring them would desynchronize estimation from
signoff.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

from ..errors import LibraryError, SynthesisError, TimingError
from ..rtl.ir import Module
from ..sta.analysis import instance_slacks, minimum_period_ns
from ..sta.graph import WireLoadFn
from ..tech.stdcells import (
    DRIVE_LADDER,
    VT_FLAVORS,
    VT_ORDER,
    Cell,
    StdCellLibrary,
    parse_variant_name,
    variant_name,
)

#: Extra timing margin (ns) a recovery swap set must preserve — keeps
#: leakage recovery from eating the entire slack budget signoff needs.
RECOVERY_MARGIN_NS = 0.0


def _truth_table(cell: Cell) -> Optional[Tuple[Tuple[int, ...], ...]]:
    """Exhaustive truth table over the cell's inputs, or None when the
    cell has no simulation function."""
    if cell.function is None:
        return None
    pins = cell.inputs
    rows: List[Tuple[int, ...]] = []
    for bits in product((0, 1), repeat=len(pins)):
        out = cell.function(dict(zip(pins, bits)))
        rows.append(tuple(int(out[o]) for o in cell.outputs))
    return tuple(rows)


def _same_function(a: Cell, b: Cell) -> bool:
    """True when two cells compute the same logic on the same pins."""
    if a.inputs != b.inputs or a.outputs != b.outputs:
        return False
    if a.function is b.function:
        return True
    return _truth_table(a) == _truth_table(b)


def _swap_target(
    library: StdCellLibrary,
    cell_name: str,
    vt: Optional[str] = None,
    drive: Optional[int] = None,
) -> Optional[str]:
    """Name of ``cell_name``'s family variant at (vt, drive), or None
    when the cell is outside the ladder or the grid point is absent."""
    parsed = parse_variant_name(cell_name)
    if parsed is None:
        return None
    base, cur_vt, cur_drive = parsed
    target = variant_name(
        base, vt if vt is not None else cur_vt,
        drive if drive is not None else cur_drive,
    )
    if target == cell_name or target not in library:
        return None
    return target


def _apply_swaps(
    module: Module,
    library: StdCellLibrary,
    swaps: Dict[str, str],
) -> None:
    """Point the named instances at new cells (function-checked)."""
    if not swaps:
        return
    by_name = {inst.name: inst for inst in module.instances}
    for inst_name, target in swaps.items():
        inst = by_name[inst_name]
        old = library.cell(inst.cell_name)
        new = library.cell(target)
        if not _same_function(old, new):
            raise SynthesisError(
                f"vt/drive swap {inst.cell_name} -> {target} on "
                f"{inst_name} changes the cell's logic function"
            )
        inst.ref = target
    module._revision += 1


def swap_vt(
    module: Module,
    library: StdCellLibrary,
    vt: str,
    include_sequential: bool = False,
) -> int:
    """Re-flavor every laddered instance of ``module`` to ``vt``.

    In-place, structure-preserving: only ``Instance.ref`` changes, and
    every swap is checked to preserve the cell's truth table (a library
    whose flavors disagree logically is rejected with
    :class:`SynthesisError` rather than silently miscompiled).  Returns
    the number of instances re-flavored.
    """
    if vt not in VT_FLAVORS:
        raise LibraryError(
            f"unknown vt flavor {vt!r}; known: {sorted(VT_FLAVORS)}"
        )
    swaps: Dict[str, str] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_memory:
            continue
        if cell.is_sequential and not include_sequential:
            continue
        target = _swap_target(library, inst.cell_name, vt=vt)
        if target is not None:
            swaps[inst.name] = target
    _apply_swaps(module, library, swaps)
    return len(swaps)


def resize_drive(
    module: Module,
    library: StdCellLibrary,
    step: int,
    max_period_ns: Optional[float] = None,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
    include_sequential: bool = False,
) -> int:
    """Shift every laddered instance ``step`` positions along the drive
    ladder (negative = downsize), clamped to the ladder's ends.

    When ``max_period_ns`` is given, the resized netlist's minimum
    period (under ``derate``) must not exceed it — a downsize that
    breaks the bound raises :class:`TimingError` and leaves the module
    untouched.  Returns the number of instances resized.
    """
    if step == 0:
        return 0
    swaps: Dict[str, str] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_memory:
            continue
        if cell.is_sequential and not include_sequential:
            continue
        parsed = parse_variant_name(inst.cell_name)
        if parsed is None or parsed[2] not in DRIVE_LADDER:
            continue
        idx = DRIVE_LADDER.index(parsed[2])
        new_idx = max(0, min(len(DRIVE_LADDER) - 1, idx + step))
        target = _swap_target(
            library, inst.cell_name, drive=DRIVE_LADDER[new_idx]
        )
        if target is not None:
            swaps[inst.name] = target
    if not swaps:
        return 0
    if max_period_ns is not None:
        old_refs = {
            inst.name: inst.ref
            for inst in module.instances
            if inst.name in swaps
        }
        _apply_swaps(module, library, swaps)
        period = minimum_period_ns(
            module, library, wire_load=wire_load, derate=derate
        )
        if period > max_period_ns:
            for inst in module.instances:
                if inst.name in old_refs:
                    inst.ref = old_refs[inst.name]
            module._revision += 1
            raise TimingError(
                f"drive resize by {step:+d} pushes minimum period to "
                f"{period:.4f} ns > bound {max_period_ns:.4f} ns; "
                f"reverted"
            )
    else:
        _apply_swaps(module, library, swaps)
    return len(swaps)


def upsize_critical(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
    max_moves: int = 64,
) -> int:
    """Bump the worst-slack instances one drive step up the ladder.

    Slack-ordered, bounded by ``max_moves``; only instances with
    negative slack at ``clock_period_ns`` move.  Returns the number of
    instances upsized (0 when timing is already met).
    """
    slacks = instance_slacks(
        module, library, clock_period_ns, wire_load=wire_load, derate=derate
    )
    violators = sorted(
        (s, name) for name, s in slacks.items() if s < 0.0
    )
    swaps: Dict[str, str] = {}
    by_name = {inst.name: inst for inst in module.instances}
    for _, name in violators[:max_moves]:
        inst = by_name[name]
        cell = library.cell(inst.cell_name)
        if cell.is_sequential or cell.is_memory:
            continue
        parsed = parse_variant_name(inst.cell_name)
        if parsed is None or parsed[2] not in DRIVE_LADDER:
            continue
        idx = DRIVE_LADDER.index(parsed[2])
        if idx + 1 >= len(DRIVE_LADDER):
            continue
        target = _swap_target(
            library, inst.cell_name, drive=DRIVE_LADDER[idx + 1]
        )
        if target is not None:
            swaps[name] = target
    _apply_swaps(module, library, swaps)
    return len(swaps)


def recover_leakage(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    derate: float = 1.0,
    margin_ns: float = RECOVERY_MARGIN_NS,
    target_vt: str = "hvt",
) -> int:
    """Demote positive-slack combinational cells to ``target_vt``.

    The classic leakage-recovery loop: rank instances by setup slack at
    ``clock_period_ns`` (worst signoff ``derate``), demote everything
    whose slack can absorb the flavor's delay penalty, then re-run STA.
    If the combined swap set overshoots, the *least*-slack half of it is
    reverted and the check repeated — a bisection that converges in
    O(log n) STA runs instead of one run per cell.  Returns the number
    of instances left demoted.
    """
    flavor = VT_FLAVORS.get(target_vt)
    if flavor is None:
        raise LibraryError(
            f"unknown vt flavor {target_vt!r}; known: {sorted(VT_FLAVORS)}"
        )
    slacks = instance_slacks(
        module, library, clock_period_ns, wire_load=wire_load, derate=derate
    )
    by_name = {inst.name: inst for inst in module.instances}
    candidates: List[Tuple[float, str, str]] = []
    for name, slack in slacks.items():
        if slack <= margin_ns:
            continue
        inst = by_name[name]
        cell = library.cell(inst.cell_name)
        if cell.is_sequential or cell.is_memory:
            continue
        if cell.vt == target_vt:
            continue
        target = _swap_target(library, inst.cell_name, vt=target_vt)
        if target is not None:
            candidates.append((slack, name, target))
    if not candidates:
        return 0
    # Most slack first: when the set is halved, the marginal swaps go.
    candidates.sort(key=lambda c: (-c[0], c[1]))

    old_refs = {name: by_name[name].ref for _, name, _ in candidates}
    keep = candidates
    _apply_swaps(module, library, {n: t for _, n, t in keep})
    while keep:
        period = minimum_period_ns(
            module, library, wire_load=wire_load, derate=derate
        )
        if period <= clock_period_ns - margin_ns:
            return len(keep)
        dropped = keep[len(keep) // 2:]
        keep = keep[: len(keep) // 2]
        for _, name, _ in dropped:
            by_name[name].ref = old_refs[name]
        module._revision += 1
    return 0


def check_vt_library(library: StdCellLibrary) -> int:
    """Validate the flavor orderings across the library's Vt grid.

    At every ``(base, drive)`` point where several flavors exist, delay
    must strictly increase and leakage strictly decrease from ulvt
    toward hvt (see :data:`repro.tech.stdcells.VT_ORDER`).  A violation
    means a stale or inconsistent characterization table — e.g. a
    leakage column scaled without re-deriving its neighbors — and
    raises :class:`LibraryError` naming the offending pair.  Returns
    the number of grid points checked.
    """
    grid: Dict[Tuple[str, int], Dict[str, Cell]] = {}
    for cell in library:
        parsed = parse_variant_name(cell.name)
        if parsed is None:
            continue
        grid.setdefault((parsed[0], parsed[2]), {})[parsed[1]] = cell

    def worst_d0(cell: Cell) -> float:
        return max((a.d0_ns for a in cell.arcs), default=0.0)

    checked = 0
    for (base, drive), flavors in sorted(grid.items()):
        present = [vt for vt in VT_ORDER if vt in flavors]
        if len(present) < 2:
            continue
        checked += 1
        for slow_vt, fast_vt in zip(present, present[1:]):
            slow = flavors[slow_vt]
            fast = flavors[fast_vt]
            if slow.arcs and fast.arcs and not worst_d0(slow) > worst_d0(fast):
                raise LibraryError(
                    f"stale timing table: {slow.name} (d0 "
                    f"{worst_d0(slow):.6g} ns) is not slower than "
                    f"{fast.name} (d0 {worst_d0(fast):.6g} ns)"
                )
            if not slow.leakage_nw < fast.leakage_nw:
                raise LibraryError(
                    f"stale leakage table: {slow.name} "
                    f"({slow.leakage_nw:.6g} nW) is not lower-leakage "
                    f"than {fast.name} ({fast.leakage_nw:.6g} nW)"
                )
    return checked
