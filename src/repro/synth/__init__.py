"""Synthesis layer: elaboration is :meth:`repro.rtl.ir.Module.flatten`;
this package adds the netlist optimization passes.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .optimize import (
    FANOUT_LIMIT,
    buffer_high_fanout,
    optimize,
    propagate_constants,
    sweep_dead_logic,
)

__all__ = [
    "FANOUT_LIMIT",
    "buffer_high_fanout",
    "optimize",
    "propagate_constants",
    "sweep_dead_logic",
]
