"""Synthesis layer: elaboration is :meth:`repro.rtl.ir.Module.flatten`;
this package adds the netlist optimization passes.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .optimize import (
    FANOUT_LIMIT,
    buffer_high_fanout,
    optimize,
    propagate_constants,
    sweep_dead_logic,
)
from .vt import (
    check_vt_library,
    recover_leakage,
    resize_drive,
    swap_vt,
    upsize_critical,
)

__all__ = [
    "FANOUT_LIMIT",
    "buffer_high_fanout",
    "check_vt_library",
    "optimize",
    "propagate_constants",
    "recover_leakage",
    "resize_drive",
    "swap_vt",
    "sweep_dead_logic",
    "upsize_critical",
]
