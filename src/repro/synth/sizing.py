"""Timing-driven gate sizing.

The library carries multiple drive strengths for the high-leverage
cells (INV X1/X2/X4, NAND2 X1/X2, BUF X2/X4/X8).  This pass walks the
current critical path and upsizes cells whose load is large relative to
their drive, re-running incremental STA until no move helps — the same
greedy loop a synthesis tool's ``compile`` performs after mapping, and
the mechanism behind the SCL's "different timing constraints" axis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SynthesisError
from ..rtl.ir import Instance, Module
from ..sta.analysis import TimingReport, analyze
from ..sta.graph import WireLoadFn
from ..tech.stdcells import StdCellLibrary

#: Upsize chains: cell -> next stronger variant.
UPSIZE: Dict[str, str] = {
    "INV_X1": "INV_X2",
    "INV_X2": "INV_X4",
    "BUF_X2": "BUF_X4",
    "BUF_X4": "BUF_X8",
    "NAND2_X1": "NAND2_X2",
}


def _clone_with(module: Module, replacements: Dict[str, str]) -> Module:
    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    for inst in module.instances:
        ref = replacements.get(inst.name, inst.ref)
        out.add_instance(inst.name, ref, inst.conn)
    return out


def size_for_timing(
    module: Module,
    library: StdCellLibrary,
    clock_period_ns: float,
    wire_load: Optional[WireLoadFn] = None,
    max_passes: int = 8,
    max_moves_per_pass: int = 64,
) -> Tuple[Module, TimingReport, int]:
    """Greedy critical-path upsizing.

    Returns (sized module, final timing report, number of cells
    upsized).  Stops when timing is met, no upsizable cell remains on
    the critical path, or a pass fails to improve the worst slack.
    """
    report = analyze(module, library, clock_period_ns, wire_load)
    total_moves = 0
    for _ in range(max_passes):
        if report.met:
            break
        replacements: Dict[str, str] = {}
        for step in report.path:
            stronger = UPSIZE.get(step.cell)
            if stronger is not None and step.instance not in replacements:
                replacements[step.instance] = stronger
            if len(replacements) >= max_moves_per_pass:
                break
        if not replacements:
            break
        candidate = _clone_with(module, replacements)
        new_report = analyze(candidate, library, clock_period_ns, wire_load)
        if new_report.wns_ns <= report.wns_ns + 1e-6:
            break
        module = candidate
        report = new_report
        total_moves += len(replacements)
    return module, report, total_moves
