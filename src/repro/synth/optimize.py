"""Netlist optimization passes run after elaboration.

The generators emit correct-by-construction gate netlists, but like any
elaborated RTL they contain constants feeding real gates (zero-padded
adder inputs, tied-off selects) and logic whose outputs nothing reads.
These passes do what Design Compiler's ``compile`` would:

* :func:`propagate_constants` — fold gates whose inputs are the TIE
  cells (or nets proven constant) into constants, iteratively;
* :func:`sweep_dead_logic` — remove gates (and registers) driving
  nothing observable, transitively;
* :func:`buffer_high_fanout` — split nets above a fanout threshold with
  buffer repeaters so post-layout slews stay sane.

All passes preserve functional equivalence; the test suite proves it by
gate-level simulation before/after on random vectors.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..errors import SynthesisError
from ..rtl.ir import CONST0, CONST1, Instance, Module
from ..tech.stdcells import StdCellLibrary


def _constant_of(net: str, known: Dict[str, int]) -> Optional[int]:
    return known.get(net)


def propagate_constants(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, int]:
    """Fold constant-driven combinational gates.

    Returns (new module, number of gates folded).  Gates whose output is
    proven constant are replaced by rewiring their output net to the
    appropriate TIE net; sequential and memory cells are never folded.
    """
    known: Dict[str, int] = {CONST0: 0, CONST1: 1}
    # Iterate to a fixed point: each sweep may prove more nets constant.
    changed = True
    foldable: Set[str] = set()
    while changed:
        changed = False
        for inst in module.instances:
            cell = library.cell(inst.cell_name)
            if cell.is_sequential or cell.is_memory or cell.function is None:
                continue
            if not cell.input_caps_ff:
                continue
            out_nets = [inst.conn.get(o) for o in cell.outputs]
            if all(n is None or n in known for n in out_nets):
                continue
            in_vals = {}
            all_const = True
            for pin in cell.input_caps_ff:
                net = inst.conn.get(pin)
                if net is None or net not in known:
                    all_const = False
                    break
                in_vals[pin] = known[net]
            if not all_const:
                continue
            outs = cell.function(in_vals)
            for pin, val in outs.items():
                net = inst.conn.get(pin)
                if net is not None and net not in known:
                    known[net] = val
                    changed = True
                    foldable.add(inst.name)

    if not foldable:
        return module, 0

    # Rebuild, rewiring constant nets onto the TIE nets.
    remap: Dict[str, str] = {}
    for net, val in known.items():
        if net in (CONST0, CONST1):
            continue
        if net in module.ports:
            continue  # keep port nets; downstream still folds their loads
        remap[net] = CONST1 if val else CONST0

    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    dropped = 0
    needs_tie = {CONST0: False, CONST1: False}
    for inst in module.instances:
        if inst.name in foldable:
            cell = library.cell(inst.cell_name)
            # Outputs that became ports must still be driven.
            port_outs = [
                (pin, inst.conn[pin])
                for pin in cell.outputs
                if inst.conn.get(pin) in module.ports
            ]
            if not port_outs:
                dropped += 1
                continue
        conn = {
            pin: remap.get(net, net) for pin, net in inst.conn.items()
        }
        for net in conn.values():
            if net in needs_tie:
                needs_tie[net] = True
        out.add_instance(inst.name, inst.ref, conn)
    # Guarantee TIE drivers exist when referenced.
    drivers = {n for i in out.instances for n in i.conn.values()}
    have0 = any(
        i.cell_name == "TIE0" for i in out.instances if i.is_leaf
    )
    have1 = any(
        i.cell_name == "TIE1" for i in out.instances if i.is_leaf
    )
    if (needs_tie[CONST0] or CONST0 in drivers) and not have0:
        out.add_instance("tie0_cell_opt", "TIE0", {"Y": CONST0})
    if (needs_tie[CONST1] or CONST1 in drivers) and not have1:
        out.add_instance("tie1_cell_opt", "TIE1", {"Y": CONST1})
    return out, dropped


def sweep_dead_logic(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, int]:
    """Remove cells whose outputs reach no output port and no register
    or memory input (transitively)."""
    loads: Dict[str, List[Instance]] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is not None:
                loads.setdefault(net, []).append(inst)

    live: Set[str] = set()
    queue: deque = deque()
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential or cell.is_memory:
            live.add(inst.name)
            queue.append(inst)
    out_ports = set(module.output_ports)

    drivers: Dict[str, Instance] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        for pin in cell.outputs:
            net = inst.conn.get(pin)
            if net is not None:
                drivers[net] = inst

    for port in out_ports:
        drv = drivers.get(port)
        if drv is not None and drv.name not in live:
            live.add(drv.name)
            queue.append(drv)

    while queue:
        inst = queue.popleft()
        cell = library.cell(inst.cell_name)
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is None:
                continue
            drv = drivers.get(net)
            if drv is not None and drv.name not in live:
                live.add(drv.name)
                queue.append(drv)

    removed = len(module.instances) - len(live)
    if removed == 0:
        return module, 0
    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    for inst in module.instances:
        if inst.name in live:
            out.add_instance(inst.name, inst.ref, inst.conn)
    return out, removed


#: Above this fanout a net gets split with repeaters.
FANOUT_LIMIT = 48


def buffer_high_fanout(
    module: Module,
    library: StdCellLibrary,
    limit: int = FANOUT_LIMIT,
) -> Tuple[Module, int]:
    """Insert BUF_X8 repeaters on nets whose sink count exceeds
    ``limit``; sinks are re-distributed round-robin.  Clock nets are
    exempt (clock-tree synthesis is modelled as ideal)."""
    loads: Dict[str, List[Tuple[Instance, str]]] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is not None:
                loads.setdefault(net, []).append((inst, pin))

    clock_nets = set(module.clock_nets)
    heavy = {
        net: sinks
        for net, sinks in loads.items()
        if len(sinks) > limit and net not in clock_nets
    }
    if not heavy:
        return module, 0

    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    # Plan the rewiring: (instance, pin) -> new net.
    rewire: Dict[Tuple[str, str], str] = {}
    new_buffers: List[Tuple[str, str, str]] = []  # (name, src, dst)
    added = 0
    for net, sinks in heavy.items():
        n_branches = -(-len(sinks) // limit)
        for b in range(n_branches):
            branch_net = f"{net}__rep{b}"
            buf_name = f"fanout_buf_{added}"
            new_buffers.append((buf_name, net, branch_net))
            added += 1
            for inst, pin in sinks[b::n_branches]:
                rewire[(inst.name, pin)] = branch_net
    for inst in module.instances:
        conn = {
            pin: rewire.get((inst.name, pin), net)
            for pin, net in inst.conn.items()
        }
        out.add_instance(inst.name, inst.ref, conn)
    for name, src, dst in new_buffers:
        out.add_instance(name, "BUF_X8", {"A": src, "Y": dst})
    return out, added


def optimize(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, Dict[str, int]]:
    """Run the full pass pipeline; returns the module and a stats dict."""
    stats: Dict[str, int] = {}
    module, stats["constants_folded"] = propagate_constants(module, library)
    module, stats["dead_gates_removed"] = sweep_dead_logic(module, library)
    module, stats["fanout_buffers_added"] = buffer_high_fanout(module, library)
    module.validate(library)
    return module, stats
