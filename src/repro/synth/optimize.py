"""Netlist optimization passes run after elaboration.

The generators emit correct-by-construction gate netlists, but like any
elaborated RTL they contain constants feeding real gates (zero-padded
adder inputs, tied-off selects) and logic whose outputs nothing reads.
These passes do what Design Compiler's ``compile`` would:

* :func:`propagate_constants` — fold gates whose inputs are the TIE
  cells (or nets proven constant) into constants, iteratively;
* :func:`sweep_dead_logic` — remove gates (and registers) driving
  nothing observable, transitively;
* :func:`buffer_high_fanout` — split nets above a fanout threshold with
  buffer repeaters so post-layout slews stay sane, iterated to a fixed
  point so the repeater source nets themselves respect the limit.

All passes preserve functional equivalence; the test suite proves it by
gate-level simulation before/after on random vectors.

Implementation: the pipeline compiles the module's
:class:`~repro.rtl.netview.NetView` once, derives a shared integer
driver/load index (:class:`_SynthIndex`) from its stacked pin tables,
and mutates the connection tables of a single working copy in place —
no pass rebuilds the :class:`~repro.rtl.ir.Module` instance by
instance.  The original per-pass rebuild implementations are retained
verbatim as ``*_reference`` functions; the equivalence suite in
``tests/test_layout_kernels.py`` pins the in-place passes to them
netlist-for-netlist.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import SynthesisError
from ..rtl.ir import CONST0, CONST1, Instance, Module
from ..rtl.netview import check_pins, check_single_driver, net_view
from ..tech.stdcells import StdCellLibrary

#: Above this fanout a net gets split with repeaters.
FANOUT_LIMIT = 48

#: Repeater-tree depth guard for :func:`buffer_high_fanout`: the pass
#: iterates until no non-clock net exceeds the limit, which converges in
#: ``log_limit(max_fanout)`` rounds; hitting the guard means a cycle in
#: the pass logic, not a big netlist.
_FANOUT_MAX_ROUNDS = 16


# ---------------------------------------------------------------------------
# Shared integer driver/load index.
# ---------------------------------------------------------------------------


class _SynthIndex:
    """Driver/load tables for the pass pipeline, built once per module.

    Derived from the compiled :class:`NetView`: padded ``(n_inst,
    max_pins)`` matrices of input/output net ids, a per-net driver
    array, and per-instance cell flags.  The source module is never
    mutated — a working copy is cloned lazily on the first structural
    change, passes edit its connection dicts in place through the index,
    and :meth:`commit` applies the alive mask and appended instances to
    the copy's instance list.  Original-instance indices stay valid for
    the whole pipeline because the snapshot list is never reordered.
    """

    def __init__(
        self, module: Module, library: StdCellLibrary, inplace: bool = False
    ) -> None:
        self.source = module
        self.library = library
        self.inplace = inplace
        view = net_view(module, library)
        self.view = view
        self.net_names: List[str] = list(view.net_names)
        self.net_id: Dict[str, int] = dict(view.net_id)
        n_inst = view.n_instances
        max_in = max((g.in_ids.shape[1] for g in view.groups), default=0)
        max_out = max((g.out_ids.shape[1] for g in view.groups), default=0)
        self.in_mat = np.full((n_inst, max(max_in, 1)), -1, dtype=np.int64)
        self.out_mat = np.full((n_inst, max(max_out, 1)), -1, dtype=np.int64)
        self.driver_of = np.full(len(self.net_names), -1, dtype=np.int64)
        self.is_seq = np.zeros(n_inst, dtype=bool)
        self.is_mem = np.zeros(n_inst, dtype=bool)
        for g in view.groups:
            k_in = g.in_ids.shape[1]
            if k_in:
                self.in_mat[g.inst_idx, :k_in] = g.in_ids
            k_out = g.out_ids.shape[1]
            if k_out:
                flat = g.out_ids.ravel()
                owners = np.repeat(g.inst_idx, k_out)
                valid = flat >= 0
                self.driver_of[flat[valid]] = owners[valid]
                self.out_mat[g.inst_idx, :k_out] = g.out_ids
            if g.cell.is_sequential:
                self.is_seq[g.inst_idx] = True
            if g.cell.is_memory:
                self.is_mem[g.inst_idx] = True
        # Structural guards shared with Module.validate: a multiply-
        # driven net would be silently resolved to the last driver by
        # the tables above (and the dead sweep could then delete the
        # other driver); a misnamed pin on a dead gate would vanish
        # before the end-of-pipeline validate ever saw it.  Keep both
        # failures as loud as the flow's old pre-synthesis validate().
        check_single_driver(view)
        check_pins(view)
        self.cells = view.cells  # per-instance resolved Cell objects
        self.alive = np.ones(n_inst, dtype=bool)
        #: Instances appended by passes (tie cells, repeaters).  They
        #: live outside the matrices: ties have no inputs, and repeater
        #: chains are tracked by the fanout pass itself.
        self.appended: List[Instance] = []
        self.appended_alive: List[bool] = []
        self._appended_names: Dict[str, None] = {}
        self._work: Optional[Module] = None
        self._orig: Optional[List[Instance]] = None
        self._edge_pattern: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- working copy -----------------------------------------------------

    @property
    def mutated(self) -> bool:
        return self._work is not None

    def work(self) -> Module:
        """The working module: the source itself in ``inplace`` mode,
        otherwise a copy cloned on first mutation."""
        if self._work is None:
            self._work = self.source if self.inplace else _clone_flat(self.source)
            self._orig = self._work.instances  # snapshot; never reordered
        return self._work

    def result(self) -> Module:
        return self._work if self._work is not None else self.source

    def orig(self, idx: int) -> Instance:
        """Original instance ``idx`` of the working copy."""
        self.work()
        return self._orig[idx]

    def ensure_net(self, name: str) -> int:
        nid = self.net_id.get(name)
        if nid is None:
            nid = len(self.net_names)
            self.net_names.append(name)
            self.net_id[name] = nid
            if nid >= len(self.driver_of):
                # Grow geometrically: fanout buffering appends hundreds
                # of branch nets, and a full-array copy per net would be
                # quadratic.  Vectorized reads tolerate the slack (-1 =
                # undriven).
                grown = np.full(
                    max(2 * len(self.driver_of), nid + 1), -1, dtype=np.int64
                )
                grown[: len(self.driver_of)] = self.driver_of
                self.driver_of = grown
        return nid

    def append_instance(self, name: str, ref: str, conn: Dict[str, str]) -> int:
        """Append a new leaf instance; returns its global index."""
        work = self.work()
        if name in work._instance_names or name in self._appended_names:
            raise SynthesisError(f"{work.name}: duplicate instance {name}")
        inst = Instance(name=name, ref=ref, conn=dict(conn))
        self.appended.append(inst)
        self.appended_alive.append(True)
        self._appended_names[name] = None
        return len(self.alive) + len(self.appended) - 1

    def commit(self) -> None:
        """Apply the alive mask + appended instances to the working
        module.  Every caller follows up with ``_prune_nets``, which
        rebuilds the module's net table (including the appended
        instances' new nets) from scratch."""
        module = self.work()
        kept = [
            inst for inst, keep in zip(self._orig, self.alive) if keep
        ]
        kept += [
            inst for inst, keep in zip(self.appended, self.appended_alive) if keep
        ]
        module.instances = kept
        module._instance_names = dict.fromkeys(i.name for i in kept)
        module._revision += 1

    def alive_count(self) -> int:
        return int(self.alive.sum()) + sum(self.appended_alive)

    def net_spans(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Load edges grouped by net: ``(rows, slots, uniq, starts,
        bounds)`` — net ``uniq[i]``'s edges occupy ``[starts[i],
        bounds[i+1])`` of the edge arrays, in matrix order.  Both the
        constant-propagation worklist and the fanout pass's
        first-appearance ordering depend on this one derivation."""
        nets, rows, slots = self.load_edges()
        uniq, starts = np.unique(nets, return_index=True)
        bounds = np.append(starts, len(nets))
        return rows, slots, uniq, starts, bounds

    def load_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live load edges sorted by net id: ``(nets, rows, slots)``.

        Within one net the edges keep matrix order (instance-major,
        pin-slot minor) — the enumeration order of the reference
        passes' loads dict."""
        edges = self._edge_pattern
        if edges is None:
            # The -1 pattern of in_mat never changes (rewires replace
            # values, never connectivity slots), so the sparsity scan
            # runs once per index.
            edges = self._edge_pattern = np.nonzero(self.in_mat >= 0)
        rows, slots = edges
        keep = self.alive[rows]
        rows, slots = rows[keep], slots[keep]
        nets = self.in_mat[rows, slots]
        order = np.argsort(nets, kind="stable")
        return nets[order], rows[order], slots[order]


def _clone_flat(module: Module) -> Module:
    """Bulk copy of a flat module (fresh Instance/conn objects)."""
    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    nets = out.nets
    for net in module.nets:
        if net not in nets:
            nets[net] = None
    instances = out.instances
    names = out._instance_names
    for inst in module.instances:
        instances.append(Instance(name=inst.name, ref=inst.ref, conn=dict(inst.conn)))
        names[inst.name] = None
    out._revision += len(instances) + 1
    return out


def _prune_nets(module: Module) -> None:
    """Rebuild the net set to ports + clocks + referenced nets, in the
    insertion order a pass-by-pass module rebuild would produce."""
    nets: Dict[str, None] = {}
    for port in module.ports:
        nets[port] = None
    for net in module.clock_nets:
        if net not in nets:
            nets[net] = None
    for inst in module.instances:
        for net in inst.conn.values():
            if net not in nets:
                nets[net] = None
    module.nets = nets
    module._revision += 1


# ---------------------------------------------------------------------------
# Constant propagation.
# ---------------------------------------------------------------------------


def _propagate_constants_core(index: _SynthIndex) -> int:
    """Constant folding over the index; returns the dropped-gate count
    (the working copy is only created when something folds)."""
    in_mat = index.in_mat
    n_inst = len(index.alive)
    n_connected = (in_mat >= 0).sum(axis=1)

    eligible = np.zeros(n_inst, dtype=bool)
    for g in index.view.groups:
        cell = g.cell
        if cell.is_sequential or cell.is_memory or cell.function is None:
            continue
        if not cell.input_caps_ff:
            continue
        eligible[g.inst_idx] = True
    n_pins = np.asarray(
        [len(c.input_caps_ff) for c in index.cells], dtype=np.int64
    )
    # A gate with an unconnected input or no connected output never folds.
    eligible &= n_connected == n_pins
    eligible &= (index.out_mat >= 0).any(axis=1)

    values = np.full(len(index.net_names), np.int8(-1), dtype=np.int8)
    for name, val in ((CONST0, 0), (CONST1, 1)):
        nid = index.net_id.get(name)
        if nid is not None:
            values[nid] = val

    erows, _eslots, uniq, starts, bounds = index.net_spans()

    def span_of(net_id: int):
        i = int(np.searchsorted(uniq, net_id))
        if i < len(uniq) and uniq[i] == net_id:
            return int(bounds[i]), int(bounds[i + 1])
        return None

    remaining = n_connected.copy()
    foldable: List[int] = []
    queue: deque = deque()

    def feed(net_id: int) -> None:
        span = span_of(net_id)
        if span is None:
            return
        for gate in erows[span[0]: span[1]]:
            remaining[gate] -= 1
            if remaining[gate] == 0 and eligible[gate]:
                queue.append(int(gate))

    for name in (CONST0, CONST1):
        nid = index.net_id.get(name)
        if nid is not None:
            feed(nid)

    source = index.source
    net_id = index.net_id
    while queue:
        gate = queue.popleft()
        cell = index.cells[gate]
        conn = source.instances[gate].conn
        in_vals = {
            pin: int(values[net_id[conn[pin]]]) for pin in cell.input_caps_ff
        }
        outs = cell.function(in_vals)
        newly = False
        for pin, val in outs.items():
            net = conn.get(pin)
            if net is None:
                continue
            nid = net_id[net]
            if values[nid] >= 0:
                continue
            values[nid] = 1 if val else 0
            newly = True
            feed(nid)
        if newly:
            foldable.append(gate)

    if not foldable:
        return 0

    work = index.work()

    # Drop folded gates unless one of their outputs is a port net.
    dropped = 0
    for gate in foldable:
        cell = index.cells[gate]
        conn = index.orig(gate).conn
        if not any(conn.get(pin) in work.ports for pin in cell.outputs):
            index.alive[gate] = False
            dropped += 1

    # Every net proven constant (ports and the TIE nets excluded) is
    # remapped onto the matching TIE net.
    port_ids = {net_id[p] for p in work.ports if p in net_id}
    remap: Dict[str, str] = {}
    remap_ids: List[int] = []
    for nid in np.nonzero(values >= 0)[0]:
        nid = int(nid)
        name = index.net_names[nid]
        if name in (CONST0, CONST1) or nid in port_ids:
            continue
        remap[name] = CONST1 if values[nid] else CONST0
        remap_ids.append(nid)

    needs_tie = {CONST0: False, CONST1: False}
    if remap_ids:
        for name in (CONST0, CONST1):
            index.ensure_net(name)
        remap_arr = np.full(len(index.net_names), -1, dtype=np.int64)
        for nid in remap_ids:
            remap_arr[nid] = index.net_id[remap[index.net_names[nid]]]
        for mat in (index.in_mat, index.out_mat):
            targets = remap_arr[np.where(mat >= 0, mat, 0)]
            hit = (mat >= 0) & (targets >= 0)
            mat[hit] = targets[hit]

        # Rewire the conn dicts of every instance touching a remapped net.
        affected: Set[int] = set()
        for nid in remap_ids:
            span = span_of(nid)
            if span is not None:
                affected.update(int(g) for g in erows[span[0]: span[1]])
            drv = int(index.driver_of[nid])
            if drv >= 0:
                affected.add(drv)
        for gate in affected:
            if not index.alive[gate]:
                continue
            conn = index.orig(gate).conn
            for pin, net in conn.items():
                new = remap.get(net)
                if new is not None:
                    conn[pin] = new
                    needs_tie[new] = True

    # Guarantee TIE drivers exist when referenced.
    referenced = dict(needs_tie)
    have = {"TIE0": False, "TIE1": False}
    for gate in np.nonzero(index.alive)[0]:
        inst = index.orig(int(gate))
        ref = inst.ref
        if ref == "TIE0" or ref == "TIE1":
            have[ref] = True
        if not (referenced[CONST0] and referenced[CONST1]):
            for net in inst.conn.values():
                if net == CONST0:
                    referenced[CONST0] = True
                elif net == CONST1:
                    referenced[CONST1] = True
    if referenced[CONST0] and not have["TIE0"]:
        idx = index.append_instance("tie0_cell_opt", "TIE0", {"Y": CONST0})
        nid = index.ensure_net(CONST0)
        index.driver_of[nid] = idx
    if referenced[CONST1] and not have["TIE1"]:
        idx = index.append_instance("tie1_cell_opt", "TIE1", {"Y": CONST1})
        nid = index.ensure_net(CONST1)
        index.driver_of[nid] = idx
    return dropped


# ---------------------------------------------------------------------------
# Dead-logic sweep.
# ---------------------------------------------------------------------------


def _sweep_dead_logic_core(index: _SynthIndex) -> int:
    """Mark dead gates in the index; returns the removed count."""
    n_inst = len(index.alive)
    n_total = n_inst + len(index.appended)
    live = np.zeros(n_total, dtype=bool)
    if index.appended:
        alive_full = np.concatenate(
            [index.alive, np.asarray(index.appended_alive, dtype=bool)]
        )
    else:
        alive_full = index.alive

    seeds = (index.is_seq | index.is_mem) & index.alive
    live[:n_inst] = seeds
    module = index.result()
    driver_of = index.driver_of
    port_seeds: List[int] = []
    for port in module.output_ports:
        nid = index.net_id.get(port)
        if nid is None:
            continue
        drv = int(driver_of[nid])
        if 0 <= drv < n_total and alive_full[drv] and not live[drv]:
            live[drv] = True
            port_seeds.append(drv)

    frontier = np.concatenate(
        [np.nonzero(seeds)[0], np.asarray(port_seeds, dtype=np.int64)]
    )
    in_mat = index.in_mat
    while len(frontier):
        matrix_rows = frontier[frontier < n_inst]
        if not len(matrix_rows):
            break
        nets = in_mat[matrix_rows]
        nets = np.unique(nets[nets >= 0])
        drivers = driver_of[nets]
        drivers = np.unique(drivers[drivers >= 0])
        fresh = drivers[alive_full[drivers] & ~live[drivers]]
        live[fresh] = True
        frontier = fresh

    removed = index.alive_count() - int(live.sum())
    if removed == 0:
        return 0
    index.work()
    index.alive &= live[:n_inst]
    for i in range(len(index.appended)):
        if index.appended_alive[i] and not live[n_inst + i]:
            index.appended_alive[i] = False
    return removed


# ---------------------------------------------------------------------------
# Fanout buffering.
# ---------------------------------------------------------------------------


def _buffer_high_fanout_core(index: _SynthIndex, limit: int) -> int:
    """Split heavy nets with repeaters, iterated to a fixed point."""
    clock_ids = {
        index.net_id[n] for n in index.result().clock_nets if n in index.net_id
    }

    erows, eslots, uniq, starts, bounds = index.net_spans()
    counts = np.diff(bounds)
    in_w = index.in_mat.shape[1]
    heavy = [
        u
        for u in np.nonzero(counts > limit)[0]
        if int(uniq[u]) not in clock_ids
    ]
    if not heavy:
        return 0
    # First-appearance order of the reference loads dict: the edge spans
    # keep matrix order, so the span's first edge positions the net.
    heavy.sort(
        key=lambda u: int(erows[starts[u]]) * in_w + int(eslots[starts[u]])
    )

    index.work()
    origs = index._orig
    added = 0
    pin_names: Dict[str, List[str]] = {}
    #: source net name -> repeaters driven by it (input to later rounds).
    pending: Dict[str, List[Instance]] = {}

    for u in heavy:
        net_idx = int(uniq[u])
        net = index.net_names[net_idx]
        s, e = int(starts[u]), int(bounds[u + 1])
        sink_gates = erows[s:e]
        sink_slots = eslots[s:e]
        n_branches = -(-(e - s) // limit)
        branch_bufs: List[Instance] = []
        for b in range(n_branches):
            branch_net = f"{net}__rep{b}"
            buf_name = f"fanout_buf_{added}"
            added += 1
            bidx = index.append_instance(
                buf_name, "BUF_X8", {"A": net, "Y": branch_net}
            )
            branch_bufs.append(index.appended[bidx - len(index.alive)])
            branch_id = index.ensure_net(branch_net)
            index.driver_of[branch_id] = bidx
            for gate, slot in zip(
                sink_gates[b::n_branches], sink_slots[b::n_branches]
            ):
                gate = int(gate)
                cell = index.cells[gate]
                pins = pin_names.get(cell.name)
                if pins is None:
                    pins = pin_names[cell.name] = list(cell.input_caps_ff)
                origs[gate].conn[pins[int(slot)]] = branch_net
                index.in_mat[gate, int(slot)] = branch_id
        pending[net] = branch_bufs

    # Fixed point: a net with more than limit**2 sinks leaves its
    # repeater source net above the limit — keep splitting the repeater
    # inputs until every non-clock net is within it.
    round_no = 0
    while True:
        over = {net: bufs for net, bufs in pending.items() if len(bufs) > limit}
        if not over:
            break
        round_no += 1
        if round_no > _FANOUT_MAX_ROUNDS:
            raise SynthesisError(
                f"fanout buffering did not converge within "
                f"{_FANOUT_MAX_ROUNDS} rounds (limit {limit})"
            )
        pending = {}
        for net, bufs in over.items():
            n_branches = -(-len(bufs) // limit)
            branch_bufs = []
            for b in range(n_branches):
                branch_net = f"{net}__l{round_no}rep{b}"
                buf_name = f"fanout_buf_{added}"
                added += 1
                bidx = index.append_instance(
                    buf_name, "BUF_X8", {"A": net, "Y": branch_net}
                )
                buf = index.appended[bidx - len(index.alive)]
                branch_bufs.append(buf)
                branch_id = index.ensure_net(branch_net)
                index.driver_of[branch_id] = bidx
                for sink in bufs[b::n_branches]:
                    sink.conn["A"] = branch_net
            pending[net] = branch_bufs

    return added


# ---------------------------------------------------------------------------
# Public passes.
# ---------------------------------------------------------------------------


def propagate_constants(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, int]:
    """Fold constant-driven combinational gates.

    Returns (new module, number of gates folded).  Gates whose output is
    proven constant are replaced by rewiring their output net to the
    appropriate TIE net; sequential and memory cells are never folded.
    The input module is never mutated (and is returned as-is when
    nothing folds).
    """
    index = _SynthIndex(module, library)
    dropped = _propagate_constants_core(index)
    if not index.mutated:
        return module, 0
    index.commit()
    out = index.result()
    _prune_nets(out)
    return out, dropped


def sweep_dead_logic(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, int]:
    """Remove cells whose outputs reach no output port and no register
    or memory input (transitively)."""
    index = _SynthIndex(module, library)
    removed = _sweep_dead_logic_core(index)
    if not index.mutated:
        return module, 0
    index.commit()
    out = index.result()
    _prune_nets(out)
    return out, removed


def buffer_high_fanout(
    module: Module,
    library: StdCellLibrary,
    limit: int = FANOUT_LIMIT,
) -> Tuple[Module, int]:
    """Insert BUF_X8 repeaters on nets whose sink count exceeds
    ``limit``; sinks are re-distributed round-robin and the pass repeats
    until no non-clock net (including the repeater source nets) exceeds
    the limit.  Clock nets are exempt (clock-tree synthesis is modelled
    as ideal)."""
    index = _SynthIndex(module, library)
    added = _buffer_high_fanout_core(index, limit)
    if not index.mutated:
        return module, 0
    index.commit()
    out = index.result()
    _prune_nets(out)
    return out, added


def optimize(
    module: Module,
    library: StdCellLibrary,
    inplace: bool = False,
    vt: Optional[str] = None,
) -> Tuple[Module, Dict[str, int]]:
    """Run the full pass pipeline; returns the module and a stats dict.

    One :class:`_SynthIndex` (and at most one working copy of the
    module) is shared by all three passes; the input module is never
    mutated unless ``inplace=True`` (the implementation flow passes a
    freshly flattened module it owns, which skips the bulk copy).

    ``vt`` re-flavors the surviving combinational cells to that
    threshold flavor as a fourth pass (see
    :func:`repro.synth.vt.swap_vt`); ``None`` leaves the mapping's
    flavors untouched.
    """
    stats: Dict[str, int] = {}
    index = _SynthIndex(module, library, inplace=inplace)
    stats["constants_folded"] = _propagate_constants_core(index)
    stats["dead_gates_removed"] = _sweep_dead_logic_core(index)
    stats["fanout_buffers_added"] = _buffer_high_fanout_core(index, FANOUT_LIMIT)
    if index.mutated:
        index.commit()
    out = index.result()
    if index.mutated:
        _prune_nets(out)
    if vt is not None:
        from .vt import swap_vt

        if not inplace and out is module:
            out = _clone_flat(out)
        stats["vt_swapped"] = swap_vt(out, library, vt)
    out.validate(library)
    return out, stats


# ---------------------------------------------------------------------------
# Scalar reference implementations (pinned by the equivalence suite).
# ---------------------------------------------------------------------------


def propagate_constants_reference(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, int]:
    """Original rebuild implementation of :func:`propagate_constants`."""
    known: Dict[str, int] = {CONST0: 0, CONST1: 1}
    # Iterate to a fixed point: each sweep may prove more nets constant.
    changed = True
    foldable: Set[str] = set()
    while changed:
        changed = False
        for inst in module.instances:
            cell = library.cell(inst.cell_name)
            if cell.is_sequential or cell.is_memory or cell.function is None:
                continue
            if not cell.input_caps_ff:
                continue
            out_nets = [inst.conn.get(o) for o in cell.outputs]
            if all(n is None or n in known for n in out_nets):
                continue
            in_vals = {}
            all_const = True
            for pin in cell.input_caps_ff:
                net = inst.conn.get(pin)
                if net is None or net not in known:
                    all_const = False
                    break
                in_vals[pin] = known[net]
            if not all_const:
                continue
            outs = cell.function(in_vals)
            for pin, val in outs.items():
                net = inst.conn.get(pin)
                if net is not None and net not in known:
                    known[net] = val
                    changed = True
                    foldable.add(inst.name)

    if not foldable:
        return module, 0

    # Rebuild, rewiring constant nets onto the TIE nets.
    remap: Dict[str, str] = {}
    for net, val in known.items():
        if net in (CONST0, CONST1):
            continue
        if net in module.ports:
            continue  # keep port nets; downstream still folds their loads
        remap[net] = CONST1 if val else CONST0

    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    dropped = 0
    needs_tie = {CONST0: False, CONST1: False}
    for inst in module.instances:
        if inst.name in foldable:
            cell = library.cell(inst.cell_name)
            # Outputs that became ports must still be driven.
            port_outs = [
                (pin, inst.conn[pin])
                for pin in cell.outputs
                if inst.conn.get(pin) in module.ports
            ]
            if not port_outs:
                dropped += 1
                continue
        conn = {
            pin: remap.get(net, net) for pin, net in inst.conn.items()
        }
        for net in conn.values():
            if net in needs_tie:
                needs_tie[net] = True
        out.add_instance(inst.name, inst.ref, conn)
    # Guarantee TIE drivers exist when referenced.
    drivers = {n for i in out.instances for n in i.conn.values()}
    have0 = any(
        i.cell_name == "TIE0" for i in out.instances if i.is_leaf
    )
    have1 = any(
        i.cell_name == "TIE1" for i in out.instances if i.is_leaf
    )
    if (needs_tie[CONST0] or CONST0 in drivers) and not have0:
        out.add_instance("tie0_cell_opt", "TIE0", {"Y": CONST0})
    if (needs_tie[CONST1] or CONST1 in drivers) and not have1:
        out.add_instance("tie1_cell_opt", "TIE1", {"Y": CONST1})
    return out, dropped


def sweep_dead_logic_reference(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, int]:
    """Original rebuild implementation of :func:`sweep_dead_logic`."""
    loads: Dict[str, List[Instance]] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is not None:
                loads.setdefault(net, []).append(inst)

    live: Set[str] = set()
    queue: deque = deque()
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        if cell.is_sequential or cell.is_memory:
            live.add(inst.name)
            queue.append(inst)
    out_ports = set(module.output_ports)

    drivers: Dict[str, Instance] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        for pin in cell.outputs:
            net = inst.conn.get(pin)
            if net is not None:
                drivers[net] = inst

    for port in out_ports:
        drv = drivers.get(port)
        if drv is not None and drv.name not in live:
            live.add(drv.name)
            queue.append(drv)

    while queue:
        inst = queue.popleft()
        cell = library.cell(inst.cell_name)
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is None:
                continue
            drv = drivers.get(net)
            if drv is not None and drv.name not in live:
                live.add(drv.name)
                queue.append(drv)

    removed = len(module.instances) - len(live)
    if removed == 0:
        return module, 0
    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    for inst in module.instances:
        if inst.name in live:
            out.add_instance(inst.name, inst.ref, inst.conn)
    return out, removed


def buffer_high_fanout_reference(
    module: Module,
    library: StdCellLibrary,
    limit: int = FANOUT_LIMIT,
) -> Tuple[Module, int]:
    """Original single-round implementation of :func:`buffer_high_fanout`
    (a net with more than ``limit**2`` sinks leaves the repeater source
    net above the limit — the in-place pass iterates to fix that)."""
    loads: Dict[str, List[Tuple[Instance, str]]] = {}
    for inst in module.instances:
        cell = library.cell(inst.cell_name)
        for pin in cell.input_caps_ff:
            net = inst.conn.get(pin)
            if net is not None:
                loads.setdefault(net, []).append((inst, pin))

    clock_nets = set(module.clock_nets)
    heavy = {
        net: sinks
        for net, sinks in loads.items()
        if len(sinks) > limit and net not in clock_nets
    }
    if not heavy:
        return module, 0

    out = Module(module.name)
    for port in module.ports.values():
        out.add_port(port.name, port.direction)
    out.set_clocks(module.clock_nets)
    # Plan the rewiring: (instance, pin) -> new net.
    rewire: Dict[Tuple[str, str], str] = {}
    new_buffers: List[Tuple[str, str, str]] = []  # (name, src, dst)
    added = 0
    for net, sinks in heavy.items():
        n_branches = -(-len(sinks) // limit)
        for b in range(n_branches):
            branch_net = f"{net}__rep{b}"
            buf_name = f"fanout_buf_{added}"
            new_buffers.append((buf_name, net, branch_net))
            added += 1
            for inst, pin in sinks[b::n_branches]:
                rewire[(inst.name, pin)] = branch_net
    for inst in module.instances:
        conn = {
            pin: rewire.get((inst.name, pin), net)
            for pin, net in inst.conn.items()
        }
        out.add_instance(inst.name, inst.ref, conn)
    for name, src, dst in new_buffers:
        out.add_instance(name, "BUF_X8", {"A": src, "Y": dst})
    return out, added


def optimize_reference(
    module: Module, library: StdCellLibrary
) -> Tuple[Module, Dict[str, int]]:
    """Original pass pipeline over the rebuild implementations."""
    stats: Dict[str, int] = {}
    module, stats["constants_folded"] = propagate_constants_reference(
        module, library
    )
    module, stats["dead_gates_removed"] = sweep_dead_logic_reference(
        module, library
    )
    module, stats["fanout_buffers_added"] = buffer_high_fanout_reference(
        module, library
    )
    module.validate(library)
    return module, stats
