"""Vectorized full-macro testbench.

:class:`VecMacroTestbench` drives one generated DCIM macro netlist —
digital (weight-complement ports) or physical (bitcell array folded in,
read nets internal) — over a **batch** of input vectors per pass, using
:class:`repro.sim.vecsim.VecSim`.  It is the vectorized twin of the
scalar ``tests/macro_tb.MacroTestbench`` and follows the same cycle
protocol: weights loaded through the behavioural model's bit packing,
serial MSB-first input feed, ``neg``/``clear`` asserted on the cycle
the first tree count reaches the shift-adder, outputs decoded after
``latency_cycles`` edges.

Weight-net resolution:

* a *digital* macro exposes ``wb[...]`` input ports — driven directly;
* a *physical* macro (from the implementation flow) buries those nets
  behind the bitcell array.  The testbench recovers them structurally:
  every memory cell's ``WL``/``BL`` connections name the top-level
  ``wl[row]``/``bl[col]`` ports, which pin down the cell's (physical
  row, column) — and its ``RD`` net is the weight-complement net to
  drive.  This survives synthesis passes because they never rewire the
  array.
"""

from __future__ import annotations

import re
import time
from typing import Optional, Union

import numpy as np

from ..arch import MacroArchitecture
from ..errors import SimulationError
from ..rtl.gen.macro import MacroShape, generate_macro, macro_shape
from ..sim.formats import int_range
from ..sim.functional import DCIMMacroModel
from ..sim.vecsim import VecSim
from ..spec import DataFormat, MacroSpec
from ..tech.stdcells import StdCellLibrary, default_library

#: A bank choice: one bank for every lane, or one bank per lane.
BankSelect = Union[int, np.ndarray]

_PORT_INDEX = re.compile(r"\[(\d+)\]$")
_CELL_NAME = re.compile(r"cell_r(\d+)_c(\d+)$")


def _port_index(net: Optional[str]) -> Optional[int]:
    if net is None:
        return None
    m = _PORT_INDEX.search(net)
    return int(m.group(1)) if m else None


class VecMacroTestbench:
    """Drive a macro netlist batch-parallel against the golden model."""

    def __init__(
        self,
        spec: MacroSpec,
        arch: Optional[MacroArchitecture] = None,
        batch: int = 1024,
        netlist=None,
        shape: Optional[MacroShape] = None,
        library: Optional[StdCellLibrary] = None,
    ) -> None:
        self.spec = spec
        self.arch = arch or MacroArchitecture()
        self.arch.validate_against(spec)
        self.library = library or default_library()
        if netlist is None:
            module, shape = generate_macro(spec, self.arch)
            netlist = module.flatten()
        elif shape is None:
            shape = macro_shape(spec, self.arch)
        self.netlist = netlist
        self.shape = shape
        self.sim = VecSim(netlist, self.library, batch)
        self.model = DCIMMacroModel(spec, self.arch)
        # Cycles until the first serial bit's tree count reaches the S&A.
        self.lpre = (
            1
            + (1 if self.arch.reg_after_tree else 0)
            + (1 if self.arch.column_split > 1 else 0)
        )
        self._wb_ids = self._resolve_weight_nets()
        self._x_ids = np.asarray(
            [self.sim.net_id(f"x[{r}]") for r in range(spec.height)],
            dtype=np.int64,
        )
        width = shape.ofu_output_width
        self._y_ids = [
            np.asarray(
                [
                    self.sim.net_id(f"y[{g * width + i}]")
                    for i in range(width)
                ],
                dtype=np.int64,
            )
            for g in range(shape.n_groups)
        ]

    def _resolve_weight_nets(self) -> np.ndarray:
        """Net ids of the weight-complement nets, indexed by the wb
        flat index ``(row * mcr + bank) * width + col``."""
        spec = self.spec
        total = spec.height * spec.mcr * spec.width
        if "wb[0]" in self.netlist.ports:
            return np.asarray(
                [self.sim.net_id(f"wb[{i}]") for i in range(total)],
                dtype=np.int64,
            )
        ids = np.full(total, -1, dtype=np.int64)
        for inst in self.netlist.instances:
            cell = self.library.cell(inst.cell_name)
            if not cell.is_memory:
                continue
            # Primary: the array generator names every bitcell
            # cell_r<physrow>_c<col>; synthesis passes never rename
            # instances.  Fallback: the WL/BL port indices — valid
            # unless a repeater pass rewired the word line.
            m = _CELL_NAME.search(inst.name)
            if m:
                row, col = int(m.group(1)), int(m.group(2))
            else:
                row = _port_index(inst.conn.get("WL"))
                col = _port_index(inst.conn.get("BL"))
            rd = inst.conn.get("RD")
            if row is None or col is None or rd is None:
                raise SimulationError(
                    f"memory cell {inst.name} cannot be mapped to a "
                    "(row, column); cannot drive weight nets"
                )
            ids[row * spec.width + col] = self.sim.net_id(rd)
        if (ids < 0).any():
            raise SimulationError(
                "netlist has no wb ports and its bitcell array does not "
                "cover every (row, column); cannot drive weights"
            )
        return ids

    # -- weight loading ------------------------------------------------------

    def load_weights(
        self, bank: int, weights: np.ndarray, fmt: DataFormat
    ) -> None:
        """Load one bank through the model's packing, then mirror the
        stored bits onto the netlist's weight-complement nets."""
        if fmt.is_float:
            self.model.set_weights_fp(
                bank, [list(row) for row in np.asarray(weights)], fmt
            )
        else:
            self.model.set_weights_int(
                bank, np.asarray(weights, dtype=np.int64), fmt
            )
        bits = self.model.weight_bits(bank)  # (height, width)
        mcr = self.spec.mcr
        bank_ids = self._wb_ids.reshape(
            self.spec.height * mcr, self.spec.width
        )[bank::mcr]
        self.sim.drive_nets(bank_ids.reshape(-1), 1 - bits.reshape(-1))

    def select_bank(self, bank: BankSelect) -> None:
        """Drive the MCR select — a scalar for every lane, or one bank
        per lane (lanes beyond the given array read bank 0)."""
        mcr = self.spec.mcr
        n_sel = mcr.bit_length() - 1 if mcr > 1 else 0
        banks = np.asarray(bank)
        if banks.ndim == 0:
            for i in range(n_sel):
                self.sim.set_input(f"sel[{i}]", (int(banks) >> i) & 1)
            return
        full = np.zeros(self.sim.batch, dtype=np.int64)
        full[: len(banks)] = banks
        for i in range(n_sel):
            self.sim.set_input(f"sel[{i}]", (full >> i) & 1)

    # -- MAC runs ------------------------------------------------------------

    def run_mac(self, xs: np.ndarray, bank: BankSelect = 0) -> np.ndarray:
        """Feed up to ``batch`` input vectors and return the fused
        outputs, shape (len(xs), n_groups) int64."""
        spec, sim, shape = self.spec, self.sim, self.shape
        xs = np.asarray(xs, dtype=np.int64)
        n = xs.shape[0]
        if xs.ndim != 2 or xs.shape[1] != spec.height or n > sim.batch:
            raise SimulationError(
                f"expected (<= {sim.batch}, {spec.height}) inputs, "
                f"got {xs.shape}"
            )
        if n < sim.batch:
            xs = np.vstack(
                [xs, np.zeros((sim.batch - n, spec.height), dtype=np.int64)]
            )
        k = spec.input_width
        # (batch, height, k) serial bits, LSB first along the last axis.
        xbits = (
            ((xs & ((1 << k) - 1))[:, :, None] >> np.arange(k)) & 1
        ).astype(np.uint8)
        self.select_bank(bank)
        for i, s in enumerate(self.model.sub_controls()):
            sim.set_input(f"sub[{i}]", s)
        sim.reset_state()
        zeros = np.zeros((spec.height, sim.batch), dtype=np.uint8)
        for cyc in range(shape.latency_cycles):
            if cyc < k:
                rows = np.ascontiguousarray(xbits[:, :, k - 1 - cyc].T)
            else:
                rows = zeros
            sim.drive_nets(self._x_ids, rows)
            ctrl = 1 if cyc == self.lpre else 0
            sim.set_input("neg", ctrl)
            sim.set_input("clear", ctrl)
            sim.clock()
        out = np.stack(
            [sim.bus_ids_int(ids) for ids in self._y_ids], axis=1
        )
        return out[:n]

    def expected(self, xs: np.ndarray, bank: BankSelect = 0) -> np.ndarray:
        """Golden dot products, shape (len(xs), n_groups) int64."""
        xs = np.asarray(xs, dtype=np.int64)
        banks = np.asarray(bank)
        if banks.ndim == 0:
            return xs @ self.model.group_weights(int(banks))
        w = np.stack(
            [self.model.group_weights(b) for b in range(self.spec.mcr)]
        )
        return np.einsum("nh,nhg->ng", xs, w[banks])

    # -- scalar reference ----------------------------------------------------

    def scalar_mac_rate(
        self, vectors: int = 2, bank: int = 0, seed: int = 0
    ) -> float:
        """MAC vectors/second of the pinned scalar ``GateSimulator``
        driving this netlist with the *same* cycle protocol — the
        reference denominator for the vecsim speedup metric (a single
        definition here keeps the protocol from drifting between the
        batch engine, the perf harness and the smoke tests).

        Weights must already be loaded (:meth:`load_weights`); the
        scalar simulator gets the same bits via per-net forces.
        """
        from ..sim.gatesim import GateSimulator

        spec, shape = self.spec, self.shape
        sim = GateSimulator(self.netlist, self.library)
        names = self.sim._view.net_names
        bits = self.model.weight_bits(bank)
        bank_ids = self._wb_ids.reshape(
            spec.height * spec.mcr, spec.width
        )[bank :: spec.mcr]
        for r in range(spec.height):
            for c in range(spec.width):
                sim.force(
                    names[int(bank_ids[r, c])], 1 - int(bits[r, c])
                )
        n_sel = spec.mcr.bit_length() - 1 if spec.mcr > 1 else 0
        for i in range(n_sel):
            sim.set_input(f"sel[{i}]", (bank >> i) & 1)
        for i, s in enumerate(self.model.sub_controls()):
            sim.set_input(f"sub[{i}]", s)
        k = spec.input_width
        lo, hi = int_range(k)
        rng = np.random.default_rng(seed)
        xs = rng.integers(lo, hi + 1, size=(vectors, spec.height))
        t0 = time.perf_counter()
        for v in range(vectors):
            sim.reset_state()
            for cyc in range(shape.latency_cycles):
                for r in range(spec.height):
                    bit = (
                        (int(xs[v, r]) >> (k - 1 - cyc)) & 1
                        if cyc < k
                        else 0
                    )
                    sim.set_input(f"x[{r}]", bit)
                ctrl = 1 if cyc == self.lpre else 0
                sim.set_input("neg", ctrl)
                sim.set_input("clear", ctrl)
                sim.clock()
        return vectors / (time.perf_counter() - t0)
