"""Stimulus generation for netlist-vs-golden verification.

Two stimulus families per :class:`~repro.spec.DataFormat`:

* **directed corners** — deterministic patterns that hit the datapath's
  known failure edges: all-zero (clear path), format maxima/minima
  (sign-cycle subtraction, accumulator headroom), alternating extremes
  (worst-case tree counts and OFU carries), one-hot extremes (single-row
  sensitization).  For FP formats the corners are built from extreme
  field patterns — max exponent spread (alignment shifts small operands
  to zero), all-subnormal groups, saturated mantissas with mixed signs —
  and pushed through the behavioural alignment twin so the vectors are
  exactly what the RTL's alignment unit would feed the serial datapath.
* **seeded random** — uniform draws over the format's representable
  range from a caller-owned :class:`numpy.random.Generator`, so every
  failure reproduces from the seed.

All input vectors are returned as *integers in the serial domain* (for
FP, aligned significands): that is the contract of the macro's ``x``
port, and the domain in which ``mac_ideal`` is exact.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim.formats import FPFields, align_group, int_range
from ..spec import DataFormat


def serial_range(fmt: DataFormat) -> Tuple[int, int]:
    """Inclusive (lo, hi) of the values a format occupies on the serial
    input bus: the two's-complement range for integers, the aligned
    signed-significand range for floats."""
    if fmt.is_float:
        hi = (1 << (fmt.mantissa + 1)) - 1  # hidden bit + full mantissa
        return -hi, hi
    return int_range(fmt.bits)


def _fp_corner_fields(fmt: DataFormat) -> List[List[FPFields]]:
    """Groups of FP operands hitting alignment extremes."""
    e_max = (1 << fmt.exponent) - 1
    m_max = (1 << fmt.mantissa) - 1

    def f(sign: int, e: int, m: int) -> FPFields:
        return FPFields(sign=sign, exponent=e, mantissa=m, fmt=fmt)

    return [
        [f(0, e_max, m_max), f(0, 1, 1)],  # max exponent spread
        [f(0, 0, 1), f(1, 0, m_max)],  # all-subnormal group
        [f(0, e_max, m_max), f(1, e_max, m_max)],  # saturated, mixed sign
        [f(0, e_max, 0), f(0, 0, 0)],  # power of two vs zero
        [f(1, e_max // 2 + 1, m_max), f(0, 1, 0)],  # mid exponent vs min
    ]


def directed_input_vectors(height: int, fmt: DataFormat) -> np.ndarray:
    """Deterministic corner vectors, shape (n, height) int64."""
    lo, hi = serial_range(fmt)
    rows: List[np.ndarray] = [
        np.zeros(height, dtype=np.int64),
        np.full(height, hi, dtype=np.int64),
        np.full(height, lo, dtype=np.int64),
        np.where(np.arange(height) % 2 == 0, lo, hi).astype(np.int64),
        np.where(np.arange(height) % 2 == 0, hi, lo).astype(np.int64),
        np.full(height, -1, dtype=np.int64),
        np.full(height, 1, dtype=np.int64),
    ]
    one_hot_hi = np.zeros(height, dtype=np.int64)
    one_hot_hi[0] = hi
    one_hot_lo = np.zeros(height, dtype=np.int64)
    one_hot_lo[-1] = lo
    rows += [one_hot_hi, one_hot_lo]
    if fmt.is_float:
        for group in _fp_corner_fields(fmt):
            fields = [group[i % len(group)] for i in range(height)]
            aligned, _emax = align_group(fields)
            rows.append(np.asarray(aligned, dtype=np.int64))
    return np.stack(rows)


def random_input_vectors(
    rng: np.random.Generator, height: int, fmt: DataFormat, n: int
) -> np.ndarray:
    """Seeded random vectors, shape (n, height) int64.

    For FP formats the draws are random *field patterns* pushed through
    group alignment — the distribution the alignment unit actually
    produces — rather than uniform integers.
    """
    if not fmt.is_float:
        lo, hi = int_range(fmt.bits)
        return rng.integers(lo, hi + 1, size=(n, height), dtype=np.int64)
    signs = rng.integers(0, 2, size=(n, height))
    exps = rng.integers(0, 1 << fmt.exponent, size=(n, height))
    mants = rng.integers(0, 1 << fmt.mantissa, size=(n, height))
    # Vectorized twin of FPFields.signed_significand + align_group
    # (equivalence pinned by the test suite): hidden-bit significand,
    # arithmetic right shift by the exponent deficit within each
    # vector's group, subnormals scaling like exponent 1.
    hidden = (exps > 0).astype(np.int64)
    mag = (hidden << fmt.mantissa) | mants
    signed = np.where(signs == 1, -mag, mag)
    eff = np.maximum(exps, 1)
    emax = eff.max(axis=1, keepdims=True)
    return signed >> (emax - eff)


def directed_weight_matrices(
    height: int, groups: int, fmt: DataFormat
) -> List[np.ndarray]:
    """Deterministic corner weight matrices, each (height, groups).

    Integer formats return int64 matrices for
    :meth:`~repro.sim.functional.DCIMMacroModel.set_weights_int`; FP
    formats return float64 matrices for :meth:`set_weights_fp`.
    """
    if fmt.is_float:
        e_max = (1 << fmt.exponent) - 1
        m_max = (1 << fmt.mantissa) - 1
        big = FPFields(0, e_max, m_max, fmt).to_float()
        tiny = FPFields(0, 0, 1, fmt).to_float()
        checker = np.where(
            (np.arange(height)[:, None] + np.arange(groups)) % 2 == 0,
            big,
            -big,
        )
        return [
            np.zeros((height, groups)),
            np.full((height, groups), big),
            np.full((height, groups), -big),
            checker.astype(np.float64),
            np.where(
                np.arange(height)[:, None] % 2 == 0, big, tiny
            ).astype(np.float64),
        ]
    lo, hi = int_range(fmt.bits)
    checker = np.where(
        (np.arange(height)[:, None] + np.arange(groups)) % 2 == 0, hi, lo
    )
    return [
        np.zeros((height, groups), dtype=np.int64),
        np.full((height, groups), hi, dtype=np.int64),
        np.full((height, groups), lo, dtype=np.int64),
        checker.astype(np.int64),
        np.full((height, groups), -1, dtype=np.int64),
    ]


def random_weight_matrix(
    rng: np.random.Generator, height: int, groups: int, fmt: DataFormat
) -> np.ndarray:
    """One seeded random weight matrix in the format's range."""
    if fmt.is_float:
        e_max = (1 << fmt.exponent) - 1
        m_max = (1 << fmt.mantissa) - 1
        big = FPFields(0, e_max, m_max, fmt).to_float()
        return rng.uniform(-big, big, size=(height, groups))
    lo, hi = int_range(fmt.bits)
    return rng.integers(lo, hi + 1, size=(height, groups), dtype=np.int64)
