"""The batch verification harness: netlist vs golden model at scale.

:func:`verify_macro` runs N MAC cycles of a compiled netlist through
the vectorized testbench and checks every output column of every cycle
against :class:`~repro.sim.functional.DCIMMacroModel`.

Coverage scheduling exploits the batch dimension: within every round,
lanes are striped across the spec's *input formats* and across the MCR
*banks* (per-lane bank select), and both stripes rotate per round — a
round with more than ``n_in * mcr`` lanes covers every (input format,
bank) pair by itself, and smaller budgets still cycle through
everything over successive rounds.  The *weight format* — which owns
the shared weight arrays — cycles across rounds, and the default batch
size is chosen so every weight format gets at least one round.  Each input format's first
lanes lead with its directed corner stimuli (sign, overflow, zero and
FP-alignment extremes), the first rounds of each weight format with
directed weight patterns per bank; the rest are seeded random, so any
failure reproduces from ``(seed, vectors, batch)`` alone.

The result is a structured :class:`VerificationReport`: vectors run,
mismatches (first-failing MAC cycle and output column, expected vs
observed), and throughput — the number the perf harness tracks as
``vecsim_vectors_per_s``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..arch import MacroArchitecture
from ..errors import SimulationError
from ..rtl.gen.macro import MacroShape
from ..spec import MacroSpec
from ..tech.stdcells import StdCellLibrary
from .stimuli import (
    directed_input_vectors,
    directed_weight_matrices,
    random_input_vectors,
    random_weight_matrix,
)
from .testbench import VecMacroTestbench

#: Default stimulus count: the acceptance bar for one compiled macro.
DEFAULT_VECTORS = 4096


@dataclass(frozen=True)
class Mismatch:
    """One failing (MAC cycle, output column) observation."""

    cycle: int  #: global MAC-cycle index (0-based vector number)
    column: int  #: output group column
    expected: int
    observed: int
    input_format: str
    weight_format: str
    bank: int

    def describe(self) -> str:
        return (
            f"cycle {self.cycle} column {self.column}: expected "
            f"{self.expected}, got {self.observed} "
            f"({self.input_format} x {self.weight_format}, "
            f"bank {self.bank})"
        )


@dataclass
class VerificationReport:
    """Outcome of one :func:`verify_macro` run."""

    spec_summary: str
    vectors_run: int
    mismatch_count: int
    batch: int
    seed: int
    elapsed_s: float
    vectors_per_s: float
    #: First ``max_records`` mismatches in cycle order; ``mismatch_count``
    #: is the uncapped total.
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.mismatch_count == 0

    @property
    def first_failure(self) -> Optional[Mismatch]:
        return self.mismatches[0] if self.mismatches else None

    def to_dict(self) -> Dict[str, object]:
        first = self.first_failure
        return {
            "passed": self.passed,
            "vectors_run": self.vectors_run,
            "mismatch_count": self.mismatch_count,
            "batch": self.batch,
            "seed": self.seed,
            "elapsed_s": round(self.elapsed_s, 4),
            "vectors_per_s": round(self.vectors_per_s, 1),
            "first_failure": (
                None
                if first is None
                else {"cycle": first.cycle, "column": first.column}
            ),
        }

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"verification {verdict}: {self.vectors_run} vectors on "
            f"{self.spec_summary} ({self.vectors_per_s:.0f} vectors/s, "
            f"seed {self.seed})"
        ]
        if not self.passed:
            lines.append(
                f"  {self.mismatch_count} mismatching "
                f"(cycle, column) observations; first failures:"
            )
            for mm in self.mismatches[:5]:
                lines.append(f"    {mm.describe()}")
        return "\n".join(lines)


def verify_macro(
    spec: MacroSpec,
    arch: Optional[MacroArchitecture] = None,
    netlist=None,
    shape: Optional[MacroShape] = None,
    library: Optional[StdCellLibrary] = None,
    vectors: int = DEFAULT_VECTORS,
    seed: int = 0,
    batch: Optional[int] = None,
    max_records: int = 16,
) -> VerificationReport:
    """Verify a macro netlist against the golden model.

    Parameters
    ----------
    netlist:
        A flat macro netlist — digital or physical (see
        :class:`~repro.verify.testbench.VecMacroTestbench`).  ``None``
        generates the digital macro for ``(spec, arch)``.
    vectors:
        Total MAC cycles to run (directed corners first, then seeded
        random).
    batch:
        Lanes evaluated simultaneously; the default caps at 1024 and
        shrinks so every weight format owns at least one round (input
        formats and banks are striped across the lanes of *every*
        round, so they need no extra rounds).
    """
    arch = arch or MacroArchitecture()
    if vectors < 1:
        raise SimulationError(f"vectors must be positive, got {vectors}")
    in_fmts = list(spec.input_formats)
    w_fmts = list(spec.weight_formats)
    n_in, n_w = len(in_fmts), len(w_fmts)
    if batch is None:
        batch = max(1, min(1024, vectors, -(-vectors // n_w)))
    tb = VecMacroTestbench(
        spec, arch, batch=batch, netlist=netlist, shape=shape,
        library=library,
    )
    rng = np.random.default_rng(seed)
    height, groups = spec.height, tb.model.n_groups
    directed_w = {
        fmt.name: directed_weight_matrices(height, groups, fmt)
        for fmt in w_fmts
    }

    mismatches: List[Mismatch] = []
    mismatch_count = 0
    offset = 0
    round_i = 0
    #: Formats whose directed input corners have already led a round —
    #: with batches smaller than n_in, a format's first lanes may only
    #: appear in a later round.
    corners_done = [False] * n_in
    t0 = time.perf_counter()
    while offset < vectors:
        n = min(batch, vectors - offset)
        w_fmt = w_fmts[round_i % n_w]

        # Every bank gets fresh weights each round: directed patterns
        # first (spread over (round, bank) so each bank sees them),
        # then seeded random draws.
        patterns = directed_w[w_fmt.name]
        for bank in range(spec.mcr):
            pat = (round_i // n_w) * spec.mcr + bank
            if pat < len(patterns):
                weights = patterns[pat]
            else:
                weights = random_weight_matrix(rng, height, groups, w_fmt)
            tb.load_weights(bank, weights, w_fmt)

        # Stripe lanes across input formats and (independently) across
        # banks.  Both stripes rotate per round, so even a batch
        # smaller than the format/bank count cycles through everything
        # over successive rounds; a round with more than n_in * mcr
        # lanes covers every (input format, bank) pair by itself.
        lane = np.arange(n)
        fmt_idx = (lane + round_i) % n_in
        banks = ((lane // n_in) + round_i) % spec.mcr
        xs = np.zeros((n, height), dtype=np.int64)
        for fi, in_fmt in enumerate(in_fmts):
            lanes = np.nonzero(fmt_idx == fi)[0]
            if not len(lanes):
                continue
            draws = random_input_vectors(rng, height, in_fmt, len(lanes))
            if not corners_done[fi]:
                corners = directed_input_vectors(height, in_fmt)
                take = min(len(corners), len(lanes))
                draws[:take] = corners[:take]
                corners_done[fi] = True
            xs[lanes] = draws

        observed = tb.run_mac(xs, banks)
        expected = tb.expected(xs, banks)
        bad = observed != expected
        if bad.any():
            mismatch_count += int(bad.sum())
            lanes, cols = np.nonzero(bad)
            for lane, col in zip(lanes, cols):
                if len(mismatches) >= max_records:
                    break
                mismatches.append(
                    Mismatch(
                        cycle=offset + int(lane),
                        column=int(col),
                        expected=int(expected[lane, col]),
                        observed=int(observed[lane, col]),
                        input_format=in_fmts[int(fmt_idx[lane])].name,
                        weight_format=w_fmt.name,
                        bank=int(banks[lane]),
                    )
                )
        offset += n
        round_i += 1
    elapsed = time.perf_counter() - t0

    return VerificationReport(
        spec_summary=spec.describe(),
        vectors_run=offset,
        mismatch_count=mismatch_count,
        batch=batch,
        seed=seed,
        elapsed_s=elapsed,
        vectors_per_s=offset / elapsed if elapsed > 0 else float("inf"),
        mismatches=mismatches,
    )
