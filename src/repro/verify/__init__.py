"""Functional verification of compiled netlists against the golden model.

The paper's Section III.D closes the flow with "gate-level simulation
to ensure it meets frontend requirements".  This package makes that a
first-class batch workload instead of a test-only spot check:

* :mod:`repro.verify.stimuli` — seeded randomized and directed corner
  stimulus generation per :class:`~repro.spec.DataFormat` (sign,
  overflow, zero and FP-alignment extremes);
* :mod:`repro.verify.testbench` — :class:`VecMacroTestbench`, the
  vectorized macro driver built on :class:`repro.sim.vecsim.VecSim`
  (drives digital *and* physical netlists — weight ports or bitcell
  read nets);
* :mod:`repro.verify.harness` — :func:`verify_macro`, which runs N MAC
  cycles of netlist-vs-:class:`~repro.sim.functional.DCIMMacroModel`
  equivalence and returns a structured :class:`VerificationReport`.

Wired into the stack: ``ImplementSession``/``SynDCIM.compile`` accept a
post-synthesis ``verify=`` stage, batch records carry the report, and
the CLI exposes ``--verify`` plus a ``verify`` subcommand.
"""

from .harness import Mismatch, VerificationReport, verify_macro
from .testbench import VecMacroTestbench

__all__ = [
    "Mismatch",
    "VecMacroTestbench",
    "VerificationReport",
    "verify_macro",
]
