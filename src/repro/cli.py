"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``search``   run only the multi-spec-oriented search and print the
             Pareto frontier;
``compile``  full performance-to-layout compilation with optional
             Verilog/GDS export, (``--corners``) multi-corner PVT
             signoff and (``--verify``) netlist-vs-golden functional
             verification;
``verify``   compile, then batch-verify the implemented netlist
             against the golden model and print the report;
``shmoo``    compile and sweep the voltage/frequency grid (Fig. 9
             style);
``sweep``    expand a range grammar over the spec axes into a design
             grid and batch-compile it (parallel, cached, JSONL out);
``batch``    batch-compile explicit specs from a JSON/JSONL file;
``serve``    run the compile service: a shared job queue behind an
             HTTP/JSON API (``docs/service.md``);
``journal``  list or prune the crash-resume journals under the cache.

``sweep`` and ``batch`` also take ``--server URL`` to submit to a
running service instead of compiling locally — same grid grammar, same
JSONL output, same exit codes, no local compute.

Examples::

    python -m repro compile --height 64 --width 64 --mcr 2 \\
        --formats INT4 INT8 FP8 --frequency 800 --verilog macro.v
    python -m repro compile --corners SS,TT,FF   # 3-corner signoff
    python -m repro compile --vt auto --lib-out macro.lib
    python -m repro compile --lib-in vendor.lib  # external library
    python -m repro compile --verify             # 4096-vector signoff
    python -m repro verify --vectors 65536 --seed 7
    python -m repro sweep --height 32:128:x2 --frequency 400 800 -j 4
    python -m repro sweep ... --job-timeout 300 --retries 2
    python -m repro sweep ... --resume 20260807-101500-ab12cd
    python -m repro serve --port 8841 -j 2 --workers 4
    python -m repro sweep --height 32 64 --server http://127.0.0.1:8841
    python -m repro journal --prune --keep 8

Long sweeps are fault-tolerant: per-job watchdog timeouts, transient-
failure retries and a crash-safe resume journal (docs/robustness.md).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import List, Optional, Sequence

from .errors import SynDCIMError
from .options import DEFAULT_VERIFY_VECTORS, PPA_PRESETS, CompileOptions
from .spec import MacroSpec, parse_format


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--height", type=int, default=64)
    parser.add_argument("--width", type=int, default=64)
    parser.add_argument("--mcr", type=int, default=2)
    parser.add_argument(
        "--formats",
        nargs="+",
        default=["INT4", "INT8"],
        help="data formats for inputs and weights (e.g. INT4 INT8 FP8)",
    )
    parser.add_argument(
        "--frequency", type=float, default=800.0, help="MAC MHz target"
    )
    parser.add_argument("--vdd", type=float, default=0.9)
    parser.add_argument(
        "--ppa", choices=sorted(PPA_PRESETS), default="balanced"
    )


def _spec_from_args(args: argparse.Namespace) -> MacroSpec:
    formats = tuple(parse_format(f) for f in args.formats)
    ppa = PPA_PRESETS[args.ppa]
    return MacroSpec(
        height=args.height,
        width=args.width,
        mcr=args.mcr,
        input_formats=formats,
        weight_formats=formats,
        mac_frequency_mhz=args.frequency,
        vdd=args.vdd,
        ppa=ppa,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SynDCIM: performance-aware DCIM compiler",
    )
    parser.add_argument(
        "--no-scl-cache",
        action="store_true",
        help="ignore the persistent subcircuit-library cache and "
        "re-characterize in every process (also: REPRO_SCL_CACHE=off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="search only; print frontier")
    _add_spec_args(p_search)
    _add_vt_arg(p_search)

    p_compile = sub.add_parser("compile", help="full spec-to-layout run")
    _add_spec_args(p_compile)
    _add_vt_arg(p_compile)
    _add_corners_arg(p_compile)
    _add_verify_args(p_compile)
    p_compile.add_argument("--verilog", help="write the netlist here")
    p_compile.add_argument("--gds", help="write the layout stream here")
    p_compile.add_argument(
        "--lib-in",
        metavar="LIB",
        help="compile against the cell library parsed from this "
        "Liberty (.lib) file instead of the built-in library",
    )
    p_compile.add_argument(
        "--lib-out",
        metavar="LIB",
        help="characterize the cell library in use and write it here "
        "as Liberty text (round-trips through --lib-in)",
    )
    p_compile.add_argument(
        "--no-implement",
        action="store_true",
        help="stop after search + selection",
    )

    p_verify = sub.add_parser(
        "verify",
        help="compile, then batch-verify the netlist vs the golden model",
        description=(
            "Run the full compilation, then drive the implemented "
            "netlist with randomized + directed corner stimuli through "
            "the vectorized gate-level simulator and check every MAC "
            "cycle against the behavioural model.  Exit code 1 on any "
            "mismatch."
        ),
    )
    _add_spec_args(p_verify)
    p_verify.add_argument(
        "--vectors", type=int, default=DEFAULT_VERIFY_VECTORS,
        help=f"MAC stimulus vectors to run "
        f"(default {DEFAULT_VERIFY_VECTORS})",
    )
    p_verify.add_argument(
        "--seed", type=int, default=0,
        help="stimulus seed (failures reproduce from it)",
    )
    p_verify.add_argument(
        "--batch", type=int, default=None,
        help="lanes simulated simultaneously (default: capped at 1024 "
        "and sized so every weight format gets at least one round)",
    )

    p_shmoo = sub.add_parser("shmoo", help="compile then V/f shmoo")
    _add_spec_args(p_shmoo)
    p_shmoo.add_argument("--vmin", type=float, default=0.6)
    p_shmoo.add_argument("--vmax", type=float, default=1.2)
    p_shmoo.add_argument("--fmax", type=float, default=1400.0)

    p_sweep = sub.add_parser(
        "sweep",
        help="batch-compile a design grid from range expressions",
        description=(
            "Expand range expressions over the spec axes "
            "(e.g. --height 32:256:x2, --frequency 400:1000:+200) into "
            "a grid and compile every point through the batch engine: "
            "deduplicated, cached on disk, scheduled over a process "
            "pool, results streamed to JSONL."
        ),
    )
    p_sweep.add_argument(
        "--height", nargs="+", default=["64"],
        help="values or ranges, e.g. 32:256:x2",
    )
    p_sweep.add_argument("--width", nargs="+", default=["64"])
    p_sweep.add_argument("--mcr", nargs="+", default=["2"])
    p_sweep.add_argument(
        "--formats", nargs="+", default=["INT4,INT8"],
        help="comma-joined format groups, e.g. INT4,INT8 INT8,FP8",
    )
    p_sweep.add_argument(
        "--frequency", nargs="+", default=["800"],
        help="MAC MHz values or ranges, e.g. 400:1000:+200",
    )
    p_sweep.add_argument("--vdd", nargs="+", default=["0.9"])
    p_sweep.add_argument(
        "--ppa", choices=sorted(PPA_PRESETS), default="balanced"
    )
    _add_batch_exec_args(p_sweep, default_output="sweep_results.jsonl")

    p_batch = sub.add_parser(
        "batch",
        help="batch-compile explicit specs from a JSON/JSONL file",
        description=(
            "Read MacroSpec dicts (a JSON array or one JSON object per "
            "line) and compile them through the batch engine."
        ),
    )
    p_batch.add_argument(
        "--specs", required=True, help="JSON/JSONL file of spec dicts"
    )
    _add_batch_exec_args(p_batch, default_output="batch_results.jsonl")

    p_serve = sub.add_parser(
        "serve",
        help="run the compile service (job queue + HTTP/JSON API)",
        description=(
            "Start a long-running compile service: a deduplicating "
            "priority job queue over the batch engine, exposed as an "
            "HTTP/JSON API (POST /v1/jobs, POST /v1/sweeps, "
            "GET /v1/results/<hash>, ...).  Clients share one result "
            "store, so no content hash is ever compiled twice.  "
            "See docs/service.md."
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8841,
        help="TCP port (0 picks an ephemeral port; default 8841)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="concurrent queue workers (default: min(4, CPU count))",
    )
    p_serve.add_argument(
        "-j", "--jobs", type=int, default=2,
        help="engine processes per running job (default 2 — pool "
        "mode, so the watchdog and fault isolation apply)",
    )
    p_serve.add_argument(
        "--cache-dir",
        help="result-store directory (default $REPRO_CACHE_DIR "
        "or ~/.cache/repro)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="serve from a bounded in-memory store (nothing persists)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="default per-job watchdog deadline in seconds "
        "(submissions may override via options.job_timeout_s)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="default transient-failure retry budget per job",
    )
    p_serve.add_argument(
        "--journal-keep", type=int, default=32, metavar="N",
        help="journals retained when the service prunes after each "
        "sweep (default 32)",
    )

    p_journal = sub.add_parser(
        "journal",
        help="list or prune the crash-resume journals under the cache",
        description=(
            "Every sweep leaves a write-ahead journal (used by "
            "--resume) under <cache root>/journal/.  Default action "
            "lists them newest first; --prune deletes those outside "
            "the retention policy you give it."
        ),
    )
    p_journal.add_argument(
        "--cache-dir",
        help="cache root holding journal/ (default $REPRO_CACHE_DIR "
        "or ~/.cache/repro)",
    )
    p_journal.add_argument(
        "--prune", action="store_true",
        help="delete journals outside --keep/--older-than (at least "
        "one retention flag is required)",
    )
    p_journal.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="retain only the newest N journals",
    )
    p_journal.add_argument(
        "--older-than", type=float, default=None, metavar="SECONDS",
        help="delete journals whose mtime is older than this",
    )
    return parser


def _add_verify_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify",
        action="store_true",
        help="post-synthesis functional verification: drive the "
        "implemented netlist with randomized + directed stimuli "
        "against the golden model (mismatches fail the run)",
    )
    parser.add_argument(
        "--verify-vectors",
        type=int,
        default=DEFAULT_VERIFY_VECTORS,
        metavar="N",
        help=f"stimulus vectors for --verify "
        f"(default {DEFAULT_VERIFY_VECTORS})",
    )


def _add_vt_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vt",
        choices=("svt", "hvt", "lvt", "ulvt", "auto"),
        default="svt",
        help="threshold-voltage flavor for the logic fabric: a fixed "
        "flavor pins every laddered cell, 'auto' lets the search trade "
        "Vt against worst-corner slack and recovers leakage on the "
        "final netlist (default svt)",
    )


def _add_corners_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--corners",
        help="signoff corners: a comma-separated list of corner names "
        "(SS,TT,FF) or a preset (typical, signoff3); timing signs off "
        "at the worst corner",
    )


def _parse_corners_arg(args: argparse.Namespace):
    """Resolve ``--corners`` (or return None).  Unknown corner names
    and empty sets raise the usual SynDCIMError -> exit code 1."""
    text = getattr(args, "corners", None)
    if text is None:
        return None
    from .signoff.corners import parse_corners

    return parse_corners(text)


def _options_from_args(args: argparse.Namespace) -> CompileOptions:
    """The canonical :class:`CompileOptions` for a batch-style argparse
    namespace — one spelling, shared with the HTTP API, so a CLI run
    and a service submission of the same flags hash identically."""
    return CompileOptions(
        corners=getattr(args, "corners", None),
        vt=getattr(args, "vt", "svt"),
        verify=getattr(args, "verify", False),
        verify_vectors=getattr(
            args, "verify_vectors", DEFAULT_VERIFY_VECTORS
        ),
        seed=getattr(args, "seed", None),
        implement=not getattr(args, "no_implement", False),
        job_timeout_s=getattr(args, "job_timeout", None),
        retries=max(0, getattr(args, "retries", 1)),
    )


def _add_batch_exec_args(
    parser: argparse.ArgumentParser, default_output: str
) -> None:
    _add_vt_arg(parser)
    _add_corners_arg(parser)
    _add_verify_args(parser)
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        help="result-cache directory (default $REPRO_CACHE_DIR "
        "or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip cache lookup and store",
    )
    parser.add_argument(
        "--no-implement", action="store_true",
        help="search + selection only (no layouts; much faster)",
    )
    parser.add_argument(
        "--output", default=default_output,
        help=f"JSONL results path, streamed as jobs complete; "
        f"'-' writes records to stdout (default {default_output})",
    )
    parser.add_argument(
        "--no-summary", action="store_true",
        help="skip the aggregate Pareto/scaling report",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="search-order seed (recorded in the cache key)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="per-job watchdog deadline in seconds: an overdue worker "
        "is killed (with its pool) and the job retried; after the "
        "retry budget it records status='timeout' instead of hanging "
        "the sweep (pool mode only; see docs/robustness.md)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="transient-failure retry budget per job — pool breaks, "
        "watchdog timeouts and single-worker failures re-run up to N "
        "times with exponential backoff before going terminal "
        "(default 1; see docs/robustness.md)",
    )
    parser.add_argument(
        "--resume", metavar="RUN_ID", default=None,
        help="resume a killed/crashed run from its write-ahead "
        "journal: finished jobs are restored and only the unfinished "
        "remainder recompiles (run ids print at sweep start; see "
        "docs/robustness.md)",
    )
    parser.add_argument(
        "--server", metavar="URL", default=None,
        help="submit to a running compile service (e.g. "
        "http://127.0.0.1:8841) instead of compiling locally: same "
        "JSONL output and exit codes, jobs dedup against every other "
        "client of that server (local-only flags -j/--cache-dir/"
        "--no-cache/--resume are ignored)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_scl_cache", False):
        # Through the environment so batch workers inherit the choice
        # regardless of the multiprocessing start method.
        os.environ["REPRO_SCL_CACHE"] = "off"
    try:
        return _dispatch(args)
    except SynDCIMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "journal":
        return _run_journal(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "batch":
        return _run_batch_file(args)

    from .compiler.syndcim import SynDCIM

    spec = _spec_from_args(args)
    library = None
    if getattr(args, "lib_in", None):
        from .tech.liberty import read_liberty_library

        library = read_liberty_library(args.lib_in)
    compiler = SynDCIM(
        library=library,
        corners=_parse_corners_arg(args),
        vt=getattr(args, "vt", "svt"),
    )
    if getattr(args, "lib_out", None):
        from .tech.liberty import export_liberty

        with open(args.lib_out, "w") as fh:
            fh.write(export_liberty(compiler.library, compiler.process))
        print(f"wrote {args.lib_out}")

    if args.command == "search":
        result = compiler.search(spec)
        print(result.describe())
        print(f"fixes: {result.fix_counts}")
        return 0 if result.frontier else 1

    if args.command == "compile":
        result = compiler.compile(
            spec,
            implement_design=not args.no_implement,
            verify=args.verify,
            verify_vectors=args.verify_vectors,
        )
        print(result.report())
        impl = result.implementation
        if impl is not None:
            if args.verilog:
                with open(args.verilog, "w") as fh:
                    fh.write(impl.verilog())
                print(f"wrote {args.verilog}")
            if args.gds:
                with open(args.gds, "w") as fh:
                    fh.write(impl.gds())
                print(f"wrote {args.gds}")
            return 0 if impl.signoff_clean and impl.verification_clean else 1
        return 0

    if args.command == "verify":
        from .verify import verify_macro

        result = compiler.compile(spec)
        impl = result.implementation
        assert impl is not None
        report = verify_macro(
            spec,
            impl.arch,
            netlist=impl.netlist,
            shape=impl.shape,
            library=compiler.library,
            vectors=args.vectors,
            seed=args.seed,
            batch=args.batch,
        )
        print(report.describe())
        return 0 if report.passed else 1

    if args.command == "shmoo":
        from .sim.shmoo import run_shmoo

        result = compiler.compile(spec)
        impl = result.implementation
        assert impl is not None
        voltages = [
            round(args.vmin + 0.05 * i, 2)
            for i in range(int((args.vmax - args.vmin) / 0.05) + 1)
        ]
        freqs = [float(f) for f in range(100, int(args.fmax) + 1, 100)]
        shmoo = run_shmoo(
            impl.min_period_ns, compiler.process, voltages, freqs
        )
        print(
            f"critical path {impl.min_period_ns:.3f} ns @"
            f"{compiler.process.vdd_nominal} V"
        )
        print(shmoo.render())
        return 0

    raise AssertionError(f"unhandled command {args.command}")


def _run_serve(args: argparse.Namespace) -> int:
    from .service.queue import JobQueue
    from .service.server import create_server

    options = CompileOptions(
        job_timeout_s=args.job_timeout,
        retries=max(0, args.retries),
    )
    queue = JobQueue(
        options=options,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        workers=args.workers,
        engine_jobs=args.jobs,
        journal_keep=max(0, args.journal_keep),
    )
    try:
        server = create_server(queue, host=args.host, port=args.port)
    except OSError as exc:
        queue.close()
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    # The URL line is machine-parsed (examples/service_smoke.py boots
    # on port 0 and scrapes the ephemeral port from it) — keep format.
    print(f"serving on {server.base_url}", flush=True)
    store_root = getattr(queue.store, "root", None)
    store_text = str(store_root) if store_root else "in-memory"
    print(f"run {queue.run_id} ({queue.workers} workers, "
          f"store: {store_text})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        queue.close()
    return 0


def _run_journal(args: argparse.Namespace) -> int:
    from .batch.cache import default_cache_dir
    from .batch.resilience import list_journals, prune_journals

    root = pathlib.Path(args.cache_dir) if args.cache_dir \
        else default_cache_dir()
    if args.prune:
        if args.keep is None and args.older_than is None:
            print(
                "error: --prune needs a retention policy "
                "(--keep N and/or --older-than SECONDS)",
                file=sys.stderr,
            )
            return 1
        removed = prune_journals(
            root, keep=args.keep, older_than_s=args.older_than
        )
        for path in removed:
            print(f"pruned {path.stem}")
        print(f"pruned {len(removed)} journal(s) under {root}")
        return 0
    journals = list_journals(root)
    if not journals:
        print(f"no journals under {root}")
        return 0
    for path in journals:
        try:
            stat = path.stat()
            print(f"{path.stem}  {stat.st_size:>9d} bytes")
        except OSError:
            continue
    print(f"{len(journals)} journal(s) under {root}")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    if args.server:
        return _run_remote_sweep(args)
    from .batch.sweep import (
        expand_grid,
        grid_summary,
        parse_axis,
        parse_format_sets,
    )

    specs = expand_grid(
        heights=parse_axis(args.height),
        widths=parse_axis(args.width),
        mcrs=parse_axis(args.mcr),
        format_sets=parse_format_sets(args.formats),
        frequencies=parse_axis(args.frequency, integer=False),
        vdds=parse_axis(args.vdd, integer=False),
        ppa=PPA_PRESETS[args.ppa],
    )
    human = sys.stderr if args.output == "-" else sys.stdout
    print(f"sweep: {grid_summary(specs)}", file=human)
    return _execute_batch(specs, args)


def _run_batch_file(args: argparse.Namespace) -> int:
    from .batch.summarize import load_records

    try:
        entries = load_records(args.specs)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    specs = []
    for i, entry in enumerate(entries, start=1):
        try:
            specs.append(MacroSpec.from_dict(entry))
        except SynDCIMError as exc:
            print(f"error: {args.specs} entry {i}: {exc}", file=sys.stderr)
            return 1
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            print(
                f"error: {args.specs} entry {i}: malformed spec "
                f"({type(exc).__name__}: {exc})",
                file=sys.stderr,
            )
            return 1
    human = sys.stderr if args.output == "-" else sys.stdout
    print(f"batch: {len(specs)} specs from {args.specs}", file=human)
    if args.server:
        return _run_remote_specs(specs, args)
    return _execute_batch(specs, args)


def _run_remote_sweep(args: argparse.Namespace) -> int:
    """``sweep --server URL``: ship the raw axis tokens to the
    service's ``POST /v1/sweeps`` (the grid grammar expands
    server-side) and stream the terminal records back as JSONL."""
    from .service.client import ServiceClient

    client = ServiceClient(args.server)
    human = sys.stderr if args.output == "-" else sys.stdout
    sweep = client.submit_sweep(
        axes={
            "height": args.height,
            "width": args.width,
            "mcr": args.mcr,
            "formats": args.formats,
            "frequency": args.frequency,
            "vdd": args.vdd,
        },
        options=_options_from_args(args),
        ppa=args.ppa,
    )
    print(
        f"sweep {sweep['id']}: {sweep['points']} points on {args.server}",
        file=human,
    )
    done = client.wait_sweep(sweep["id"])
    records = [
        client.job(job_id).get("record") or {} for job_id in done["jobs"]
    ]
    return _finish_remote(records, args, human)


def _run_remote_specs(specs: List[MacroSpec], args: argparse.Namespace) -> int:
    """``batch --server URL``: submit each spec, then collect."""
    from .service.client import ServiceClient

    client = ServiceClient(args.server)
    human = sys.stderr if args.output == "-" else sys.stdout
    options = _options_from_args(args)
    job_ids = [
        str(client.submit(spec, options=options)["id"]) for spec in specs
    ]
    records = [
        client.wait(job_id).get("record") or {} for job_id in job_ids
    ]
    return _finish_remote(records, args, human)


def _finish_remote(records, args: argparse.Namespace, human) -> int:
    """JSONL the remote records to --output with local exit-code
    semantics (1 on any error/timeout point or output failure)."""
    to_stdout = args.output == "-"
    sink = sys.stdout
    if not to_stdout and args.output:
        try:
            sink = open(args.output, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write --output: {exc}", file=sys.stderr)
            return 1
    try:
        for record in records:
            sink.write(json.dumps(record) + "\n")
        sink.flush()
    except OSError as exc:
        print(f"error: writing {args.output}: {exc}", file=sys.stderr)
        return 1
    finally:
        if not to_stdout:
            sink.close()
    statuses = [r.get("status") for r in records]
    counts = {s: statuses.count(s) for s in sorted(set(statuses), key=str)}
    summary = ", ".join(f"{v} {k}" for k, v in counts.items())
    print(f"{len(records)} records ({summary})", file=human)
    if not to_stdout and args.output:
        print(f"wrote {len(records)} records to {args.output}", file=human)
    return 1 if any(s in ("error", "timeout") for s in statuses) else 0


def _execute_batch(specs: List[MacroSpec], args: argparse.Namespace) -> int:
    from .batch.engine import BatchCompiler

    # `--output -` sends the JSONL records to stdout (pipeline-friendly:
    # progress/summary move to stderr); a path streams them to the file
    # as jobs complete, so a killed run keeps its finished points.
    to_stdout = args.output == "-"
    human = sys.stderr if to_stdout else sys.stdout
    muted = False

    def say(*parts: object) -> None:
        # Human chatter must never kill a run whose data sink is a
        # file: if the terminal/pipe reading it goes away, go quiet
        # and keep compiling.
        nonlocal muted
        if muted:
            return
        try:
            print(*parts, file=human)
        except BrokenPipeError:
            muted = True

    # Open the sink before any compilation so a bad --output path fails
    # in milliseconds, not after an hours-long grid.
    sink = None
    if to_stdout:
        sink = sys.stdout
    elif args.output:
        try:
            sink = open(args.output, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write --output: {exc}", file=sys.stderr)
            return 1

    write_failed = False
    streamed: set = set()

    def emit(record: dict) -> None:
        nonlocal write_failed
        if sink is None or write_failed:
            return
        try:
            sink.write(json.dumps(record) + "\n")
            sink.flush()
        except BrokenPipeError:
            # The stdout consumer went away (e.g. `... | head`):
            # nothing downstream wants more records, so stop compiling.
            raise _OutputClosed from None
        except OSError as exc:
            # Disk filled up mid-run: keep compiling — the summary is
            # now the only place the remaining results surface.
            write_failed = True
            print(f"error: writing {args.output}: {exc}", file=sys.stderr)

    def progress(done: int, total: int, record: dict) -> None:
        status = record.get("status")
        how = "cached" if record.get("cached") else (
            f"compiled {record.get('elapsed_s', 0.0):.1f}s"
        )
        say(f"[{done}/{total}] {record.get('spec_summary')} — "
            f"{status} ({how})")
        emit(record)
        streamed.add(record.get("job_key"))

    options = _options_from_args(args)
    from .batch.faults import ENV_FAULTS, FaultPlan, active_plan

    # A typo'd chaos spec must fail loudly at arm time, not run a
    # clean sweep that "passes" (the library itself only warns and
    # disarms, because workers must never die to a bad environment).
    fault_text = os.environ.get(ENV_FAULTS)
    if fault_text:
        try:
            FaultPlan.parse(fault_text)
        except SynDCIMError as exc:
            print(f"error: {ENV_FAULTS}: {exc}", file=sys.stderr)
            return 1
        plan = active_plan()
        if plan is not None:
            say(plan.describe())

    engine = BatchCompiler(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
        options=options,
        resume=args.resume,
    )
    # The run id prints *before* compilation: a sweep killed mid-grid
    # must already have told the user how to come back for it.
    if engine.run_id:
        if args.resume:
            say(f"resuming run {engine.run_id}")
        else:
            say(
                f"run {engine.run_id} (if interrupted, finish with "
                f"--resume {engine.run_id})"
            )
    try:
        result = engine.compile_specs(
            specs, implement=not args.no_implement
        )
        # Duplicate input specs fold onto one executed job, which was
        # streamed once; append their copies so the JSONL holds one
        # line per requested point.
        already_streamed: set = set()
        for record in result.records:
            key = record.get("job_key")
            if key in streamed and key not in already_streamed:
                already_streamed.add(key)
                continue
            emit(record)
        if sink is not None and not to_stdout and not write_failed:
            say(f"wrote {len(result.records)} records to {args.output}")
    except _OutputClosed:
        print(
            "output pipe closed by the consumer; aborting",
            file=sys.stderr,
        )
        return 1
    finally:
        if sink is not None and not to_stdout:
            sink.close()
    say(result.describe())

    if not args.no_summary:
        from .batch.summarize import summarize

        say()
        say(summarize(result.records))
    # A truncated JSONL output is a failed run even when every point
    # compiled: downstream scripts must not mistake it for complete.
    if write_failed:
        return 1
    return 1 if any(
        r.get("status") in ("error", "timeout") for r in result.records
    ) else 0


class _OutputClosed(Exception):
    """Internal: the --output stdout pipe was closed by its consumer."""


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
