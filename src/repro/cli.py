"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``search``   run only the multi-spec-oriented search and print the
             Pareto frontier;
``compile``  full performance-to-layout compilation with optional
             Verilog/GDS export;
``shmoo``    compile and sweep the voltage/frequency grid (Fig. 9
             style).

Example::

    python -m repro compile --height 64 --width 64 --mcr 2 \\
        --formats INT4 INT8 FP8 --frequency 800 --verilog macro.v
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .errors import SynDCIMError
from .spec import MacroSpec, PPAWeights, parse_format


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--height", type=int, default=64)
    parser.add_argument("--width", type=int, default=64)
    parser.add_argument("--mcr", type=int, default=2)
    parser.add_argument(
        "--formats",
        nargs="+",
        default=["INT4", "INT8"],
        help="data formats for inputs and weights (e.g. INT4 INT8 FP8)",
    )
    parser.add_argument(
        "--frequency", type=float, default=800.0, help="MAC MHz target"
    )
    parser.add_argument("--vdd", type=float, default=0.9)
    parser.add_argument(
        "--ppa",
        choices=["balanced", "energy", "area", "performance"],
        default="balanced",
    )


def _spec_from_args(args: argparse.Namespace) -> MacroSpec:
    formats = tuple(parse_format(f) for f in args.formats)
    ppa = {
        "balanced": PPAWeights(),
        "energy": PPAWeights(power=3.0, performance=1.0, area=1.0),
        "area": PPAWeights(power=1.0, performance=1.0, area=3.0),
        "performance": PPAWeights(power=1.0, performance=3.0, area=1.0),
    }[args.ppa]
    return MacroSpec(
        height=args.height,
        width=args.width,
        mcr=args.mcr,
        input_formats=formats,
        weight_formats=formats,
        mac_frequency_mhz=args.frequency,
        vdd=args.vdd,
        ppa=ppa,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SynDCIM: performance-aware DCIM compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="search only; print frontier")
    _add_spec_args(p_search)

    p_compile = sub.add_parser("compile", help="full spec-to-layout run")
    _add_spec_args(p_compile)
    p_compile.add_argument("--verilog", help="write the netlist here")
    p_compile.add_argument("--gds", help="write the layout stream here")
    p_compile.add_argument(
        "--no-implement",
        action="store_true",
        help="stop after search + selection",
    )

    p_shmoo = sub.add_parser("shmoo", help="compile then V/f shmoo")
    _add_spec_args(p_shmoo)
    p_shmoo.add_argument("--vmin", type=float, default=0.6)
    p_shmoo.add_argument("--vmax", type=float, default=1.2)
    p_shmoo.add_argument("--fmax", type=float, default=1400.0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except SynDCIMError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    from .compiler.syndcim import SynDCIM

    spec = _spec_from_args(args)
    compiler = SynDCIM()

    if args.command == "search":
        result = compiler.search(spec)
        print(result.describe())
        print(f"fixes: {result.fix_counts}")
        return 0 if result.frontier else 1

    if args.command == "compile":
        result = compiler.compile(
            spec, implement_design=not args.no_implement
        )
        print(result.report())
        impl = result.implementation
        if impl is not None:
            if args.verilog:
                with open(args.verilog, "w") as fh:
                    fh.write(impl.verilog())
                print(f"wrote {args.verilog}")
            if args.gds:
                with open(args.gds, "w") as fh:
                    fh.write(impl.gds())
                print(f"wrote {args.gds}")
            return 0 if impl.signoff_clean else 1
        return 0

    if args.command == "shmoo":
        from .sim.shmoo import run_shmoo

        result = compiler.compile(spec)
        impl = result.implementation
        assert impl is not None
        voltages = [
            round(args.vmin + 0.05 * i, 2)
            for i in range(int((args.vmax - args.vmin) / 0.05) + 1)
        ]
        freqs = [float(f) for f in range(100, int(args.fmax) + 1, 100)]
        shmoo = run_shmoo(
            impl.min_period_ns, compiler.process, voltages, freqs
        )
        print(
            f"critical path {impl.min_period_ns:.3f} ns @"
            f"{compiler.process.vdd_nominal} V"
        )
        print(shmoo.render())
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
