"""Liberty (.lib) style export of characterized cells.

The paper integrates custom cells into the digital flow by generating
LIB files "providing timing, power, and area information ... compatible
with standard cells" (Section III.D).  This writer emits a faithful
subset of the Liberty grammar — library header, cell/pin/timing groups
with ``index_1``/``index_2``/``values`` tables — so the output is
recognizably a .lib and can be round-tripped by :func:`parse_liberty`
(used in tests to prove the views are self-consistent).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Tuple

from ..errors import LibraryError
from .characterization import CharacterizedCell, NLDMTable


def _fmt_floats(values: Iterable[float]) -> str:
    return ", ".join(f"{v:.6f}" for v in values)


def _emit_table(name: str, table: NLDMTable, indent: str) -> List[str]:
    lines = [f"{indent}{name} (delay_template) {{"]
    lines.append(f'{indent}  index_1 ("{_fmt_floats(table.slews_ns)}");')
    lines.append(f'{indent}  index_2 ("{_fmt_floats(table.loads_ff)}");')
    rows = ", \\\n".join(
        f'{indent}    "{_fmt_floats(row)}"' for row in table.values
    )
    lines.append(f"{indent}  values ( \\\n{rows});")
    lines.append(f"{indent}}}")
    return lines


def write_liberty(
    library_name: str,
    cells: Mapping[str, CharacterizedCell],
    vdd: float,
) -> str:
    """Render the characterized cells as Liberty text."""
    out: List[str] = []
    out.append(f"library ({library_name}) {{")
    out.append('  delay_model : "table_lookup";')
    out.append('  time_unit : "1ns";')
    out.append('  capacitive_load_unit (1, "ff");')
    out.append(f"  nom_voltage : {vdd:.3f};")
    for name in sorted(cells):
        cc = cells[name]
        cell = cc.cell
        out.append(f"  cell ({name}) {{")
        out.append(f"    area : {cell.area_um2:.4f};")
        out.append(f"    cell_leakage_power : {cell.leakage_nw:.4f};")
        for pin, cap in cell.input_caps_ff.items():
            out.append(f"    pin ({pin}) {{")
            out.append("      direction : input;")
            out.append(f"      capacitance : {cap:.4f};")
            if cell.is_sequential and pin == cell.clk_pin:
                out.append("      clock : true;")
            out.append("    }")
        for pin in cell.outputs:
            out.append(f"    pin ({pin}) {{")
            out.append("      direction : output;")
            energy = cell.internal_energy_fj.get(pin, 0.0)
            out.append(f"      internal_power_fj : {energy:.4f};")
            for ca in cc.arcs:
                if ca.arc.output_pin != pin:
                    continue
                out.append("      timing () {")
                out.append(f"        related_pin : \"{ca.arc.input_pin}\";")
                out.extend(_emit_table("cell_rise", ca.delay_table, "        "))
                out.extend(_emit_table("rise_transition", ca.slew_table, "        "))
                out.append("      }")
            out.append("    }")
        if cell.is_sequential:
            out.append(
                f"    ff (IQ) {{ clocked_on : \"{cell.clk_pin}\"; "
                f"next_state : \"D\"; }}"
            )
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


_CELL_RE = re.compile(r"^\s*cell \((\w+)\) \{")
_AREA_RE = re.compile(r"^\s*area : ([0-9.eE+-]+);")
_LEAK_RE = re.compile(r"^\s*cell_leakage_power : ([0-9.eE+-]+);")
_PIN_RE = re.compile(r"^\s*pin \((\w+)\) \{")
_CAP_RE = re.compile(r"^\s*capacitance : ([0-9.eE+-]+);")


def parse_liberty(text: str) -> Dict[str, Dict[str, object]]:
    """Parse the subset of Liberty this writer emits.

    Returns ``{cell_name: {"area": float, "leakage": float,
    "pin_caps": {pin: cap}}}`` — enough for the round-trip consistency
    tests and for third-party consumption of the exported views.
    """
    cells: Dict[str, Dict[str, object]] = {}
    current: str = ""
    current_pin: str = ""
    for line in text.splitlines():
        m = _CELL_RE.match(line)
        if m:
            current = m.group(1)
            cells[current] = {"area": 0.0, "leakage": 0.0, "pin_caps": {}}
            current_pin = ""
            continue
        if not current:
            continue
        m = _AREA_RE.match(line)
        if m:
            cells[current]["area"] = float(m.group(1))
            continue
        m = _LEAK_RE.match(line)
        if m:
            cells[current]["leakage"] = float(m.group(1))
            continue
        m = _PIN_RE.match(line)
        if m:
            current_pin = m.group(1)
            continue
        m = _CAP_RE.match(line)
        if m and current_pin:
            pin_caps = cells[current]["pin_caps"]
            assert isinstance(pin_caps, dict)
            pin_caps[current_pin] = float(m.group(1))
            continue
    if not cells:
        raise LibraryError("no cells found in liberty text")
    return cells
