"""Liberty (.lib) interchange: lossless export and import of the library.

The paper integrates custom cells into the digital flow by generating
LIB files "providing timing, power, and area information ... compatible
with standard cells" (Section III.D).  This module goes both ways:

* :func:`write_liberty` renders characterized cells as Liberty text —
  library header, cell/pin/timing groups with NLDM
  ``index_1``/``index_2``/``values`` tables, ``function`` attributes,
  ff groups with setup/hold timing, and multi-Vt/drive annotations
  (``threshold_voltage_group``, ``drive_strength``).
* :func:`parse_liberty_cells` parses that grammar back into
  :class:`~repro.tech.stdcells.Cell` objects, so an exported library
  re-imports bit-for-bit (every float is emitted with ``repr`` and the
  linear model is carried verbatim in ``intrinsic_rise`` /
  ``rise_resistance``); :func:`read_liberty_library` wraps the result
  as a :class:`StdCellLibrary` usable as an alternate ``default_scl``
  backend.

Losslessness contract: ``export -> import -> export`` is a fixed point,
and the imported cells reproduce the exact timing/power/area numbers of
the originals (the differential suite in ``tests/test_liberty.py`` and
``tests/test_vt_library.py`` pins both).  Geometry and internal energy
have no standard Liberty home, so they travel in clearly-prefixed
extension attributes (``repro_width_um``, ``repro_height_um``,
``repro_clk_to_q_ns``, ``internal_power_fj``); external libraries
without them fall back to defaults.

External .lib files that only carry NLDM tables (no intrinsic
attributes) are accepted too: the linear model is re-fitted from the
table corners, which is exact for any table this writer produced.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import LibraryError
from .characterization import (
    SLEW_SENSITIVITY,
    CharacterizedCell,
    NLDMTable,
    characterize_library,
)
from .process import Process
from .stdcells import (
    Cell,
    LogicFn,
    StdCellLibrary,
    TimingArc,
    parse_variant_name,
)


def _fmt_floats(values: Iterable[float]) -> str:
    # repr() is the shortest string that round-trips the exact double —
    # the foundation of the lossless export/import contract.
    return ", ".join(repr(float(v)) for v in values)


def _emit_table(name: str, table: NLDMTable, indent: str) -> List[str]:
    lines = [f"{indent}{name} (delay_template) {{"]
    lines.append(f'{indent}  index_1 ("{_fmt_floats(table.slews_ns)}");')
    lines.append(f'{indent}  index_2 ("{_fmt_floats(table.loads_ff)}");')
    rows = ", \\\n".join(
        f'{indent}    "{_fmt_floats(row)}"' for row in table.values
    )
    lines.append(f"{indent}  values ( \\\n{rows});")
    lines.append(f"{indent}}}")
    return lines


def _data_pin(cell: Cell) -> str:
    """The non-clock input of a sequential cell (its next_state pin)."""
    for pin in cell.input_caps_ff:
        if pin != cell.clk_pin:
            return pin
    return "D"


def write_liberty(
    library_name: str,
    cells: Mapping[str, CharacterizedCell],
    vdd: float,
) -> str:
    """Render the characterized cells as Liberty text (lossless)."""
    out: List[str] = []
    out.append(f"library ({library_name}) {{")
    out.append('  delay_model : "table_lookup";')
    out.append('  time_unit : "1ns";')
    out.append('  capacitive_load_unit (1, "ff");')
    out.append(f"  nom_voltage : {repr(float(vdd))};")
    for name in sorted(cells):
        cc = cells[name]
        cell = cc.cell
        out.append(f"  cell ({name}) {{")
        out.append(f"    area : {repr(float(cell.area_um2))};")
        out.append(
            f"    cell_leakage_power : {repr(float(cell.leakage_nw))};"
        )
        out.append(f'    threshold_voltage_group : "{cell.vt}";')
        out.append(f"    drive_strength : {cell.drive};")
        if cell.tags:
            out.append(f'    cell_footprint : "{" ".join(cell.tags)}";')
        if cell.is_memory:
            out.append("    memory : true;")
        out.append(f"    repro_width_um : {repr(float(cell.width_um))};")
        out.append(f"    repro_height_um : {repr(float(cell.height_um))};")
        if cell.is_sequential:
            out.append(
                f"    repro_clk_to_q_ns : {repr(float(cell.clk_to_q_ns))};"
            )
        for pin, cap in cell.input_caps_ff.items():
            out.append(f"    pin ({pin}) {{")
            out.append("      direction : input;")
            out.append(f"      capacitance : {repr(float(cap))};")
            if cell.is_sequential and pin == cell.clk_pin:
                out.append("      clock : true;")
            if cell.is_sequential and pin == _data_pin(cell):
                for kind, value in (
                    ("setup_rising", cell.setup_ns),
                    ("hold_rising", cell.hold_ns),
                ):
                    out.append("      timing () {")
                    out.append(f'        related_pin : "{cell.clk_pin}";')
                    out.append(f"        timing_type : {kind};")
                    out.append(
                        f"        intrinsic_rise : {repr(float(value))};"
                    )
                    out.append("      }")
            out.append("    }")
        for pin in cell.outputs:
            out.append(f"    pin ({pin}) {{")
            out.append("      direction : output;")
            expr = cell.pin_functions.get(pin)
            if expr:
                out.append(f'      function : "{expr}";')
            energy = cell.internal_energy_fj.get(pin, 0.0)
            out.append(f"      internal_power_fj : {repr(float(energy))};")
            for ca in cc.arcs:
                if ca.arc.output_pin != pin:
                    continue
                out.append("      timing () {")
                out.append(f'        related_pin : "{ca.arc.input_pin}";')
                # The nominal linear model, verbatim; the NLDM tables
                # below are its (possibly voltage-scaled) sampled view.
                out.append(
                    f"        intrinsic_rise : {repr(float(ca.arc.d0_ns))};"
                )
                out.append(
                    f"        rise_resistance : {repr(float(ca.arc.r_kohm))};"
                )
                out.extend(_emit_table("cell_rise", ca.delay_table, "        "))
                out.extend(
                    _emit_table("rise_transition", ca.slew_table, "        ")
                )
                out.append("      }")
            out.append("    }")
        if cell.is_sequential:
            out.append("    ff (IQ) {")
            out.append(f'      clocked_on : "{cell.clk_pin}";')
            out.append(f'      next_state : "{_data_pin(cell)}";')
            out.append("    }")
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Group-tree parser.
# ---------------------------------------------------------------------------


@dataclass
class _Group:
    """One Liberty group: ``name (arg) { attrs...; subgroups... }``."""

    name: str
    arg: str
    attrs: Dict[str, str] = field(default_factory=dict)
    complex_attrs: List[Tuple[str, str]] = field(default_factory=list)
    groups: List["_Group"] = field(default_factory=list)

    def sub(self, name: str) -> List["_Group"]:
        return [g for g in self.groups if g.name == name]

    def complex(self, name: str) -> Optional[str]:
        for attr_name, arg in self.complex_attrs:
            if attr_name == name:
                return arg
        return None


_COMMENT_RE = re.compile(r"/\*.*?\*/", re.S)
_TOKEN_RE = re.compile(r'"[^"]*"|[{};]|[^"{};]+')
_HEADER_RE = re.compile(r"^(\w+)\s*\((.*)\)$", re.S)


def _parse_groups(text: str) -> _Group:
    """Tokenize Liberty text into a nested group tree."""
    text = _COMMENT_RE.sub("", text)
    text = text.replace("\\\n", " ")
    root = _Group("<root>", "")
    stack = [root]
    buf: List[str] = []

    def statement() -> str:
        stmt = "".join(buf).strip()
        del buf[:]
        return stmt

    for match in _TOKEN_RE.finditer(text):
        tok = match.group(0)
        if tok == "{":
            header = statement()
            m = _HEADER_RE.match(header)
            if m is None:
                raise LibraryError(f"malformed liberty group header {header!r}")
            group = _Group(m.group(1), m.group(2).strip())
            stack[-1].groups.append(group)
            stack.append(group)
        elif tok == ";":
            stmt = statement()
            if not stmt:
                continue
            if ":" in stmt:
                name, _, value = stmt.partition(":")
                stack[-1].attrs[name.strip()] = value.strip()
            else:
                m = _HEADER_RE.match(stmt)
                if m is not None:
                    stack[-1].complex_attrs.append(
                        (m.group(1), m.group(2).strip())
                    )
        elif tok == "}":
            del buf[:]
            if len(stack) == 1:
                raise LibraryError("unbalanced braces in liberty text")
            stack.pop()
        else:
            buf.append(tok)
    if len(stack) != 1:
        raise LibraryError("unbalanced braces in liberty text")
    return root


def _unquote(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return value


def _num(value: str) -> float:
    try:
        return float(_unquote(value))
    except ValueError:
        raise LibraryError(f"bad liberty number {value!r}") from None


def _num_list(arg: str) -> Tuple[float, ...]:
    return tuple(float(v) for v in _unquote(arg).replace(",", " ").split())


# ---------------------------------------------------------------------------
# Boolean function expressions (Liberty ``function`` attribute).
# ---------------------------------------------------------------------------

_FN_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\[\]]*|[01]|[!&|^()'*+]")

_Eval = Callable[[Mapping[str, int]], int]


def _compile_expr(expr: str) -> _Eval:
    """Compile one Liberty boolean expression to an evaluator.

    Grammar (precedence low -> high): ``| +`` (or), ``^`` (xor),
    ``& *`` (and), ``!``/postfix ``'`` (not), identifiers and the
    constants ``0``/``1``.
    """
    tokens = _FN_TOKEN_RE.findall(expr)
    if "".join(tokens).replace(" ", "") != expr.replace(" ", ""):
        raise LibraryError(f"bad function expression {expr!r}")
    pos = 0

    def peek() -> Optional[str]:
        return tokens[pos] if pos < len(tokens) else None

    def take() -> str:
        nonlocal pos
        tok = tokens[pos]
        pos += 1
        return tok

    def parse_or() -> _Eval:
        left = parse_xor()
        while peek() in ("|", "+"):
            take()
            right = parse_xor()
            left = (lambda a, b: lambda p: a(p) | b(p))(left, right)
        return left

    def parse_xor() -> _Eval:
        left = parse_and()
        while peek() == "^":
            take()
            right = parse_and()
            left = (lambda a, b: lambda p: a(p) ^ b(p))(left, right)
        return left

    def parse_and() -> _Eval:
        left = parse_unary()
        while peek() in ("&", "*"):
            take()
            right = parse_unary()
            left = (lambda a, b: lambda p: a(p) & b(p))(left, right)
        return left

    def parse_unary() -> _Eval:
        tok = peek()
        if tok is None:
            raise LibraryError(f"truncated function expression {expr!r}")
        if tok == "!":
            take()
            inner = parse_unary()
            node: _Eval = (lambda a: lambda p: 1 - a(p))(inner)
        elif tok == "(":
            take()
            node = parse_or()
            if peek() != ")":
                raise LibraryError(f"unbalanced parens in {expr!r}")
            take()
        elif tok in ("0", "1"):
            take()
            value = int(tok)
            node = lambda p, _v=value: _v  # noqa: E731
        else:
            name = take()
            node = (lambda n: lambda p: 1 if p[n] else 0)(name)
        while peek() == "'":  # postfix negation (classic Liberty)
            take()
            node = (lambda a: lambda p: 1 - a(p))(node)
        return node

    result = parse_or()
    if pos != len(tokens):
        raise LibraryError(f"trailing tokens in function expression {expr!r}")
    return result


def compile_functions(pin_functions: Mapping[str, str]) -> Optional[LogicFn]:
    """Build a cell :data:`LogicFn` from per-output-pin expressions."""
    if not pin_functions:
        return None
    evals = {pin: _compile_expr(e) for pin, e in pin_functions.items()}

    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {pin: ev(pins) for pin, ev in evals.items()}

    return fn


# ---------------------------------------------------------------------------
# Cell reconstruction.
# ---------------------------------------------------------------------------


def _fit_linear_arc(timing: _Group) -> Tuple[float, float]:
    """Recover (d0_ns, r_kohm) from an NLDM table when the intrinsic
    attributes are absent — exact for tables produced by this writer's
    linear model, a corner-based fit otherwise."""
    tables = timing.sub("cell_rise")
    if not tables:
        raise LibraryError("timing group has neither intrinsic nor table data")
    table = tables[0]
    slews = _num_list(table.complex("index_1") or "")
    loads = _num_list(table.complex("index_2") or "")
    values_arg = table.complex("values")
    if values_arg is None or not slews or not loads:
        raise LibraryError("cell_rise table missing axes or values")
    rows = re.findall(r'"([^"]*)"', values_arg)
    first_row = tuple(
        float(v) for v in rows[0].replace(",", " ").split()
    ) if rows else _num_list(values_arg)
    if len(loads) > 1 and len(first_row) == len(loads):
        r_kohm = (first_row[-1] - first_row[0]) / (loads[-1] - loads[0]) * 1e3
    else:
        r_kohm = 0.0
    d0 = first_row[0] - r_kohm * loads[0] * 1e-3 - SLEW_SENSITIVITY * slews[0]
    return d0, r_kohm


def _cell_from_group(group: _Group) -> Cell:
    name = group.arg
    parsed_name = parse_variant_name(name)
    attrs = group.attrs

    input_caps: Dict[str, float] = {}
    outputs: List[str] = []
    arcs: List[TimingArc] = []
    pin_functions: Dict[str, str] = {}
    energy: Dict[str, float] = {}
    clk_pin = ""
    setup_ns = 0.0
    hold_ns = 0.0

    for pin_group in group.sub("pin"):
        pin = pin_group.arg
        direction = pin_group.attrs.get("direction", "input")
        if direction == "input":
            input_caps[pin] = _num(pin_group.attrs.get("capacitance", "0"))
            if pin_group.attrs.get("clock", "").lower() == "true":
                clk_pin = pin
            for timing in pin_group.sub("timing"):
                kind = timing.attrs.get("timing_type", "")
                value = _num(timing.attrs.get("intrinsic_rise", "0"))
                if kind.startswith("setup"):
                    setup_ns = value
                elif kind.startswith("hold"):
                    hold_ns = value
        else:
            outputs.append(pin)
            expr = _unquote(pin_group.attrs.get("function", ""))
            if expr:
                pin_functions[pin] = expr
            energy[pin] = _num(pin_group.attrs.get("internal_power_fj", "0"))
            for timing in pin_group.sub("timing"):
                related = _unquote(timing.attrs.get("related_pin", ""))
                if not related:
                    raise LibraryError(f"{name}.{pin}: timing without related_pin")
                if (
                    "intrinsic_rise" in timing.attrs
                    and "rise_resistance" in timing.attrs
                ):
                    d0 = _num(timing.attrs["intrinsic_rise"])
                    r = _num(timing.attrs["rise_resistance"])
                else:
                    d0, r = _fit_linear_arc(timing)
                arcs.append(TimingArc(related, pin, d0, r))

    ff_groups = group.sub("ff") + group.sub("latch")
    is_sequential = bool(ff_groups)
    if is_sequential and not clk_pin:
        clk_pin = _unquote(ff_groups[0].attrs.get("clocked_on", ""))
    clk_to_q = _num(attrs["repro_clk_to_q_ns"]) if "repro_clk_to_q_ns" in attrs else 0.0
    if is_sequential and not clk_to_q:
        for arc in arcs:
            if arc.input_pin == clk_pin:
                clk_to_q = arc.d0_ns
                break

    area = _num(attrs.get("area", "0"))
    height = (
        _num(attrs["repro_height_um"]) if "repro_height_um" in attrs else 1.8
    )
    width = (
        _num(attrs["repro_width_um"])
        if "repro_width_um" in attrs
        else (area / height if height else 0.0)
    )
    vt = _unquote(attrs.get("threshold_voltage_group", ""))
    if not vt:
        vt = parsed_name[1] if parsed_name else "svt"
    drive_attr = attrs.get("drive_strength", "")
    if drive_attr:
        drive = int(_num(drive_attr))
    else:
        drive = parsed_name[2] if parsed_name else 1
    tags_attr = _unquote(attrs.get("cell_footprint", ""))
    tags = tuple(tags_attr.split()) if tags_attr else ()

    return Cell(
        name=name,
        area_um2=area,
        input_caps_ff=input_caps,
        outputs=tuple(outputs),
        arcs=tuple(arcs),
        leakage_nw=_num(attrs.get("cell_leakage_power", "0")),
        internal_energy_fj=energy,
        function=compile_functions(pin_functions),
        is_sequential=is_sequential,
        clk_pin=clk_pin,
        clk_to_q_ns=clk_to_q,
        setup_ns=setup_ns,
        hold_ns=hold_ns,
        is_memory=attrs.get("memory", "").lower() == "true",
        width_um=width,
        height_um=height,
        tags=tags,
        vt=vt,
        drive=drive,
        pin_functions=pin_functions,
    )


@dataclass
class ParsedLiberty:
    """A parsed .lib: header fields plus reconstructed cells, in file
    order (order is part of the losslessness contract)."""

    name: str
    nom_voltage: float
    cells: Dict[str, Cell]


def parse_liberty_cells(text: str) -> ParsedLiberty:
    """Parse Liberty text into full :class:`Cell` objects."""
    root = _parse_groups(text)
    libraries = root.sub("library")
    if not libraries:
        raise LibraryError("no library group in liberty text")
    lib = libraries[0]
    cells: Dict[str, Cell] = {}
    for cell_group in lib.sub("cell"):
        cell = _cell_from_group(cell_group)
        if cell.name in cells:
            raise LibraryError(f"duplicate cell {cell.name} in liberty text")
        cells[cell.name] = cell
    if not cells:
        raise LibraryError("no cells found in liberty text")
    return ParsedLiberty(
        name=lib.arg,
        nom_voltage=_num(lib.attrs.get("nom_voltage", "0")),
        cells=cells,
    )


def library_from_liberty(text: str) -> StdCellLibrary:
    """Import Liberty text as a standard-cell library backend."""
    return StdCellLibrary(parse_liberty_cells(text).cells)


def read_liberty_library(path: Union[str, Path]) -> StdCellLibrary:
    """Read a .lib file as a :class:`StdCellLibrary` (the ``--lib-in``
    backend of the CLI)."""
    return library_from_liberty(Path(path).read_text())


def export_liberty(
    library: StdCellLibrary,
    process: Process,
    vdd: float = 0.0,
    name: str = "repro40",
) -> str:
    """Characterize and export a whole library (the ``--lib-out`` path)."""
    vdd = vdd or process.vdd_nominal
    return write_liberty(name, characterize_library(list(library), process, vdd), vdd)


def parse_liberty(text: str) -> Dict[str, Dict[str, object]]:
    """Summary view: ``{cell: {"area", "leakage", "pin_caps"}}``.

    Retained lightweight interface over the full parser — enough for
    quick consistency checks and third-party consumption.
    """
    parsed = parse_liberty_cells(text)
    return {
        cell.name: {
            "area": cell.area_um2,
            "leakage": cell.leakage_nw,
            "pin_caps": dict(cell.input_caps_ff),
        }
        for cell in parsed.cells.values()
    }
