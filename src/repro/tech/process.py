"""Process/technology model for a 40 nm-class CMOS node.

The paper implements SynDCIM on a commercial 40 nm PDK.  This module is
the offline substitute: an analytical process description providing

* supply/threshold voltages and the alpha-power-law delay model used to
  translate timing between operating voltages (drives the Fig. 9 shmoo);
* wire parasitics per unit length (loads routing estimates);
* global derating corners (SS/TT/FF) for signoff-style analysis.

The absolute values are calibrated so that the generated 64x64 macro
lands near the paper's silicon results (~1.1 GHz at 1.2 V, ~300 MHz at
0.7 V, 0.112 mm^2); all *relative* behaviour (what the searcher actually
exploits) follows from the model structure rather than the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecificationError


@dataclass(frozen=True)
class Corner:
    """A *pure process* corner: the global sigma of the transistors,
    as a pair of multiplicative deratings at the characterized V/T.

    Supply droop and temperature are separate axes — they compose with
    the process sigma through :class:`repro.signoff.Corner`, which is
    what the multi-corner signoff flow actually evaluates.  (Earlier
    revisions bundled worst-case V/T into ``delay_factor``; the signoff
    subsystem decomposes the derate so each axis is visible.)
    """

    name: str
    delay_factor: float
    leakage_factor: float


TT = Corner("TT", 1.00, 1.0)
SS = Corner("SS", 1.08, 0.55)
FF = Corner("FF", 0.93, 2.1)

CORNERS = {c.name: c for c in (TT, SS, FF)}


@dataclass(frozen=True)
class Process:
    """Technology node parameters.

    Attributes
    ----------
    name:
        Node label, cosmetic.
    vdd_nominal:
        Voltage at which the standard-cell library is characterized; all
        LUT numbers refer to this voltage.
    vdd_min / vdd_max:
        Supported operating window (the shmoo sweeps inside it).
    vth:
        Effective threshold voltage for the alpha-power delay law.
    alpha:
        Velocity-saturation exponent of the alpha-power law.
    wire_cap_ff_per_um / wire_res_kohm_per_um:
        Average routing parasitics for mid-layer metal.
    track_pitch_um:
        Routing pitch, used by the congestion model.
    row_height_um:
        Standard-cell row height for placement.
    temp_nominal_c:
        Temperature the library is characterized at.
    temp_delay_per_c:
        Linear gate-delay sensitivity to junction temperature (mobility
        degradation; per degree C away from ``temp_nominal_c``).
    temp_leak_exp_c:
        e-folding temperature of sub-threshold leakage (degrees C per
        ``e``-factor of leakage growth).
    """

    name: str = "generic40"
    vdd_nominal: float = 0.9
    vdd_min: float = 0.6
    vdd_max: float = 1.25
    vth: float = 0.52
    alpha: float = 1.4
    wire_cap_ff_per_um: float = 0.20
    wire_res_kohm_per_um: float = 0.002
    track_pitch_um: float = 0.14
    row_height_um: float = 1.8
    temp_nominal_c: float = 25.0
    temp_delay_per_c: float = 0.00025
    temp_leak_exp_c: float = 40.0

    def __post_init__(self) -> None:
        if not self.vdd_min < self.vdd_nominal < self.vdd_max:
            raise SpecificationError("vdd_nominal must lie inside [vdd_min, vdd_max]")
        if self.vth >= self.vdd_min:
            raise SpecificationError(
                f"vth {self.vth} must be below vdd_min {self.vdd_min}"
            )

    # -- voltage scaling ---------------------------------------------------

    def _alpha_power(self, vdd: float) -> float:
        return vdd / (vdd - self.vth) ** self.alpha

    def delay_scale(self, vdd: float) -> float:
        """Gate-delay multiplier at ``vdd`` relative to ``vdd_nominal``.

        Alpha-power law: ``t_d \\propto Vdd / (Vdd - Vth)^alpha``
        (Sakurai-Newton).  Returns 1.0 at the nominal voltage, >1 below
        it, <1 above it.
        """
        if not self.vdd_min - 1e-9 <= vdd <= self.vdd_max + 1e-9:
            raise SpecificationError(
                f"vdd {vdd} outside supported range "
                f"[{self.vdd_min}, {self.vdd_max}] for {self.name}"
            )
        return self._alpha_power(vdd) / self._alpha_power(self.vdd_nominal)

    def energy_scale(self, vdd: float) -> float:
        """Switching-energy multiplier at ``vdd`` (CV^2 scaling)."""
        ratio = vdd / self.vdd_nominal
        return ratio * ratio

    def leakage_scale(self, vdd: float) -> float:
        """Sub-threshold leakage multiplier; roughly exponential in Vdd
        through DIBL.  Calibrated mildly (factor ~3 across the window)."""
        return math.exp(1.8 * (vdd - self.vdd_nominal))

    # -- temperature scaling -------------------------------------------------

    def temperature_delay_scale(self, temp_c: float) -> float:
        """Gate-delay multiplier at junction temperature ``temp_c``
        relative to the characterization temperature (mobility
        degradation: hotter is slower).  1.0 at ``temp_nominal_c``."""
        scale = 1.0 + self.temp_delay_per_c * (temp_c - self.temp_nominal_c)
        if scale <= 0.0:
            raise SpecificationError(
                f"temperature {temp_c} C drives the delay scale "
                f"non-positive for {self.name}"
            )
        return scale

    def temperature_leakage_scale(self, temp_c: float) -> float:
        """Sub-threshold leakage multiplier at ``temp_c`` (exponential
        in temperature).  1.0 at ``temp_nominal_c``."""
        return math.exp((temp_c - self.temp_nominal_c) / self.temp_leak_exp_c)

    def max_frequency_mhz(self, critical_path_ns: float, vdd: float) -> float:
        """Highest clock (MHz) the given nominal-voltage path sustains at
        ``vdd``."""
        if critical_path_ns <= 0:
            raise SpecificationError("critical path must be positive")
        return 1e3 / (critical_path_ns * self.delay_scale(vdd))

    # -- wire parasitics -----------------------------------------------------

    def wire_cap_ff(self, length_um: float) -> float:
        return self.wire_cap_ff_per_um * length_um

    def wire_delay_ns(self, length_um: float, load_ff: float) -> float:
        """Elmore-style wire delay: distributed RC plus R * receiver load."""
        r = self.wire_res_kohm_per_um * length_um
        c = self.wire_cap_ff_per_um * length_um
        # kohm * fF = ps; 0.5 factor for distributed wire C.
        return (r * (0.5 * c + load_ff)) * 1e-3


GENERIC_40NM = Process()

#: Processes resolvable by name (batch workers receive a name, not an
#: object, so only registered processes can run through the pool).
PROCESSES = {GENERIC_40NM.name: GENERIC_40NM}


def process_by_name(name: str) -> Process:
    """Resolve a registered process; raises for unknown names rather
    than silently substituting a default node."""
    try:
        return PROCESSES[name]
    except KeyError:
        raise SpecificationError(
            f"unknown process {name!r}; registered: {sorted(PROCESSES)}"
        ) from None
