"""Custom-cell characterization flow (paper Fig. 3, left column).

Real SynDCIM characterizes custom layouts with SPICE and emits
NLDM-style Liberty tables.  Here the "circuit simulator" is the linear
delay/slew model embedded in each :class:`~repro.tech.stdcells.Cell`,
sampled over a (input-slew x output-load) grid — producing lookup tables
with the same shape a .lib would carry, which the subcircuit library and
STA then consume.

The slew model used throughout the repo:

* ``delay = d0 + r * C_load + SLEW_SENSITIVITY * slew_in``
* ``slew_out = SLEW_GAIN * (d0 + r * C_load)``

Both constants are typical of 40 nm libraries and keep characterization,
STA and the LUT-based search numerically consistent with one another.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import LibraryError
from .process import Process
from .stdcells import Cell, TimingArc

#: Fraction of the input slew added to the propagation delay.
SLEW_SENSITIVITY = 0.25
#: Output slew as a multiple of the cell's loaded delay.
SLEW_GAIN = 1.1

#: Default characterization grid (ns, fF) — seven points each like a
#: typical foundry NLDM template.
DEFAULT_SLEWS_NS: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
DEFAULT_LOADS_FF: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def arc_delay_ns(arc: TimingArc, slew_in_ns: float, load_ff: float) -> float:
    """Single authoritative delay equation used by every analysis layer."""
    return arc.d0_ns + arc.r_kohm * load_ff * 1e-3 + SLEW_SENSITIVITY * slew_in_ns


def arc_slew_ns(arc: TimingArc, load_ff: float) -> float:
    """Output transition time for a given load."""
    return SLEW_GAIN * (arc.d0_ns + arc.r_kohm * load_ff * 1e-3)


@dataclass(frozen=True)
class NLDMTable:
    """A 2-D lookup table indexed by (input slew, output load).

    ``values[i][j]`` corresponds to ``slews[i]`` and ``loads[j]``.
    Lookup uses bilinear interpolation with clamped extrapolation, the
    same policy Liberty consumers apply.
    """

    slews_ns: Tuple[float, ...]
    loads_ff: Tuple[float, ...]
    values: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.slews_ns):
            raise LibraryError("NLDM row count mismatch")
        if any(len(row) != len(self.loads_ff) for row in self.values):
            raise LibraryError("NLDM column count mismatch")
        if list(self.slews_ns) != sorted(self.slews_ns):
            raise LibraryError("NLDM slew axis must be ascending")
        if list(self.loads_ff) != sorted(self.loads_ff):
            raise LibraryError("NLDM load axis must be ascending")

    @staticmethod
    def _bracket(axis: Sequence[float], x: float) -> Tuple[int, int, float]:
        """Indices and interpolation weight for ``x`` on ``axis``."""
        if x <= axis[0]:
            return 0, 0, 0.0
        if x >= axis[-1]:
            return len(axis) - 1, len(axis) - 1, 0.0
        hi = bisect.bisect_right(axis, x)
        lo = hi - 1
        t = (x - axis[lo]) / (axis[hi] - axis[lo])
        return lo, hi, t

    def lookup(self, slew_ns: float, load_ff: float) -> float:
        i0, i1, ti = self._bracket(self.slews_ns, slew_ns)
        j0, j1, tj = self._bracket(self.loads_ff, load_ff)
        v00 = self.values[i0][j0]
        v01 = self.values[i0][j1]
        v10 = self.values[i1][j0]
        v11 = self.values[i1][j1]
        top = v00 + (v01 - v00) * tj
        bot = v10 + (v11 - v10) * tj
        return top + (bot - top) * ti


@dataclass(frozen=True)
class CharacterizedArc:
    arc: TimingArc
    delay_table: NLDMTable
    slew_table: NLDMTable


@dataclass(frozen=True)
class CharacterizedCell:
    """A cell plus its characterization tables, ready for Liberty export."""

    cell: Cell
    corner_vdd: float
    arcs: Tuple[CharacterizedArc, ...]

    def delay_ns(
        self, input_pin: str, output_pin: str, slew_ns: float, load_ff: float
    ) -> float:
        for ca in self.arcs:
            if ca.arc.input_pin == input_pin and ca.arc.output_pin == output_pin:
                return ca.delay_table.lookup(slew_ns, load_ff)
        raise LibraryError(
            f"{self.cell.name}: arc {input_pin}->{output_pin} not characterized"
        )


def characterize_cell(
    cell: Cell,
    process: Process,
    vdd: float = 0.0,
    slews_ns: Tuple[float, ...] = DEFAULT_SLEWS_NS,
    loads_ff: Tuple[float, ...] = DEFAULT_LOADS_FF,
) -> CharacterizedCell:
    """Run the characterization flow for one cell at a given voltage.

    The cell's embedded linear model describes the nominal voltage; the
    alpha-power delay scale maps it to the requested corner, exactly as
    a multi-voltage characterization run would produce multiple .lib
    files from one layout.
    """
    vdd = vdd or process.vdd_nominal
    scale = process.delay_scale(vdd)
    characterized = []
    for arc in cell.arcs:
        delays = tuple(
            tuple(arc_delay_ns(arc, s, c) * scale for c in loads_ff) for s in slews_ns
        )
        slews = tuple(
            tuple(arc_slew_ns(arc, c) * scale for _ in slews_ns) for c in loads_ff
        )
        # slew table rows must be indexed by input slew too; the model is
        # slew-independent so replicate rows.
        slew_rows = tuple(
            tuple(arc_slew_ns(arc, c) * scale for c in loads_ff) for _ in slews_ns
        )
        del slews
        characterized.append(
            CharacterizedArc(
                arc=arc,
                delay_table=NLDMTable(slews_ns, loads_ff, delays),
                slew_table=NLDMTable(slews_ns, loads_ff, slew_rows),
            )
        )
    return CharacterizedCell(cell=cell, corner_vdd=vdd, arcs=tuple(characterized))


def characterize_library(
    cells: Sequence[Cell], process: Process, vdd: float = 0.0
) -> Dict[str, CharacterizedCell]:
    """Characterize a set of cells; returns name -> characterized view."""
    return {c.name: characterize_cell(c, process, vdd) for c in cells}
