"""LEF-style abstract physical views of library cells.

Mirrors the LEF files the paper generates for custom cells ("describing
the GDS information", Section III.D): per-cell footprint, site, and pin
positions on the cell boundary.  The placer consumes these views; the
GDS writer replays them into the final layout database.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..errors import LayoutError
from .stdcells import Cell


@dataclass(frozen=True)
class PinShape:
    """A pin landing point on the cell outline (um, cell-relative)."""

    name: str
    x_um: float
    y_um: float


@dataclass(frozen=True)
class MacroView:
    """Abstract (LEF MACRO) view of one cell."""

    name: str
    width_um: float
    height_um: float
    site: str
    pins: Tuple[PinShape, ...]

    def pin(self, name: str) -> PinShape:
        for p in self.pins:
            if p.name == name:
                return p
        raise LayoutError(f"{self.name}: no pin {name!r} in LEF view")


def view_for_cell(cell: Cell) -> MacroView:
    """Derive an abstract view: inputs spread on the left edge (plus the
    clock on the bottom), outputs on the right edge."""
    width = cell.width_um or cell.area_um2 / (cell.height_um or 1.8)
    height = cell.height_um or 1.8
    pins: List[PinShape] = []
    inputs = list(cell.input_caps_ff)
    for i, pin in enumerate(inputs):
        y = height * (i + 1) / (len(inputs) + 1)
        if cell.is_sequential and pin == cell.clk_pin:
            pins.append(PinShape(pin, width / 2.0, 0.0))
        else:
            pins.append(PinShape(pin, 0.0, y))
    for i, pin in enumerate(cell.outputs):
        y = height * (i + 1) / (len(cell.outputs) + 1)
        pins.append(PinShape(pin, width, y))
    site = "coreSite" if not cell.is_memory else "sramSite"
    return MacroView(cell.name, width, height, site, tuple(pins))


def write_lef(views: Mapping[str, MacroView]) -> str:
    """Render LEF text for the given views (subset of the LEF grammar)."""
    out: List[str] = ["VERSION 5.8 ;", "BUSBITCHARS \"[]\" ;", "DIVIDERCHAR \"/\" ;"]
    for name in sorted(views):
        v = views[name]
        out.append(f"MACRO {name}")
        out.append("  CLASS CORE ;")
        out.append(f"  SIZE {v.width_um:.4f} BY {v.height_um:.4f} ;")
        out.append(f"  SITE {v.site} ;")
        for pin in v.pins:
            out.append(f"  PIN {pin.name}")
            out.append("    PORT")
            out.append(
                f"      RECT {pin.x_um:.4f} {pin.y_um:.4f} "
                f"{pin.x_um + 0.05:.4f} {pin.y_um + 0.05:.4f} ;"
            )
            out.append("    END")
            out.append(f"  END {pin.name}")
        out.append(f"END {name}")
    out.append("END LIBRARY")
    return "\n".join(out) + "\n"


_MACRO_RE = re.compile(r"^MACRO (\w+)$")
_SIZE_RE = re.compile(r"^\s*SIZE ([0-9.]+) BY ([0-9.]+) ;$")


def parse_lef(text: str) -> Dict[str, Tuple[float, float]]:
    """Parse macro sizes back out of LEF text (round-trip tests)."""
    sizes: Dict[str, Tuple[float, float]] = {}
    current = ""
    for line in text.splitlines():
        m = _MACRO_RE.match(line)
        if m:
            current = m.group(1)
            continue
        m = _SIZE_RE.match(line)
        if m and current:
            sizes[current] = (float(m.group(1)), float(m.group(2)))
    if not sizes:
        raise LayoutError("no macros found in LEF text")
    return sizes
