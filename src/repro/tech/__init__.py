"""Technology substrate: process model, standard cells, characterization,
Liberty/LEF views.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .process import CORNERS, FF, GENERIC_40NM, SS, TT, Corner, Process
from .stdcells import Cell, StdCellLibrary, TimingArc, default_library
from .characterization import (
    CharacterizedCell,
    NLDMTable,
    arc_delay_ns,
    arc_slew_ns,
    characterize_cell,
    characterize_library,
)
from .liberty import parse_liberty, write_liberty
from .lef import MacroView, parse_lef, view_for_cell, write_lef

__all__ = [
    "CORNERS",
    "FF",
    "GENERIC_40NM",
    "SS",
    "TT",
    "Corner",
    "Process",
    "Cell",
    "StdCellLibrary",
    "TimingArc",
    "default_library",
    "CharacterizedCell",
    "NLDMTable",
    "arc_delay_ns",
    "arc_slew_ns",
    "characterize_cell",
    "characterize_library",
    "parse_liberty",
    "write_liberty",
    "MacroView",
    "parse_lef",
    "view_for_cell",
    "write_lef",
]
