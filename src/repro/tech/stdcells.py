"""Standard-cell and custom-cell library for the 40 nm-class process.

The paper builds DCIM macros from (a) ordinary standard cells, (b) custom
cells — SRAM bitcells, multiplier/multiplexer structures — that are
characterized and wrapped with LEF/LIB views so "they become standard
cells for integration into the digital flow" (Section III.B).  This
module provides both kinds.

Each :class:`Cell` carries

* geometry (``area_um2``, ``width_um``, ``height_um``) for placement;
* per-input-pin capacitance (fF) for loading upstream drivers;
* per-arc linear delay models ``d = d0 + r * C_load`` (ns, with r in
  kOhm and C in fF so ``r * C`` is ps — converted inside);
* leakage power (nW) and internal switching energy per output toggle
  (fJ);
* an optional boolean ``function`` used by the gate-level simulator.

Per-pin arcs matter: the paper's CSA optimization exploits the fact that
a compressor's carry output is faster than its sum output and reorders
cell connections accordingly (Fig. 4), which only a pin-accurate model
can express.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import LibraryError

LogicFn = Callable[[Mapping[str, int]], Dict[str, int]]


# --------------------------------------------------------------------------
# Vt flavors and the drive ladder.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class VtFlavor:
    """One threshold-voltage flavor of the process.

    ``delay_factor`` scales every timing quantity (intrinsic delay,
    drive resistance, clk->q, setup, hold) relative to the standard-Vt
    cell; ``leakage_factor`` scales subthreshold leakage — the classic
    exponential Vt/leakage trade collapsed to per-flavor constants, the
    same shape multi-Vt foundry kits expose.  ``cap_factor`` captures
    the small gate-cap change from the implant/channel tweaks.
    """

    name: str
    delay_factor: float
    leakage_factor: float
    cap_factor: float = 1.0


#: The four flavors of a typical 40 nm multi-Vt kit.
VT_FLAVORS: Dict[str, VtFlavor] = {
    "ulvt": VtFlavor("ulvt", 0.80, 4.5, 1.05),
    "lvt": VtFlavor("lvt", 0.90, 2.2, 1.02),
    "svt": VtFlavor("svt", 1.00, 1.0, 1.00),
    "hvt": VtFlavor("hvt", 1.18, 0.35, 0.97),
}

#: Flavors ordered slow/low-leakage -> fast/leaky.
VT_ORDER: Tuple[str, ...] = ("hvt", "svt", "lvt", "ulvt")

#: Drive strengths every laddered family is populated at.
DRIVE_LADDER: Tuple[int, ...] = (1, 2, 4, 6, 8, 12)

_VARIANT_RE = re.compile(r"^([A-Z][A-Z0-9]*?)(?:_(ULVT|LVT|HVT))?_X(\d+)$")


def parse_variant_name(name: str) -> Optional[Tuple[str, str, int]]:
    """Split ``BASE[_VT]_X<drive>`` into (base, vt, drive), or None for
    cells outside the ladder naming scheme (memcells, TIE cells)."""
    m = _VARIANT_RE.match(name)
    if m is None:
        return None
    base, vt, drive = m.group(1), m.group(2), int(m.group(3))
    return base, (vt.lower() if vt else "svt"), drive


def variant_name(base: str, vt: str, drive: int) -> str:
    """Canonical cell name for a (base family, vt, drive) variant."""
    infix = "" if vt == "svt" else f"_{vt.upper()}"
    return f"{base}{infix}_X{drive}"


@dataclass(frozen=True)
class TimingArc:
    """Propagation arc from ``input_pin`` to ``output_pin``.

    ``d0_ns`` is the unloaded (intrinsic) delay; ``r_kohm`` the effective
    drive resistance seen when charging the output load.
    """

    input_pin: str
    output_pin: str
    d0_ns: float
    r_kohm: float

    def delay_ns(self, load_ff: float, slew_factor: float = 1.0) -> float:
        """Linear-model delay for a given load; ``slew_factor`` derates
        the intrinsic term for slow input edges (see characterization)."""
        return self.d0_ns * slew_factor + self.r_kohm * load_ff * 1e-3


@dataclass(frozen=True)
class Cell:
    """One library cell (standard or custom)."""

    name: str
    area_um2: float
    input_caps_ff: Dict[str, float]
    outputs: Tuple[str, ...]
    arcs: Tuple[TimingArc, ...]
    leakage_nw: float
    internal_energy_fj: Dict[str, float]
    function: Optional[LogicFn] = None
    is_sequential: bool = False
    clk_pin: str = ""
    clk_to_q_ns: float = 0.0
    setup_ns: float = 0.0
    hold_ns: float = 0.0
    is_memory: bool = False
    width_um: float = 0.0
    height_um: float = 0.0
    tags: Tuple[str, ...] = field(default_factory=tuple)
    #: Threshold-voltage flavor (see :data:`VT_FLAVORS`).
    vt: str = "svt"
    #: Drive strength on the family ladder (the ``_X<n>`` suffix).
    drive: int = 1
    #: Per-output-pin boolean expressions (Liberty ``function`` attrs);
    #: semantically redundant with ``function`` but textual, so the
    #: library survives a .lib round trip with its logic intact.
    pin_functions: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.vt not in VT_FLAVORS:
            raise LibraryError(f"{self.name}: unknown vt flavor {self.vt!r}")
        for arc in self.arcs:
            if arc.output_pin not in self.outputs:
                raise LibraryError(
                    f"{self.name}: arc output {arc.output_pin!r} not a cell output"
                )
            if not self.is_sequential and arc.input_pin not in self.input_caps_ff:
                raise LibraryError(
                    f"{self.name}: arc input {arc.input_pin!r} not a cell input"
                )

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self.input_caps_ff)

    def input_cap(self, pin: str) -> float:
        try:
            return self.input_caps_ff[pin]
        except KeyError:
            raise LibraryError(f"{self.name} has no input pin {pin!r}") from None

    def arcs_to(self, output_pin: str) -> Tuple[TimingArc, ...]:
        return tuple(a for a in self.arcs if a.output_pin == output_pin)

    def arc(self, input_pin: str, output_pin: str) -> TimingArc:
        for a in self.arcs:
            if a.input_pin == input_pin and a.output_pin == output_pin:
                return a
        raise LibraryError(f"{self.name}: no arc {input_pin}->{output_pin}")

    def worst_arc_to(self, output_pin: str) -> TimingArc:
        arcs = self.arcs_to(output_pin)
        if not arcs:
            raise LibraryError(f"{self.name}: no arcs drive {output_pin!r}")
        return max(arcs, key=lambda a: a.d0_ns)

    def evaluate(self, pins: Mapping[str, int]) -> Dict[str, int]:
        if self.function is None:
            raise LibraryError(f"{self.name} has no logic function")
        return self.function(pins)


def _full_arcs(
    inputs: Tuple[str, ...], output: str, d0: float, r: float
) -> Tuple[TimingArc, ...]:
    return tuple(TimingArc(i, output, d0, r) for i in inputs)


def derive_variant(
    reference: Cell, vt: str, drive: Optional[int] = None
) -> Cell:
    """Scale ``reference`` to another (vt, drive) point of its family.

    Scaling laws (k = drive ratio, f = flavor-factor ratio):

    * delays (``d0``, ``r``, clk->q, setup, hold) x ``f.delay_factor``;
      ``r`` additionally /k (wider devices drive harder);
    * input caps x k x ``f.cap_factor``;
    * area x (0.6 + 0.4 k) — shared well/rail overhead doesn't scale;
    * leakage x k x ``f.leakage_factor``;
    * internal energy x (0.5 + 0.5 k).

    Monotonicity across flavors at a fixed drive is guaranteed by
    construction because every flavor is derived from the *same*
    reference cell.
    """
    parsed = parse_variant_name(reference.name)
    if parsed is None:
        raise LibraryError(
            f"{reference.name}: not a laddered cell, cannot derive variants"
        )
    base, _, _ = parsed
    flavor = VT_FLAVORS.get(vt)
    if flavor is None:
        raise LibraryError(f"unknown vt flavor {vt!r}")
    if drive is None:
        drive = reference.drive
    if drive < 1:
        raise LibraryError(f"{reference.name}: invalid drive {drive}")
    ref_flavor = VT_FLAVORS[reference.vt]
    dly = flavor.delay_factor / ref_flavor.delay_factor
    lkg = flavor.leakage_factor / ref_flavor.leakage_factor
    cap = flavor.cap_factor / ref_flavor.cap_factor
    k = drive / reference.drive
    area = reference.area_um2 * (0.6 + 0.4 * k)
    height = reference.height_um or 1.8
    tags = reference.tags
    if "variant" not in tags:
        tags = tags + ("variant",)
    return Cell(
        name=variant_name(base, vt, drive),
        area_um2=area,
        input_caps_ff={
            p: c * k * cap for p, c in reference.input_caps_ff.items()
        },
        outputs=reference.outputs,
        arcs=tuple(
            TimingArc(a.input_pin, a.output_pin, a.d0_ns * dly, a.r_kohm * dly / k)
            for a in reference.arcs
        ),
        leakage_nw=reference.leakage_nw * k * lkg,
        internal_energy_fj={
            p: e * (0.5 + 0.5 * k)
            for p, e in reference.internal_energy_fj.items()
        },
        function=reference.function,
        is_sequential=reference.is_sequential,
        clk_pin=reference.clk_pin,
        clk_to_q_ns=reference.clk_to_q_ns * dly,
        setup_ns=reference.setup_ns * dly,
        hold_ns=reference.hold_ns * dly,
        is_memory=reference.is_memory,
        width_um=area / height,
        height_um=height,
        tags=tags,
        vt=vt,
        drive=drive,
        pin_functions=dict(reference.pin_functions),
    )


# --------------------------------------------------------------------------
# Logic functions (used by the gate-level simulator and LVS equivalence).
# --------------------------------------------------------------------------


def _inv(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1 - p["A"]}


def _buf(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": p["A"]}


def _nand2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1 - (p["A"] & p["B"])}


def _nor2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1 - (p["A"] | p["B"])}


def _and2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": p["A"] & p["B"]}


def _or2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": p["A"] | p["B"]}


def _xor2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": p["A"] ^ p["B"]}


def _xnor2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1 - (p["A"] ^ p["B"])}


def _aoi22(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1 - ((p["A"] & p["B"]) | (p["C"] & p["D"]))}


def _oai22(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1 - ((p["A"] | p["B"]) & (p["C"] | p["D"]))}


def _mux2(p: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": p["D1"] if p["S"] else p["D0"]}


def _fa(p: Mapping[str, int]) -> Dict[str, int]:
    s = p["A"] + p["B"] + p["CI"]
    return {"S": s & 1, "CO": (s >> 1) & 1}


def _ha(p: Mapping[str, int]) -> Dict[str, int]:
    s = p["A"] + p["B"]
    return {"S": s & 1, "CO": (s >> 1) & 1}


def _cmp42(p: Mapping[str, int]) -> Dict[str, int]:
    """4-2 compressor used as a 5-3 carry-save counter (paper [14]).

    Inputs A..D plus horizontal carry-in CI; outputs sum S (weight 1),
    carry C (weight 2) and horizontal carry-out CO (weight 2, a function
    of A..D only, which keeps the horizontal chain from rippling).
    """
    co = 1 if (p["A"] + p["B"] + p["C"]) >= 2 else 0
    s3 = (p["A"] + p["B"] + p["C"]) & 1
    total = s3 + p["D"] + p["CI"]
    return {"S": total & 1, "CY": (total >> 1) & 1, "CO": co}


def _tie0(_: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 0}


def _tie1(_: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1}


# --------------------------------------------------------------------------
# Library construction.
# --------------------------------------------------------------------------


def _make_cells() -> Dict[str, Cell]:
    cells: Dict[str, Cell] = {}

    def add(cell: Cell) -> None:
        if cell.name in cells:
            raise LibraryError(f"duplicate cell {cell.name}")
        cells[cell.name] = cell

    def simple(
        name: str,
        area: float,
        cap: float,
        d0: float,
        r: float,
        leak: float,
        e_int: float,
        n_inputs: int,
        fn: LogicFn,
        tags: Tuple[str, ...] = (),
        caps: Optional[Dict[str, float]] = None,
        expr: str = "",
    ) -> Cell:
        pin_names = tuple("ABCD"[:n_inputs])
        input_caps = caps or {p: cap for p in pin_names}
        return Cell(
            name=name,
            area_um2=area,
            input_caps_ff=input_caps,
            outputs=("Y",),
            arcs=_full_arcs(tuple(input_caps), "Y", d0, r),
            leakage_nw=leak,
            internal_energy_fj={"Y": e_int},
            function=fn,
            width_um=area / 1.8,
            height_um=1.8,
            tags=tags,
            pin_functions={"Y": expr} if expr else {},
        )

    # Inverters/buffers at three drive strengths.
    add(simple("INV_X1", 0.8, 0.9, 0.010, 1.40, 1.5, 0.40, 1, _inv, expr="!A"))
    add(simple("INV_X2", 1.1, 1.8, 0.010, 0.70, 3.0, 0.70, 1, _inv, expr="!A"))
    add(simple("INV_X4", 1.8, 3.6, 0.011, 0.35, 6.0, 1.30, 1, _inv, expr="!A"))
    add(simple("BUF_X2", 1.6, 1.0, 0.022, 0.70, 3.2, 0.90, 1, _buf, expr="A"))
    add(simple("BUF_X4", 2.4, 1.1, 0.024, 0.35, 5.5, 1.60, 1, _buf, expr="A"))
    add(simple("BUF_X8", 3.8, 1.2, 0.026, 0.18, 9.5, 2.90, 1, _buf, expr="A"))

    # Basic combinational gates.
    add(simple("NAND2_X1", 1.2, 1.1, 0.014, 1.60, 2.2, 0.60, 2, _nand2,
               expr="!(A & B)"))
    add(simple("NAND2_X2", 1.7, 2.2, 0.014, 0.80, 4.2, 1.05, 2, _nand2,
               expr="!(A & B)"))
    add(simple("NOR2_X1", 1.2, 1.1, 0.016, 1.80, 2.0, 0.60, 2, _nor2,
               expr="!(A | B)"))
    add(simple("AND2_X1", 1.5, 1.0, 0.022, 1.50, 2.6, 0.75, 2, _and2,
               expr="A & B"))
    add(simple("OR2_X1", 1.5, 1.0, 0.024, 1.60, 2.6, 0.80, 2, _or2,
               expr="A | B"))
    add(simple("XOR2_X1", 2.6, 1.9, 0.030, 1.70, 3.5, 1.20, 2, _xor2,
               expr="A ^ B"))
    add(simple("XNOR2_X1", 2.6, 1.9, 0.030, 1.70, 3.5, 1.20, 2, _xnor2,
               expr="!(A ^ B)"))
    add(simple("AOI22_X1", 1.9, 1.2, 0.020, 1.90, 2.8, 0.85, 4, _aoi22,
               expr="!((A & B) | (C & D))"))
    add(
        simple(
            "OAI22_X1",
            1.9,
            1.2,
            0.020,
            1.90,
            2.8,
            0.85,
            4,
            _oai22,
            tags=("mult_mux",),
            expr="!((A | B) & (C | D))",
        )
    )
    add(simple("TIE0", 0.4, 0.0, 0.0, 0.0, 0.2, 0.0, 0, _tie0, expr="0"))
    add(simple("TIE1", 0.4, 0.0, 0.0, 0.0, 0.2, 0.0, 0, _tie1, expr="1"))

    # Transmission-gate mux (paper option 3 for MCR selection).
    add(
        Cell(
            name="TGMUX2_X1",
            area_um2=0.9,
            input_caps_ff={"D0": 1.0, "D1": 1.0, "S": 1.8},
            outputs=("Y",),
            arcs=(
                TimingArc("D0", "Y", 0.012, 1.60),
                TimingArc("D1", "Y", 0.012, 1.60),
                TimingArc("S", "Y", 0.018, 1.60),
            ),
            leakage_nw=1.6,
            internal_energy_fj={"Y": 0.50},
            function=_mux2,
            width_um=0.5,
            height_um=1.8,
            tags=("mult_mux",),
            pin_functions={"Y": "(D1 & S) | (D0 & !S)"},
        )
    )
    # Full-CMOS mux for datapath use.
    add(
        Cell(
            name="MUX2_X1",
            area_um2=2.2,
            input_caps_ff={"D0": 1.0, "D1": 1.0, "S": 1.6},
            outputs=("Y",),
            arcs=(
                TimingArc("D0", "Y", 0.020, 1.50),
                TimingArc("D1", "Y", 0.020, 1.50),
                TimingArc("S", "Y", 0.026, 1.50),
            ),
            leakage_nw=3.0,
            internal_energy_fj={"Y": 0.95},
            function=_mux2,
            width_um=2.2 / 1.8,
            height_um=1.8,
            pin_functions={"Y": "(D1 & S) | (D0 & !S)"},
        )
    )
    # 1T passing-gate mux (AutoDCIM option 1): tiny, but the Vt drop makes
    # it slow and power hungry.
    add(
        Cell(
            name="PGMUX2_X1",
            area_um2=0.35,
            input_caps_ff={"D0": 0.8, "D1": 0.8, "S": 1.2},
            outputs=("Y",),
            arcs=(
                TimingArc("D0", "Y", 0.035, 3.50),
                TimingArc("D1", "Y", 0.035, 3.50),
                TimingArc("S", "Y", 0.040, 3.50),
            ),
            leakage_nw=2.4,
            internal_energy_fj={"Y": 0.90},
            function=_mux2,
            width_um=0.2,
            height_um=1.8,
            tags=("mult_mux",),
            pin_functions={"Y": "(D1 & S) | (D0 & !S)"},
        )
    )

    # Adder cells.
    add(
        Cell(
            name="HA_X1",
            area_um2=3.4,
            input_caps_ff={"A": 1.3, "B": 1.3},
            outputs=("S", "CO"),
            arcs=(
                TimingArc("A", "S", 0.032, 1.70),
                TimingArc("B", "S", 0.032, 1.70),
                TimingArc("A", "CO", 0.022, 1.50),
                TimingArc("B", "CO", 0.022, 1.50),
            ),
            leakage_nw=5.0,
            internal_energy_fj={"S": 1.40, "CO": 0.90},
            function=_ha,
            width_um=3.4 / 1.8,
            height_um=1.8,
            tags=("adder",),
            pin_functions={"S": "A ^ B", "CO": "A & B"},
        )
    )
    add(
        Cell(
            name="FA_X1",
            area_um2=6.8,
            input_caps_ff={"A": 1.6, "B": 1.6, "CI": 1.2},
            outputs=("S", "CO"),
            arcs=(
                TimingArc("A", "S", 0.075, 1.70),
                TimingArc("B", "S", 0.075, 1.70),
                TimingArc("CI", "S", 0.055, 1.70),
                TimingArc("A", "CO", 0.052, 1.50),
                TimingArc("B", "CO", 0.052, 1.50),
                TimingArc("CI", "CO", 0.038, 1.50),
            ),
            leakage_nw=9.0,
            internal_energy_fj={"S": 2.80, "CO": 1.90},
            function=_fa,
            width_um=6.8 / 1.8,
            height_um=1.8,
            tags=("adder",),
            pin_functions={
                "S": "(A ^ B) ^ CI",
                "CO": "(A & B) | (CI & (A ^ B))",
            },
        )
    )
    # 4-2 compressor: smaller and lower-energy than the two FAs it
    # replaces (6.8*2 = 13.6 um^2, 9.4 fJ), but its sum path is slower
    # than one FA — exactly the trade the mixed CSA exploits.
    add(
        Cell(
            name="CMP42_X1",
            area_um2=10.5,
            input_caps_ff={"A": 1.5, "B": 1.5, "C": 1.5, "D": 1.4, "CI": 1.2},
            outputs=("S", "CY", "CO"),
            arcs=(
                TimingArc("A", "S", 0.100, 1.70),
                TimingArc("B", "S", 0.100, 1.70),
                TimingArc("C", "S", 0.098, 1.70),
                TimingArc("D", "S", 0.072, 1.70),
                TimingArc("CI", "S", 0.058, 1.70),
                TimingArc("A", "CY", 0.080, 1.50),
                TimingArc("B", "CY", 0.080, 1.50),
                TimingArc("C", "CY", 0.078, 1.50),
                TimingArc("D", "CY", 0.055, 1.50),
                TimingArc("CI", "CY", 0.045, 1.50),
                TimingArc("A", "CO", 0.060, 1.50),
                TimingArc("B", "CO", 0.060, 1.50),
                TimingArc("C", "CO", 0.058, 1.50),
            ),
            leakage_nw=13.0,
            internal_energy_fj={"S": 2.40, "CY": 1.40, "CO": 0.80},
            function=_cmp42,
            width_um=10.5 / 1.8,
            height_um=1.8,
            tags=("adder", "compressor"),
            pin_functions={
                "S": "((A ^ B) ^ C) ^ (D ^ CI)",
                "CY": "(((A ^ B) ^ C) & D) | (CI & (((A ^ B) ^ C) ^ D))",
                "CO": "(A & B) | (A & C) | (B & C)",
            },
        )
    )

    # Sequential cells.
    add(
        Cell(
            name="DFF_X1",
            area_um2=4.6,
            input_caps_ff={"D": 1.0, "CK": 0.9},
            outputs=("Q",),
            arcs=(TimingArc("CK", "Q", 0.085, 1.40),),
            leakage_nw=6.0,
            internal_energy_fj={"Q": 2.20},
            is_sequential=True,
            clk_pin="CK",
            clk_to_q_ns=0.085,
            setup_ns=0.045,
            hold_ns=0.010,
            width_um=4.6 / 1.8,
            height_um=1.8,
        )
    )
    add(
        Cell(
            name="LATCH_X1",
            area_um2=3.2,
            input_caps_ff={"D": 1.0, "G": 0.9},
            outputs=("Q",),
            arcs=(TimingArc("G", "Q", 0.060, 1.50),),
            leakage_nw=4.2,
            internal_energy_fj={"Q": 1.60},
            is_sequential=True,
            clk_pin="G",
            clk_to_q_ns=0.060,
            setup_ns=0.030,
            hold_ns=0.010,
            width_um=3.2 / 1.8,
            height_um=1.8,
        )
    )

    # Custom memory cells (characterized like standard cells, Fig. 3).
    def memcell(
        name: str, area: float, w: float, h: float, leak: float, e_read: float
    ) -> Cell:
        return Cell(
            name=name,
            area_um2=area,
            input_caps_ff={"WL": 0.25, "BL": 0.30},
            outputs=("RD",),
            arcs=(TimingArc("WL", "RD", 0.030, 2.5),),
            leakage_nw=leak,
            internal_energy_fj={"RD": e_read},
            is_memory=True,
            width_um=w,
            height_um=h,
            tags=("memcell",),
        )

    # 6T + read port: the default compute bitcell.
    cells["DCIM6T"] = memcell("DCIM6T", 1.05, 1.05, 1.0, 0.45, 0.22)
    # 8T D-latch cell: robust read/write (paper [3]), bigger.
    cells["DCIM8T"] = memcell("DCIM8T", 1.45, 1.45, 1.0, 0.60, 0.20)
    # 12T OAI-gate cell: design-feasibility option (paper [10]).
    cells["DCIM12T"] = memcell("DCIM12T", 2.10, 2.10, 1.0, 0.85, 0.26)
    # Plain 6T storage cell used for extra MCR banks.
    cells["SRAM6T"] = memcell("SRAM6T", 0.55, 0.55, 1.0, 0.30, 0.15)
    # Hybrid ReRAM+SRAM compute cell (papers [11]-[13]): ReRAM stores the
    # weight (near-zero leakage), a small SRAM assist reads it for MAC.
    # Denser than the 6T compute cell but slower and costlier to read.
    cells["RRAM_HYB"] = memcell("RRAM_HYB", 0.40, 0.40, 1.0, 0.02, 0.35)
    rram = cells["RRAM_HYB"]
    cells["RRAM_HYB"] = Cell(
        name=rram.name,
        area_um2=rram.area_um2,
        input_caps_ff=rram.input_caps_ff,
        outputs=rram.outputs,
        arcs=(TimingArc("WL", "RD", 0.055, 3.2),),
        leakage_nw=rram.leakage_nw,
        internal_energy_fj=rram.internal_energy_fj,
        is_memory=True,
        width_um=rram.width_um,
        height_um=rram.height_um,
        tags=("memcell",),
    )

    # Stamp the (vt, drive) coordinates the cell names already encode so
    # the handcrafted cells sit on the same ladder as derived variants.
    for name, cell in list(cells.items()):
        parsed = parse_variant_name(name)
        if parsed is not None:
            _, vt, drive = parsed
            if cell.vt != vt or cell.drive != drive:
                cells[name] = replace(cell, vt=vt, drive=drive)

    _expand_variants(cells)
    return cells


#: Families populated across the full Vt x drive grid; the anchor is the
#: handcrafted cell drive-scaling starts from.
_DRIVE_ANCHORS: Tuple[str, ...] = (
    "INV_X1",
    "BUF_X2",
    "NAND2_X1",
    "NOR2_X1",
    "AND2_X1",
    "OR2_X1",
    "XOR2_X1",
    "XNOR2_X1",
    "AOI22_X1",
    "OAI22_X1",
)

#: Complex/sequential cells that get Vt flavors at their native drive
#: only (resizing a custom compressor or flop layout is a relayout, not
#: a scaling law).
_VT_ONLY_ANCHORS: Tuple[str, ...] = (
    "TGMUX2_X1",
    "MUX2_X1",
    "PGMUX2_X1",
    "HA_X1",
    "FA_X1",
    "CMP42_X1",
    "DFF_X1",
    "LATCH_X1",
)


def _expand_variants(cells: Dict[str, Cell]) -> None:
    """Populate the Vt x drive grid around the handcrafted cells.

    Handcrafted cells are never replaced: where one exists at a grid
    point it *is* that point, and the other Vt flavors at the same drive
    are derived from it — which keeps the flavor ordering (delay up,
    leakage down toward hvt) exact at every drive even where the
    handcrafted ladder deviates slightly from the pure scaling laws.
    """
    for anchor_name in _DRIVE_ANCHORS:
        anchor = cells[anchor_name]
        base = parse_variant_name(anchor_name)[0]
        for drive in DRIVE_LADDER:
            ref_name = variant_name(base, "svt", drive)
            ref = cells.get(ref_name)
            if ref is None:
                ref = derive_variant(anchor, "svt", drive)
                cells[ref.name] = ref
            for vt in VT_ORDER:
                if vt == "svt":
                    continue
                name = variant_name(base, vt, drive)
                if name not in cells:
                    cells[name] = derive_variant(ref, vt, drive)
    for anchor_name in _VT_ONLY_ANCHORS:
        ref = cells[anchor_name]
        base, _, drive = parse_variant_name(anchor_name)
        for vt in VT_ORDER:
            if vt == "svt":
                continue
            name = variant_name(base, vt, drive)
            if name not in cells:
                cells[name] = derive_variant(ref, vt, drive)


class StdCellLibrary:
    """Container with name-based lookup over the calibrated cell set."""

    def __init__(self, cells: Optional[Dict[str, Cell]] = None) -> None:
        self._cells = dict(cells) if cells is not None else _make_cells()

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._cells))

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(f"unknown cell {name!r}") from None

    def cells_tagged(self, tag: str) -> Tuple[Cell, ...]:
        return tuple(c for c in self._cells.values() if tag in c.tags)

    def add(self, cell: Cell) -> None:
        if cell.name in self._cells:
            raise LibraryError(f"cell {cell.name} already in library")
        self._cells[cell.name] = cell


_DEFAULT: Optional[StdCellLibrary] = None
_SINGLE_VT: Optional[StdCellLibrary] = None


def default_library() -> StdCellLibrary:
    """Shared singleton of the calibrated library (cells are immutable)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = StdCellLibrary()
    return _DEFAULT


def single_vt_library() -> StdCellLibrary:
    """The pre-expansion library: handcrafted cells only, no derived
    (vt, drive) variants.  Baseline for the multi-Vt perf guard and for
    A/B comparisons against the full grid."""
    global _SINGLE_VT
    if _SINGLE_VT is None:
        _SINGLE_VT = StdCellLibrary(
            {
                c.name: c
                for c in default_library()
                if "variant" not in c.tags
            }
        )
    return _SINGLE_VT
