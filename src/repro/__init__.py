"""SynDCIM reproduction: a performance-aware digital computing-in-memory
(DCIM) compiler with multi-spec-oriented subcircuit synthesis.

Reproduces *SynDCIM* (DATE 2025, arXiv:2411.16806) as a pure-Python
library: from a :class:`~repro.spec.MacroSpec` the compiler searches a
subcircuit library, synthesizes Pareto-optimal macro candidates, and
implements the selected one through synthesis, structured-data-path
placement, routing estimation and signoff-style timing/power analysis.

Quickstart::

    from repro import MacroSpec, SynDCIM

    spec = MacroSpec(height=64, width=64, mcr=2, mac_frequency_mhz=800.0)
    compiler = SynDCIM()
    result = compiler.compile(spec)
    print(result.report())

Stable API
----------
The names re-exported here — :class:`MacroSpec`, :class:`SynDCIM`,
:class:`BatchCompiler`, :class:`CompileOptions`,
:class:`ImplementSession`, :func:`verify_macro`,
:func:`multi_corner_signoff`, :class:`ServiceClient`, the data formats
and the exception hierarchy — are the blessed surface: they keep
working across minor versions, and anything reachable only through a
submodule path is internal and may move without notice.  New code
should steer compilation through :class:`CompileOptions` (the one
canonical spelling of corners/vt/verify/seed across the library, the
CLI and the HTTP service) rather than per-call keyword soup.
"""

from .spec import (
    BF16,
    FP4,
    FP8,
    INT1,
    INT2,
    INT4,
    INT8,
    DataFormat,
    MacroSpec,
    PPAWeights,
    parse_format,
    spec_from_strings,
)
from .arch import MacroArchitecture, architecture_space, default_architecture
from .errors import (
    BatchError,
    LayoutError,
    LibraryError,
    SearchError,
    ServiceError,
    SimulationError,
    SpecificationError,
    SynDCIMError,
    SynthesisError,
    TimingError,
)
from .options import CompileOptions

__version__ = "1.1.0"

__all__ = [
    "BF16",
    "FP4",
    "FP8",
    "INT1",
    "INT2",
    "INT4",
    "INT8",
    "DataFormat",
    "MacroSpec",
    "PPAWeights",
    "parse_format",
    "spec_from_strings",
    "MacroArchitecture",
    "architecture_space",
    "default_architecture",
    "BatchError",
    "LayoutError",
    "LibraryError",
    "SearchError",
    "ServiceError",
    "SimulationError",
    "SpecificationError",
    "SynDCIMError",
    "SynthesisError",
    "TimingError",
    "CompileOptions",
    "SynDCIM",
    "BatchCompiler",
    "ImplementSession",
    "ServiceClient",
    "verify_macro",
    "multi_corner_signoff",
    "__version__",
]


def __getattr__(name: str):
    """Lazy re-exports: these pull heavy stacks (numpy, the batch
    engine) or would create import cycles, so they resolve on first
    touch — ``from repro import ServiceClient`` stays cheap in a thin
    client process."""
    if name == "SynDCIM":
        from .compiler.syndcim import SynDCIM

        return SynDCIM
    if name == "BatchCompiler":
        from .batch.engine import BatchCompiler

        return BatchCompiler
    if name == "ImplementSession":
        from .compiler.flow import ImplementSession

        return ImplementSession
    if name == "ServiceClient":
        from .service.client import ServiceClient

        return ServiceClient
    if name == "verify_macro":
        from .verify import verify_macro

        return verify_macro
    if name == "multi_corner_signoff":
        from .signoff import multi_corner_signoff

        return multi_corner_signoff
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
