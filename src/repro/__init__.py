"""SynDCIM reproduction: a performance-aware digital computing-in-memory
(DCIM) compiler with multi-spec-oriented subcircuit synthesis.

Reproduces *SynDCIM* (DATE 2025, arXiv:2411.16806) as a pure-Python
library: from a :class:`~repro.spec.MacroSpec` the compiler searches a
subcircuit library, synthesizes Pareto-optimal macro candidates, and
implements the selected one through synthesis, structured-data-path
placement, routing estimation and signoff-style timing/power analysis.

Quickstart::

    from repro import MacroSpec, SynDCIM

    spec = MacroSpec(height=64, width=64, mcr=2, mac_frequency_mhz=800.0)
    compiler = SynDCIM()
    result = compiler.compile(spec)
    print(result.report())
"""

from .spec import (
    BF16,
    FP4,
    FP8,
    INT1,
    INT2,
    INT4,
    INT8,
    DataFormat,
    MacroSpec,
    PPAWeights,
    parse_format,
    spec_from_strings,
)
from .arch import MacroArchitecture, architecture_space, default_architecture
from .errors import (
    LayoutError,
    LibraryError,
    SearchError,
    SimulationError,
    SpecificationError,
    SynDCIMError,
    SynthesisError,
    TimingError,
)

__version__ = "1.0.0"

__all__ = [
    "BF16",
    "FP4",
    "FP8",
    "INT1",
    "INT2",
    "INT4",
    "INT8",
    "DataFormat",
    "MacroSpec",
    "PPAWeights",
    "parse_format",
    "spec_from_strings",
    "MacroArchitecture",
    "architecture_space",
    "default_architecture",
    "LayoutError",
    "LibraryError",
    "SearchError",
    "SimulationError",
    "SpecificationError",
    "SynDCIMError",
    "SynthesisError",
    "TimingError",
    "__version__",
]


def __getattr__(name: str):
    """Lazy re-exports that would otherwise create import cycles."""
    if name == "SynDCIM":
        from .compiler.syndcim import SynDCIM

        return SynDCIM
    if name == "BatchCompiler":
        from .batch.engine import BatchCompiler

        return BatchCompiler
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
