"""Multi-corner PVT signoff.

Everything the flow needs to judge an implementation at more than one
operating point: the :class:`Corner`/:class:`CornerSet` PVT model
(process sigma x supply x temperature, with the ``typical`` and
``signoff3`` presets), and :func:`multi_corner_signoff`, which re-runs
timing with the composed derate and rescales power per corner while
reusing every per-netlist cache.  See ``docs/signoff.md`` for the
model, the cache-key semantics and the worst-corner escalation story.
"""

from .corners import (
    CORNER_SET_PRESETS,
    SIGNOFF3,
    SIGNOFF_CORNERS,
    TYPICAL,
    Corner,
    CornerSet,
    parse_corners,
    worst_corner_scl,
)
from .evaluate import (
    CornerResult,
    SignoffReport,
    corner_power,
    multi_corner_signoff,
)

__all__ = [
    "CORNER_SET_PRESETS",
    "SIGNOFF3",
    "SIGNOFF_CORNERS",
    "TYPICAL",
    "Corner",
    "CornerSet",
    "CornerResult",
    "SignoffReport",
    "corner_power",
    "multi_corner_signoff",
    "parse_corners",
    "worst_corner_scl",
]
