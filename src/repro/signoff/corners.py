"""Operating-corner model for multi-corner PVT signoff.

A signoff :class:`Corner` composes the three derating axes a production
flow checks independently:

* the **process** sigma (:data:`repro.tech.process.CORNERS` — SS/TT/FF
  global transistor corners at the characterized V/T);
* the **supply voltage**, expressed as a scale of the node's nominal
  supply so the same corner definition works on any registered process
  (the alpha-power law translates it into a delay multiplier);
* the **junction temperature**, through the process's linear delay and
  exponential leakage temperature models.

The composed :meth:`Corner.timing_derate` is exactly the ``derate``
argument :mod:`repro.sta.analysis` has always accepted — this module is
the layer that finally names the operating points and feeds them to the
flow.  :class:`CornerSet` bundles corners under a name; the presets are

``typical``
    TT at nominal supply and temperature — one corner, identical to the
    historical single-point evaluation.
``signoff3``
    the production triple: SS at worst-case V/T (2 % supply droop,
    125 C) for setup signoff, TT nominal, and FF at maximum-power V/T
    (+5 % supply, 125 C) for the power envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..errors import SpecificationError
from ..tech.process import CORNERS, Process
from ..tech.process import Corner as ProcessCorner


@dataclass(frozen=True)
class Corner:
    """One PVT operating point: process sigma x supply x temperature.

    ``vdd_scale`` is relative to ``process.vdd_nominal`` and is clamped
    into the process's supported window at resolution time, so a corner
    definition is process-agnostic.
    """

    name: str
    process_corner: str = "TT"
    vdd_scale: float = 1.0
    temp_c: float = 25.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("corner name must be non-empty")
        if self.process_corner not in CORNERS:
            raise SpecificationError(
                f"unknown process corner {self.process_corner!r}; "
                f"registered: {sorted(CORNERS)}"
            )
        if self.vdd_scale <= 0.0:
            raise SpecificationError(
                f"corner {self.name}: vdd_scale must be positive"
            )

    @property
    def sigma(self) -> ProcessCorner:
        return CORNERS[self.process_corner]

    def vdd(self, process: Process) -> float:
        """Resolved supply voltage, clamped into the process window."""
        return min(
            max(self.vdd_scale * process.vdd_nominal, process.vdd_min),
            process.vdd_max,
        )

    def timing_derate(self, process: Process) -> float:
        """Composed gate-delay multiplier versus the characterized
        (TT, nominal V, nominal T) point — the STA ``derate``."""
        return (
            self.sigma.delay_factor
            * process.delay_scale(self.vdd(process))
            * process.temperature_delay_scale(self.temp_c)
        )

    def energy_scale(self, process: Process) -> float:
        """Switching-energy multiplier (CV^2 at the corner supply)."""
        return process.energy_scale(self.vdd(process))

    def leakage_scale(self, process: Process) -> float:
        """Static-power multiplier: process sigma x DIBL x temperature."""
        return (
            self.sigma.leakage_factor
            * process.leakage_scale(self.vdd(process))
            * process.temperature_leakage_scale(self.temp_c)
        )

    def key(self) -> Tuple[str, str, float, float]:
        """Canonical identity tuple — what cache fingerprints carry."""
        return (self.name, self.process_corner, self.vdd_scale, self.temp_c)

    def describe(self, process: Process) -> str:
        return (
            f"{self.name}: {self.process_corner} @ "
            f"{self.vdd(process):.3f} V, {self.temp_c:+.0f} C "
            f"(delay x{self.timing_derate(process):.3f}, "
            f"leak x{self.leakage_scale(process):.2f})"
        )


#: The three named signoff corners the CLI resolves ``--corners`` names
#: against.  SS carries the setup-critical V/T (droop + hot), FF the
#: power-envelope V/T (overdrive + hot); TT is the characterization
#: point.
SS_SIGNOFF = Corner("SS", "SS", vdd_scale=0.98, temp_c=125.0)
TT_SIGNOFF = Corner("TT", "TT", vdd_scale=1.00, temp_c=25.0)
FF_SIGNOFF = Corner("FF", "FF", vdd_scale=1.05, temp_c=125.0)

SIGNOFF_CORNERS: Dict[str, Corner] = {
    c.name: c for c in (SS_SIGNOFF, TT_SIGNOFF, FF_SIGNOFF)
}


@dataclass(frozen=True)
class CornerSet:
    """A named, ordered, duplicate-free collection of corners."""

    name: str
    corners: Tuple[Corner, ...]

    def __post_init__(self) -> None:
        if not self.corners:
            raise SpecificationError(
                f"corner set {self.name!r} must contain at least one corner"
            )
        names = [c.name for c in self.corners]
        if len(set(names)) != len(names):
            raise SpecificationError(
                f"corner set {self.name!r} has duplicate corners: {names}"
            )

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.corners)

    def __iter__(self):
        return iter(self.corners)

    def __len__(self) -> int:
        return len(self.corners)

    def worst_timing(self, process: Process) -> Corner:
        """The setup-signoff corner: maximal composed delay derate."""
        return max(self.corners, key=lambda c: c.timing_derate(process))

    def describe(self, process: Process) -> str:
        lines = [f"corner set {self.name} ({len(self)} corners):"]
        lines += [f"  {c.describe(process)}" for c in self.corners]
        return "\n".join(lines)

    @classmethod
    def from_names(
        cls, names: Iterable[str], name: str = "custom"
    ) -> "CornerSet":
        corners = []
        for n in names:
            n = n.strip()
            if not n:
                continue
            try:
                corners.append(SIGNOFF_CORNERS[n.upper()])
            except KeyError:
                raise SpecificationError(
                    f"unknown signoff corner {n!r}; "
                    f"known: {sorted(SIGNOFF_CORNERS)} "
                    f"(or a preset: {sorted(CORNER_SET_PRESETS)})"
                ) from None
        return cls(name=name, corners=tuple(corners))


TYPICAL = CornerSet("typical", (TT_SIGNOFF,))
SIGNOFF3 = CornerSet("signoff3", (SS_SIGNOFF, TT_SIGNOFF, FF_SIGNOFF))

CORNER_SET_PRESETS: Dict[str, CornerSet] = {
    "typical": TYPICAL,
    "signoff3": SIGNOFF3,
}


def worst_corner_scl(process: Process, corners: CornerSet, library=None):
    """The corner-characterized default SCL for the set's worst timing
    corner, or ``None`` when the worst corner is the nominal point
    itself (TT pricing already covers it).

    The single resolution point shared by the compiler (searcher
    pricing) and the batch engine (worker prewarm), so both always
    agree on which artifact a corner set needs.  ``library`` swaps in
    an alternate cell-library backend (see ``default_scl``).
    """
    from ..scl.library import default_scl

    worst = corners.worst_timing(process)
    if worst.timing_derate(process) <= 1.0 + 1e-9:
        return None
    return default_scl(process, corner=worst, library=library)


def parse_corners(text: str) -> CornerSet:
    """Resolve a ``--corners`` argument: a preset name (``typical``,
    ``signoff3``) or a comma-separated corner list (``SS,TT,FF``).
    Raises :class:`SpecificationError` for unknown names and for lists
    that resolve to zero corners (e.g. an empty string)."""
    stripped = text.strip()
    preset = CORNER_SET_PRESETS.get(stripped.lower())
    if preset is not None:
        return preset
    return CornerSet.from_names(stripped.split(","), name=stripped or "empty")
