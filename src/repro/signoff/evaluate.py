"""Multi-corner timing/power evaluation of one implemented netlist.

:func:`multi_corner_signoff` is the signoff engine: it takes the flat
post-layout netlist once and re-judges it at every corner of a
:class:`~repro.signoff.corners.CornerSet`.  The expensive, structure-
only work (the compiled :class:`~repro.rtl.netview.NetView`, the STA
edge arrays, the activity schedule) is shared across corners through
the per-view caches — each additional corner costs one derated arrival
propagation plus a handful of scalar multiplies:

* **timing** — :func:`repro.sta.analysis.analyze` with the corner's
  composed :meth:`~repro.signoff.corners.Corner.timing_derate`; the
  corner's minimum period falls out of the same report
  (``period - WNS``);
* **power** — the nominal activity-based analysis is corner-independent
  (switching statistics do not move with PVT), so the nominal
  :class:`~repro.power.estimator.PowerReport` is rescaled analytically:
  dynamic terms by CV^2 at the corner supply, leakage by the composed
  process x DIBL x temperature factor.  This reproduces what
  re-running :func:`~repro.power.estimator.estimate_power` at the
  corner voltage computes, without touching the netlist again.

The report's ``clean`` verdict is taken **at the worst corner** (the
one with the largest minimum period): a design signs off only when the
slowest legal operating point still meets the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..errors import TimingError
from ..power.estimator import PowerReport, estimate_power
from ..rtl.ir import Module
from ..sta.analysis import TimingReport, analyze
from ..sta.graph import WireLoadFn
from ..tech.process import Process
from ..tech.stdcells import StdCellLibrary
from .corners import Corner, CornerSet


@dataclass(frozen=True)
class CornerResult:
    """Timing and power of one design at one operating corner."""

    corner: Corner
    timing: TimingReport
    power: PowerReport
    timing_derate: float

    @property
    def min_period_ns(self) -> float:
        """Smallest met period at this corner (period - WNS)."""
        return self.timing.clock_period_ns - self.timing.wns_ns

    @property
    def fmax_mhz(self) -> float:
        if self.min_period_ns <= 0.0:
            raise TimingError("corner has no maximum frequency")
        return 1e3 / self.min_period_ns

    @property
    def slack_ns(self) -> float:
        return self.timing.wns_ns

    @property
    def met(self) -> bool:
        return self.timing.met

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly projection (batch records, CLI reports)."""
        return {
            "corner": self.corner.name,
            "process_corner": self.corner.process_corner,
            "vdd": self.power.vdd,
            "temp_c": self.corner.temp_c,
            "timing_derate": round(self.timing_derate, 6),
            "min_period_ns": self.min_period_ns,
            "fmax_mhz": self.fmax_mhz,
            "slack_ns": self.slack_ns,
            "timing_met": self.met,
            "power_mw": self.power.total_mw,
            "leakage_mw": self.power.leakage_mw,
            "endpoint": self.timing.endpoint,
        }


@dataclass(frozen=True)
class SignoffReport:
    """Per-corner results for one design, ordered as the corner set."""

    corner_set: str
    clock_period_ns: float
    results: Tuple[CornerResult, ...]

    def __post_init__(self) -> None:
        if not self.results:
            raise TimingError("signoff needs at least one corner result")

    @property
    def worst(self) -> CornerResult:
        """The setup-critical corner: largest minimum period."""
        return max(self.results, key=lambda r: r.min_period_ns)

    @property
    def clean(self) -> bool:
        """Timing met at the worst corner (hence at every corner)."""
        return self.worst.met

    @property
    def fmax_mhz(self) -> float:
        """Frequency sustainable across all corners."""
        return self.worst.fmax_mhz

    @property
    def max_power_mw(self) -> float:
        return max(r.power.total_mw for r in self.results)

    def corner(self, name: str) -> CornerResult:
        for result in self.results:
            if result.corner.name == name:
                return result
        raise TimingError(
            f"no corner {name!r} in signoff report; "
            f"have {[r.corner.name for r in self.results]}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "corner_set": self.corner_set,
            "clock_period_ns": self.clock_period_ns,
            "worst_corner": self.worst.corner.name,
            "clean": self.clean,
            "corners": {r.corner.name: r.to_dict() for r in self.results},
        }

    def describe(self) -> str:
        worst = self.worst.corner.name
        lines = [
            f"multi-corner signoff ({self.corner_set}) @ "
            f"{self.clock_period_ns:.4f} ns: "
            f"{'CLEAN' if self.clean else 'VIOLATED'} "
            f"(worst corner {worst})"
        ]
        for r in self.results:
            tag = " <- worst" if r.corner.name == worst else ""
            lines.append(
                f"  {r.corner.name:3s} {r.power.vdd:.3f} V "
                f"{r.corner.temp_c:+4.0f} C  "
                f"fmax {r.fmax_mhz:7.1f} MHz  "
                f"slack {r.slack_ns:+.4f} ns  "
                f"power {r.power.total_mw:8.2f} mW "
                f"({'MET' if r.met else 'VIOLATED'}){tag}"
            )
        return "\n".join(lines)


def corner_power(
    nominal: PowerReport, corner: Corner, process: Process
) -> PowerReport:
    """Rescale a nominal-point power analysis to one corner.

    Exact relative to re-running :func:`estimate_power` at the corner
    supply: dynamic terms carry the CV^2 factor, leakage the composed
    sigma x DIBL x temperature factor (the nominal report's leakage is
    at scale 1.0 by construction).
    """
    e_scale = corner.energy_scale(process)
    return replace(
        nominal,
        vdd=corner.vdd(process),
        switching_mw=nominal.switching_mw * e_scale,
        internal_mw=nominal.internal_mw * e_scale,
        memory_mw=nominal.memory_mw * e_scale,
        leakage_mw=nominal.leakage_mw * corner.leakage_scale(process),
    )


def multi_corner_signoff(
    module: Module,
    library: StdCellLibrary,
    process: Process,
    corners: CornerSet,
    clock_period_ns: float,
    frequency_mhz: Optional[float] = None,
    wire_load: Optional[WireLoadFn] = None,
    nominal_power: Optional[PowerReport] = None,
    nominal_timing: Optional[TimingReport] = None,
    input_stats=None,
) -> SignoffReport:
    """Evaluate one flat netlist at every corner of ``corners``.

    ``nominal_power`` (an analysis at the process's nominal voltage,
    as the implementation flow already produces) is rescaled per
    corner; when omitted it is computed once here.  ``nominal_timing``
    (the flow's derate-1.0 report at the same period and wire loads)
    is reused verbatim for corners whose composed derate is the
    nominal point, saving their arrival propagation — with the
    ``typical`` preset the whole signoff then costs nothing extra.
    ``wire_load`` should be the same post-layout load function the
    nominal signoff used so corner timing differs from nominal only by
    the derate.
    """
    if nominal_power is None:
        if frequency_mhz is None:
            frequency_mhz = 1e3 / clock_period_ns
        nominal_power = estimate_power(
            module,
            library,
            process,
            frequency_mhz,
            input_stats=input_stats,
            wire_load=wire_load,
        )
    results = []
    for corner in corners:
        derate = corner.timing_derate(process)
        if (
            nominal_timing is not None
            and abs(derate - 1.0) <= 1e-9
            and nominal_timing.clock_period_ns == clock_period_ns
        ):
            timing = nominal_timing
        else:
            timing = analyze(
                module, library, clock_period_ns, wire_load, derate=derate
            )
        results.append(
            CornerResult(
                corner=corner,
                timing=timing,
                power=corner_power(nominal_power, corner, process),
                timing_derate=derate,
            )
        )
    return SignoffReport(
        corner_set=corners.name,
        clock_period_ns=clock_period_ns,
        results=tuple(results),
    )
