"""Implementation and evaluation flow (paper Fig. 6).

Takes one (spec, architecture) pair through the standard digital flow
the paper describes: RTL generation, synthesis (elaboration +
flattening), structured-data-path placement, routing estimation, DRC and
LVS verification, then *post-layout* STA and power with the extracted
wire loads.  The result bundles every artifact a signoff engineer would
expect: Verilog netlist, placement, GDS stream, timing and power
reports, and the summary PPA numbers the benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..arch import MacroArchitecture
from ..errors import LayoutError, TimingError
from ..layout.drc import DRCReport, run_drc
from ..layout.gds import write_gds_json
from ..layout.lvs import LVSReport, run_lvs
from ..layout.route import RoutingEstimate, estimate_routing
from ..layout.sdp import Placement, SDPParams, place_macro
from ..power.estimator import PowerReport, estimate_power, sparsity_input_stats
from ..rtl.gen.macro import MacroShape, generate_macro_with_array, macro_shape
from ..rtl.ir import Module
from ..rtl.verilog import emit_verilog
from ..spec import MacroSpec
from ..sta.analysis import TimingReport, analyze, minimum_period_ns
from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library


@dataclass
class Implementation:
    """Everything produced by one run of the implementation flow."""

    spec: MacroSpec
    arch: MacroArchitecture
    shape: MacroShape
    netlist: Module
    placement: Placement
    routing: RoutingEstimate
    drc: DRCReport
    lvs: LVSReport
    timing: TimingReport
    power: PowerReport
    min_period_ns: float

    @property
    def signoff_clean(self) -> bool:
        return self.drc.clean and self.lvs.clean and self.timing.met

    @property
    def area_um2(self) -> float:
        return self.placement.area_um2

    @property
    def max_frequency_mhz(self) -> float:
        return 1e3 / self.min_period_ns

    @property
    def energy_per_cycle_pj(self) -> float:
        return self.power.energy_per_cycle_pj

    def verilog(self) -> str:
        return emit_verilog(self.netlist)

    def gds(self, library: Optional[StdCellLibrary] = None) -> str:
        return write_gds_json(
            self.netlist, self.placement, library or default_library()
        )

    def summary(self) -> Dict[str, float]:
        return {
            "area_um2": self.area_um2,
            "width_um": self.placement.width_um,
            "height_um": self.placement.height_um,
            "min_period_ns": self.min_period_ns,
            "max_frequency_mhz": self.max_frequency_mhz,
            "power_mw": self.power.total_mw,
            "energy_per_cycle_pj": self.energy_per_cycle_pj,
            "leakage_mw": self.power.leakage_mw,
            "cells": float(self.netlist.leaf_count()),
            "wirelength_um": self.routing.total_wirelength_um,
            "congestion": self.routing.congestion,
        }

    def report(self) -> str:
        s = self.summary()
        lines = [
            f"implementation of {self.spec.describe()}",
            f"  architecture : {self.arch.knob_summary()}",
            f"  outline      : {s['width_um']:.1f} x {s['height_um']:.1f} um"
            f" ({s['area_um2'] / 1e6:.4f} mm^2)",
            f"  cells        : {int(s['cells'])}",
            f"  fmax (post)  : {s['max_frequency_mhz']:.0f} MHz "
            f"(min period {s['min_period_ns']:.3f} ns)",
            f"  power        : {s['power_mw']:.1f} mW @ "
            f"{self.power.frequency_mhz:.0f} MHz "
            f"({s['energy_per_cycle_pj']:.1f} pJ/cycle)",
            f"  signoff      : DRC {'clean' if self.drc.clean else 'FAIL'}, "
            f"LVS {'clean' if self.lvs.clean else 'FAIL'}, "
            f"timing {'MET' if self.timing.met else 'VIOLATED'}",
        ]
        return "\n".join(lines)


def implement(
    spec: MacroSpec,
    arch: MacroArchitecture,
    library: Optional[StdCellLibrary] = None,
    process: Optional[Process] = None,
    sdp_params: Optional[SDPParams] = None,
    input_sparsity: float = 0.0,
    weight_sparsity: float = 0.0,
) -> Implementation:
    """Run the complete implementation flow for one design point."""
    library = library or default_library()
    process = process or GENERIC_40NM

    # RTL generation + synthesis (elaboration to a flat gate netlist,
    # then constant folding, dead-logic sweep and fanout buffering).
    from ..synth.optimize import optimize

    module, shape = generate_macro_with_array(spec, arch)
    flat = module.flatten()
    flat.validate(library)
    flat, _synth_stats = optimize(flat, library)

    # SDP place & route.
    placement = place_macro(flat, library, sdp_params)
    routing = estimate_routing(flat, placement, library, process)
    drc = run_drc(flat, placement, library)
    lvs = run_lvs(flat, placement)
    if not drc.clean:
        raise LayoutError(f"implementation DRC failed:\n{drc.describe()}")
    if not lvs.clean:
        raise LayoutError(f"implementation LVS failed:\n{lvs.describe()}")

    # Post-layout signoff analyses.
    wire_load = routing.wire_load_fn()
    min_period = minimum_period_ns(flat, library, wire_load)
    timing = analyze(flat, library, spec.mac_period_ns, wire_load)
    stats = sparsity_input_stats(
        flat,
        input_one_probability=0.5 * (1.0 - input_sparsity),
        weight_one_probability=0.5 * (1.0 - weight_sparsity),
    )
    power = estimate_power(
        flat,
        library,
        process,
        spec.mac_frequency_mhz,
        input_stats=stats,
        wire_load=wire_load,
    )
    return Implementation(
        spec=spec,
        arch=arch,
        shape=shape,
        netlist=flat,
        placement=placement,
        routing=routing,
        drc=drc,
        lvs=lvs,
        timing=timing,
        power=power,
        min_period_ns=min_period,
    )
