"""Implementation and evaluation flow (paper Fig. 6).

Takes one (spec, architecture) pair through the standard digital flow
the paper describes: RTL generation, synthesis (elaboration +
flattening), structured-data-path placement, routing estimation, DRC and
LVS verification, then *post-layout* STA and power with the extracted
wire loads.  The result bundles every artifact a signoff engineer would
expect: Verilog netlist, placement, GDS stream, timing and power
reports, and the summary PPA numbers the benchmarks consume.

:class:`ImplementSession` is the incremental entry point used by the
compiler's timing-escalation loop: one session per spec caches the
artifacts that survive an architecture change — the bitcell array
module (with its primed flatten template), the optimized flat netlist
per architecture, and the finished :class:`Implementation` per
architecture — so re-implementing after a timing fix rebuilds only what
the fix actually touched instead of re-running the whole flow from RTL
generation.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..arch import MacroArchitecture
from ..errors import LayoutError, TimingError
from ..layout.drc import DRCReport, run_drc
from ..layout.gds import write_gds_json
from ..layout.lvs import LVSReport, run_lvs
from ..layout.arena import LayoutArena
from ..layout.route import RoutingEstimate
from ..layout.sdp import Placement, SDPParams
from ..power.estimator import PowerReport, estimate_power, sparsity_input_stats
from ..rtl.gen.macro import MacroShape, generate_macro_with_array, macro_shape
from ..rtl.ir import Module
from ..rtl.verilog import emit_verilog
from ..signoff.corners import CornerSet
from ..signoff.evaluate import SignoffReport, multi_corner_signoff
from ..spec import MacroSpec
from ..sta.analysis import TimingReport, analyze, minimum_period_ns
from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library
from ..verify.harness import (
    DEFAULT_VECTORS,
    VerificationReport,
    verify_macro,
)


@dataclass
class Implementation:
    """Everything produced by one run of the implementation flow."""

    spec: MacroSpec
    arch: MacroArchitecture
    shape: MacroShape
    netlist: Module
    placement: Placement
    routing: RoutingEstimate
    drc: DRCReport
    lvs: LVSReport
    timing: TimingReport
    power: PowerReport
    min_period_ns: float
    #: Multi-corner PVT signoff, present when the flow ran with a
    #: corner set; ``timing``/``power`` stay the nominal-point views.
    signoff: Optional[SignoffReport] = None
    #: Functional verification of the optimized netlist against the
    #: golden model, present when the flow ran with ``verify=True``.
    verification: Optional["VerificationReport"] = None

    @property
    def timing_met_signoff(self) -> bool:
        """Timing met at the worst corner — nominal when no corner set
        was evaluated (single-point signoff, the historical meaning)."""
        if self.signoff is not None:
            return self.signoff.clean
        return self.timing.met

    @property
    def signoff_clean(self) -> bool:
        """DRC/LVS clean and timing met at the *worst* evaluated
        corner (nominal-only runs keep their historical meaning)."""
        return self.drc.clean and self.lvs.clean and self.timing_met_signoff

    @property
    def verification_clean(self) -> bool:
        """Functional verification passed — vacuously true when the
        flow ran without the ``verify=`` stage."""
        return self.verification is None or self.verification.passed

    @property
    def worst_corner(self) -> Optional[str]:
        return None if self.signoff is None else self.signoff.worst.corner.name

    @property
    def area_um2(self) -> float:
        return self.placement.area_um2

    @property
    def max_frequency_mhz(self) -> float:
        return 1e3 / self.min_period_ns

    @property
    def energy_per_cycle_pj(self) -> float:
        return self.power.energy_per_cycle_pj

    def verilog(self) -> str:
        return emit_verilog(self.netlist)

    def gds(self, library: Optional[StdCellLibrary] = None) -> str:
        return write_gds_json(
            self.netlist, self.placement, library or default_library()
        )

    def summary(self) -> Dict[str, float]:
        return {
            "area_um2": self.area_um2,
            "width_um": self.placement.width_um,
            "height_um": self.placement.height_um,
            "min_period_ns": self.min_period_ns,
            "max_frequency_mhz": self.max_frequency_mhz,
            "power_mw": self.power.total_mw,
            "energy_per_cycle_pj": self.energy_per_cycle_pj,
            "leakage_mw": self.power.leakage_mw,
            "cells": float(self.netlist.leaf_count()),
            "wirelength_um": self.routing.total_wirelength_um,
            "congestion": self.routing.congestion,
        }

    def report(self) -> str:
        s = self.summary()
        lines = [
            f"implementation of {self.spec.describe()}",
            f"  architecture : {self.arch.knob_summary()}",
            f"  outline      : {s['width_um']:.1f} x {s['height_um']:.1f} um"
            f" ({s['area_um2'] / 1e6:.4f} mm^2)",
            f"  cells        : {int(s['cells'])}",
            f"  fmax (post)  : {s['max_frequency_mhz']:.0f} MHz "
            f"(min period {s['min_period_ns']:.3f} ns)",
            f"  power        : {s['power_mw']:.1f} mW @ "
            f"{self.power.frequency_mhz:.0f} MHz "
            f"({s['energy_per_cycle_pj']:.1f} pJ/cycle)",
            f"  signoff      : DRC {'clean' if self.drc.clean else 'FAIL'}, "
            f"LVS {'clean' if self.lvs.clean else 'FAIL'}, "
            f"timing {'MET' if self.timing.met else 'VIOLATED'}",
        ]
        if self.signoff is not None:
            lines.append("")
            lines.append(self.signoff.describe())
        if self.verification is not None:
            lines.append("")
            lines.append(self.verification.describe())
        return "\n".join(lines)


@dataclass
class ImplementSession:
    """Incremental implementation flow for one spec.

    The timing-escalation loop implements the same spec several times
    with slightly different architectures.  A session keeps everything
    an architecture change cannot invalidate:

    * the **bitcell array** module depends only on ``(height, width,
      mcr, memcell)`` — none of the searcher's timing fixes touch it.
      It is generated once, its flatten leaf-template is primed, and
      every attempt's :meth:`~repro.rtl.ir.Module.flatten` replays the
      cached template instead of re-walking the 10k-cell array subtree;
    * the **optimized flat netlist** per architecture (generation,
      flattening, validation and the synthesis passes are the front half
      of the flow) — revisiting an architecture skips it entirely;
    * the finished :class:`Implementation` per architecture, so the
      escalation loop never pays twice for the same design point.
    """

    spec: MacroSpec
    library: StdCellLibrary = field(default_factory=default_library)
    process: Process = field(default_factory=lambda: GENERIC_40NM)
    sdp_params: Optional[SDPParams] = None
    input_sparsity: float = 0.0
    weight_sparsity: float = 0.0
    #: Operating corners for multi-corner signoff; ``None`` keeps the
    #: historical nominal-only evaluation.  The corner passes share the
    #: compiled NetView, STA arrays and the nominal power analysis, so
    #: each extra corner costs one derated arrival propagation.
    corners: Optional[CornerSet] = None
    #: Post-synthesis functional verification: drive the optimized
    #: netlist with ``verify_vectors`` randomized + directed MAC
    #: stimuli against the golden model (see :mod:`repro.verify`).
    #: The report lands on :attr:`Implementation.verification`; a
    #: mismatch never raises — it is signoff data, judged by
    #: :attr:`Implementation.verification_clean`.
    verify: bool = False
    verify_vectors: int = DEFAULT_VECTORS
    verify_seed: int = 0
    #: Netlist-level leakage recovery (``--vt auto``): after synthesis,
    #: combinational cells with setup slack to spare at the worst
    #: signoff derate are demoted to hvt (see
    #: :func:`repro.synth.vt.recover_leakage`).  The slack check runs
    #: pre-placement against a wire-derated period budget, so the
    #: post-layout wires the placer adds stay covered.
    vt_recovery: bool = False
    #: Pause cyclic GC for the duration of each implement() call (a
    #: bounded ~0.5 s operation whose allocation burst otherwise costs
    #: ~25 % of the runtime in generation-2 scans).  Embedders running
    #: other allocation-heavy threads in-process can opt out.
    pause_gc: bool = True

    def __post_init__(self) -> None:
        self._arrays: Dict[tuple, Module] = {}
        self._netlists: Dict[
            MacroArchitecture, Tuple[Module, MacroShape, Dict[str, int]]
        ] = {}
        self._implementations: Dict[MacroArchitecture, Implementation] = {}
        #: Persistent place/route arena: warm re-implements replay the
        #: winning floorplan and reuse the routing estimate instead of
        #: re-deriving them from the flat module (see
        #: :class:`repro.layout.arena.LayoutArena`).
        self._arena = LayoutArena()

    # -- cached front half -------------------------------------------------

    def array_module(self, arch: MacroArchitecture) -> Module:
        """The bitcell array for this spec (shared across attempts)."""
        from ..rtl.gen.memarray import generate_memory_array

        key = (self.spec.height, self.spec.width, self.spec.mcr, arch.memcell)
        array = self._arrays.get(key)
        if array is None:
            array, _ = generate_memory_array(*key)
            array._leaf_template()  # prime: every attempt replays it
            self._arrays[key] = array
        return array

    def netlist(
        self, arch: MacroArchitecture
    ) -> Tuple[Module, MacroShape, Dict[str, int]]:
        """Optimized flat netlist (+ shape, synthesis stats) for one
        architecture, cached per architecture."""
        from ..synth.optimize import optimize

        entry = self._netlists.get(arch)
        if entry is None:
            module, shape = generate_macro_with_array(
                self.spec, arch, array=self.array_module(arch)
            )
            flat = module.flatten()
            # The freshly flattened module is owned by this session, so
            # the passes may rewrite it in place (no bulk copy).
            # ``optimize`` validates its output, which covers the flat
            # netlist the rest of the flow consumes.
            flat, synth_stats = optimize(
                flat,
                self.library,
                inplace=True,
                vt=None if arch.vt == "svt" else arch.vt,
            )
            if self.vt_recovery:
                synth_stats["vt_recovered"] = self._recover_leakage(flat)
            entry = self._netlists[arch] = (flat, shape, synth_stats)
        return entry

    def _recover_leakage(self, flat: Module) -> int:
        """Demote slack-rich combinational cells to hvt, budgeting for
        post-layout wires and the worst signoff corner."""
        from ..search.estimate import WIRE_DERATE
        from ..synth.vt import recover_leakage

        derate = 1.0
        if self.corners is not None:
            worst = self.corners.worst_timing(self.process)
            derate = worst.timing_derate(self.process)
        return recover_leakage(
            flat,
            self.library,
            clock_period_ns=self.spec.mac_period_ns / WIRE_DERATE,
            derate=derate,
        )

    # -- verification ------------------------------------------------------

    def verify_implementation(
        self,
        impl: Implementation,
        vectors: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> VerificationReport:
        """Run the functional-verification stage on a finished
        implementation and attach the report.

        This is what the compiler's escalation loop calls *once* on the
        implementation it actually returns — discarded timing-escalation
        attempts never pay for verification (the session-level
        ``verify=True`` flag, by contrast, verifies every
        :meth:`implement` call).
        """
        report = verify_macro(
            impl.spec,
            impl.arch,
            netlist=impl.netlist,
            shape=impl.shape,
            library=self.library,
            vectors=self.verify_vectors if vectors is None else vectors,
            seed=self.verify_seed if seed is None else seed,
        )
        impl.verification = report
        return report

    # -- full flow ---------------------------------------------------------

    def implement(
        self, arch: MacroArchitecture, force: bool = False
    ) -> Implementation:
        """Run (or reuse) the implementation flow for one architecture.

        ``force=True`` bypasses the finished-implementation memo and
        re-runs the whole back half — place, route, DRC, LVS, STA,
        power — against the warm layout arena.  This is the honest
        re-signoff path (every check actually executes); only the pure
        recomputation is skipped, so a warm full implement runs in tens
        of milliseconds instead of re-deriving the layout from scratch.

        The flow allocates hundreds of thousands of short-lived netlist
        objects over a large live heap, which makes the cyclic garbage
        collector's generation-2 scans a measurable fraction of the
        runtime; collection is paused for the duration of this bounded
        operation (the flow creates no reference cycles that must be
        reclaimed mid-run) and restored afterwards.
        """
        if not force:
            cached = self._implementations.get(arch)
            if cached is not None:
                return cached
        gc_was_enabled = self.pause_gc and gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._implement_uncached(arch)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _implement_uncached(self, arch: MacroArchitecture) -> Implementation:
        spec = self.spec
        library = self.library
        process = self.process
        flat, shape, _synth_stats = self.netlist(arch)

        # SDP place & route through the persistent arena: the first
        # implement of an architecture pays the full floorplan scan and
        # HPWL reduction; re-implements replay the winning floorplan and
        # reuse the routing estimate (same object — its memoized wire
        # load keeps the STA/power caches warm below).
        placement = self._arena.place(flat, library, self.sdp_params)
        routing = self._arena.route(
            flat, placement, library, process, self.sdp_params
        )
        drc = run_drc(flat, placement, library)
        lvs = run_lvs(flat, placement)
        if not drc.clean:
            raise LayoutError(f"implementation DRC failed:\n{drc.describe()}")
        if not lvs.clean:
            raise LayoutError(f"implementation LVS failed:\n{lvs.describe()}")

        # Post-layout signoff analyses.
        wire_load = routing.wire_load_fn()
        min_period = minimum_period_ns(flat, library, wire_load)
        timing = analyze(flat, library, spec.mac_period_ns, wire_load)
        stats = sparsity_input_stats(
            flat,
            input_one_probability=0.5 * (1.0 - self.input_sparsity),
            weight_one_probability=0.5 * (1.0 - self.weight_sparsity),
        )
        power = estimate_power(
            flat,
            library,
            process,
            spec.mac_frequency_mhz,
            input_stats=stats,
            wire_load=wire_load,
        )
        verification: Optional[VerificationReport] = None
        if self.verify:
            verification = verify_macro(
                spec,
                arch,
                netlist=flat,
                shape=shape,
                library=library,
                vectors=self.verify_vectors,
                seed=self.verify_seed,
            )
        signoff = None
        if self.corners is not None:
            signoff = multi_corner_signoff(
                flat,
                library,
                process,
                self.corners,
                clock_period_ns=spec.mac_period_ns,
                wire_load=wire_load,
                nominal_power=power,
                nominal_timing=timing,
            )
        impl = Implementation(
            spec=spec,
            arch=arch,
            shape=shape,
            netlist=flat,
            placement=placement,
            routing=routing,
            drc=drc,
            lvs=lvs,
            timing=timing,
            power=power,
            min_period_ns=min_period,
            signoff=signoff,
            verification=verification,
        )
        if impl.timing.met:
            # Failed attempts are essentially never revisited (the fix
            # families always move to a new architecture), so caching
            # them would only pin dead netlists/placements in memory
            # across the escalation loop.  The front-half netlist stays
            # cached either way.
            self._implementations[arch] = impl
        return impl


def implement(
    spec: MacroSpec,
    arch: MacroArchitecture,
    library: Optional[StdCellLibrary] = None,
    process: Optional[Process] = None,
    sdp_params: Optional[SDPParams] = None,
    input_sparsity: float = 0.0,
    weight_sparsity: float = 0.0,
    corners: Optional[CornerSet] = None,
    verify: bool = False,
    verify_vectors: int = DEFAULT_VECTORS,
    vt_recovery: bool = False,
) -> Implementation:
    """Run the complete implementation flow for one design point."""
    session = ImplementSession(
        spec,
        library=library or default_library(),
        process=process or GENERIC_40NM,
        sdp_params=sdp_params,
        input_sparsity=input_sparsity,
        weight_sparsity=weight_sparsity,
        corners=corners,
        verify=verify,
        verify_vectors=verify_vectors,
        vt_recovery=vt_recovery,
    )
    return session.implement(arch)
