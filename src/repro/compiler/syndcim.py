"""SynDCIM — the end-to-end performance-to-layout compiler.

``SynDCIM.compile(spec)`` reproduces the paper's Fig. 2 pipeline:

1. build/reuse the subcircuit library for the target process;
2. run the multi-spec-oriented searcher to obtain the Pareto frontier
   of architectures meeting the performance constraints;
3. select one design by the user's PPA preference (or an explicit
   choice);
4. push it through the synthesis + SDP place-and-route implementation
   flow with DRC/LVS and post-layout timing/power signoff.

Steps 1-3 take milliseconds (LUT arithmetic); step 4 builds the actual
netlist and layout and can be skipped (``implement=False``) when only
the frontier is wanted — e.g. for design-space-exploration sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arch import MacroArchitecture
from ..errors import SearchError
from ..scl.library import SubcircuitLibrary, default_scl
from ..search.algorithm import MSOSearcher, SearchResult
from ..search.estimate import MacroEstimate
from ..spec import MacroSpec, PPAWeights
from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library
from .flow import Implementation, implement


@dataclass
class CompileResult:
    """Output of one compiler run."""

    spec: MacroSpec
    search: SearchResult
    selected: MacroEstimate
    implementation: Optional[Implementation]

    @property
    def frontier(self) -> List[MacroEstimate]:
        return self.search.frontier

    @property
    def architecture(self) -> MacroArchitecture:
        return self.selected.arch

    def report(self) -> str:
        lines = [self.search.describe(), ""]
        lines.append(f"selected: {self.selected.describe()}")
        if self.implementation is not None:
            lines.append("")
            lines.append(self.implementation.report())
        return "\n".join(lines)


class SynDCIM:
    """The compiler facade.

    Parameters
    ----------
    scl:
        Pre-built subcircuit library; defaults to the shared library for
        the default 40 nm-class process (built lazily, cached).
    library / process:
        Cell library and process used by the implementation flow.
    """

    def __init__(
        self,
        scl: Optional[SubcircuitLibrary] = None,
        library: Optional[StdCellLibrary] = None,
        process: Optional[Process] = None,
    ) -> None:
        self._scl = scl
        self.library = library or default_library()
        self.process = process or GENERIC_40NM

    @property
    def scl(self) -> SubcircuitLibrary:
        if self._scl is None:
            self._scl = default_scl(self.process)
        return self._scl

    def search(self, spec: MacroSpec) -> SearchResult:
        """Run only the multi-spec-oriented search."""
        return MSOSearcher(self.scl).search(spec)

    def compile(
        self,
        spec: MacroSpec,
        ppa: Optional[PPAWeights] = None,
        choose: Optional[MacroArchitecture] = None,
        implement_design: bool = True,
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
    ) -> CompileResult:
        """Full performance-to-layout compilation.

        ``choose`` overrides the PPA-based selection with an explicit
        frontier architecture ("one is finally selected by the user",
        Section III.A).
        """
        result = self.search(spec)
        if choose is not None:
            matches = [
                e
                for e in result.candidates
                if e.arch == choose
            ]
            if not matches:
                raise SearchError(
                    "chosen architecture is not among the feasible "
                    "candidates; run .search() and pick from .frontier"
                )
            selected = matches[0]
        else:
            selected = result.select(ppa)
        impl = None
        if implement_design:
            impl = self._implement_with_escalation(
                spec, selected.arch, input_sparsity, weight_sparsity
            )
        return CompileResult(
            spec=spec,
            search=result,
            selected=selected,
            implementation=impl,
        )

    def _implement_with_escalation(
        self,
        spec: MacroSpec,
        arch: MacroArchitecture,
        input_sparsity: float,
        weight_sparsity: float,
        max_attempts: int = 4,
    ) -> Implementation:
        """Implement; when post-layout STA misses (wires the LUT model
        could not see), escalate with the same fix families the searcher
        uses and re-implement — the paper's loop between the searcher
        and the standard digital flow."""
        from ..search.fixes import MAC_FIXES, OFU_FIXES

        impl = implement(
            spec,
            arch,
            library=self.library,
            process=self.process,
            input_sparsity=input_sparsity,
            weight_sparsity=weight_sparsity,
        )
        attempts = 1
        while not impl.timing.met and attempts < max_attempts:
            endpoint = impl.timing.endpoint
            ofu_limited = "ofu" in endpoint or "fused" in endpoint or "outreg" in endpoint
            fixes = OFU_FIXES if ofu_limited else MAC_FIXES
            next_arch = None
            for _, move in fixes:
                candidate = move(spec, impl.arch)
                if candidate is not None and candidate != impl.arch:
                    next_arch = candidate
                    break
            if next_arch is None:
                break
            impl = implement(
                spec,
                next_arch,
                library=self.library,
                process=self.process,
                input_sparsity=input_sparsity,
                weight_sparsity=weight_sparsity,
            )
            attempts += 1
        return impl
