"""SynDCIM — the end-to-end performance-to-layout compiler.

``SynDCIM.compile(spec)`` reproduces the paper's Fig. 2 pipeline:

1. build/reuse the subcircuit library for the target process;
2. run the multi-spec-oriented searcher to obtain the Pareto frontier
   of architectures meeting the performance constraints;
3. select one design by the user's PPA preference (or an explicit
   choice);
4. push it through the synthesis + SDP place-and-route implementation
   flow with DRC/LVS and post-layout timing/power signoff.

Steps 1-3 take milliseconds (LUT arithmetic); step 4 builds the actual
netlist and layout and can be skipped (``implement=False``) when only
the frontier is wanted — e.g. for design-space-exploration sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..arch import MacroArchitecture
from ..errors import SearchError
from ..options import CompileOptions
from ..scl.library import SubcircuitLibrary, cached_default_scl, default_scl
from ..search.algorithm import MSOSearcher, SearchResult
from ..search.estimate import MacroEstimate
from ..signoff.corners import CornerSet
from ..spec import MacroSpec, PPAWeights
from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library
from ..verify.harness import DEFAULT_VECTORS as DEFAULT_VERIFY_VECTORS
from .flow import Implementation, ImplementSession, implement


@dataclass
class CompileResult:
    """Output of one compiler run."""

    spec: MacroSpec
    search: SearchResult
    selected: MacroEstimate
    implementation: Optional[Implementation]

    @property
    def frontier(self) -> List[MacroEstimate]:
        return self.search.frontier

    @property
    def architecture(self) -> MacroArchitecture:
        return self.selected.arch

    def report(self) -> str:
        lines = [self.search.describe(), ""]
        lines.append(f"selected: {self.selected.describe()}")
        if self.implementation is not None:
            lines.append("")
            lines.append(self.implementation.report())
        return "\n".join(lines)


class SynDCIM:
    """The compiler facade.

    Parameters
    ----------
    scl:
        Pre-built subcircuit library; defaults to the shared library for
        the default 40 nm-class process (built lazily, cached).
    library / process:
        Cell library and process used by the implementation flow.
    corners:
        Operating corners for multi-corner PVT signoff (see
        :mod:`repro.signoff`).  When set, the searcher optimizes at TT
        but ranks and escalates on the worst corner's slack (priced
        from a corner-characterized SCL), the implementation flow
        evaluates every corner, and ``signoff_clean`` means clean at
        the worst corner.  ``None`` keeps the nominal-only behaviour.
    vt:
        Threshold-flavor policy.  A concrete flavor (``"svt"``,
        ``"hvt"``, ``"lvt"``, ``"ulvt"``) maps every candidate's logic
        to that flavor; ``"auto"`` lets the searcher walk the Vt ladder
        (lower_vt joins timing escalation, raise_vt the leakage
        tuning) and additionally runs netlist-level leakage recovery
        during implementation (see
        :func:`repro.synth.vt.recover_leakage`).
    """

    def __init__(
        self,
        scl: Optional[SubcircuitLibrary] = None,
        library: Optional[StdCellLibrary] = None,
        process: Optional[Process] = None,
        seed: Optional[int] = None,
        corners: Optional[CornerSet] = None,
        vt: str = "svt",
    ) -> None:
        self._scl = scl
        self.library = library or default_library()
        self.process = process or GENERIC_40NM
        self.seed = seed
        self.corners = corners
        self.vt = vt
        self._signoff_scl: Optional[SubcircuitLibrary] = None

    @classmethod
    def from_options(
        cls,
        options: "CompileOptions",
        scl: Optional[SubcircuitLibrary] = None,
        library: Optional[StdCellLibrary] = None,
    ) -> "SynDCIM":
        """Build the facade from the canonical
        :class:`~repro.options.CompileOptions` bundle — the same
        normalization the batch engine, CLI and service use, so a
        facade built this way prices and keys exactly like they do."""
        return cls(
            scl=scl,
            library=library,
            process=options.resolve_process(),
            seed=options.seed,
            corners=options.corner_set(),
            vt=options.vt,
        )

    @property
    def scl(self) -> SubcircuitLibrary:
        if self._scl is None:
            # For an alternate cell library (e.g. imported from a .lib
            # file) default_scl characterizes *that* backend; the
            # default library keeps the shared memoized artifact.
            self._scl = default_scl(self.process, library=self.library)
        return self._scl

    @property
    def signoff_scl(self) -> Optional[SubcircuitLibrary]:
        """Corner-characterized SCL for the worst timing corner, or
        ``None`` when no corners are configured / the worst corner is
        the nominal point itself (then TT pricing already covers it)."""
        if self.corners is None:
            return None
        if self._signoff_scl is None:
            from ..signoff.corners import worst_corner_scl

            self._signoff_scl = worst_corner_scl(
                self.process,
                self.corners,
                library=(
                    None if self.library is default_library()
                    else self.library
                ),
            )
        return self._signoff_scl

    def search(self, spec: MacroSpec) -> SearchResult:
        """Run only the multi-spec-oriented search."""
        return MSOSearcher(
            self.scl,
            seed=self.seed,
            signoff_scl=self.signoff_scl,
            vt=self.vt,
        ).search(spec)

    def compile(
        self,
        spec: MacroSpec,
        ppa: Optional[PPAWeights] = None,
        choose: Optional[MacroArchitecture] = None,
        implement_design: bool = True,
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
        verify: bool = False,
        verify_vectors: int = DEFAULT_VERIFY_VECTORS,
    ) -> CompileResult:
        """Full performance-to-layout compilation.

        ``choose`` overrides the PPA-based selection with an explicit
        frontier architecture ("one is finally selected by the user",
        Section III.A).  ``verify=True`` adds the post-synthesis
        functional-verification stage: the optimized netlist is driven
        with ``verify_vectors`` randomized + directed MAC stimuli
        against the golden model (see :mod:`repro.verify`), and the
        report lands on ``implementation.verification``.
        """
        result = self.search(spec)
        if choose is not None:
            matches = [
                e
                for e in result.candidates
                if e.arch == choose
            ]
            if not matches:
                raise SearchError(
                    "chosen architecture is not among the feasible "
                    "candidates; run .search() and pick from .frontier"
                )
            selected = matches[0]
        else:
            selected = result.select(ppa)
        impl = None
        if implement_design:
            impl = self._implement_with_escalation(
                spec,
                selected.arch,
                input_sparsity,
                weight_sparsity,
                verify=verify,
                verify_vectors=verify_vectors,
            )
        return CompileResult(
            spec=spec,
            search=result,
            selected=selected,
            implementation=impl,
        )

    def _implement_with_escalation(
        self,
        spec: MacroSpec,
        arch: MacroArchitecture,
        input_sparsity: float,
        weight_sparsity: float,
        max_attempts: int = 4,
        verify: bool = False,
        verify_vectors: int = DEFAULT_VERIFY_VECTORS,
    ) -> Implementation:
        """Implement; when post-layout STA misses (wires the LUT model
        could not see), escalate with the same fix families the searcher
        uses and re-implement — the paper's loop between the searcher
        and the standard digital flow.

        All attempts share one :class:`ImplementSession`, so escalation
        is incremental: the bitcell array (and its flatten template) is
        generated once, and revisited architectures reuse their cached
        netlist and implementation outright instead of re-running the
        flow from RTL generation.
        """
        from ..search.fixes import MAC_FIXES, OFU_FIXES, VT_TIMING_FIXES

        mac_fixes = MAC_FIXES
        if self.vt == "auto":
            # In auto mode the escalation loop may also step the logic
            # flavor faster, mirroring the searcher's fix family.
            mac_fixes = mac_fixes + VT_TIMING_FIXES
        # The session itself runs without the verify stage: escalation
        # attempts that miss timing are discarded, so only the final
        # implementation (below) pays for verification.
        session = ImplementSession(
            spec,
            library=self.library,
            process=self.process,
            input_sparsity=input_sparsity,
            weight_sparsity=weight_sparsity,
            corners=self.corners,
            vt_recovery=self.vt == "auto",
        )
        impl = session.implement(arch)
        attempts = 1
        while not impl.timing_met_signoff and attempts < max_attempts:
            # With corners configured, escalation is driven by the
            # *worst corner's* critical endpoint — the path the SS
            # derate pushed over the clock — not the nominal one.
            if impl.signoff is not None:
                endpoint = impl.signoff.worst.timing.endpoint
            else:
                endpoint = impl.timing.endpoint
            ofu_limited = "ofu" in endpoint or "fused" in endpoint or "outreg" in endpoint
            fixes = OFU_FIXES if ofu_limited else mac_fixes
            next_arch = None
            for _, move in fixes:
                candidate = move(spec, impl.arch)
                if candidate is not None and candidate != impl.arch:
                    next_arch = candidate
                    break
            if next_arch is None:
                break
            impl = session.implement(next_arch)
            attempts += 1
        if verify:
            session.verify_implementation(impl, vectors=verify_vectors)
        return impl

    def compile_cached(
        self,
        spec: MacroSpec,
        cache: Optional["ResultCache"] = None,
        implement_design: bool = True,
        input_sparsity: float = 0.0,
        weight_sparsity: float = 0.0,
        verify: bool = False,
        verify_vectors: int = DEFAULT_VERIFY_VECTORS,
    ) -> Dict[str, object]:
        """Compile to a JSON-serializable *record*, consulting a cache.

        This is the single-spec counterpart of the batch engine: the
        spec is hashed, the on-disk :class:`~repro.batch.cache.ResultCache`
        is consulted, and only on a miss does a real compilation run
        (whose record is then stored).  Returns the record either way.

        Unlike :func:`execute_job` (which always builds a default
        compiler in its worker process), this runs on *this* instance —
        its SCL, cell library and process — and keys the cache with
        this instance's process name.
        """
        from ..batch.cache import ResultCache
        from ..batch.jobs import CompileJob

        job = CompileJob(
            spec=spec,
            implement=implement_design,
            input_sparsity=input_sparsity,
            weight_sparsity=weight_sparsity,
            seed=self.seed,
            process_name=self.process.name,
            corners=None if self.corners is None else self.corners.names,
            verify=verify,
            verify_vectors=verify_vectors,
            vt=self.vt,
        )
        cache = cache or ResultCache()
        # The job key covers the spec, options and process name — not a
        # custom cell library, a pre-built SCL, or a Process whose
        # *parameters* differ from the registered node of that name.
        # Any such toolchain bypasses the cache entirely: always
        # recompile rather than ever return (or store) another
        # toolchain's numbers under this key.  The SCL probe must not
        # *build* the default SCL just to compare identities.
        from ..tech.process import PROCESSES

        use_cache = (
            self.library is default_library()
            and PROCESSES.get(self.process.name) == self.process
            and (
                self._scl is None
                or self._scl is cached_default_scl(self.process)
            )
        )
        if use_cache:
            cached = cache.get(job.key())
            if cached is not None:
                return cached
        record = _run_to_record(
            spec,
            lambda: result_to_record(
                self.compile(
                    spec,
                    implement_design=implement_design,
                    input_sparsity=input_sparsity,
                    weight_sparsity=weight_sparsity,
                    verify=verify,
                    verify_vectors=verify_vectors,
                )
            ),
        )
        if use_cache and record.get("status") in CACHEABLE_STATUSES:
            cache.put(job.key(), record)
        return record


# ---------------------------------------------------------------------------
# Serializable result records and the pure batch-job entry point.
#
# The batch engine runs compilations in worker processes and persists
# their outputs as JSON, so everything below speaks plain dicts: a
# *record* is the JSON-friendly projection of a CompileResult that the
# sweeps, the cache and the summarize report all share.
# ---------------------------------------------------------------------------


def estimate_record(est: MacroEstimate) -> Dict[str, object]:
    """JSON-friendly projection of one searched design point."""
    return {
        "arch": est.arch.to_dict(),
        "arch_summary": est.arch.knob_summary(),
        "power_mw": est.power_mw,
        "area_um2": est.area_um2,
        "critical_path_ns": est.critical_path_ns,
        "met": est.met,
        "tops": est.tops,
        "tops_per_watt": est.tops_per_watt,
        "energy_per_cycle_pj": est.energy_per_cycle_pj,
    }


def implementation_record(impl: Implementation) -> Dict[str, object]:
    """JSON-friendly projection of one implementation (flow output)."""
    record: Dict[str, object] = dict(impl.summary())
    record.update(
        {
            "arch": impl.arch.to_dict(),
            "arch_summary": impl.arch.knob_summary(),
            "drc_clean": impl.drc.clean,
            "lvs_clean": impl.lvs.clean,
            "timing_met": impl.timing.met,
            "signoff_clean": impl.signoff_clean,
            "signoff": (
                None if impl.signoff is None else impl.signoff.to_dict()
            ),
            # Functional verification (None when the flow ran without
            # the verify stage; verified then reads None, not True).
            "verified": (
                None
                if impl.verification is None
                else impl.verification.passed
            ),
            "verification": (
                None
                if impl.verification is None
                else impl.verification.to_dict()
            ),
        }
    )
    return record


def result_to_record(result: CompileResult) -> Dict[str, object]:
    """Project a full :class:`CompileResult` onto the record schema."""
    return dict(
        _base_record(result.spec),
        search={
            "n_candidates": len(result.search.candidates),
            "frontier": [estimate_record(e) for e in result.frontier],
            "fix_counts": dict(result.search.fix_counts),
            "signoff_corner": result.search.signoff_corner,
            "signoff_slacks": dict(result.search.signoff_slacks),
        },
        selected=estimate_record(result.selected),
        implementation=(
            implementation_record(result.implementation)
            if result.implementation is not None
            else None
        ),
    )


#: Statuses whose records are deterministic and therefore cacheable;
#: "error" is excluded (a crash may be environmental).  Shared by the
#: batch engine and compile_cached so the policy lives in one place.
CACHEABLE_STATUSES = ("ok", "infeasible")


def _base_record(spec: MacroSpec) -> Dict[str, object]:
    """The record schema's single source of truth: every record is this
    shell with fields overridden — never a hand-built dict, so the
    schema cannot drift between producers."""
    return {
        "status": "ok",
        "error": None,
        # Fault-injection marker: the chaos harness's fault kind when
        # one was scheduled for the attempt that produced this record
        # (see repro.batch.faults); None in every fault-free run.
        "fault": None,
        "spec": spec.to_dict(),
        "spec_summary": spec.describe(),
        "spec_hash": spec.content_hash(),
        "search": None,
        "selected": None,
        "implementation": None,
    }


def _failure_record(
    spec: MacroSpec, status: str, error: str
) -> Dict[str, object]:
    """Record shell for a compilation that produced no result."""
    return dict(_base_record(spec), status=status, error=error)


def _run_to_record(spec: MacroSpec, runner) -> Dict[str, object]:
    """Run ``runner`` and map its outcome onto the record schema:
    SearchError → ``infeasible`` (deterministic, cacheable), anything
    else → ``error``; every record gets an ``elapsed_s`` stamp."""
    started = time.monotonic()
    try:
        record = runner()
    except SearchError as exc:
        record = _failure_record(spec, "infeasible", str(exc))
    except Exception as exc:
        record = _failure_record(
            spec, "error", f"{type(exc).__name__}: {exc}"
        )
    record["elapsed_s"] = round(time.monotonic() - started, 3)
    return record


def execute_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Pure, picklable batch-job entry point.

    Takes a plain-dict payload (built by :mod:`repro.batch.jobs`),
    rebuilds the spec, runs the requested flow and returns a plain-dict
    record — no live objects cross the process boundary in either
    direction, so this function is safe to hand to a
    ``ProcessPoolExecutor`` regardless of start method.

    Payload types:

    * ``"compile"`` — full search + selection (+ implementation);
    * ``"implement"`` — implementation flow only, for an explicit
      architecture (used by benchmarks that already searched).

    Deterministic failures (infeasible specs) come back as
    ``status="infeasible"`` records so sweeps keep going and the result
    is cacheable; any other exception — compiler errors and plain bugs
    alike — as ``status="error"``, so one bad grid corner can never
    abort a sweep and discard its completed points.

    The engine may graft ephemeral ``fault_ctx`` context onto the
    payload (never part of the job key — see
    :data:`repro.batch.jobs.EPHEMERAL_PAYLOAD_KEYS`): it carries the
    (job key, attempt) coordinates the chaos harness needs to inject
    deterministic worker faults.  Injection happens *before* the
    record machinery on purpose — a ``raise`` fault must escape as a
    worker exception (the single-future failure path), not be folded
    into an error record.
    """
    fault_ctx = payload.pop("fault_ctx", None)
    if fault_ctx is not None:
        from ..batch.faults import inject_worker_faults

        inject_worker_faults(
            str(fault_ctx.get("key", "")),  # type: ignore[union-attr]
            int(fault_ctx.get("attempt", 1)),  # type: ignore[union-attr]
        )
    spec = MacroSpec.from_dict(payload["spec"])  # type: ignore[arg-type]
    options: Dict[str, object] = dict(payload.get("options", {}))  # type: ignore[arg-type]
    job_type = payload.get("type", "compile")

    def runner() -> Dict[str, object]:
        from ..tech.process import process_by_name

        # The payload names the process; resolving it (or failing for
        # an unregistered name) keeps the computation consistent with
        # the cache key, which also covers the process name.
        process = process_by_name(
            str(payload.get("process", GENERIC_40NM.name))
        )
        # Corners travel as names (like the process) so only registered
        # signoff corners can run through the pool — and the resolution
        # failure for an unknown name lands in this record, not in a
        # dead worker.
        corner_names = options.get("corners")
        corners = None
        if corner_names:
            corners = CornerSet.from_names(
                [str(n) for n in corner_names], name="batch"  # type: ignore[union-attr]
            )
        compiler = SynDCIM(
            seed=options.get("seed"),  # type: ignore[arg-type]
            process=process,
            corners=corners,
            vt=str(options.get("vt", "svt")),
        )
        if job_type == "implement":
            arch = MacroArchitecture.from_dict(payload["arch"])  # type: ignore[arg-type]
            impl = implement(
                spec,
                arch,
                library=compiler.library,
                process=compiler.process,
                input_sparsity=float(options.get("input_sparsity", 0.0)),  # type: ignore[arg-type]
                weight_sparsity=float(options.get("weight_sparsity", 0.0)),  # type: ignore[arg-type]
                corners=corners,
                verify=bool(options.get("verify", False)),
                verify_vectors=int(
                    options.get("verify_vectors", DEFAULT_VERIFY_VECTORS)
                ),
                vt_recovery=bool(options.get("vt_recovery", False)),
            )
            return dict(
                _base_record(spec), implementation=implementation_record(impl)
            )
        if job_type == "compile":
            result = compiler.compile(
                spec,
                implement_design=bool(options.get("implement", True)),
                input_sparsity=float(options.get("input_sparsity", 0.0)),  # type: ignore[arg-type]
                weight_sparsity=float(options.get("weight_sparsity", 0.0)),  # type: ignore[arg-type]
                verify=bool(options.get("verify", False)),
                verify_vectors=int(
                    options.get("verify_vectors", DEFAULT_VERIFY_VECTORS)
                ),  # type: ignore[arg-type]
            )
            return result_to_record(result)
        raise ValueError(f"unknown job type {job_type!r}")

    return _run_to_record(spec, runner)
