"""Compiler driver and implementation flow."""

from .flow import Implementation, implement
from .report import format_pareto_ascii, format_table
from .syndcim import CompileResult, SynDCIM

__all__ = [
    "Implementation",
    "implement",
    "format_pareto_ascii",
    "format_table",
    "CompileResult",
    "SynDCIM",
]
