"""Compiler driver and implementation flow.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .flow import Implementation, ImplementSession, implement
from .report import format_pareto_ascii, format_table
from .syndcim import CompileResult, SynDCIM

__all__ = [
    "Implementation",
    "ImplementSession",
    "implement",
    "format_pareto_ascii",
    "format_table",
    "CompileResult",
    "SynDCIM",
]
