"""Tabular report helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    materialized: List[List[str]] = []
    for row in rows:
        materialized.append(
            [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_pareto_ascii(
    points: Sequence[tuple],
    x_label: str,
    y_label: str,
    width: int = 60,
    height: int = 18,
    markers: str = "o*+x#",
) -> str:
    """ASCII scatter plot for Pareto frontiers (Fig. 8-style output).

    ``points`` is a sequence of ``(x, y, series_index)``.
    """
    if not points:
        return "(no points)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, series in points:
        col = int((x - x0) / xr * (width - 1))
        row = int((y - y0) / yr * (height - 1))
        grid[height - 1 - row][col] = markers[series % len(markers)]
    lines = [f"{y_label} ^"]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> {x_label}")
    lines.append(f"  x: [{x0:.4g}, {x1:.4g}]  y: [{y0:.4g}, {y1:.4g}]")
    return "\n".join(lines)
