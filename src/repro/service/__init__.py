"""Compiler-as-a-service: a long-running job queue over the batch
engine, an HTTP/JSON API, and the client that speaks it.

The batch engine (:mod:`repro.batch`) is one-shot: build a grid, run
it, exit.  This package promotes it into a *service* many concurrent
clients share, so no content hash is ever compiled twice across users:

* :mod:`repro.service.queue` — :class:`JobQueue`: priority scheduling,
  deduplication by job content hash (a second submit of an in-flight
  hash attaches to the running job), cancellation, per-job terminal
  statuses, a service-level write-ahead journal and journal pruning;
* :mod:`repro.service.server` — the stdlib-only
  (``http.server.ThreadingHTTPServer``) HTTP/JSON API:
  ``POST /v1/jobs``, ``GET/DELETE /v1/jobs/<id>``,
  ``GET /v1/results/<hash>``, ``POST /v1/sweeps``,
  ``GET /v1/sweeps/<id>``, ``GET /v1/stats``, ``GET /v1/health``;
* :mod:`repro.service.client` — :class:`ServiceClient`, the typed
  mirror of those routes (``urllib``-based, no dependencies), so
  examples and tests never hand-roll requests.

Options travel as the canonical :class:`repro.options.CompileOptions`
everywhere, so a job submitted over HTTP hashes — and therefore caches
— identically to one compiled locally.  Start a server with
``python -m repro serve`` (see ``docs/service.md``).

Exports are lazy: importing :class:`ServiceClient` does not pull the
batch engine (or numpy) into a thin client process.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .client import ServiceClient
    from .queue import JobQueue
    from .server import ServiceServer, create_server

__all__ = ["JobQueue", "ServiceClient", "ServiceServer", "create_server"]


def __getattr__(name: str):
    if name == "JobQueue":
        from .queue import JobQueue

        return JobQueue
    if name == "ServiceClient":
        from .client import ServiceClient

        return ServiceClient
    if name in ("ServiceServer", "create_server"):
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
