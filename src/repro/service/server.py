"""The stdlib-only HTTP/JSON API over :class:`~repro.service.queue.
JobQueue`.

Routes (all bodies and responses are JSON; see ``docs/service.md`` for
the full schema and curl examples):

========  ======================  ==========================================
method    path                    meaning
========  ======================  ==========================================
POST      ``/v1/jobs``            submit one spec → job id + content hash
GET       ``/v1/jobs/<id>``       job status (+ record when terminal)
DELETE    ``/v1/jobs/<id>``       cancel a queued job
GET       ``/v1/results/<hash>``  result-store lookup — never compiles
POST      ``/v1/sweeps``          range-grammar fan-out → sweep + job ids
GET       ``/v1/sweeps/<id>``     sweep progress (per-status counts)
GET       ``/v1/stats``           queue counters + store occupancy
GET       ``/v1/health``          liveness + version
========  ======================  ==========================================

Built on ``http.server.ThreadingHTTPServer`` — no third-party
dependencies — with one daemon thread per connection; the queue does
the locking.  Malformed JSON and unknown options are 400s, unknown ids
404s, a cancel that lost its race 409, shutdown 503.  The server binds
loopback by default: it is a compile service, not an internet face.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .. import __version__
from ..errors import ServiceError, SynDCIMError
from ..options import CompileOptions
from ..spec import MacroSpec, parse_format
from .queue import QUEUED, JobQueue

#: Submissions past this are refused (400) before parsing: a compile
#: spec is a few hundred bytes, a sweep a few KB — anything megabytes
#: long is not a request, it is a mistake (or an attack).
MAX_BODY_BYTES = 1 << 20


class _BadRequest(Exception):
    """Internal: maps to a 400 with the message as the error body."""


def _spec_from_payload(data: Dict[str, object]) -> MacroSpec:
    """Parse a submitted spec, accepting the ergonomic spellings the
    CLI does on top of :meth:`MacroSpec.from_dict`'s strict one:
    ``"formats": ["INT4", "INT8"]`` shared by inputs and weights,
    format *names* in place of format dicts, and the CLI's
    ``INT4,INT8`` default when formats are omitted entirely."""
    payload = dict(data)
    shared = payload.pop("formats", ["INT4", "INT8"])
    for key in ("input_formats", "weight_formats"):
        value = payload.get(key, shared)
        if not isinstance(value, list) or not value:
            raise _BadRequest(f"{key} must be a non-empty list")
        payload[key] = [
            parse_format(item).to_dict() if isinstance(item, str) else item
            for item in value
        ]
    try:
        return MacroSpec.from_dict(payload)
    except SynDCIMError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise _BadRequest(
            f"malformed spec ({type(exc).__name__}: {exc})"
        ) from None


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`JobQueue`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], queue: JobQueue) -> None:
        super().__init__(address, _Handler)
        self.queue = queue

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def create_server(
    queue: JobQueue, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind (``port=0`` picks an ephemeral port) without serving yet;
    call ``serve_forever()`` (typically on a thread) to go live."""
    return ServiceServer((host, port), queue)


class _Handler(BaseHTTPRequestHandler):
    #: Service logs go through the queue's owner, not stderr-per-request.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    server: ServiceServer

    @property
    def queue(self) -> JobQueue:
        return self.server.queue

    # -- plumbing -----------------------------------------------------------

    def _send(self, status: int, body: Dict[str, object]) -> None:
        blob = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            handler = self._route(method, path)
            if handler is None:
                self._error(404, f"no route for {method} {path}")
                return
            handler()
        except _BadRequest as exc:
            self._error(400, str(exc))
        except ServiceError as exc:
            # Queue refusals: shutdown → 503, unknown ids → 404.
            message = str(exc)
            status = 404 if "unknown job id" in message else 503
            self._error(status, message)
        except SynDCIMError as exc:
            # Library validation (bad spec, bad options, bad corners):
            # the client's fault, with the library's message.
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")

    def _route(self, method: str, path: str):
        for pattern, verb, handler in (
            (r"^/v1/jobs$", "POST", self._post_job),
            (r"^/v1/jobs/(?P<id>[\w.-]+)$", "GET", self._get_job),
            (r"^/v1/jobs/(?P<id>[\w.-]+)$", "DELETE", self._delete_job),
            (r"^/v1/results/(?P<key>[0-9a-f]{8,64})$", "GET", self._get_result),
            (r"^/v1/sweeps$", "POST", self._post_sweep),
            (r"^/v1/sweeps/(?P<id>[\w.-]+)$", "GET", self._get_sweep),
            (r"^/v1/stats$", "GET", self._get_stats),
            (r"^/v1/health$", "GET", self._get_health),
        ):
            if verb != method:
                continue
            match = re.match(pattern, path)
            if match:
                self._params = match.groupdict()
                return handler
        return None

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- request parsing ----------------------------------------------------

    def _parse_options(
        self, body: Dict[str, object]
    ) -> Optional[CompileOptions]:
        data = body.get("options")
        if data is None:
            return None
        options = CompileOptions.from_dict(data)  # type: ignore[arg-type]
        options.validate()  # typos become this 400, not a worker error
        return options

    @staticmethod
    def _parse_priority(body: Dict[str, object]) -> int:
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise _BadRequest("priority must be an integer (lower = sooner)")
        return priority

    # -- routes -------------------------------------------------------------

    def _post_job(self) -> None:
        body = self._read_json()
        spec_data = body.get("spec")
        if not isinstance(spec_data, dict):
            raise _BadRequest('body must carry a "spec" object')
        spec = _spec_from_payload(spec_data)
        snapshot = self.queue.submit(
            spec,
            options=self._parse_options(body),
            priority=self._parse_priority(body),
        )
        self._send(202 if snapshot["status"] == QUEUED else 200, snapshot)

    def _get_job(self) -> None:
        snapshot = self.queue.job(self._params["id"])
        if snapshot is None:
            self._error(404, f"unknown job id {self._params['id']!r}")
            return
        self._send(200, snapshot)

    def _delete_job(self) -> None:
        outcome = self.queue.cancel(self._params["id"])
        self._send(200 if outcome["cancelled"] else 409, outcome)

    def _get_result(self) -> None:
        record = self.queue.result(self._params["key"])
        if record is None:
            self._error(
                404, f"no cached result for hash {self._params['key']!r}"
            )
            return
        self._send(200, record)

    def _post_sweep(self) -> None:
        body = self._read_json()
        axes = body.get("axes", {})
        if not isinstance(axes, dict):
            raise _BadRequest('"axes" must be an object of axis token lists')
        ppa = body.get("ppa", "balanced")
        if not isinstance(ppa, str):
            raise _BadRequest('"ppa" must be a preset name')
        snapshot = self.queue.submit_sweep(
            axes,
            options=self._parse_options(body),
            ppa=ppa,
            priority=self._parse_priority(body),
        )
        self._send(202, snapshot)

    def _get_sweep(self) -> None:
        snapshot = self.queue.sweep(self._params["id"])
        if snapshot is None:
            self._error(404, f"unknown sweep id {self._params['id']!r}")
            return
        self._send(200, snapshot)

    def _get_stats(self) -> None:
        self._send(200, self.queue.stats())

    def _get_health(self) -> None:
        self._send(
            200,
            {"ok": True, "version": __version__, "run_id": self.queue.run_id},
        )
