""":class:`ServiceClient` — the typed Python mirror of the compile
service's HTTP routes.

``urllib``-only, so a thin client process imports neither the batch
engine nor numpy.  Every method maps one-to-one onto a route (see
:mod:`repro.service.server`); transport failures and non-2xx responses
raise :class:`~repro.errors.ServiceError` carrying the server's error
message, while job *failures* come back as data — a terminal
``error``/``timeout`` record is a result, not an exception.

>>> client = ServiceClient("http://127.0.0.1:8841")
>>> snap = client.submit({"height": 64, "width": 64})
>>> record = client.wait(snap["id"])["record"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Union

from ..errors import ServiceError
from ..options import CompileOptions

#: Terminal job statuses, mirrored from the queue so thin clients need
#: not import it (and the batch stack behind it).
TERMINAL_STATUSES = ("ok", "infeasible", "error", "timeout", "cancelled")

SpecLike = Union[Dict[str, Any], Any]
OptionsLike = Union[CompileOptions, Dict[str, Any], None]


def _spec_payload(spec: SpecLike) -> Dict[str, Any]:
    if isinstance(spec, dict):
        return spec
    to_dict = getattr(spec, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise ServiceError(
        f"cannot serialize spec of type {type(spec).__name__}: "
        "pass a MacroSpec or a plain dict"
    )


def _options_payload(options: OptionsLike) -> Optional[Dict[str, Any]]:
    if options is None:
        return None
    if isinstance(options, CompileOptions):
        return options.to_dict()
    if isinstance(options, dict):
        return options
    raise ServiceError(
        f"cannot serialize options of type {type(options).__name__}: "
        "pass CompileOptions or a plain dict"
    )


class ServiceClient:
    """One compile-service endpoint, e.g.
    ``ServiceClient("http://127.0.0.1:8841")``.

    ``timeout`` is the per-request socket timeout; long waits are
    implemented by polling (:meth:`wait`, :meth:`wait_sweep`), never by
    a long-held connection.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        none_on_404: bool = False,
    ) -> Optional[Dict[str, Any]]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code == 404 and none_on_404:
                return None
            try:
                detail = json.loads(exc.read().decode("utf-8")).get(
                    "error", ""
                )
            except (ValueError, OSError):
                detail = ""
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach compile service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"{method} {path} failed: {exc}"
            ) from exc

    # -- routes -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        spec: SpecLike,
        options: OptionsLike = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit one macro; returns the job snapshot (``id``, ``key``,
        ``status`` — possibly already terminal on a cache hit)."""
        body: Dict[str, Any] = {
            "spec": _spec_payload(spec),
            "priority": priority,
        }
        payload = _options_payload(options)
        if payload is not None:
            body["options"] = payload
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job.  ``{"cancelled": False, ...}`` (from
        the 409) means it already started — not an exception, because
        losing that race is an expected outcome."""
        try:
            return self._request("DELETE", f"/v1/jobs/{job_id}")
        except ServiceError as exc:
            if "HTTP 409" in str(exc):
                return self.job(job_id) | {"cancelled": False}
            raise

    def result(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for a content hash, or ``None`` when the
        store has no entry — this never triggers a compile."""
        return self._request(
            "GET", f"/v1/results/{key}", none_on_404=True
        )

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final snapshot
        (with ``record``).  Raises :class:`ServiceError` on deadline —
        a *client-side* deadline, distinct from the job's own
        ``timeout`` status, which is returned as data."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot.get("status") in TERMINAL_STATUSES:
                return snapshot
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} not terminal after {timeout:.0f}s "
                    f"(last status {snapshot.get('status')!r})"
                )
            time.sleep(poll_s)

    def submit_sweep(
        self,
        axes: Dict[str, List[str]],
        options: OptionsLike = None,
        ppa: str = "balanced",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Fan a range grammar out server-side; returns the sweep
        snapshot with per-point job ids and content hashes."""
        body: Dict[str, Any] = {
            "axes": axes,
            "ppa": ppa,
            "priority": priority,
        }
        payload = _options_payload(options)
        if payload is not None:
            body["options"] = payload
        return self._request("POST", "/v1/sweeps", body)

    def sweep(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/sweeps/{sweep_id}")

    def wait_sweep(
        self,
        sweep_id: str,
        timeout: float = 3600.0,
        poll_s: float = 0.5,
    ) -> Dict[str, Any]:
        """Poll until every point of the sweep is terminal."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.sweep(sweep_id)
            if snapshot.get("done"):
                return snapshot
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"sweep {sweep_id} not complete after {timeout:.0f}s "
                    f"({snapshot.get('counts')})"
                )
            time.sleep(poll_s)
