"""The service's scheduler: a thread-based priority job queue over the
batch engine.

One :class:`JobQueue` owns one :class:`~repro.batch.cache.ResultStore`
and a pool of worker threads.  Each accepted job is executed through a
single-job :class:`~repro.batch.engine.BatchCompiler` run sharing that
store, so every resilience feature the batch engine grew — watchdog
timeouts, transient-failure retries, deterministic fault injection —
applies per service job unchanged.  With ``options.job_timeout_s`` set
(and ``engine_jobs > 1``, the default) jobs run in a worker *process*
under the watchdog, so a crashing compilation surfaces as a terminal
``error``/``timeout`` record instead of taking the service down.

Deduplication
-------------
The unit of identity is the job content hash
(:meth:`repro.batch.jobs.CompileJob.key` — spec + options + process +
schema version).  A submit whose hash is already *queued or running*
attaches to the existing job (same job id back, ``coalesced`` count
bumped) instead of compiling twice; a submit whose hash is already in
the store returns a finished job immediately (a cache hit).  That is
the service-level guarantee behind "never recompile a hash twice", and
``stats()['compiled']`` is the proof.

Statuses
--------
``queued`` → ``running`` → one of the engine's terminal statuses
(``ok`` / ``infeasible`` / ``error`` / ``timeout``), plus
``cancelled`` for jobs removed from the queue before they started.
Terminal records are appended to the service's write-ahead
:class:`~repro.batch.resilience.SweepJournal` (one journal per service
lifetime), and sweep completion triggers journal pruning so a
long-lived service does not accumulate one JSONL per historical run.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pathlib
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..errors import ServiceError, SpecificationError
from ..options import PPA_PRESETS, CompileOptions
from ..spec import MacroSpec
from ..batch.cache import MemoryResultStore, ResultCache, ResultStore
from ..batch.engine import BatchCompiler
from ..batch.jobs import CompileJob
from ..batch.resilience import SweepJournal, new_run_id, prune_journals

#: Statuses a job can report; the first two are live, the rest terminal.
QUEUED = "queued"
RUNNING = "running"
CANCELLED = "cancelled"
TERMINAL_STATUSES = ("ok", "infeasible", "error", "timeout", CANCELLED)


def _new_id(prefix: str) -> str:
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


@dataclass
class _JobEntry:
    """Internal per-job state (snapshot through :meth:`JobQueue.job`).

    Wall-clock timestamps (``submitted``/``started``/``finished``) are
    *display metadata only* — an NTP step moves them arbitrarily.  All
    interval math runs on the parallel ``*_mono`` readings from
    :func:`time.monotonic`, which is what the ``queued_s``/``run_s``
    fields in snapshots are computed from.
    """

    id: str
    key: str
    job: CompileJob
    options: CompileOptions
    priority: int
    status: str = QUEUED
    record: Optional[Dict[str, object]] = None
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    cached: bool = False
    #: Later submits that attached to this job instead of recompiling.
    coalesced: int = 0
    done: threading.Event = field(default_factory=threading.Event)

    def mark_started(self) -> None:
        self.started = time.time()
        self.started_mono = time.monotonic()

    def mark_finished(self) -> None:
        self.finished = time.time()
        self.finished_mono = time.monotonic()

    def snapshot(self) -> Dict[str, object]:
        now = time.monotonic()
        started = self.started_mono
        queued_end = started if started is not None else now
        run_s: Optional[float] = None
        if started is not None:
            run_end = (
                self.finished_mono if self.finished_mono is not None else now
            )
            run_s = round(run_end - started, 6)
        return {
            "id": self.id,
            "key": self.key,
            "status": self.status,
            "priority": self.priority,
            "spec_summary": self.job.spec.describe(),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "queued_s": round(queued_end - self.submitted_mono, 6),
            "run_s": run_s,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "record": self.record if self.status in TERMINAL_STATUSES else None,
        }


@dataclass
class _SweepEntry:
    id: str
    job_ids: List[str]
    keys: List[str]
    pending: Set[str]
    submitted: float = field(default_factory=time.time)
    finished: Optional[float] = None
    # Monotonic twins of the wall timestamps above (interval math only).
    submitted_mono: float = field(default_factory=time.monotonic)
    finished_mono: Optional[float] = None


class JobQueue:
    """Priority scheduler + result store + journal for the service.

    Parameters
    ----------
    options:
        Default :class:`~repro.options.CompileOptions` applied to
        submissions that do not carry their own.
    store / cache_dir / use_cache:
        Result storage: an explicit :class:`ResultStore`, else a
        :class:`ResultCache` under ``cache_dir`` (default cache root),
        else — with ``use_cache=False`` — a process-local
        :class:`MemoryResultStore` (dedup and fetches still work, but
        nothing survives restarts).
    workers:
        Scheduler threads (= jobs compiling concurrently).  Default
        ``min(4, cpu)``.
    engine_jobs:
        Worker-process budget of each per-job engine run.  Values > 1
        enable the pooled (process-isolated, watchdog-capable) path
        whenever the job carries a ``job_timeout_s``.
    journal / journal_keep:
        The service journals terminal records under its run id
        (``journal=False`` disables); completed sweeps prune the
        journal directory down to the newest ``journal_keep`` files.
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        store: Optional[ResultStore] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        workers: Optional[int] = None,
        engine_jobs: int = 2,
        journal: bool = True,
        journal_keep: int = 32,
        start: bool = True,
    ) -> None:
        self.options = options if options is not None else CompileOptions()
        if store is not None:
            self.store = store
        elif use_cache:
            self.store = ResultCache(cache_dir) if cache_dir else ResultCache()
        else:
            self.store = MemoryResultStore()
        self.workers = max(
            1, workers if workers is not None else min(4, os.cpu_count() or 1)
        )
        self.engine_jobs = max(1, engine_jobs)
        self.journal_keep = max(0, journal_keep)
        self.run_id = new_run_id()
        #: Wall-clock start (display only; see :meth:`stats`).
        self.started_at = time.time()
        #: Monotonic start — the uptime reference, immune to NTP steps.
        self._started_mono = time.monotonic()
        root = getattr(self.store, "root", None)
        self._journal_root: Optional[pathlib.Path] = (
            pathlib.Path(root) if journal and root is not None else None
        )
        self._journal: Optional[SweepJournal] = (
            SweepJournal(self._journal_root, run_id=self.run_id)
            if self._journal_root is not None
            else None
        )
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._heap: List[tuple] = []
        self._tick = itertools.count()
        self._jobs: Dict[str, _JobEntry] = {}
        self._by_key: Dict[str, _JobEntry] = {}
        self._sweeps: Dict[str, _SweepEntry] = {}
        self._threads: List[threading.Thread] = []
        self._stopping = False
        #: Service-lifetime work accounting (see :meth:`stats`).
        self._counters = {
            "submitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "compiled": 0,
            "retried": 0,
            "cancelled": 0,
        }
        if start:
            self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._threads or self._stopping:
                return
            for i in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, cancel everything still queued, wait
        for running jobs to land, close the journal."""
        with self._lock:
            self._stopping = True
            for entry in self._jobs.values():
                if entry.status == QUEUED:
                    self._finish(entry, CANCELLED, record=None)
            self._wakeup.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        spec: MacroSpec,
        options: Optional[CompileOptions] = None,
        priority: int = 0,
    ) -> Dict[str, object]:
        """Accept one spec; returns the job snapshot (possibly already
        terminal on a store hit, possibly an existing in-flight job on
        a hash collision — that is the dedup working)."""
        opts = options if options is not None else self.options
        job = opts.compile_job(spec)
        key = job.key()
        with self._lock:
            if self._stopping:
                raise ServiceError("service is shutting down")
            self._counters["submitted"] += 1
            existing = self._by_key.get(key)
            if existing is not None and existing.status in (QUEUED, RUNNING):
                existing.coalesced += 1
                self._counters["coalesced"] += 1
                if priority < existing.priority and existing.status == QUEUED:
                    # A more urgent duplicate promotes the shared job.
                    existing.priority = priority
                    heapq.heappush(
                        self._heap,
                        (priority, next(self._tick), existing.id),
                    )
                return existing.snapshot()
            cached = self.store.get(key)
            if cached is not None:
                entry = _JobEntry(
                    id=_new_id("job"),
                    key=key,
                    job=job,
                    options=opts,
                    priority=priority,
                    status=str(cached.get("status", "ok")),
                    record=dict(cached, cached=True, job_key=key),
                    cached=True,
                )
                entry.started = entry.finished = entry.submitted
                entry.started_mono = entry.finished_mono = (
                    entry.submitted_mono
                )
                entry.done.set()
                self._jobs[entry.id] = entry
                self._by_key[key] = entry
                self._counters["cache_hits"] += 1
                return entry.snapshot()
            entry = _JobEntry(
                id=_new_id("job"),
                key=key,
                job=job,
                options=opts,
                priority=priority,
            )
            self._jobs[entry.id] = entry
            self._by_key[key] = entry
            heapq.heappush(
                self._heap, (priority, next(self._tick), entry.id)
            )
            if self._journal is not None:
                self._journal.submit([key])
            self._wakeup.notify()
            return entry.snapshot()

    def submit_sweep(
        self,
        axes: Mapping[str, Sequence[str]],
        options: Optional[CompileOptions] = None,
        ppa: str = "balanced",
        priority: int = 0,
    ) -> Dict[str, object]:
        """Expand the CLI's range grammar server-side and submit every
        grid point; returns the sweep snapshot (id + per-point job ids
        and content hashes).  Duplicate points — within the sweep or
        against other clients' in-flight work — coalesce exactly like
        :meth:`submit` singles."""
        from ..batch.sweep import expand_grid, parse_axis, parse_format_sets

        def axis(name: str, default: List[str]) -> List[str]:
            value = axes.get(name, default)
            if isinstance(value, str):
                value = [value]
            return [str(v) for v in value]

        known = {"height", "width", "mcr", "formats", "frequency", "vdd"}
        unknown = sorted(set(axes) - known)
        if unknown:
            raise SpecificationError(
                f"unknown sweep axis(es) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        try:
            weights = PPA_PRESETS[ppa]
        except KeyError:
            raise SpecificationError(
                f"unknown ppa preset {ppa!r}; "
                f"known: {', '.join(sorted(PPA_PRESETS))}"
            ) from None
        specs = expand_grid(
            heights=parse_axis(axis("height", ["64"])),
            widths=parse_axis(axis("width", ["64"])),
            mcrs=parse_axis(axis("mcr", ["2"])),
            format_sets=parse_format_sets(axis("formats", ["INT4,INT8"])),
            frequencies=parse_axis(axis("frequency", ["800"]), integer=False),
            vdds=parse_axis(axis("vdd", ["0.9"]), integer=False),
            ppa=weights,
        )
        snapshots = [
            self.submit(spec, options=options, priority=priority)
            for spec in specs
        ]
        with self._lock:
            job_ids = [str(s["id"]) for s in snapshots]
            sweep = _SweepEntry(
                id=_new_id("sweep"),
                job_ids=job_ids,
                keys=[str(s["key"]) for s in snapshots],
                # Membership is judged against *current* statuses under
                # the lock — a point that landed between its submit and
                # this registration must not pin the sweep open forever.
                pending={
                    job_id
                    for job_id in job_ids
                    if self._jobs[job_id].status not in TERMINAL_STATUSES
                },
            )
            self._sweeps[sweep.id] = sweep
            if not sweep.pending:
                self._complete_sweep(sweep)
            return self._sweep_snapshot(sweep)

    # -- inspection ---------------------------------------------------------

    def job(self, job_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            entry = self._jobs.get(job_id)
            return None if entry is None else entry.snapshot()

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Block until the job is terminal; raises
        :class:`~repro.errors.ServiceError` on timeout/unknown id."""
        with self._lock:
            entry = self._jobs.get(job_id)
        if entry is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        if not entry.done.wait(timeout):
            raise ServiceError(
                f"job {job_id} not terminal after {timeout:g}s"
            )
        with self._lock:
            return entry.snapshot()

    def result(self, key: str) -> Optional[Dict[str, object]]:
        """Store lookup by content hash — never compiles."""
        return self.store.get(key)

    def sweep(self, sweep_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
            return None if sweep is None else self._sweep_snapshot(sweep)

    def stats(self) -> Dict[str, object]:
        """Queue depths, lifetime work counters and store occupancy —
        the body of ``GET /v1/stats``."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for entry in self._jobs.values():
                by_status[entry.status] = by_status.get(entry.status, 0) + 1
            counters = dict(self._counters)
            sweeps = {
                "total": len(self._sweeps),
                "done": sum(
                    1 for s in self._sweeps.values() if s.finished is not None
                ),
            }
        return {
            "run_id": self.run_id,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "workers": self.workers,
            "jobs": by_status,
            "sweeps": sweeps,
            **counters,
            "store": self.store.occupancy(),
        }

    # -- cancellation -------------------------------------------------------

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel a *queued* job.  Running jobs are not interrupted
        (their worker owns them until a terminal record lands) and
        terminal jobs are already history; both report
        ``cancelled=False`` with the current status."""
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            if entry.status != QUEUED:
                return {"cancelled": False, **entry.snapshot()}
            self._finish(entry, CANCELLED, record=None)
            self._counters["cancelled"] += 1
            return {"cancelled": True, **entry.snapshot()}

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                entry = self._pop_locked()
                if entry is None:
                    if self._stopping:
                        return
                    self._wakeup.wait(timeout=0.5)
                    continue
                entry.status = RUNNING
                entry.mark_started()
            record = self._execute(entry)
            with self._lock:
                if entry.status == RUNNING:
                    self._finish(
                        entry, str(record.get("status", "error")), record
                    )

    def _pop_locked(self) -> Optional[_JobEntry]:
        while self._heap:
            _priority, _tick, job_id = heapq.heappop(self._heap)
            entry = self._jobs.get(job_id)
            # Skip cancelled entries and stale heap duplicates left by
            # priority promotion.
            if entry is not None and entry.status == QUEUED:
                return entry
        return None

    def _execute(self, entry: _JobEntry) -> Dict[str, object]:
        """One job through a fresh single-run engine sharing the
        service store.  The engine never raises for job failures (they
        are records); anything else is a service bug mapped onto an
        ``error`` record so the worker thread survives."""
        try:
            engine = BatchCompiler(
                jobs=self.engine_jobs,
                store=self.store,
                options=entry.options,
                journal=False,
            )
            result = engine.run_jobs([entry.job])
            with self._lock:
                self._counters["compiled"] += result.stats.compiled
                self._counters["retried"] += result.stats.retried
            return result.records[0]
        except Exception as exc:  # pragma: no cover - defensive
            from ..compiler.syndcim import _failure_record

            return dict(
                _failure_record(
                    entry.job.spec,
                    "error",
                    f"service execution failed: "
                    f"{type(exc).__name__}: {exc}",
                ),
                elapsed_s=0.0,
            )

    def _finish(
        self,
        entry: _JobEntry,
        status: str,
        record: Optional[Dict[str, object]],
    ) -> None:
        """Caller holds the lock.  Lands a terminal status, journals
        it, wakes waiters and settles any sweeps the job belonged to."""
        entry.status = status
        entry.mark_finished()
        if record is not None:
            entry.record = dict(record, job_key=entry.key)
            if self._journal is not None:
                self._journal.done(entry.key, record)
        entry.done.set()
        for sweep in self._sweeps.values():
            if entry.id in sweep.pending:
                sweep.pending.discard(entry.id)
                if not sweep.pending:
                    self._complete_sweep(sweep)

    def _complete_sweep(self, sweep: _SweepEntry) -> None:
        """Caller holds the lock: stamp completion and prune old
        journals (keeping this service's own journal alive)."""
        sweep.finished = time.time()
        sweep.finished_mono = time.monotonic()
        if self._journal_root is not None and self.journal_keep:
            prune_journals(
                self._journal_root,
                keep=self.journal_keep,
                exclude=(self.run_id,),
            )

    def _sweep_snapshot(self, sweep: _SweepEntry) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for job_id in sweep.job_ids:
            entry = self._jobs.get(job_id)
            status = entry.status if entry is not None else "unknown"
            counts[status] = counts.get(status, 0) + 1
        return {
            "id": sweep.id,
            "points": len(sweep.job_ids),
            "jobs": list(sweep.job_ids),
            "keys": list(sweep.keys),
            "counts": counts,
            "done": sweep.finished is not None,
            "submitted": sweep.submitted,
            "finished": sweep.finished,
            "elapsed_s": round(
                (
                    sweep.finished_mono
                    if sweep.finished_mono is not None
                    else time.monotonic()
                )
                - sweep.submitted_mono,
                6,
            ),
        }
