"""Bit-exact INT and FP encode/decode helpers.

These routines define the numeric contract between the behavioural
macro model, the gate-level netlists and the test suite: two's
complement integers travel LSB-first, and floating-point operands are
packed ``[mantissa | exponent | sign]`` LSB-first, matching the port
conventions of :mod:`repro.rtl.gen.alignment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import SimulationError
from ..spec import DataFormat


def int_range(bits: int) -> Tuple[int, int]:
    """Inclusive (min, max) of a two's-complement integer."""
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def encode_int(value: int, bits: int) -> List[int]:
    """Two's-complement bits, LSB first."""
    lo, hi = int_range(bits)
    if not lo <= value <= hi:
        raise SimulationError(f"{value} out of range for INT{bits}")
    u = value & ((1 << bits) - 1)
    return [(u >> i) & 1 for i in range(bits)]


def decode_int(bits: Sequence[int]) -> int:
    """Two's-complement value of LSB-first bits."""
    u = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise SimulationError(f"non-binary bit {bit!r}")
        u |= bit << i
    if bits and bits[-1]:
        u -= 1 << len(bits)
    return u


def wrap_to_width(value: int, bits: int) -> int:
    """Interpret ``value mod 2^bits`` as a signed number (register wrap)."""
    u = value & ((1 << bits) - 1)
    if u >= 1 << (bits - 1):
        u -= 1 << bits
    return u


@dataclass(frozen=True)
class FPFields:
    """Unpacked fields of one FP operand."""

    sign: int
    exponent: int
    mantissa: int
    fmt: DataFormat

    def __post_init__(self) -> None:
        if self.sign not in (0, 1):
            raise SimulationError("sign must be 0 or 1")
        if not 0 <= self.exponent < (1 << self.fmt.exponent):
            raise SimulationError("exponent out of range")
        if not 0 <= self.mantissa < (1 << self.fmt.mantissa):
            raise SimulationError("mantissa out of range")

    @property
    def is_subnormal(self) -> bool:
        return self.exponent == 0

    def to_float(self) -> float:
        bias = self.fmt.bias
        m_scale = 1 << self.fmt.mantissa
        if self.is_subnormal:
            mag = (self.mantissa / m_scale) * 2.0 ** (1 - bias)
        else:
            mag = (1.0 + self.mantissa / m_scale) * 2.0 ** (self.exponent - bias)
        return -mag if self.sign else mag

    def signed_significand(self) -> int:
        """``(-1)^s * (hidden.mantissa)`` as an integer — the value the
        alignment unit extracts before shifting."""
        hidden = 0 if self.is_subnormal else 1
        mag = (hidden << self.fmt.mantissa) | self.mantissa
        return -mag if self.sign else mag

    def pack_bits(self) -> List[int]:
        """LSB-first: mantissa, exponent, sign."""
        bits = [(self.mantissa >> i) & 1 for i in range(self.fmt.mantissa)]
        bits += [(self.exponent >> i) & 1 for i in range(self.fmt.exponent)]
        bits.append(self.sign)
        return bits


def unpack_fp(bits: Sequence[int], fmt: DataFormat) -> FPFields:
    if len(bits) != fmt.bits:
        raise SimulationError(f"expected {fmt.bits} bits, got {len(bits)}")
    m = decode_unsigned(bits[: fmt.mantissa])
    e = decode_unsigned(bits[fmt.mantissa : fmt.mantissa + fmt.exponent])
    s = bits[fmt.mantissa + fmt.exponent]
    return FPFields(sign=s, exponent=e, mantissa=m, fmt=fmt)


def decode_unsigned(bits: Sequence[int]) -> int:
    u = 0
    for i, bit in enumerate(bits):
        u |= (bit & 1) << i
    return u


def quantize_to_fp(value: float, fmt: DataFormat) -> FPFields:
    """Round a real number to the nearest representable value (ties to
    away, saturating at the format maximum, no infinities/NaNs)."""
    if not fmt.is_float:
        raise SimulationError(f"{fmt.name} is not floating point")
    sign = 1 if value < 0 else 0
    mag = abs(value)
    bias = fmt.bias
    m_scale = 1 << fmt.mantissa
    max_exp = (1 << fmt.exponent) - 1
    if mag == 0.0:
        return FPFields(sign=0, exponent=0, mantissa=0, fmt=fmt)
    # Find exponent such that 1.0 <= mag / 2^(e-bias) < 2.0.
    import math

    e = int(math.floor(math.log2(mag))) + bias
    if e <= 0:
        # Subnormal range.
        m = int(round(mag / 2.0 ** (1 - bias) * m_scale))
        if m >= m_scale:
            return FPFields(sign=sign, exponent=1, mantissa=0, fmt=fmt)
        return FPFields(sign=sign, exponent=0, mantissa=m, fmt=fmt)
    e = min(e, max_exp)
    frac = mag / 2.0 ** (e - bias)
    m = int(round((frac - 1.0) * m_scale))
    if m >= m_scale:
        e += 1
        m = 0
    if e > max_exp:
        e = max_exp
        m = m_scale - 1
    return FPFields(sign=sign, exponent=e, mantissa=m, fmt=fmt)


def align_group(
    operands: Sequence[FPFields],
) -> Tuple[List[int], int]:
    """Behavioural twin of the alignment-unit netlist.

    Returns the aligned signed significands (arithmetic right shift by
    the exponent deficit, truncating toward minus infinity) and the
    shared maximum *effective* exponent.  Subnormals (exponent field 0)
    scale like exponent 1 without the hidden bit — IEEE semantics —
    so the shift distance uses ``max(e, 1)``.
    """
    if not operands:
        raise SimulationError("alignment group must be non-empty")
    effective = [max(op.exponent, 1) for op in operands]
    emax = max(effective)
    aligned = [
        op.signed_significand() >> (emax - eff)
        for op, eff in zip(operands, effective)
    ]
    return aligned, emax


def group_scale(fmt: DataFormat, emax: int) -> float:
    """Real-value weight of one aligned-significand unit."""
    eff = emax if emax > 0 else 1  # subnormal group
    return 2.0 ** (eff - fmt.bias - fmt.mantissa)
