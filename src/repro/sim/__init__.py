"""Simulation: number formats, behavioural macro model, gate-level
simulation (scalar reference and vectorized batch engine), and the
voltage/frequency shmoo engine.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .formats import (
    FPFields,
    align_group,
    decode_int,
    decode_unsigned,
    encode_int,
    group_scale,
    int_range,
    quantize_to_fp,
    unpack_fp,
    wrap_to_width,
)
from .functional import DCIMMacroModel, MacCycleTrace
from .gatesim import GateSimulator
from .vecsim import VecSim, pack_lanes, unpack_lanes
from .shmoo import (
    DEFAULT_SIGMA,
    MeasuredEfficiency,
    ShmooResult,
    measure_efficiency,
    run_shmoo,
)

__all__ = [
    "FPFields",
    "align_group",
    "decode_int",
    "decode_unsigned",
    "encode_int",
    "group_scale",
    "int_range",
    "quantize_to_fp",
    "unpack_fp",
    "wrap_to_width",
    "DCIMMacroModel",
    "MacCycleTrace",
    "GateSimulator",
    "VecSim",
    "pack_lanes",
    "unpack_lanes",
    "DEFAULT_SIGMA",
    "MeasuredEfficiency",
    "ShmooResult",
    "measure_efficiency",
    "run_shmoo",
]
