"""Bit-accurate behavioural model of the DCIM macro.

The golden reference the gate-level netlists are verified against.  Two
evaluation paths are provided and must agree (the test suite checks):

* :meth:`DCIMMacroModel.mac_ideal` — the mathematical dot product
  ``y_g = sum_h x_h * W_{h,g}``;
* :meth:`DCIMMacroModel.mac_cycles` — the cycle-accurate datapath walk:
  MSB-first serial input bits, per-column popcount through the adder
  tree, shift-and-add accumulation with sign-cycle subtraction, then
  stage-by-stage output fusion with a final-stage subtract for the
  weight sign — mirroring the generated netlist register for register.

FP operands go through the behavioural alignment twin
(:func:`repro.sim.formats.align_group`) exactly as the RTL does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..arch import MacroArchitecture
from ..errors import SimulationError
from ..spec import DataFormat, MacroSpec
from .formats import (
    FPFields,
    align_group,
    encode_int,
    group_scale,
    int_range,
    quantize_to_fp,
    wrap_to_width,
)


@dataclass
class MacCycleTrace:
    """Intermediate values of one cycle-accurate MAC (for debugging and
    for cross-checking the gate-level simulator)."""

    tree_counts: List[List[int]] = field(default_factory=list)  # [cycle][col]
    accumulators: List[List[int]] = field(default_factory=list)
    fused: List[int] = field(default_factory=list)


class DCIMMacroModel:
    """Behavioural macro with MCR weight banks.

    Weights are stored as raw column bits; helpers pack signed integers
    or FP significands the same way the BL-driver write path would.
    """

    def __init__(self, spec: MacroSpec, arch: Optional[MacroArchitecture] = None):
        self.spec = spec
        self.arch = arch or MacroArchitecture()
        self.arch.validate_against(spec)
        # bits[bank][row][col]
        self._bits = np.zeros(
            (spec.mcr, spec.height, spec.width), dtype=np.uint8
        )
        self._weight_scales: Dict[Tuple[int, int], float] = {}

    # -- weight handling ---------------------------------------------------

    @property
    def n_groups(self) -> int:
        return self.spec.width // self.spec.max_weight_bits

    @property
    def group_width(self) -> int:
        return self.spec.max_weight_bits

    def set_weight_bits(self, bank: int, bits: np.ndarray) -> None:
        """Raw bit write: array of shape (height, width) of 0/1."""
        self._check_bank(bank)
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (self.spec.height, self.spec.width):
            raise SimulationError(
                f"expected {(self.spec.height, self.spec.width)}, got {arr.shape}"
            )
        if not np.isin(arr, (0, 1)).all():
            raise SimulationError("weight bits must be 0/1")
        self._bits[bank] = arr

    def weight_bits(self, bank: int) -> np.ndarray:
        self._check_bank(bank)
        return self._bits[bank].copy()

    def set_weights_int(
        self, bank: int, weights: np.ndarray, fmt: DataFormat
    ) -> None:
        """Pack signed integer weights: ``weights[h][g]`` into group
        columns, sign-extended to the group width."""
        self._check_bank(bank)
        if fmt.is_float:
            raise SimulationError("use set_weights_fp for float formats")
        w = np.asarray(weights, dtype=np.int64)
        if w.shape != (self.spec.height, self.n_groups):
            raise SimulationError(
                f"expected {(self.spec.height, self.n_groups)}, got {w.shape}"
            )
        lo, hi = int_range(fmt.bits)
        if w.min() < lo or w.max() > hi:
            raise SimulationError(f"weights exceed {fmt.name} range")
        gw = self.group_width
        for h in range(self.spec.height):
            for g in range(self.n_groups):
                bits = encode_int(int(w[h, g]), gw)
                for j, bit in enumerate(bits):
                    self._bits[bank, h, g * gw + j] = bit
        for g in range(self.n_groups):
            self._weight_scales[(bank, g)] = 1.0

    def set_weights_fp(
        self, bank: int, weights: Sequence[Sequence[float]], fmt: DataFormat
    ) -> None:
        """Quantize FP weights and store group-aligned significands.

        All weights of one column group share the group's maximum
        exponent (write-time alignment); the per-group scale is kept so
        :meth:`mac_fp` can reconstruct real values.
        """
        self._check_bank(bank)
        if not fmt.is_float:
            raise SimulationError("use set_weights_int for integer formats")
        rows = len(weights)
        if rows != self.spec.height or any(
            len(r) != self.n_groups for r in weights
        ):
            raise SimulationError("weight matrix shape mismatch")
        gw = self.group_width
        for g in range(self.n_groups):
            fields = [
                quantize_to_fp(float(weights[h][g]), fmt)
                for h in range(self.spec.height)
            ]
            aligned, emax = align_group(fields)
            for h, val in enumerate(aligned):
                bits = encode_int(wrap_to_width(val, gw), gw)
                for j, bit in enumerate(bits):
                    self._bits[bank, h, g * gw + j] = bit
            self._weight_scales[(bank, g)] = group_scale(fmt, emax)

    def group_weights(self, bank: int) -> np.ndarray:
        """Decode stored bits back to signed integers ``[h][g]``."""
        self._check_bank(bank)
        gw = self.group_width
        out = np.zeros((self.spec.height, self.n_groups), dtype=np.int64)
        for g in range(self.n_groups):
            weightv = 0
            for j in range(gw):
                col = self._bits[bank, :, g * gw + j].astype(np.int64)
                if j == gw - 1:
                    out[:, g] -= col << j
                else:
                    out[:, g] += col << j
            del weightv
        return out

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.spec.mcr:
            raise SimulationError(
                f"bank {bank} out of range (mcr={self.spec.mcr})"
            )

    # -- MAC evaluation -----------------------------------------------------

    def mac_ideal(self, x: Sequence[int], bank: int = 0) -> List[int]:
        """Exact integer dot product per group."""
        xs = np.asarray(list(x), dtype=np.int64)
        if xs.shape != (self.spec.height,):
            raise SimulationError(f"expected {self.spec.height} inputs")
        w = self.group_weights(bank)
        return [int(v) for v in xs @ w]

    def mac_cycles(
        self,
        x: Sequence[int],
        bank: int = 0,
        input_bits: Optional[int] = None,
        trace: Optional[MacCycleTrace] = None,
    ) -> List[int]:
        """Cycle-accurate serial MAC; must equal :meth:`mac_ideal`."""
        self._check_bank(bank)
        k = input_bits or self.spec.input_width
        lo, hi = int_range(k)
        xs = list(x)
        if len(xs) != self.spec.height:
            raise SimulationError(f"expected {self.spec.height} inputs")
        for v in xs:
            if not lo <= v <= hi:
                raise SimulationError(f"input {v} exceeds INT{k}")
        bit_rows = [encode_int(v, k) for v in xs]
        acc_w = self.spec.accumulator_width
        accs = [0] * self.spec.width
        bits = self._bits[bank]
        for t in range(k):
            serial_idx = k - 1 - t  # MSB first
            neg = t == 0
            clear = t == 0
            xbit = np.array(
                [row[serial_idx] for row in bit_rows], dtype=np.int64
            )
            counts = (xbit[:, None] * bits).sum(axis=0)
            if trace is not None:
                trace.tree_counts.append([int(c) for c in counts])
            for c in range(self.spec.width):
                base = 0 if clear else accs[c] << 1
                delta = -int(counts[c]) if neg else int(counts[c])
                accs[c] = wrap_to_width(base + delta, acc_w)
            if trace is not None:
                trace.accumulators.append(list(accs))
        fused = self._fuse(accs)
        if trace is not None:
            trace.fused = list(fused)
        return fused

    def _fuse(self, accs: Sequence[int]) -> List[int]:
        """OFU behavioural twin: pairwise stages; each stage's ``sub``
        control reaches only the top pair, and only stage 1 subtracts —
        the MSB column is consumed as a ``hi`` operand exactly there."""
        gw = self.group_width
        stages = gw.bit_length() - 1
        subs = self.sub_controls()
        results: List[int] = []
        for g in range(self.n_groups):
            words = [accs[g * gw + j] for j in range(gw)]
            for s in range(1, stages + 1):
                shift = 1 << (s - 1)
                nxt = []
                for i in range(0, len(words), 2):
                    lo_w, hi_w = words[i], words[i + 1]
                    sub = bool(subs[s - 1]) and i == len(words) - 2
                    hi_term = -hi_w if sub else hi_w
                    nxt.append(lo_w + (hi_term << shift))
                words = nxt
            results.append(words[0])
        return results

    # -- FP convenience -----------------------------------------------------

    def mac_fp(
        self,
        x: Sequence[float],
        fmt_in: DataFormat,
        bank: int = 0,
    ) -> List[float]:
        """Quantize FP inputs, align, run the integer MAC, rescale.

        Weights must have been loaded with :meth:`set_weights_fp` (their
        group scales are applied), or with :meth:`set_weights_int`
        (scale 1).
        """
        fields = [quantize_to_fp(float(v), fmt_in) for v in x]
        aligned, emax = align_group(fields)
        scale_in = group_scale(fmt_in, emax)
        ints = self.mac_ideal(aligned, bank)
        out: List[float] = []
        for g, v in enumerate(ints):
            w_scale = self._weight_scales.get((bank, g), 1.0)
            out.append(v * scale_in * w_scale)
        return out

    def write_row(self, bank: int, row: int, bits: Sequence[int]) -> None:
        """Weight-update write of one physical row (BL-driver path)."""
        self._check_bank(bank)
        if not 0 <= row < self.spec.height:
            raise SimulationError(f"row {row} out of range")
        if len(bits) != self.spec.width:
            raise SimulationError("row write must cover all columns")
        for c, bit in enumerate(bits):
            if bit not in (0, 1):
                raise SimulationError("weight bits must be 0/1")
            self._bits[bank, row, c] = bit

    def mac_with_updates(
        self,
        x: Sequence[int],
        bank: int,
        updates: Mapping[int, Tuple[int, int, Sequence[int]]],
    ) -> List[int]:
        """Cycle-accurate MAC with *simultaneous weight updates*.

        ``updates`` maps serial-cycle index -> ``(bank, row, bits)``
        writes performed during that cycle.  This is the MCR use case
        the paper motivates: MAC runs from the active bank while the BL
        drivers refill another.  Writes to the *active* bank take effect
        from their cycle onward (mid-word corruption, faithfully
        modelled); writes to other banks never disturb the result.
        """
        self._check_bank(bank)
        k = self.spec.input_width
        xs = list(x)
        bit_rows = [encode_int(int(v), k) for v in xs]
        acc_w = self.spec.accumulator_width
        accs = [0] * self.spec.width
        for t in range(k):
            if t in updates:
                w_bank, w_row, w_bits = updates[t]
                self.write_row(w_bank, w_row, w_bits)
            serial_idx = k - 1 - t
            neg = t == 0
            clear = t == 0
            xbit = np.array(
                [row[serial_idx] for row in bit_rows], dtype=np.int64
            )
            counts = (xbit[:, None] * self._bits[bank]).sum(axis=0)
            for c in range(self.spec.width):
                base = 0 if clear else accs[c] << 1
                delta = -int(counts[c]) if neg else int(counts[c])
                accs[c] = wrap_to_width(base + delta, acc_w)
        return self._fuse(accs)

    def sub_controls(self) -> List[int]:
        """OFU ``sub`` pattern for full-width two's-complement weights:
        the MSB column meets its partner in stage 1's top pair, so only
        stage 1 subtracts."""
        stages = self.group_width.bit_length() - 1
        return [1 if s == 1 else 0 for s in range(1, stages + 1)]
