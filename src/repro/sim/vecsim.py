"""Vectorized batch gate-level simulator.

:class:`VecSim` evaluates **B stimulus vectors simultaneously** over one
flat netlist, packing the batch as bit-parallel uint64 words (lane *b*
of a net lives in bit ``b % 64`` of word ``b // 64``).  Every cell's
logic function is expressed as a handful of bitwise numpy operations
over whole instance groups, so one evaluation pass costs a few hundred
vectorized kernel calls instead of one Python dict-walk per cell per
vector — the same NetView-index treatment the STA/activity/power
kernels received, applied to simulation.

Semantics mirror :class:`repro.sim.gatesim.GateSimulator` (the pinned
scalar reference) bit for bit:

* combinational cells are levelized once (cycle ⇒ :class:`SimulationError`);
* sequential cells get master-slave semantics on :meth:`clock` (all D
  sampled, then all Q updated); a sequential cell without a ``Q``
  connection raises loudly;
* memory-cell read nets are resolved roots, driven by the testbench;
* nets can be *forced* (per-lane values override any driver).

The compile step groups instances by (topological level, cell type) and
stacks their pin tables into integer gather/scatter matrices.  Cells
whose scalar logic function is one of the library's known functions get
a hand-written bitwise kernel; any other function falls back to an
automatically derived sum-of-minterms kernel over its truth table, so
custom cells simulate correctly without registration.

Evaluation is lazy: stimulus changes only mark the fabric dirty, and
propagation runs when state is sampled or observed.  This halves the
passes per clock relative to the eager scalar simulator without any
observable difference (propagation is a pure function of inputs, state
and forced nets).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..rtl.netview import net_view
from ..tech import stdcells as _std
from ..tech.stdcells import Cell, StdCellLibrary

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

BatchValue = Union[int, Sequence[int], np.ndarray]


# ---------------------------------------------------------------------------
# Bitwise kernels.
#
# A kernel takes the gathered input tensor ``inp`` of shape
# (instances, pins, words) — pins in the cell's ``input_caps_ff`` order
# — and returns one (instances, words) uint64 array per output pin, in
# the cell's ``outputs`` order.
# ---------------------------------------------------------------------------


def _k_inv(i):
    return (~i[:, 0],)


def _k_buf(i):
    return (i[:, 0],)


def _k_nand2(i):
    return (~(i[:, 0] & i[:, 1]),)


def _k_nor2(i):
    return (~(i[:, 0] | i[:, 1]),)


def _k_and2(i):
    return (i[:, 0] & i[:, 1],)


def _k_or2(i):
    return (i[:, 0] | i[:, 1],)


def _k_xor2(i):
    return (i[:, 0] ^ i[:, 1],)


def _k_xnor2(i):
    return (~(i[:, 0] ^ i[:, 1]),)


def _k_aoi22(i):
    return (~((i[:, 0] & i[:, 1]) | (i[:, 2] & i[:, 3])),)


def _k_oai22(i):
    return (~((i[:, 0] | i[:, 1]) & (i[:, 2] | i[:, 3])),)


def _k_mux2(i):
    d0, d1, s = i[:, 0], i[:, 1], i[:, 2]
    return ((s & d1) | (~s & d0),)


def _k_ha(i):
    a, b = i[:, 0], i[:, 1]
    return (a ^ b, a & b)


def _k_fa(i):
    a, b, ci = i[:, 0], i[:, 1], i[:, 2]
    axb = a ^ b
    return (axb ^ ci, (a & b) | (ci & axb))


def _k_cmp42(i):
    a, b, c, d, ci = i[:, 0], i[:, 1], i[:, 2], i[:, 3], i[:, 4]
    s3 = a ^ b ^ c
    co = (a & b) | (b & c) | (a & c)
    s3xd = s3 ^ d
    s = s3xd ^ ci
    cy = (s3 & d) | (ci & s3xd)
    return (s, cy, co)


def _k_tie0(i):
    return (np.zeros((i.shape[0], i.shape[2]), dtype=np.uint64),)


def _k_tie1(i):
    return (np.full((i.shape[0], i.shape[2]), _ONES, dtype=np.uint64),)


#: Known scalar logic functions → (expected input-pin order, expected
#: output order, kernel).  The pin orders guard against a custom cell
#: reusing a library function with reordered pins — any mismatch falls
#: back to the derived truth-table kernel.
_SPECIALIZED = {
    _std._inv: (("A",), ("Y",), _k_inv),
    _std._buf: (("A",), ("Y",), _k_buf),
    _std._nand2: (("A", "B"), ("Y",), _k_nand2),
    _std._nor2: (("A", "B"), ("Y",), _k_nor2),
    _std._and2: (("A", "B"), ("Y",), _k_and2),
    _std._or2: (("A", "B"), ("Y",), _k_or2),
    _std._xor2: (("A", "B"), ("Y",), _k_xor2),
    _std._xnor2: (("A", "B"), ("Y",), _k_xnor2),
    _std._aoi22: (("A", "B", "C", "D"), ("Y",), _k_aoi22),
    _std._oai22: (("A", "B", "C", "D"), ("Y",), _k_oai22),
    _std._mux2: (("D0", "D1", "S"), ("Y",), _k_mux2),
    _std._ha: (("A", "B"), ("S", "CO"), _k_ha),
    _std._fa: (("A", "B", "CI"), ("S", "CO"), _k_fa),
    _std._cmp42: (("A", "B", "C", "D", "CI"), ("S", "CY", "CO"), _k_cmp42),
    _std._tie0: ((), ("Y",), _k_tie0),
    _std._tie1: ((), ("Y",), _k_tie1),
}


def _truth_table_kernel(cell: Cell):
    """Sum-of-minterms kernel derived from the cell's scalar function.

    Enumerates the 2^k input assignments once at compile time; the
    kernel is then pure bitwise numpy.  Handles any combinational cell
    with a logic function, at worst 2^k AND/OR terms per output.
    """
    pins = tuple(cell.input_caps_ff)
    k = len(pins)
    minterms: List[List[Tuple[int, ...]]] = [[] for _ in cell.outputs]
    for assignment in product((0, 1), repeat=k):
        outs = cell.evaluate(dict(zip(pins, assignment)))
        for oi, opin in enumerate(cell.outputs):
            if outs.get(opin, 0):
                minterms[oi].append(assignment)

    def kernel(inp):
        n, _, w = inp.shape
        results = []
        for terms in minterms:
            acc = np.zeros((n, w), dtype=np.uint64)
            for assignment in terms:
                term: Optional[np.ndarray] = None
                for pin_i, bit in enumerate(assignment):
                    col = inp[:, pin_i] if bit else ~inp[:, pin_i]
                    term = col if term is None else term & col
                if term is None:  # zero-input cell, constant-1 output
                    term = np.full((n, w), _ONES, dtype=np.uint64)
                acc |= term
            results.append(acc)
        return tuple(results)

    return kernel


def _kernel_for(cell: Cell):
    entry = _SPECIALIZED.get(cell.function)
    if entry is not None:
        pins, outs, kernel = entry
        if tuple(cell.input_caps_ff) == pins and cell.outputs == outs:
            return kernel
    if cell.function is None:
        raise SimulationError(f"{cell.name} has no logic function")
    return _truth_table_kernel(cell)


# ---------------------------------------------------------------------------
# Batch packing helpers.
# ---------------------------------------------------------------------------


def pack_lanes(bits: np.ndarray, words: int) -> np.ndarray:
    """Pack 0/1 lane values into uint64 words, lane ``b`` → bit ``b%64``
    of word ``b//64``.  ``bits`` is (..., B); returns (..., words)."""
    arr = np.ascontiguousarray(bits, dtype=np.uint8)
    packed = np.packbits(arr, axis=-1, bitorder="little")
    out = np.zeros(arr.shape[:-1] + (words * 8,), dtype=np.uint8)
    out[..., : packed.shape[-1]] = packed
    return out.view("<u8")


def unpack_lanes(words_arr: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: (..., W) words → (..., batch) bits."""
    as_bytes = np.ascontiguousarray(words_arr).astype("<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :batch]


class VecSim:
    """Simulate one flat module over a batch of stimulus vectors.

    Parameters
    ----------
    module:
        A *flat* module (hierarchical instances raise).
    library:
        Cell library supplying logic functions.
    batch:
        Number of simultaneous stimulus lanes ``B``.

    Lane-indexed arguments accept either a scalar (broadcast to every
    lane) or a length-``B`` sequence of 0/1 values.
    """

    def __init__(
        self, module, library: StdCellLibrary, batch: int = 64
    ) -> None:
        if batch < 1:
            raise SimulationError(f"batch must be positive, got {batch}")
        self.module = module
        self.library = library
        self.batch = int(batch)
        self.words = (self.batch + 63) // 64
        view = net_view(module, library)
        self._view = view
        self._nid = view.net_id
        n = view.n_nets
        #: Two scratch rows past the real nets: a constant-zero source
        #: for unconnected input pins and a write sink for unconnected
        #: output pins.
        self._zero_row = n
        self._trash_row = n + 1
        self._values = np.zeros((n + 2, self.words), dtype=np.uint64)
        self._forced: Dict[int, np.ndarray] = {}
        self._forced_ids = np.empty(0, dtype=np.int64)
        self._forced_vals = np.empty((0, self.words), dtype=np.uint64)
        self._forced_mid_ids = np.empty(0, dtype=np.int64)
        self._forced_mid_vals = np.empty((0, self.words), dtype=np.uint64)
        self._forced_stale = False
        self._dirty = True
        self._compile()

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> None:
        view = self._view
        module = self.module
        resolved: set = {self._nid[p] for p in module.input_ports}
        seq_idx: List[int] = []
        for idx, cell in enumerate(view.cells):
            if cell.is_sequential:
                q_pos = cell.outputs.index("Q") if "Q" in cell.outputs else -1
                q = view.out_ids[idx][q_pos] if q_pos >= 0 else -1
                if q < 0:
                    inst = module.instances[idx]
                    raise SimulationError(
                        f"{module.name}: sequential cell {inst.name} "
                        f"({cell.name}) has no Q connection — its state "
                        "would be invisible to the fabric"
                    )
                resolved.add(q)
                seq_idx.append(idx)
            elif cell.is_memory:
                for out in view.out_ids[idx]:
                    if out >= 0:
                        resolved.add(out)

        # Sequential pin tables: D may be absent (state holds), Q exists.
        d_ids = []
        q_ids = []
        for idx in seq_idx:
            cell = view.cells[idx]
            pins = tuple(cell.input_caps_ff)
            d_pos = pins.index("D") if "D" in pins else -1
            d_ids.append(view.in_ids[idx][d_pos] if d_pos >= 0 else -1)
            q_ids.append(view.out_ids[idx][cell.outputs.index("Q")])
        self._d_ids = np.asarray(d_ids, dtype=np.int64)
        self._q_ids = np.asarray(q_ids, dtype=np.int64)
        self._q_id_set = frozenset(int(q) for q in q_ids)
        self._state = np.zeros((len(seq_idx), self.words), dtype=np.uint64)

        # Kahn levelization over integer net ids, mirroring the scalar
        # simulator's pass (including its per-pin indegree accounting).
        cells = view.cells
        in_ids = view.in_ids
        out_ids = view.out_ids
        indegree: Dict[int, int] = {}
        consumers: Dict[int, List[int]] = {}
        schedule_members: List[int] = []
        expected = 0
        for idx, cell in enumerate(cells):
            if cell.is_sequential or cell.is_memory:
                continue
            expected += 1
            missing = 0
            for net in in_ids[idx]:
                if net >= 0 and net not in resolved:
                    missing += 1
                    consumers.setdefault(net, []).append(idx)
            indegree[idx] = missing
        from collections import deque

        queue = deque(idx for idx, deg in indegree.items() if deg == 0)
        net_level: Dict[int, int] = {net: 0 for net in resolved}
        inst_level: Dict[int, int] = {}
        seen_nets = set(resolved)
        while queue:
            idx = queue.popleft()
            schedule_members.append(idx)
            level = 0
            for net in in_ids[idx]:
                if net >= 0:
                    level = max(level, net_level.get(net, 0))
            inst_level[idx] = level
            for net in out_ids[idx]:
                if net < 0 or net in seen_nets:
                    continue
                seen_nets.add(net)
                net_level[net] = level + 1
                for consumer in consumers.get(net, ()):
                    indegree[consumer] -= 1
                    if indegree[consumer] == 0:
                        queue.append(consumer)
        if len(schedule_members) != expected:
            raise SimulationError(
                f"levelization failed: {len(schedule_members)} of "
                f"{expected} combinational cells ordered (cycle?)"
            )

        # Group by (level, cell ref) and stack the pin tables.
        grouping: Dict[Tuple[int, str], List[int]] = {}
        for idx in schedule_members:
            grouping.setdefault(
                (inst_level[idx], cells[idx].name), []
            ).append(idx)
        kernels: Dict[str, object] = {}
        max_level = max((lv for lv, _ in grouping), default=-1)
        levels: List[List[tuple]] = [[] for _ in range(max_level + 1)]
        for (level, ref), idxs in sorted(grouping.items()):
            cell = cells[idxs[0]]
            kernel = kernels.get(ref)
            if kernel is None:
                kernel = kernels[ref] = _kernel_for(cell)
            gather = np.asarray(
                [in_ids[i] for i in idxs], dtype=np.int64
            ).reshape(len(idxs), len(cell.input_caps_ff))
            gather[gather < 0] = self._zero_row
            scatter = np.asarray(
                [out_ids[i] for i in idxs], dtype=np.int64
            ).reshape(len(idxs), len(cell.outputs))
            scatter[scatter < 0] = self._trash_row
            levels[level].append((kernel, gather, scatter))
        self._levels = levels
        #: Nets whose value is testbench-owned (never written by the
        #: fabric): input ports and memory read nets.  The boolean mask
        #: lets the bulk drive path validate whole id arrays at once.
        self._free_nets = frozenset(resolved) - self._q_id_set
        self._free_mask = np.zeros(self._values.shape[0], dtype=bool)
        self._free_mask[list(self._free_nets)] = True

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    # -- stimulus ------------------------------------------------------------

    def _pack(self, value: BatchValue) -> np.ndarray:
        if isinstance(value, (int, np.integer, bool)):
            word = _ONES if value else np.uint64(0)
            return np.full(self.words, word, dtype=np.uint64)
        bits = np.asarray(value)
        if bits.shape != (self.batch,):
            raise SimulationError(
                f"expected a scalar or {self.batch} lane values, "
                f"got shape {bits.shape}"
            )
        return pack_lanes(bits != 0, self.words)

    def net_id(self, net: str) -> int:
        try:
            return self._nid[net]
        except KeyError:
            raise SimulationError(f"unknown net {net}") from None

    def set_input(self, net: str, value: BatchValue) -> None:
        """Drive a port with a scalar (broadcast) or per-lane values."""
        if net not in self.module.ports:
            raise SimulationError(f"{net} is not a port")
        self._values[self._nid[net]] = self._pack(value)
        self._dirty = True

    def set_bus(self, base: str, value_bits: Sequence[BatchValue]) -> None:
        for i, bit in enumerate(value_bits):
            self.set_input(f"{base}[{i}]", bit)

    def set_bus_int(
        self, base: str, values: BatchValue, width: int
    ) -> None:
        """Drive ``base[0..width-1]`` with per-lane two's-complement
        integers (scalar broadcast accepted)."""
        vals = np.asarray(values, dtype=np.int64)
        if vals.ndim == 0:
            vals = np.full(self.batch, int(vals), dtype=np.int64)
        if vals.shape != (self.batch,):
            raise SimulationError(
                f"expected a scalar or {self.batch} values, got "
                f"shape {vals.shape}"
            )
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if vals.min() < lo or vals.max() > hi:
            raise SimulationError(f"values exceed INT{width} range")
        bits = (vals[None, :] >> np.arange(width)[:, None]) & 1
        ids = np.asarray(
            [self.net_id(f"{base}[{i}]") for i in range(width)],
            dtype=np.int64,
        )
        for i in range(width):
            if f"{base}[{i}]" not in self.module.ports:
                raise SimulationError(f"{base}[{i}] is not a port")
        self._values[ids] = pack_lanes(bits.astype(np.uint8), self.words)
        self._dirty = True

    def drive_nets(
        self, net_ids: np.ndarray, bits: np.ndarray
    ) -> None:
        """Bulk-drive *free* nets (ports or memory read nets) by id.

        ``bits`` is (len(net_ids),) scalar-per-net (broadcast across
        lanes) or (len(net_ids), batch) per-lane.  This is the hot path
        for loading thousands of weight nets per verification round.
        """
        ids = np.asarray(net_ids, dtype=np.int64)
        if not self._free_mask[ids].all():
            bad = int(ids[~self._free_mask[ids]][0])
            raise SimulationError(
                f"net {self._view.net_names[bad]} is fabric-driven; "
                "use force() to override a driver"
            )
        bits = np.asarray(bits)
        if bits.shape == (len(ids),):
            words = np.where(
                bits.astype(bool)[:, None], _ONES, np.uint64(0)
            ).astype(np.uint64)
        elif bits.shape == (len(ids), self.batch):
            words = pack_lanes(bits != 0, self.words)
        else:
            raise SimulationError(
                f"bits shape {bits.shape} matches neither (n,) nor "
                f"(n, {self.batch})"
            )
        self._values[ids] = words
        self._dirty = True

    def force(self, net: str, value: BatchValue) -> None:
        """Pin a net to per-lane values (overrides any driver)."""
        self._forced[self.net_id(net)] = self._pack(value)
        self._forced_stale = True
        self._dirty = True

    def release(self, net: str) -> None:
        if self._forced.pop(self.net_id(net), None) is not None:
            self._forced_stale = True
            self._dirty = True

    def reset_state(self, value: int = 0) -> None:
        self._state[:] = _ONES if value else np.uint64(0)
        self._dirty = True

    # -- evaluation ----------------------------------------------------------

    def _refresh_forced(self) -> None:
        ids = sorted(self._forced)
        self._forced_ids = np.asarray(ids, dtype=np.int64)
        self._forced_vals = (
            np.stack([self._forced[i] for i in ids])
            if ids
            else np.empty((0, self.words), dtype=np.uint64)
        )
        mid = [i for i in ids if i not in self._q_id_set]
        self._forced_mid_ids = np.asarray(mid, dtype=np.int64)
        self._forced_mid_vals = (
            np.stack([self._forced[i] for i in mid])
            if mid
            else np.empty((0, self.words), dtype=np.uint64)
        )
        self._forced_stale = False

    def evaluate(self) -> None:
        """Propagate combinational logic from current inputs/state."""
        self._propagate()

    def _ensure(self) -> None:
        if self._dirty:
            self._propagate()

    def _propagate(self) -> None:
        if self._forced_stale:
            self._refresh_forced()
        v = self._values
        forced = self._forced_ids.size > 0
        # Mirror the scalar order: forced values land first, then the
        # sequential state overwrites (a forced Q reads as state during
        # propagation), then each level runs with forced nets
        # re-asserted so consumers always read the forced value, and a
        # final pass makes the forced values observable.
        if forced:
            v[self._forced_ids] = self._forced_vals
        if len(self._state):
            v[self._q_ids] = self._state
        mid = self._forced_mid_ids.size > 0
        for ops in self._levels:
            for kernel, gather, scatter in ops:
                outs = kernel(v[gather])
                for j in range(scatter.shape[1]):
                    v[scatter[:, j]] = outs[j]
            if mid:
                v[self._forced_mid_ids] = self._forced_mid_vals
        if forced:
            v[self._forced_ids] = self._forced_vals
        v[self._zero_row] = 0
        self._dirty = False

    def clock(self) -> None:
        """One rising edge: sample every D, then update every Q.

        The post-edge propagation is deferred until the next
        observation or clock (identical results, half the passes)."""
        self._ensure()
        if len(self._state):
            d = self._d_ids
            safe = np.where(d >= 0, d, self._zero_row)
            sampled = self._values[safe]
            hold = d < 0
            if hold.any():
                sampled[hold] = self._state[hold]
            self._state = sampled
            self._dirty = True

    # -- observation ---------------------------------------------------------

    def net(self, net: str) -> np.ndarray:
        """Per-lane values of one net, shape (batch,) uint8."""
        self._ensure()
        return unpack_lanes(self._values[self.net_id(net)], self.batch)

    def bus(self, base: str, width: int) -> np.ndarray:
        """Per-lane bus bits, shape (batch, width), LSB first."""
        self._ensure()
        ids = np.asarray(
            [self.net_id(f"{base}[{i}]") for i in range(width)],
            dtype=np.int64,
        )
        return unpack_lanes(self._values[ids], self.batch).T

    def bus_int(self, base: str, width: int) -> np.ndarray:
        """Per-lane two's-complement bus values, shape (batch,) int64."""
        bits = self.bus(base, width).astype(np.int64)
        weights = (1 << np.arange(width, dtype=np.int64)).copy()
        weights[-1] = -weights[-1]
        return bits @ weights

    def bus_ids_int(self, ids: np.ndarray) -> np.ndarray:
        """Two's-complement decode over precomputed net ids (LSB first);
        the bulk-observation twin of :meth:`bus_int`."""
        self._ensure()
        ids = np.asarray(ids, dtype=np.int64)
        bits = unpack_lanes(self._values[ids], self.batch).T.astype(np.int64)
        width = ids.shape[0]
        weights = (1 << np.arange(width, dtype=np.int64)).copy()
        weights[-1] = -weights[-1]
        return bits @ weights
