"""Vectorized batch gate-level simulator.

:class:`VecSim` evaluates **B stimulus vectors simultaneously** over one
flat netlist, packing the batch as bit-parallel uint64 words (lane *b*
of a net lives in bit ``b % 64`` of word ``b // 64``).  Every cell's
logic function is expressed as a handful of bitwise numpy operations
over whole instance groups, so one evaluation pass costs a few hundred
vectorized kernel calls instead of one Python dict-walk per cell per
vector — the same NetView-index treatment the STA/activity/power
kernels received, applied to simulation.

Semantics mirror :class:`repro.sim.gatesim.GateSimulator` (the pinned
scalar reference) bit for bit:

* combinational cells are levelized once (cycle ⇒ :class:`SimulationError`);
* sequential cells get master-slave semantics on :meth:`clock` (all D
  sampled, then all Q updated); a sequential cell without a ``Q``
  connection raises loudly;
* memory-cell read nets are resolved roots, driven by the testbench;
* nets can be *forced* (per-lane values override any driver).

The compile step groups instances by (topological level, cell type),
stacks their pin tables into integer gather matrices, and **renumbers
the value rows** so each group's output pins occupy contiguous blocks:
kernels write straight into the value array through ``out=`` views and
the scatter pass disappears entirely.  Cells whose scalar logic
function is one of the library's known functions get a hand-written
allocation-free bitwise kernel; any other function falls back to an
automatically derived sum-of-minterms kernel over its truth table, so
custom cells simulate correctly without registration.

The value array is stored **tile-major**: shape ``(n_tiles, rows,
tile_words)``, so one word-tile of every net is a single contiguous
matrix.  Wide batches evaluate tile by tile (``tile_words`` words — 64
by default, 4096 lanes — per block) with every gather and kernel write
operating on contiguous memory; the per-level working set stays inside
the fast cache levels as the batch grows instead of sliding down the
memory hierarchy, which is what lets verification throughput scale
with batch width.

Evaluation is lazy *and* change-driven.  Stimulus writes compare
against the stored words and mark only genuinely changed nets dirty;
propagation plans one boolean pass over the levelized groups and
evaluates exactly the groups that can see a dirty input (plus any group
whose output rows were overwritten from outside), so a drain cycle that
re-drives constant zeros costs almost nothing while remaining
observationally identical to a full pass.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..rtl.netview import net_view
from ..tech import stdcells as _std
from ..tech.stdcells import Cell, StdCellLibrary

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Default word-tile width for the propagate loop: 64 words = 4096
#: lanes per block keeps each level's gather sources and output block
#: cache-resident on wide batches.
_DEFAULT_TILE_WORDS = 64

BatchValue = Union[int, Sequence[int], np.ndarray]


# ---------------------------------------------------------------------------
# Bitwise kernels.
#
# A kernel takes the gathered input tensor ``inp`` of shape
# (instances, pins, W) — pins in the cell's ``input_caps_ff`` order —
# plus ``outs``, a tuple of (instances, W) uint64 views (one per output
# pin, in the cell's ``outputs`` order) that it must write in place,
# and ``tmp``, a (2, instances, W) scratch array it may clobber.  The
# out= style keeps the hot loop allocation-free past the gather itself:
# every temporary lives in preallocated scratch and results land
# directly in the value rows.
# ---------------------------------------------------------------------------


def _k_inv(i, o, t):
    np.invert(i[:, 0], out=o[0])


def _k_buf(i, o, t):
    np.copyto(o[0], i[:, 0])


def _k_nand2(i, o, t):
    y = o[0]
    np.bitwise_and(i[:, 0], i[:, 1], out=y)
    np.invert(y, out=y)


def _k_nor2(i, o, t):
    y = o[0]
    np.bitwise_or(i[:, 0], i[:, 1], out=y)
    np.invert(y, out=y)


def _k_and2(i, o, t):
    np.bitwise_and(i[:, 0], i[:, 1], out=o[0])


def _k_or2(i, o, t):
    np.bitwise_or(i[:, 0], i[:, 1], out=o[0])


def _k_xor2(i, o, t):
    np.bitwise_xor(i[:, 0], i[:, 1], out=o[0])


def _k_xnor2(i, o, t):
    y = o[0]
    np.bitwise_xor(i[:, 0], i[:, 1], out=y)
    np.invert(y, out=y)


def _k_aoi22(i, o, t):
    y, t0 = o[0], t[0]
    np.bitwise_and(i[:, 0], i[:, 1], out=y)
    np.bitwise_and(i[:, 2], i[:, 3], out=t0)
    np.bitwise_or(y, t0, out=y)
    np.invert(y, out=y)


def _k_oai22(i, o, t):
    y, t0 = o[0], t[0]
    np.bitwise_or(i[:, 0], i[:, 1], out=y)
    np.bitwise_or(i[:, 2], i[:, 3], out=t0)
    np.bitwise_and(y, t0, out=y)
    np.invert(y, out=y)


def _k_mux2(i, o, t):
    # y = d0 ^ (s & (d0 ^ d1)) ≡ s ? d1 : d0, with zero temporaries.
    d0, d1, s = i[:, 0], i[:, 1], i[:, 2]
    y = o[0]
    np.bitwise_xor(d0, d1, out=y)
    np.bitwise_and(y, s, out=y)
    np.bitwise_xor(y, d0, out=y)


def _k_ha(i, o, t):
    a, b = i[:, 0], i[:, 1]
    np.bitwise_xor(a, b, out=o[0])
    np.bitwise_and(a, b, out=o[1])


def _k_fa(i, o, t):
    a, b, ci = i[:, 0], i[:, 1], i[:, 2]
    s, co, t0 = o[0], o[1], t[0]
    np.bitwise_xor(a, b, out=t0)
    np.bitwise_and(ci, t0, out=co)
    np.bitwise_xor(t0, ci, out=s)
    np.bitwise_and(a, b, out=t0)
    np.bitwise_or(co, t0, out=co)


def _k_cmp42(i, o, t):
    a, b, c, d, ci = i[:, 0], i[:, 1], i[:, 2], i[:, 3], i[:, 4]
    s, cy, co = o
    t0, t1 = t[0], t[1]
    # co = majority(a, b, c) = (a&b) | (c & (a|b))
    np.bitwise_and(a, b, out=co)
    np.bitwise_or(a, b, out=t0)
    np.bitwise_and(t0, c, out=t0)
    np.bitwise_or(co, t0, out=co)
    # s3 = a^b^c; cy = (s3&d) | (ci & (s3^d)); s = s3^d^ci
    np.bitwise_xor(a, b, out=t0)
    np.bitwise_xor(t0, c, out=t0)
    np.bitwise_and(t0, d, out=cy)
    np.bitwise_xor(t0, d, out=t1)
    np.bitwise_and(ci, t1, out=t0)
    np.bitwise_or(cy, t0, out=cy)
    np.bitwise_xor(t1, ci, out=s)


def _k_tie0(i, o, t):
    o[0].fill(0)


def _k_tie1(i, o, t):
    o[0].fill(_ONES)


#: Known scalar logic functions → (expected input-pin order, expected
#: output order, kernel).  The pin orders guard against a custom cell
#: reusing a library function with reordered pins — any mismatch falls
#: back to the derived truth-table kernel.
_SPECIALIZED = {
    _std._inv: (("A",), ("Y",), _k_inv),
    _std._buf: (("A",), ("Y",), _k_buf),
    _std._nand2: (("A", "B"), ("Y",), _k_nand2),
    _std._nor2: (("A", "B"), ("Y",), _k_nor2),
    _std._and2: (("A", "B"), ("Y",), _k_and2),
    _std._or2: (("A", "B"), ("Y",), _k_or2),
    _std._xor2: (("A", "B"), ("Y",), _k_xor2),
    _std._xnor2: (("A", "B"), ("Y",), _k_xnor2),
    _std._aoi22: (("A", "B", "C", "D"), ("Y",), _k_aoi22),
    _std._oai22: (("A", "B", "C", "D"), ("Y",), _k_oai22),
    _std._mux2: (("D0", "D1", "S"), ("Y",), _k_mux2),
    _std._ha: (("A", "B"), ("S", "CO"), _k_ha),
    _std._fa: (("A", "B", "CI"), ("S", "CO"), _k_fa),
    _std._cmp42: (("A", "B", "C", "D", "CI"), ("S", "CY", "CO"), _k_cmp42),
    _std._tie0: ((), ("Y",), _k_tie0),
    _std._tie1: ((), ("Y",), _k_tie1),
}


def _truth_table_kernel(cell: Cell):
    """Sum-of-minterms kernel derived from the cell's scalar function.

    Enumerates the 2^k input assignments once at compile time; the
    kernel is then pure bitwise numpy over the caller's scratch rows.
    Handles any combinational cell with a logic function, at worst 2^k
    AND/OR terms per output.
    """
    pins = tuple(cell.input_caps_ff)
    k = len(pins)
    minterms: List[List[Tuple[int, ...]]] = [[] for _ in cell.outputs]
    for assignment in product((0, 1), repeat=k):
        outs = cell.evaluate(dict(zip(pins, assignment)))
        for oi, opin in enumerate(cell.outputs):
            if outs.get(opin, 0):
                minterms[oi].append(assignment)

    def kernel(inp, outs, tmp):
        term, scratch = tmp[0], tmp[1]
        for oi, terms in enumerate(minterms):
            acc = outs[oi]
            acc.fill(0)
            for assignment in terms:
                if not assignment:  # zero-input cell, constant-1 output
                    acc.fill(_ONES)
                    continue
                for pin_i, bit in enumerate(assignment):
                    col = inp[:, pin_i]
                    if pin_i == 0:
                        if bit:
                            np.copyto(term, col)
                        else:
                            np.invert(col, out=term)
                    elif bit:
                        np.bitwise_and(term, col, out=term)
                    else:
                        np.invert(col, out=scratch)
                        np.bitwise_and(term, scratch, out=term)
                np.bitwise_or(acc, term, out=acc)

    return kernel


def _kernel_for(cell: Cell):
    entry = _SPECIALIZED.get(cell.function)
    if entry is not None:
        pins, outs, kernel = entry
        if tuple(cell.input_caps_ff) == pins and cell.outputs == outs:
            return kernel
    if cell.function is None:
        raise SimulationError(f"{cell.name} has no logic function")
    return _truth_table_kernel(cell)


class _Group:
    """One compiled (level, cell-type) instance group.

    Inputs gather through the ``gather`` index matrix (internal value
    rows, one row of pin indices per instance); output pin ``j`` owns
    the contiguous row block ``[out_base + j*inst, out_base +
    (j+1)*inst)``, which is what lets kernels write results in place
    with no scatter pass.
    """

    __slots__ = (
        "kernel", "gather", "pins", "inst", "n_out", "out_base",
        "rows", "index",
    )

    def __init__(self, kernel, gather: np.ndarray, out_base: int,
                 n_out: int, index: int) -> None:
        self.kernel = kernel
        self.inst, self.pins = gather.shape
        self.gather = np.ascontiguousarray(gather)
        self.out_base = out_base
        self.n_out = n_out
        self.rows = self.inst * n_out
        self.index = index


# ---------------------------------------------------------------------------
# Batch packing helpers.
# ---------------------------------------------------------------------------


def pack_lanes(bits: np.ndarray, words: int) -> np.ndarray:
    """Pack 0/1 lane values into uint64 words, lane ``b`` → bit ``b%64``
    of word ``b//64``.  ``bits`` is (..., B); returns (..., words).
    Tail bits past B are always zero."""
    arr = np.ascontiguousarray(bits, dtype=np.uint8)
    packed = np.packbits(arr, axis=-1, bitorder="little")
    out = np.zeros(arr.shape[:-1] + (words * 8,), dtype=np.uint8)
    out[..., : packed.shape[-1]] = packed
    return out.view("<u8")


def unpack_lanes(words_arr: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: (..., W) words → (..., batch) bits."""
    as_bytes = np.ascontiguousarray(words_arr).astype("<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :batch]


class VecSim:
    """Simulate one flat module over a batch of stimulus vectors.

    Parameters
    ----------
    module:
        A *flat* module (hierarchical instances raise).
    library:
        Cell library supplying logic functions.
    batch:
        Number of simultaneous stimulus lanes ``B``.
    tile_words:
        Word-tile width of the propagate loop (default 64 words = 4096
        lanes per block); wide batches evaluate tile by tile over the
        tile-major value array so the per-level working set stays
        cache-resident.  Results are bit-identical for every tile
        width.

    Lane-indexed arguments accept either a scalar (broadcast to every
    lane) or a length-``B`` sequence of 0/1 values.
    """

    def __init__(
        self,
        module,
        library: StdCellLibrary,
        batch: int = 64,
        tile_words: Optional[int] = None,
    ) -> None:
        if batch < 1:
            raise SimulationError(f"batch must be positive, got {batch}")
        if tile_words is not None and tile_words < 1:
            raise SimulationError(
                f"tile_words must be positive, got {tile_words}"
            )
        self.module = module
        self.library = library
        self.batch = int(batch)
        self.words = (self.batch + 63) // 64
        self._tile = min(
            self.words, tile_words if tile_words else _DEFAULT_TILE_WORDS
        )
        self._n_tiles = -(-self.words // self._tile)
        #: Padded word count: every full-width array spans whole tiles
        #: (pad words stay zero) so the tile-major value cube and the
        #: flat (rows, words) bookkeeping views stay interchangeable.
        self._wpad = self._n_tiles * self._tile
        tail_bits = self.batch - 64 * (self.words - 1)
        self._tail_mask = (
            _ONES if tail_bits == 64 else np.uint64((1 << tail_bits) - 1)
        )
        view = net_view(module, library)
        self._view = view
        self._nid = view.net_id
        self._n_ext = view.n_nets
        self._forced: Dict[int, np.ndarray] = {}
        self._forced_ids = np.empty(0, dtype=np.int64)
        self._forced_vals = np.empty((0, self._wpad), dtype=np.uint64)
        self._forced_mid_ids = np.empty(0, dtype=np.int64)
        self._forced_mid_vals = np.empty((0, self._wpad), dtype=np.uint64)
        self._forced_stale = False
        self._compile()
        # Tile-major value cube: tile t of every row is the contiguous
        # matrix self._values[t], which is what the propagate loop,
        # gathers and kernels operate on.
        self._values = np.zeros(
            (self._n_tiles, self._n_rows, self._tile), dtype=np.uint64
        )
        self._dirty_rows = np.zeros(self._n_rows, dtype=bool)
        #: Group indices that must re-evaluate next pass regardless of
        #: input dirtiness (their output rows were overwritten from
        #: outside — a released force, a write to a driven net).
        self._pending_groups: set = set()
        self._all_dirty = True
        self._dirty = True
        max_inst = max((g.inst for g in self._groups), default=1)
        self._sbuf = np.empty((2, max_inst, self._tile), dtype=np.uint64)

    # -- compilation ---------------------------------------------------------

    def _compile(self) -> None:
        view = self._view
        module = self.module
        n_ext = self._n_ext
        resolved: set = {self._nid[p] for p in module.input_ports}
        seq_idx: List[int] = []
        for idx, cell in enumerate(view.cells):
            if cell.is_sequential:
                q_pos = cell.outputs.index("Q") if "Q" in cell.outputs else -1
                q = view.out_ids[idx][q_pos] if q_pos >= 0 else -1
                if q < 0:
                    inst = module.instances[idx]
                    raise SimulationError(
                        f"{module.name}: sequential cell {inst.name} "
                        f"({cell.name}) has no Q connection — its state "
                        "would be invisible to the fabric"
                    )
                resolved.add(q)
                seq_idx.append(idx)
            elif cell.is_memory:
                for out in view.out_ids[idx]:
                    if out >= 0:
                        resolved.add(out)

        # Sequential pin tables: D may be absent (state holds), Q exists.
        d_ids = []
        q_ids = []
        for idx in seq_idx:
            cell = view.cells[idx]
            pins = tuple(cell.input_caps_ff)
            d_pos = pins.index("D") if "D" in pins else -1
            d_ids.append(view.in_ids[idx][d_pos] if d_pos >= 0 else -1)
            q_ids.append(view.out_ids[idx][cell.outputs.index("Q")])
        d_ext = np.asarray(d_ids, dtype=np.int64)
        q_ext = np.asarray(q_ids, dtype=np.int64)
        self._d_hold = d_ext < 0
        self._state = np.zeros((len(seq_idx), self._wpad), dtype=np.uint64)

        # Kahn levelization over integer net ids, mirroring the scalar
        # simulator's pass (including its per-pin indegree accounting).
        cells = view.cells
        in_ids = view.in_ids
        out_ids = view.out_ids
        indegree: Dict[int, int] = {}
        consumers: Dict[int, List[int]] = {}
        schedule_members: List[int] = []
        expected = 0
        for idx, cell in enumerate(cells):
            if cell.is_sequential or cell.is_memory:
                continue
            expected += 1
            missing = 0
            for net in in_ids[idx]:
                if net >= 0 and net not in resolved:
                    missing += 1
                    consumers.setdefault(net, []).append(idx)
            indegree[idx] = missing
        from collections import deque

        queue = deque(idx for idx, deg in indegree.items() if deg == 0)
        net_level: Dict[int, int] = {net: 0 for net in resolved}
        inst_level: Dict[int, int] = {}
        seen_nets = set(resolved)
        while queue:
            idx = queue.popleft()
            schedule_members.append(idx)
            level = 0
            for net in in_ids[idx]:
                if net >= 0:
                    level = max(level, net_level.get(net, 0))
            inst_level[idx] = level
            for net in out_ids[idx]:
                if net < 0 or net in seen_nets:
                    continue
                seen_nets.add(net)
                net_level[net] = level + 1
                for consumer in consumers.get(net, ()):
                    indegree[consumer] -= 1
                    if indegree[consumer] == 0:
                        queue.append(consumer)
        if len(schedule_members) != expected:
            raise SimulationError(
                f"levelization failed: {len(schedule_members)} of "
                f"{expected} combinational cells ordered (cycle?)"
            )

        # Group by (level, cell ref) and stack the pin tables.
        grouping: Dict[Tuple[int, str], List[int]] = {}
        for idx in schedule_members:
            grouping.setdefault(
                (inst_level[idx], cells[idx].name), []
            ).append(idx)
        kernels: Dict[str, object] = {}
        max_level = max((lv for lv, _ in grouping), default=-1)

        # Internal row renumbering: each group's output pin j gets a
        # contiguous row block (unconnected outputs get private trash
        # slots inside the block), so kernels write value rows directly
        # and no scatter pass exists.  Roots — ports, Q nets, memory
        # read nets, undriven nets — take the rows after all blocks,
        # and one shared constant-zero row (for unconnected input pins)
        # closes the table.
        int_id = np.full(n_ext + 1, -1, dtype=np.int64)
        next_row = 0
        specs: List[tuple] = []  # (level, kernel, gather_ext, out_base, n_out)
        for (level, ref), idxs in sorted(grouping.items()):
            cell = cells[idxs[0]]
            kernel = kernels.get(ref)
            if kernel is None:
                kernel = kernels[ref] = _kernel_for(cell)
            gather_ext = np.asarray(
                [in_ids[i] for i in idxs], dtype=np.int64
            ).reshape(len(idxs), len(cell.input_caps_ff))
            gather_ext[gather_ext < 0] = n_ext  # constant-zero source
            out_base = next_row
            for j in range(len(cell.outputs)):
                for i in idxs:
                    ext = out_ids[i][j]
                    if ext >= 0:
                        if int_id[ext] != -1:
                            raise SimulationError(
                                f"net {view.net_names[ext]} has multiple "
                                "combinational drivers"
                            )
                        int_id[ext] = next_row
                    next_row += 1
            specs.append((level, kernel, gather_ext, out_base,
                          len(cell.outputs)))
        for ext in range(n_ext):
            if int_id[ext] == -1:
                int_id[ext] = next_row
                next_row += 1
        self._zero_int = next_row
        int_id[n_ext] = next_row
        next_row += 1
        self._n_rows = next_row
        self._int = int_id

        groups: List[_Group] = []
        levels: List[List[_Group]] = [[] for _ in range(max_level + 1)]
        for level, kernel, gather_ext, out_base, n_out in specs:
            group = _Group(
                kernel, int_id[gather_ext], out_base, n_out, len(groups)
            )
            groups.append(group)
            levels[level].append(group)
        self._groups = groups
        self._levels = levels
        #: Internal row → index of the group that drives it (-1 for
        #: roots); lets writes to fabric-driven rows schedule the
        #: honest recomputation that restores the driver's value.
        driver_group = np.full(self._n_rows, -1, dtype=np.int64)
        for g in groups:
            driver_group[g.out_base : g.out_base + g.rows] = g.index
        self._driver_group = driver_group

        self._d_int = int_id[np.where(d_ext >= 0, d_ext, n_ext)]
        self._q_ids = int_id[q_ext]
        self._q_id_set = frozenset(int(q) for q in self._q_ids)
        #: Nets whose value is testbench-owned (never written by the
        #: fabric): input ports and memory read nets.  The boolean mask
        #: lets the bulk drive path validate whole id arrays at once.
        free_ext = resolved - {int(q) for q in q_ext}
        self._free_mask = np.zeros(self._n_rows, dtype=bool)
        if free_ext:
            self._free_mask[int_id[np.asarray(sorted(free_ext))]] = True

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    # -- value-cube access ---------------------------------------------------

    def _read_rows(self, rows: np.ndarray) -> np.ndarray:
        """Full-width words of the given rows, shape (k, wpad) copy."""
        return (
            self._values[:, rows, :]
            .transpose(1, 0, 2)
            .reshape(len(rows), self._wpad)
        )

    def _assign_rows(self, rows: np.ndarray, words2d: np.ndarray) -> None:
        """Write (k, wpad) full-width words into the given rows."""
        self._values[:, rows, :] = words2d.reshape(
            -1, self._n_tiles, self._tile
        ).swapaxes(0, 1)

    # -- stimulus ------------------------------------------------------------

    def _pack(self, value: BatchValue) -> np.ndarray:
        """Canonical padded word form of a stimulus: bits past the
        batch (the last word's tail and any pad words) are always zero,
        so change detection never trips on unused high bits."""
        if isinstance(value, (int, np.integer, bool)):
            word = _ONES if value else np.uint64(0)
            out = np.full(self._wpad, word, dtype=np.uint64)
            out[self.words - 1] &= self._tail_mask
            out[self.words :] = 0
            return out
        bits = np.asarray(value)
        if bits.shape != (self.batch,):
            raise SimulationError(
                f"expected a scalar or {self.batch} lane values, "
                f"got shape {bits.shape}"
            )
        return pack_lanes(bits != 0, self._wpad)

    def net_id(self, net: str) -> int:
        try:
            return self._nid[net]
        except KeyError:
            raise SimulationError(f"unknown net {net}") from None

    def _row(self, net: str) -> int:
        return int(self._int[self.net_id(net)])

    def _mark_row_dirty(self, row: int) -> None:
        """One net's stored words changed: flag it for the planner and,
        if the row belongs to a fabric driver's block, schedule that
        group so the fabric honestly recomputes (matching the scalar
        semantics where every pass overwrites driven nets)."""
        self._dirty_rows[row] = True
        g = self._driver_group[row]
        if g >= 0:
            self._pending_groups.add(int(g))
        self._dirty = True

    def _write_rows(self, rows: np.ndarray, words2d: np.ndarray) -> None:
        """Compare-and-write a block of value rows, marking only the
        rows whose stored words actually changed."""
        changed = np.any(self._read_rows(rows) != words2d, axis=1)
        if not changed.any():
            return
        rows_c = rows[changed]
        self._assign_rows(rows_c, words2d[changed])
        self._dirty_rows[rows_c] = True
        driven = self._driver_group[rows_c]
        driven = driven[driven >= 0]
        if driven.size:
            self._pending_groups.update(int(g) for g in driven)
        self._dirty = True

    def set_input(self, net: str, value: BatchValue) -> None:
        """Drive a port with a scalar (broadcast) or per-lane values."""
        if net not in self.module.ports:
            raise SimulationError(f"{net} is not a port")
        row = int(self._int[self._nid[net]])
        packed = self._pack(value)
        current = self._values[:, row, :].reshape(self._wpad)
        if not np.array_equal(current, packed):
            self._values[:, row, :] = packed.reshape(
                self._n_tiles, self._tile
            )
            self._mark_row_dirty(row)

    def set_bus(self, base: str, value_bits: Sequence[BatchValue]) -> None:
        for i, bit in enumerate(value_bits):
            self.set_input(f"{base}[{i}]", bit)

    def set_bus_int(
        self, base: str, values: BatchValue, width: int
    ) -> None:
        """Drive ``base[0..width-1]`` with per-lane two's-complement
        integers (scalar broadcast accepted)."""
        vals = np.asarray(values, dtype=np.int64)
        if vals.ndim == 0:
            vals = np.full(self.batch, int(vals), dtype=np.int64)
        if vals.shape != (self.batch,):
            raise SimulationError(
                f"expected a scalar or {self.batch} values, got "
                f"shape {vals.shape}"
            )
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if vals.min() < lo or vals.max() > hi:
            raise SimulationError(f"values exceed INT{width} range")
        bits = (vals[None, :] >> np.arange(width)[:, None]) & 1
        ids = np.asarray(
            [self.net_id(f"{base}[{i}]") for i in range(width)],
            dtype=np.int64,
        )
        for i in range(width):
            if f"{base}[{i}]" not in self.module.ports:
                raise SimulationError(f"{base}[{i}] is not a port")
        self._write_rows(
            self._int[ids], pack_lanes(bits.astype(np.uint8), self._wpad)
        )

    def drive_nets(
        self, net_ids: np.ndarray, bits: np.ndarray
    ) -> None:
        """Bulk-drive *free* nets (ports or memory read nets) by id.

        ``bits`` is (len(net_ids),) scalar-per-net (broadcast across
        lanes) or (len(net_ids), batch) per-lane.  This is the hot path
        for loading thousands of weight nets per verification round;
        re-driving unchanged values (a drain cycle's zeros, a repeated
        weight image) marks nothing dirty and costs one comparison.
        """
        ids = np.asarray(net_ids, dtype=np.int64)
        rows = self._int[ids]
        ok = self._free_mask[rows]
        if not ok.all():
            bad = int(ids[~ok][0])
            raise SimulationError(
                f"net {self._view.net_names[bad]} is fabric-driven; "
                "use force() to override a driver"
            )
        bits = np.asarray(bits)
        if bits.shape == (len(ids),):
            words2d = np.where(
                bits.astype(bool)[:, None], _ONES, np.uint64(0)
            ).astype(np.uint64)
            words2d = np.repeat(words2d, self._wpad, axis=1)
            words2d[:, self.words - 1] &= self._tail_mask
            words2d[:, self.words :] = 0
        elif bits.shape == (len(ids), self.batch):
            words2d = pack_lanes(bits != 0, self._wpad)
        else:
            raise SimulationError(
                f"bits shape {bits.shape} matches neither (n,) nor "
                f"(n, {self.batch})"
            )
        self._write_rows(rows, words2d)

    def force(self, net: str, value: BatchValue) -> None:
        """Pin a net to per-lane values (overrides any driver)."""
        row = self._row(net)
        self._forced[row] = self._pack(value)
        self._forced_stale = True
        self._dirty_rows[row] = True
        self._dirty = True

    def release(self, net: str) -> None:
        row = self._row(net)
        if self._forced.pop(row, None) is not None:
            self._forced_stale = True
            # The fabric value must be recomputed over the stale forced
            # words; free nets simply keep the last forced value, as
            # the scalar reference does.
            self._mark_row_dirty(row)

    def reset_state(self, value: int = 0) -> None:
        if not len(self._state):
            return
        word = _ONES if value else np.uint64(0)
        new = np.full_like(self._state, word)
        new[:, self.words - 1] &= self._tail_mask
        new[:, self.words :] = 0
        changed = np.any(new != self._state, axis=1)
        if changed.any():
            self._state[changed] = new[changed]
            self._dirty_rows[self._q_ids[changed]] = True
            self._dirty = True

    # -- evaluation ----------------------------------------------------------

    def _refresh_forced(self) -> None:
        ids = sorted(self._forced)
        self._forced_ids = np.asarray(ids, dtype=np.int64)
        self._forced_vals = (
            np.stack([self._forced[i] for i in ids])
            if ids
            else np.empty((0, self._wpad), dtype=np.uint64)
        )
        mid = [i for i in ids if i not in self._q_id_set]
        self._forced_mid_ids = np.asarray(mid, dtype=np.int64)
        self._forced_mid_vals = (
            np.stack([self._forced[i] for i in mid])
            if mid
            else np.empty((0, self._wpad), dtype=np.uint64)
        )
        self._forced_stale = False

    def evaluate(self) -> None:
        """Propagate combinational logic from current inputs/state."""
        self._propagate()

    def _ensure(self) -> None:
        if self._dirty:
            self._propagate()

    def _plan(self) -> List[List[_Group]]:
        """Decide which groups must evaluate this pass.

        A group runs when any of its gathered source rows is dirty, or
        when its output rows were externally overwritten (pending).
        Runs cascade level by level: an evaluated group marks its
        output block dirty so downstream groups see the change.  The
        pass is pure boolean work over precomputed index arrays —
        microseconds against the kernels it saves."""
        if self._all_dirty:
            return self._levels
        dirty = self._dirty_rows
        pending = self._pending_groups
        plan: List[List[_Group]] = []
        for groups in self._levels:
            run = [
                g
                for g in groups
                if g.index in pending or dirty[g.gather].any()
            ]
            for g in run:
                dirty[g.out_base : g.out_base + g.rows] = True
            plan.append(run)
        return plan

    def _propagate(self) -> None:
        if self._forced_stale:
            self._refresh_forced()
        v = self._values
        forced = self._forced_ids.size > 0
        # Mirror the scalar order: forced values land first, then the
        # sequential state overwrites (a forced Q reads as state during
        # propagation), then each level runs with forced nets
        # re-asserted so consumers always read the forced value, and a
        # final pass makes the forced values observable.
        if forced:
            self._assign_rows(self._forced_ids, self._forced_vals)
        if len(self._state):
            self._assign_rows(self._q_ids, self._state)
        mid_ids = self._forced_mid_ids
        mid = mid_ids.size > 0
        plan = self._plan()
        tile = self._tile
        for t in range(self._n_tiles):
            vt = v[t]
            sbuf = self._sbuf
            for run in plan:
                for g in run:
                    inst = g.inst
                    inp = vt[g.gather] if g.pins else None
                    base = g.out_base
                    outs = tuple(
                        vt[base + j * inst : base + (j + 1) * inst]
                        for j in range(g.n_out)
                    )
                    g.kernel(inp, outs, sbuf[:, :inst])
                if mid:
                    vt[mid_ids] = self._forced_mid_vals[
                        :, t * tile : (t + 1) * tile
                    ]
        if forced:
            self._assign_rows(self._forced_ids, self._forced_vals)
        v[:, self._zero_int, :] = 0
        self._dirty_rows[:] = False
        self._pending_groups.clear()
        self._all_dirty = False
        self._dirty = False

    def clock(self) -> None:
        """One rising edge: sample every D, then update every Q.

        The post-edge propagation is deferred until the next
        observation or clock (identical results, half the passes); a Q
        whose sampled D equals its held state marks nothing dirty, so
        quiescent registers cost nothing downstream."""
        self._ensure()
        if len(self._state):
            sampled = self._read_rows(self._d_int)
            hold = self._d_hold
            if hold.any():
                sampled[hold] = self._state[hold]
            changed = np.any(sampled != self._state, axis=1)
            if changed.any():
                self._state = sampled
                self._dirty_rows[self._q_ids[changed]] = True
                self._dirty = True

    # -- observation ---------------------------------------------------------

    def net(self, net: str) -> np.ndarray:
        """Per-lane values of one net, shape (batch,) uint8."""
        self._ensure()
        words = self._values[:, self._row(net), :].reshape(self._wpad)
        return unpack_lanes(words, self.batch)

    def bus(self, base: str, width: int) -> np.ndarray:
        """Per-lane bus bits, shape (batch, width), LSB first."""
        self._ensure()
        rows = self._int[
            np.asarray(
                [self.net_id(f"{base}[{i}]") for i in range(width)],
                dtype=np.int64,
            )
        ]
        return unpack_lanes(self._read_rows(rows), self.batch).T

    def bus_int(self, base: str, width: int) -> np.ndarray:
        """Per-lane two's-complement bus values, shape (batch,) int64."""
        bits = self.bus(base, width).astype(np.int64)
        weights = (1 << np.arange(width, dtype=np.int64)).copy()
        weights[-1] = -weights[-1]
        return bits @ weights

    def bus_ids_int(self, ids: np.ndarray) -> np.ndarray:
        """Two's-complement decode over precomputed net ids (LSB first);
        the bulk-observation twin of :meth:`bus_int`."""
        self._ensure()
        rows = self._int[np.asarray(ids, dtype=np.int64)]
        bits = unpack_lanes(self._read_rows(rows), self.batch).T.astype(
            np.int64
        )
        width = rows.shape[0]
        weights = (1 << np.arange(width, dtype=np.int64)).copy()
        weights[-1] = -weights[-1]
        return bits @ weights

    def lanes_snapshot(self) -> np.ndarray:
        """Every net's per-lane value, shape (n_nets, batch) uint8,
        rows in NetView net-id order — the differential-test view."""
        self._ensure()
        return unpack_lanes(
            self._read_rows(self._int[: self._n_ext]), self.batch
        )
