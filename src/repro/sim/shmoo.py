"""Voltage/frequency shmoo engine (paper Fig. 9 substitute).

Silicon shmoo testing sweeps supply voltage and clock frequency and
records functional pass/fail.  The boundary is set by the critical path:
the chip passes at (V, f) when the nominal-voltage critical path, scaled
by the alpha-power delay law and derated for on-die variation, fits in
the clock period.  This module reproduces exactly that — including a
deterministic per-die random timing margin so the plot shows the ragged
edge real shmoos have — and the measured-style energy model used for
Table II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..tech.process import Process

#: Default 3-sigma on-die variation of the critical path (fraction).
DEFAULT_SIGMA = 0.03


@dataclass(frozen=True)
class ShmooResult:
    """Pass/fail grid over (voltage, frequency)."""

    voltages: Tuple[float, ...]
    frequencies_mhz: Tuple[float, ...]
    passed: Tuple[Tuple[bool, ...], ...]  # [voltage][frequency]
    critical_path_ns_nominal: float

    def max_frequency_mhz(self, vdd: float) -> float:
        """Highest passing frequency at the grid voltage nearest ``vdd``."""
        idx = min(
            range(len(self.voltages)), key=lambda i: abs(self.voltages[i] - vdd)
        )
        best = 0.0
        for j, freq in enumerate(self.frequencies_mhz):
            if self.passed[idx][j]:
                best = max(best, freq)
        return best

    def render(self) -> str:
        """ASCII shmoo in the paper's orientation: voltage rows
        (descending), frequency columns (ascending); ``P`` pass, ``.``
        fail."""
        lines = ["V\\f(MHz) " + " ".join(f"{f:5.0f}" for f in self.frequencies_mhz)]
        order = sorted(
            range(len(self.voltages)),
            key=lambda i: self.voltages[i],
            reverse=True,
        )
        for i in order:
            row = "  ".join(
                "  P " if self.passed[i][j] else "  . "
                for j in range(len(self.frequencies_mhz))
            )
            lines.append(f"{self.voltages[i]:.2f} V   {row}")
        return "\n".join(lines)


def run_shmoo(
    critical_path_ns: float,
    process: Process,
    voltages: Sequence[float],
    frequencies_mhz: Sequence[float],
    sigma: float = DEFAULT_SIGMA,
    seed: int = 2025,
) -> ShmooResult:
    """Sweep the grid.

    ``critical_path_ns`` is the post-layout critical path at the
    process's nominal voltage.  Each (V, f) cell passes when
    ``period >= path * delay_scale(V) * (1 + margin)`` with a
    deterministic Gaussian margin per cell (die-position dependent
    variation).
    """
    if critical_path_ns <= 0:
        raise SimulationError("critical path must be positive")
    rng = np.random.default_rng(seed)
    margins = rng.normal(0.0, sigma, size=(len(voltages), len(frequencies_mhz)))
    grid: List[Tuple[bool, ...]] = []
    for i, vdd in enumerate(voltages):
        scale = process.delay_scale(vdd)
        row: List[bool] = []
        for j, freq in enumerate(frequencies_mhz):
            period = 1e3 / freq
            path = critical_path_ns * scale * (1.0 + abs(margins[i, j]))
            row.append(period >= path)
        grid.append(tuple(row))
    return ShmooResult(
        voltages=tuple(float(v) for v in voltages),
        frequencies_mhz=tuple(float(f) for f in frequencies_mhz),
        passed=tuple(grid),
        critical_path_ns_nominal=critical_path_ns,
    )


@dataclass(frozen=True)
class MeasuredEfficiency:
    """Measurement-style efficiency numbers (Table II conditions)."""

    vdd: float
    frequency_mhz: float
    power_mw: float
    tops: float
    tops_per_watt: float
    tops_per_mm2: float
    tops_per_watt_1b: float
    tops_per_mm2_1b: float


def measure_efficiency(
    energy_per_mac_cycle_pj: float,
    leakage_mw: float,
    critical_path_ns: float,
    area_um2: float,
    process: Process,
    vdd: float,
    height: int,
    width: int,
    input_bits: int,
    weight_bits: int,
    input_sparsity: float = 0.0,
    weight_sparsity: float = 0.0,
    utilization: float = 1.0,
) -> MeasuredEfficiency:
    """Table II-style measurement at an operating point.

    * ops are counted the customary DCIM way: ``2 * H * W_words`` ops per
      serial phase, so one full MAC of ``input_bits`` phases performs
      ``2 * H * (W/wb)`` MACs;
    * sparsity gates switching energy: zero input bits do not toggle the
      word lines and zero weights kill product-term activity — the
      standard measurement trick behind headline TOPS/W numbers;
    * 1b-1b scaling multiplies throughput by ``input_bits * weight_bits``
      (the normalization used in the paper's comparison table).
    """
    if not 0 <= input_sparsity < 1 or not 0 <= weight_sparsity < 1:
        raise SimulationError("sparsity must be in [0, 1)")
    f_max_mhz = process.max_frequency_mhz(critical_path_ns, vdd)
    frequency = f_max_mhz * utilization
    e_scale = process.energy_scale(vdd)
    activity_factor = (1.0 - input_sparsity) * (1.0 - weight_sparsity)
    energy_pj = energy_per_mac_cycle_pj * e_scale * max(activity_factor, 0.02)
    dynamic_mw = energy_pj * frequency * 1e-3
    leak_mw = leakage_mw * process.leakage_scale(vdd)
    power_mw = dynamic_mw + leak_mw

    words = max(1, width // weight_bits)
    macs_per_cycle = height * words / input_bits  # amortized over phases
    ops_per_cycle = 2.0 * macs_per_cycle
    tops = ops_per_cycle * frequency * 1e-6
    tops_w = tops / (power_mw * 1e-3) if power_mw > 0 else float("inf")
    tops_mm2 = tops / (area_um2 * 1e-6)
    scale_1b = float(input_bits * weight_bits)
    return MeasuredEfficiency(
        vdd=vdd,
        frequency_mhz=frequency,
        power_mw=power_mw,
        tops=tops,
        tops_per_watt=tops_w,
        tops_per_mm2=tops_mm2,
        tops_per_watt_1b=tops_w * scale_1b,
        tops_per_mm2_1b=tops_mm2 * scale_1b,
    )
