"""Two-value levelized gate-level simulator.

Verifies generated netlists against the behavioural model (the paper's
"gate-level simulation to ensure it meets frontend requirements",
Section III.D).  The simulator:

* topologically levelizes the combinational cells of a flat module once
  (generated netlists are cycle-free by construction — a cycle raises);
* evaluates the network with the cells' characterized logic functions;
* models sequential cells with master-slave semantics on
  :meth:`GateSimulator.clock` (all D pins sampled, then all Q updated);
* lets the testbench *force* nets (used for the memory read data that a
  bitcell array would drive).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from ..rtl.ir import Instance, Module
from ..tech.stdcells import StdCellLibrary


class GateSimulator:
    """Simulate one flat module."""

    def __init__(self, module: Module, library: StdCellLibrary) -> None:
        self.module = module
        self.library = library
        self.values: Dict[str, int] = {net: 0 for net in module.nets}
        self._forced: Dict[str, int] = {}
        self._state: Dict[str, int] = {}
        self._comb_order: List[Instance] = []
        self._seq: List[Instance] = []
        self._levelize()

    def _levelize(self) -> None:
        indegree: Dict[str, int] = {}
        consumers: Dict[str, List[Instance]] = {}
        resolved = set(self.module.input_ports)
        for inst in self.module.instances:
            cell = self.library.cell(inst.cell_name)
            if cell.is_sequential:
                q = inst.conn.get("Q")
                if not q:
                    # A flop without a Q connection has invisible state:
                    # treating it as resolved-less silently detaches its
                    # fan-out cone from the clock.  Refuse loudly.
                    raise SimulationError(
                        f"{self.module.name}: sequential cell {inst.name} "
                        f"({inst.cell_name}) has no Q connection — its "
                        "state would be invisible to the fabric"
                    )
                self._seq.append(inst)
                resolved.add(q)
                self._state[inst.name] = 0
                continue
            if cell.is_memory:
                rd = inst.conn.get("RD")
                if rd:
                    resolved.add(rd)
                continue
        for inst in self.module.instances:
            cell = self.library.cell(inst.cell_name)
            if cell.is_sequential or cell.is_memory:
                continue
            missing = 0
            for pin in cell.input_caps_ff:
                net = inst.conn.get(pin)
                if net is not None and net not in resolved:
                    missing += 1
                    consumers.setdefault(net, []).append(inst)
            indegree[inst.name] = missing
        queue = deque(
            inst
            for inst in self.module.instances
            if indegree.get(inst.name, -1) == 0
        )
        seen_nets = set(resolved)
        while queue:
            inst = queue.popleft()
            self._comb_order.append(inst)
            cell = self.library.cell(inst.cell_name)
            for pin in cell.outputs:
                net = inst.conn.get(pin)
                if net is None or net in seen_nets:
                    continue
                seen_nets.add(net)
                for consumer in consumers.get(net, ()):
                    indegree[consumer.name] -= 1
                    if indegree[consumer.name] == 0:
                        queue.append(consumer)
        expected = sum(
            1
            for inst in self.module.instances
            if not self.library.cell(inst.cell_name).is_sequential
            and not self.library.cell(inst.cell_name).is_memory
        )
        if len(self._comb_order) != expected:
            raise SimulationError(
                f"levelization failed: {len(self._comb_order)} of {expected} "
                "combinational cells ordered (cycle?)"
            )

    # -- stimulus -------------------------------------------------------------

    def set_input(self, net: str, value: int) -> None:
        if net not in self.module.ports:
            raise SimulationError(f"{net} is not a port")
        self.values[net] = int(bool(value))

    def set_bus(self, base: str, value_bits: Sequence[int]) -> None:
        for i, bit in enumerate(value_bits):
            self.set_input(f"{base}[{i}]", bit)

    def force(self, net: str, value: int) -> None:
        """Pin a net to a value (overrides any driver); used for memory
        read data."""
        if net not in self.values:
            raise SimulationError(f"unknown net {net}")
        self._forced[net] = int(bool(value))

    def release(self, net: str) -> None:
        self._forced.pop(net, None)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self) -> None:
        """Propagate combinational logic from current inputs/state."""
        values = self.values
        values.update(self._forced)
        for inst in self._seq:
            q = inst.conn.get("Q")
            if q:
                values[q] = self._state[inst.name]
        for inst in self._comb_order:
            cell = self.library.cell(inst.cell_name)
            pins = {
                pin: values[inst.conn[pin]]
                for pin in cell.input_caps_ff
                if pin in inst.conn
            }
            outs = cell.evaluate(pins)
            for pin, val in outs.items():
                net = inst.conn.get(pin)
                if net is not None and net not in self._forced:
                    values[net] = val
        values.update(self._forced)

    def clock(self) -> None:
        """One rising edge: sample every D, then update every Q, then
        re-evaluate the fabric."""
        self.evaluate()
        sampled = {
            inst.name: self.values[inst.conn["D"]]
            for inst in self._seq
            if "D" in inst.conn
        }
        self._state.update(sampled)
        self.evaluate()

    def reset_state(self, value: int = 0) -> None:
        for name in self._state:
            self._state[name] = int(bool(value))

    # -- observation -----------------------------------------------------------

    def net(self, net: str) -> int:
        try:
            return self.values[net]
        except KeyError:
            raise SimulationError(f"unknown net {net}") from None

    def bus(self, base: str, width: int) -> List[int]:
        return [self.net(f"{base}[{i}]") for i in range(width)]

    def bus_int(self, base: str, width: int) -> int:
        """Two's-complement value of a bus."""
        from .formats import decode_int

        return decode_int(self.bus(base, width))
