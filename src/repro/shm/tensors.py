"""Named-ndarray payloads for shared-memory blobs.

A payload is a JSON *meta* document plus any number of named ndarrays,
packed as::

    uint32 meta length | meta JSON (utf-8) | array bytes ...

The meta document carries an ``__arrays__`` table of
``name -> [dtype, shape, offset, nbytes]`` (offsets relative to the
start of the array region, each array 8-byte aligned).  Hydration wraps
the attached buffer with ``np.frombuffer`` — no copy — and marks the
views read-only, since many attached processes share the same physical
pages.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Tuple

import numpy as np

from .blob import ShmFormatError

_LEN = struct.Struct("<I")
_ALIGN = 8


def pack_tensors(meta: dict, arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialize ``meta`` + ``arrays`` into one payload blob."""
    index = {}
    parts = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        pad = (-offset) % _ALIGN
        if pad:
            parts.append(b"\0" * pad)
            offset += pad
        index[name] = [arr.dtype.str, list(arr.shape), offset, arr.nbytes]
        parts.append(arr.tobytes())
        offset += arr.nbytes
    doc = dict(meta)
    doc["__arrays__"] = index
    meta_bytes = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(meta_bytes)) + meta_bytes + b"".join(parts)


def unpack_tensors(
    payload: memoryview,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Hydrate a payload into (meta, zero-copy read-only arrays).

    The returned arrays alias ``payload`` — they stay valid exactly as
    long as the underlying shared-memory mapping does.
    """
    if len(payload) < _LEN.size:
        raise ShmFormatError("tensor payload: too small")
    (meta_len,) = _LEN.unpack_from(payload, 0)
    body = _LEN.size + meta_len
    if body > len(payload):
        raise ShmFormatError("tensor payload: truncated meta")
    try:
        meta = json.loads(bytes(payload[_LEN.size:body]).decode("utf-8"))
    except ValueError as exc:
        raise ShmFormatError(f"tensor payload: bad meta ({exc})") from None
    index = meta.pop("__arrays__", {})
    region = payload[body:]
    arrays: Dict[str, np.ndarray] = {}
    for name, (dtype, shape, offset, nbytes) in index.items():
        if offset + nbytes > len(region):
            raise ShmFormatError(f"tensor payload: array {name} out of range")
        arr = np.frombuffer(
            region, dtype=np.dtype(dtype), count=nbytes // np.dtype(dtype).itemsize,
            offset=offset,
        ).reshape(shape)
        arr.flags.writeable = False
        arrays[name] = arr
    return meta, arrays
