"""Zero-copy shared-memory transport for read-only compile tensors.

Every pool worker used to re-derive the same two read-only structures
from scratch: the sealed subcircuit library (disk JSON parse per
process) and the compiled :class:`~repro.rtl.netview.NetView` integer
tables of any netlist the parent had already built (a ~50 ms Python
walk per process per module).  This package moves both into
``multiprocessing.shared_memory`` segments published by the batch
parent; workers attach the raw bytes and wrap them in ``numpy``
views without copying.

Layout
------
:mod:`repro.shm.blob`
    Segment lifecycle: content-verified publish/attach, parent-owned
    unlink-on-exit, stale-segment adoption, child-side
    ``resource_tracker`` unregistration (so a worker's exit never
    unlinks a segment it does not own, and never warns about one).
:mod:`repro.shm.tensors`
    The payload format: a JSON meta document plus named ndarrays in
    one contiguous blob, hydrated as read-only zero-copy views.
:mod:`repro.shm.scl`
    Sealed-SCL tensors: publish in the parent, attach in
    ``_worker_initializer`` instead of loading the disk artifact.
:mod:`repro.shm.netview`
    Per-view NetView integer tables: publish any view the parent has
    built; ``net_view()`` in a worker attaches instead of re-walking
    the module.

See ``docs/performance.md`` (shared-memory section) for naming,
lifecycle, and failure modes.
"""

from .blob import (
    attach_blob,
    detach_all,
    published_segments,
    publish_blob,
    unlink_all,
)
from .scl import attach_default_scl, publish_default_scl
from .netview import (
    install_attachments,
    netview_content_key,
    publish_net_view,
    try_attach_net_view,
)

__all__ = [
    "attach_blob",
    "detach_all",
    "publish_blob",
    "published_segments",
    "unlink_all",
    "attach_default_scl",
    "publish_default_scl",
    "install_attachments",
    "netview_content_key",
    "publish_net_view",
    "try_attach_net_view",
]
