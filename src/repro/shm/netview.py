"""Per-view NetView integer tables over shared memory.

Compiling a :class:`~repro.rtl.netview.NetView` is a Python walk over
every instance (~50 ms on the paper-size macro) that every process
repeats for the same deterministic netlist.  The walk's *outputs* are
plain integer tensors — per-group ``inst_idx`` / ``in_ids`` /
``out_ids`` tables — which this module publishes once in the parent
and hydrates zero-copy in workers.

Keying and verification
-----------------------
Hashing a module's full content costs about as much as building the
view, so the content key (:func:`netview_content_key`) is computed on
the **publisher** side only, where it amortizes over every attaching
worker; the segment name is ``repro-nv-<first 12 hex digits>``.
An attaching worker cannot afford the full hash per lookup, so
:func:`try_attach_net_view` matches on a structural signature —
module name, net count, instance count, the exact net-name list, and
the per-cell-type instance counts — and then *spot-checks* the pin
tables: a deterministic sample of instances is re-derived from the
live module and compared against the attached rows.  A mismatch in
any check is a silent miss (the worker builds locally).  The blob
digest in :mod:`repro.shm.blob` separately guarantees the bytes are
exactly what the publisher wrote.

``net_view()`` integration: :func:`install_attachments` arms a
process-global registry (the batch worker initializer does this with
the names its parent published); while armed, every
:func:`repro.rtl.netview.net_view` cache miss probes the registry
before walking the module.  With the registry empty the hook costs
one ``None`` check.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..tech.stdcells import StdCellLibrary
from .blob import ShmFormatError, attach_blob, publish_blob
from .tensors import pack_tensors, unpack_tensors

#: How many instances the attach path re-derives and compares against
#: the published tables (deterministically spread over the module).
_SPOT_CHECK = 256

#: Armed by :func:`install_attachments`: segment names available for
#: attach in this process, or ``None`` when the hook is disarmed.
_ATTACHMENTS: Optional[List[str]] = None


def netview_segment_name(key: str) -> str:
    return f"repro-nv-{key[:12]}"


def netview_content_key(module, library: StdCellLibrary) -> str:
    """Full content hash of (module connectivity, library identity).

    Costs roughly one view compilation — publisher-side only.
    """
    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=4)
    pickler.fast = True
    pickler.dump(
        (
            module.name,
            list(module.nets),
            [
                (inst.name, inst.ref, sorted(inst.conn.items()))
                for inst in module.instances
            ],
            sorted(library.names),
        )
    )
    return hashlib.sha256(buf.getvalue()).hexdigest()


def _signature(module) -> dict:
    """Cheap structural identity used for attach-time matching."""
    counts: Dict[str, int] = {}
    for inst in module.instances:
        ref = inst.ref
        counts[ref] = counts.get(ref, 0) + 1
    return {
        "module": module.name,
        "n_instances": len(module.instances),
        "ref_counts": sorted(counts.items()),
    }


def netview_tensors(view) -> tuple:
    """Flatten a compiled view into (meta, arrays).

    The group matrices ship as raw int64 tensors (hydrated zero-copy);
    the per-instance ``in_ids``/``out_ids`` tuple rows additionally
    ship as one pickle blob — ``pickle.loads`` rebuilds 30k+ tuples at
    C speed, several times faster than re-deriving them from the group
    tables in Python.  The pickle only ever contains tuples of ints,
    and the enclosing blob's sha256 guards its integrity.
    """
    meta = {
        "kind": "netview",
        "net_names": view.net_names,
        "groups": [
            {
                "cell": g.cell.name,
                "n": len(g),
                "n_in": g.in_ids.shape[1] if g.in_ids.ndim == 2 else 0,
                "n_out": g.out_ids.shape[1] if g.out_ids.ndim == 2 else 0,
            }
            for g in view.groups
        ],
        "signature": _signature(view.module),
    }
    rows = pickle.dumps(
        (view.in_ids, view.out_ids), protocol=pickle.HIGHEST_PROTOCOL
    )
    arrays = {"rows": np.frombuffer(rows, dtype=np.uint8)}
    for i, g in enumerate(view.groups):
        arrays[f"g{i}_inst"] = g.inst_idx
        arrays[f"g{i}_in"] = g.in_ids
        arrays[f"g{i}_out"] = g.out_ids
    return meta, arrays


def publish_net_view(view, key: Optional[str] = None) -> Optional[str]:
    """Parent-side: publish one compiled view's integer tables.

    ``key`` defaults to the full content hash.  Returns the segment
    name (hand it to :func:`install_attachments` in workers), or
    ``None`` when publishing failed.
    """
    if key is None:
        key = netview_content_key(view.module, view.library)
    meta, arrays = netview_tensors(view)
    try:
        return publish_blob(
            netview_segment_name(key), pack_tensors(meta, arrays)
        )
    except Exception:
        return None


def install_attachments(names: Sequence[str]) -> None:
    """Arm the worker-side ``net_view()`` probe with published segment
    names.  Non-netview names are tolerated (skipped on probe), so the
    batch engine can pass its whole published-segment list through."""
    global _ATTACHMENTS
    nv = [n for n in names if n.startswith("repro-nv-")]
    _ATTACHMENTS = nv if nv else None


def attachments_installed() -> List[str]:
    return list(_ATTACHMENTS or ())


def _hydrate(module, library: StdCellLibrary, meta: dict, arrays: dict):
    """Build a NetView around attached tables, skipping the walk.

    The group matrices are the zero-copy attached arrays; the
    per-instance pin rows come from the published pickle blob and the
    per-instance cell list from an object-array scatter over the group
    index tables — all C-level, no per-instance Python loop.
    """
    from ..rtl.netview import CellGroup, NetView

    view = NetView.__new__(NetView)
    view.module = module
    view.library = library
    view.revision = module.revision
    names = meta["net_names"]
    view.net_names = names
    view.net_id = {name: i for i, name in enumerate(names)}
    n_inst = len(module.instances)
    in_ids, out_ids = pickle.loads(arrays["rows"])
    if len(in_ids) != n_inst or len(out_ids) != n_inst:
        raise ValueError("shm netview: row count mismatch")
    cells_arr = np.empty(n_inst, dtype=object)
    groups = []
    for i, g in enumerate(meta["groups"]):
        cell = library.cell(g["cell"])
        inst_idx = arrays[f"g{i}_inst"]
        group = CellGroup.__new__(CellGroup)
        group.cell = cell
        group.inst_idx = inst_idx
        group.in_ids = arrays[f"g{i}_in"].reshape(len(inst_idx), g["n_in"])
        group.out_ids = arrays[f"g{i}_out"].reshape(
            len(inst_idx), g["n_out"]
        )
        groups.append(group)
        cells_arr[inst_idx] = cell
    cells: List[object] = cells_arr.tolist()
    if n_inst and any(c is None for c in cells):
        raise ValueError("shm netview: group tables do not cover module")
    view.cells = cells
    view.in_ids = in_ids
    view.out_ids = out_ids
    view.groups = groups
    view.derived = {}
    return view


def _spot_check(module, view) -> bool:
    """Re-derive a deterministic sample of instances from the live
    module and compare against the hydrated tables."""
    n = len(module.instances)
    if n == 0:
        return True
    step = max(1, n // _SPOT_CHECK)
    nid = view.net_id
    instances = module.instances
    for idx in range(0, n, step):
        inst = instances[idx]
        cell = view.cells[idx]
        if cell is None or cell.name != inst.ref:
            return False
        conn = inst.conn
        want_in = tuple(
            nid.get(conn[p], -2) if p in conn else -1
            for p in cell.input_caps_ff
        )
        if want_in != view.in_ids[idx]:
            return False
        want_out = tuple(
            nid.get(conn[p], -2) if p in conn else -1 for p in cell.outputs
        )
        if want_out != view.out_ids[idx]:
            return False
    return True


def try_attach_net_view(module, library: StdCellLibrary):
    """Probe the armed attachments for this (module, library); returns
    a hydrated view or ``None`` (caller builds locally).

    Every failure mode — no registry, no match, stale segment, failed
    spot check — is a silent miss.
    """
    names = _ATTACHMENTS
    if not names:
        return None
    sig = None
    for name in names:
        payload = attach_blob(name)
        if payload is None:
            continue
        try:
            meta, arrays = unpack_tensors(payload)
        except ShmFormatError:
            continue
        if meta.get("kind") != "netview":
            continue
        if sig is None:
            sig = _signature(module)
        want = meta.get("signature", {})
        if (
            want.get("module") != sig["module"]
            or want.get("n_instances") != sig["n_instances"]
            or [tuple(rc) for rc in want.get("ref_counts", ())]
            != sig["ref_counts"]
            or meta.get("net_names") != list(module.nets)
        ):
            continue
        try:
            view = _hydrate(module, library, meta, arrays)
        except (KeyError, ValueError, IndexError):
            continue
        if _spot_check(module, view):
            return view
    return None
