"""Sealed-SCL tensors over shared memory.

The sealed subcircuit library is ~261 :class:`~repro.scl.lut.PPARecord`
entries — pure numbers.  They flatten into two float64 tensors (one
``(n, 5)`` block of delay/energy/area/leakage/cells, one ragged
stage-delay array with an offsets index) plus a JSON index of
``(kind, variant, dim)`` keys.

Segment naming is content-addressed by the same
:func:`~repro.scl.cache.scl_cache_key` hash the disk cache uses:
``repro-scl-<first 12 hex digits>``.  An attaching worker re-derives
the key from its own library/process fingerprints, so parent and child
agree on the segment name exactly when they agree on the content — a
version-skewed worker simply misses and falls back to the disk
artifact (and from there to a characterization).  Float64 round-trips
bit-exactly through the tensor, so an attached library is
bit-identical to the built one.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library
from .blob import ShmFormatError, attach_blob, publish_blob
from .tensors import pack_tensors, unpack_tensors

_NUMERIC_FIELDS = 5  # delay_ns, energy_pj, area_um2, leakage_mw, cells


def scl_segment_name(key: str) -> str:
    return f"repro-scl-{key[:12]}"


def scl_to_tensors(scl) -> Tuple[dict, dict]:
    """Flatten a sealed library into (meta, arrays)."""
    from ..scl.library import KINDS

    index = []
    numeric = []
    stages = []
    stage_offsets = [0]
    for kind in KINDS:
        for (variant, dim), rec in scl.table(kind).items():
            index.append([kind, variant, dim])
            numeric.append(
                [
                    rec.delay_ns,
                    rec.energy_pj,
                    rec.area_um2,
                    rec.leakage_mw,
                    float(rec.cells),
                ]
            )
            stages.extend(rec.stage_delays_ns)
            stage_offsets.append(len(stages))
    meta = {
        "kind": "scl",
        "process": scl.process.name,
        "corner": None if scl.corner is None else list(scl.corner.key()),
        "entry_count": scl.entry_count(),
        "index": index,
    }
    arrays = {
        "numeric": np.asarray(numeric, dtype=np.float64).reshape(
            len(index), _NUMERIC_FIELDS
        ),
        "stages": np.asarray(stages, dtype=np.float64),
        "stage_offsets": np.asarray(stage_offsets, dtype=np.int64),
    }
    return meta, arrays


def scl_from_tensors(
    meta: dict,
    arrays: dict,
    library: StdCellLibrary,
    process: Process,
    corner=None,
):
    """Rebuild a sealed library from attached tensors.

    The 261 record objects themselves are (tiny) per-process copies;
    what the attach avoids is the disk read, the JSON parse, and above
    all the fallback characterization.  Raises on any mismatch — the
    caller treats every failure as a miss.
    """
    from ..errors import LibraryError
    from ..scl.library import SubcircuitLibrary
    from ..scl.lut import PPARecord

    if meta.get("kind") != "scl":
        raise LibraryError("shm SCL: wrong payload kind")
    if meta.get("process") != process.name:
        raise LibraryError("shm SCL: process mismatch")
    want = None if corner is None else list(corner.key())
    if meta.get("corner") != want:
        raise LibraryError("shm SCL: corner mismatch")
    numeric = arrays["numeric"]
    stages = arrays["stages"]
    offsets = arrays["stage_offsets"]
    index = meta["index"]
    if numeric.shape != (len(index), _NUMERIC_FIELDS):
        raise LibraryError("shm SCL: numeric tensor shape mismatch")
    scl = SubcircuitLibrary(
        process=process, cell_library=library, corner=corner
    )
    for i, (kind, variant, dim) in enumerate(index):
        row = numeric[i]
        stage_slice = stages[int(offsets[i]):int(offsets[i + 1])]
        scl.table(kind).add(
            str(variant),
            int(dim),
            PPARecord(
                delay_ns=float(row[0]),
                energy_pj=float(row[1]),
                area_um2=float(row[2]),
                leakage_mw=float(row[3]),
                cells=int(row[4]),
                stage_delays_ns=tuple(float(x) for x in stage_slice),
            ),
        )
    if scl.entry_count() != int(meta["entry_count"]):
        raise LibraryError("shm SCL: entry count mismatch")
    if scl.entry_count() == 0:
        raise LibraryError("shm SCL: empty payload")
    scl.seal()
    return scl


def publish_default_scl(
    process: Optional[Process] = None, corner=None
) -> Optional[str]:
    """Parent-side: resolve the default SCL and publish its tensors.

    Returns the segment name, or ``None`` when publishing failed (a
    shm-less platform degrades to the disk-cache behaviour — workers
    just load the artifact as before).
    """
    from ..scl.cache import scl_cache_key
    from ..scl.library import default_scl

    process = process or GENERIC_40NM
    scl = default_scl(process=process, corner=corner)
    key = scl_cache_key(scl.cell_library, scl.process, scl.corner)
    meta, arrays = scl_to_tensors(scl)
    try:
        return publish_blob(scl_segment_name(key), pack_tensors(meta, arrays))
    except Exception:
        return None


def attach_default_scl(
    process: Optional[Process] = None, corner=None
) -> Optional[object]:
    """Worker-side: attach the published default-SCL tensors, install
    the result as this process's default SCL, and return it.

    The segment name is re-derived from this process's own
    library/process fingerprints (cross-process content-hash
    agreement); any miss or mismatch returns ``None`` and the caller
    falls back to :func:`~repro.scl.library.default_scl` resolution.
    """
    from ..errors import LibraryError
    from ..scl.cache import scl_cache_key
    from ..scl.library import install_default_scl

    process = process or GENERIC_40NM
    library = default_library()
    key = scl_cache_key(library, process, corner)
    payload = attach_blob(scl_segment_name(key))
    if payload is None:
        return None
    try:
        meta, arrays = unpack_tensors(payload)
        scl = scl_from_tensors(meta, arrays, library, process, corner)
    except (LibraryError, ShmFormatError, KeyError, ValueError, TypeError):
        return None
    install_default_scl(scl, process=process, corner=corner, source="shm")
    return scl
