"""Shared-memory segment lifecycle: publish, attach, verify, unlink.

Ownership rules (the whole leak story in three lines):

* only the **parent** ever creates segments — it registers every one
  for unlink at process exit, so a normally-exiting parent leaves
  ``/dev/shm`` clean no matter how its pools died;
* **workers** only attach; each attach immediately unregisters the
  mapping from ``multiprocessing.resource_tracker`` so a dying worker
  neither unlinks a segment it does not own (Python < 3.13 registers
  every attach for cleanup) nor emits "leaked shared_memory" warnings;
* a segment name encodes a **content hash**, and the blob embeds a
  digest over its payload — so a stale segment from a SIGKILLed
  previous parent is either *adopted* (digest matches: same content,
  re-registered for cleanup) or unlinked and re-created (corrupt).
  Hard-killed parents can therefore leak at most until the next
  publisher with the same content comes along, and never serve stale
  bytes.

Blob format: ``b"RSHM0001" | uint64 payload length | sha256(payload) |
payload``.  The segment may be larger than the blob (the kernel rounds
to page size); the header length bounds every read.
"""

from __future__ import annotations

import atexit
import hashlib
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

from ..errors import BatchError

#: Every segment this package creates starts with this prefix; the
#: chaos suite sweeps ``/dev/shm`` for it to assert zero leaks.
SEGMENT_PREFIX = "repro-"

_MAGIC = b"RSHM0001"
_HEADER = struct.Struct(f"<{len(_MAGIC)}sQ32s")


class ShmFormatError(BatchError):
    """A segment exists but does not carry a valid blob."""


class _PinnedSharedMemory(shared_memory.SharedMemory):
    """A mapping that tolerates living until interpreter shutdown.

    Zero-copy arrays hydrated from a segment may still alias its
    buffer when ``__del__`` finally runs, where the stock ``close()``
    raises ``BufferError: cannot close exported pointers exist`` and
    CPython prints an "Exception ignored" traceback.  Mappings here
    are deliberately process-lifetime, so that is not an error."""

    def __del__(self) -> None:
        try:
            super().__del__()
        except BufferError:
            pass


#: Parent-side: segments this process created (or adopted), unlinked at
#: exit.  Maps name -> SharedMemory.
_PUBLISHED: Dict[str, shared_memory.SharedMemory] = {}

#: Child-side: attached segments; held so zero-copy views stay valid.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}

_ATEXIT_INSTALLED = False


def _install_atexit() -> None:
    global _ATEXIT_INSTALLED
    if not _ATEXIT_INSTALLED:
        _ATEXIT_INSTALLED = True
        atexit.register(unlink_all)


def _wrap(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).digest()
    return _HEADER.pack(_MAGIC, len(payload), digest) + payload


def _read_payload(shm: shared_memory.SharedMemory) -> memoryview:
    """Validated zero-copy payload view of an open segment."""
    buf = shm.buf
    if buf is None or len(buf) < _HEADER.size:
        raise ShmFormatError(f"segment {shm.name}: too small for header")
    magic, length, digest = _HEADER.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise ShmFormatError(f"segment {shm.name}: bad magic")
    end = _HEADER.size + length
    if end > len(buf):
        raise ShmFormatError(f"segment {shm.name}: truncated payload")
    payload = buf[_HEADER.size:end]
    if hashlib.sha256(payload).digest() != digest:
        raise ShmFormatError(f"segment {shm.name}: payload digest mismatch")
    return payload


def publish_blob(name: str, payload: bytes) -> str:
    """Create (or adopt) segment ``name`` holding ``payload``.

    Parent-side only.  The segment is registered for unlink at process
    exit.  If a segment with this name already exists — a concurrent
    publisher, or a leak from a hard-killed previous run — its digest
    is checked: matching content is adopted as-is (content-hash names
    make this safe), anything else is unlinked and re-created.
    Publishing the same name twice in one process is a no-op.
    """
    if not name.startswith(SEGMENT_PREFIX):
        raise BatchError(
            f"shm segment name {name!r} must start with {SEGMENT_PREFIX!r}"
        )
    if name in _PUBLISHED:
        return name
    blob = _wrap(payload)
    _install_atexit()
    try:
        shm = _PinnedSharedMemory(name=name, create=True, size=len(blob))
    except FileExistsError:
        existing = _adopt_or_unlink(name, payload)
        if existing is not None:
            _PUBLISHED[name] = existing
            return name
        shm = _PinnedSharedMemory(name=name, create=True, size=len(blob))
    shm.buf[: len(blob)] = blob
    _PUBLISHED[name] = shm
    return name


def _adopt_or_unlink(
    name: str, payload: bytes
) -> Optional[shared_memory.SharedMemory]:
    """Existing segment with our name: adopt if its payload matches,
    else unlink the stale corpse so the caller can re-create."""
    try:
        shm = _PinnedSharedMemory(name=name)
    except FileNotFoundError:
        return None  # raced with another process's unlink
    # Attaching registered the segment with our resource tracker.  That
    # registration is left in place: whichever ``unlink()`` eventually
    # runs (right below on mismatch, or ``unlink_all`` at exit on
    # adoption) unregisters exactly once — an extra manual unregister
    # here would make the tracker complain about the later unlink.
    match = False
    try:
        existing = _read_payload(shm)
        match = existing == payload
        existing.release()  # else close() below sees an exported view
    except ShmFormatError:
        pass
    if match:
        return shm
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    shm.close()
    return None


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove an *attached* segment from this process's resource
    tracker.  Python < 3.13 registers every attach for unlink-at-exit,
    which would (a) destroy a segment the parent still owns when any
    worker exits and (b) spam "leaked shared_memory objects" warnings
    for mappings that are deliberately long-lived.  The tracker API is
    semi-public but stable; a missing/changed API degrades to tracked
    behaviour rather than an error."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def attach_blob(name: str) -> Optional[memoryview]:
    """Attach segment ``name`` and return its validated payload view.

    Child-side.  Returns ``None`` when the segment does not exist or
    fails validation — attach is always best-effort, the caller falls
    back to rebuilding.  The mapping is cached for the process
    lifetime (zero-copy views alias it) and unregistered from the
    resource tracker: this process does not own the segment.
    """
    owned = _PUBLISHED.get(name)
    if owned is not None:
        # This process published the segment; serve the payload from
        # the owned mapping rather than opening (and untracking) a
        # second attachment that would fight the tracker registration.
        try:
            return _read_payload(owned)
        except ShmFormatError:
            return None
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = _PinnedSharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        _untrack(shm)
        _ATTACHED[name] = shm
    try:
        return _read_payload(shm)
    except ShmFormatError:
        _ATTACHED.pop(name, None)
        shm.close()
        return None


def published_segments() -> List[str]:
    """Names this process has published (parent-side diagnostics)."""
    return sorted(_PUBLISHED)


def unlink_all() -> None:
    """Unlink every segment this process published.  Runs at exit;
    idempotent; safe against segments someone else already removed."""
    while _PUBLISHED:
        _name, shm = _PUBLISHED.popitem()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
        try:
            shm.close()
        except Exception:
            pass


def detach_all() -> None:
    """Close every attached mapping (child-side; test teardown).  Any
    zero-copy array hydrated from these segments becomes invalid."""
    while _ATTACHED:
        _name, shm = _ATTACHED.popitem()
        try:
            shm.close()
        except Exception:
            pass
