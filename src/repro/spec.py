"""User-facing specification objects.

SynDCIM is driven by two specification groups (paper, Fig. 2):

* *architecture parameters* — array dimensions, memory-compute ratio
  (MCR) and the set of supported INT/FP precisions;
* *performance constraints* — MAC frequency, weight-update frequency and
  power/performance/area (PPA) preference weights.

:class:`MacroSpec` bundles both groups and validates them eagerly so the
search never has to handle malformed inputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from .errors import SpecificationError


@dataclass(frozen=True)
class DataFormat:
    """A numeric format the macro must support.

    ``kind`` is ``"int"`` or ``"fp"``.  Integer formats are two's
    complement with ``bits`` total bits.  Floating-point formats carry an
    ``exponent``/``mantissa`` split (sign bit implied), so
    ``bits == 1 + exponent + mantissa``.
    """

    name: str
    kind: str
    bits: int
    exponent: int = 0
    mantissa: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("int", "fp"):
            raise SpecificationError(f"unknown format kind {self.kind!r}")
        if self.bits < 1:
            raise SpecificationError(f"{self.name}: bits must be >= 1")
        if self.kind == "fp":
            if self.exponent < 1 or self.mantissa < 0:
                raise SpecificationError(
                    f"{self.name}: fp format needs exponent>=1, mantissa>=0"
                )
            if 1 + self.exponent + self.mantissa != self.bits:
                raise SpecificationError(
                    f"{self.name}: 1+{self.exponent}+{self.mantissa} != {self.bits}"
                )

    @property
    def is_float(self) -> bool:
        return self.kind == "fp"

    @property
    def bias(self) -> int:
        """IEEE-style exponent bias; only meaningful for FP formats."""
        return (1 << (self.exponent - 1)) - 1 if self.is_float else 0

    @property
    def serial_bits(self) -> int:
        """Bits fed serially into the array for one operand.

        Integers stream all their bits; floats stream the signed
        significand (sign + hidden one + mantissa) *after* the alignment
        unit has shifted it to the group's shared exponent and rounded
        back to significand width — so FP8(E4M3) costs 5 serial cycles,
        close to INT4, which is what makes the paper's ~10 % FP8 power
        overhead possible.
        """
        return self.bits if not self.is_float else self.mantissa + 2

    @property
    def storage_bits(self) -> int:
        """Bit columns one weight of this format occupies in the array."""
        return self.bits if not self.is_float else self.mantissa + 2

    @property
    def alignment_window(self) -> int:
        """Maximum right-shift distance the alignment barrel shifter
        supports.  Beyond twice the significand width the shifted-in
        bits are rounded away, so the window is clamped there (RedCIM-
        style units do the same)."""
        if not self.is_float:
            return 0
        max_shift = (1 << self.exponent) - 1
        return min(max_shift, 2 * (self.mantissa + 2))

    @property
    def int_width_after_alignment(self) -> int:
        """Width of the integer lane the format needs post-alignment."""
        return self.bits if not self.is_float else self.serial_bits

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable description (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "bits": self.bits,
            "exponent": self.exponent,
            "mantissa": self.mantissa,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DataFormat":
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            bits=int(data["bits"]),  # type: ignore[arg-type]
            exponent=int(data.get("exponent", 0)),  # type: ignore[arg-type]
            mantissa=int(data.get("mantissa", 0)),  # type: ignore[arg-type]
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _int_format(bits: int) -> DataFormat:
    return DataFormat(name=f"INT{bits}", kind="int", bits=bits)


#: Formats named in the paper (Sections II.A and IV).
INT1 = _int_format(1)
INT2 = _int_format(2)
INT4 = _int_format(4)
INT8 = _int_format(8)
INT12 = _int_format(12)
FP4 = DataFormat(name="FP4", kind="fp", bits=4, exponent=2, mantissa=1)
FP8 = DataFormat(name="FP8", kind="fp", bits=8, exponent=4, mantissa=3)
BF16 = DataFormat(name="BF16", kind="fp", bits=16, exponent=8, mantissa=7)

FORMATS: Dict[str, DataFormat] = {
    f.name: f for f in (INT1, INT2, INT4, INT8, INT12, FP4, FP8, BF16)
}


def parse_format(name: str) -> DataFormat:
    """Look up a format by name (``"INT8"``, ``"FP8"``, ``"BF16"``...)."""
    try:
        return FORMATS[name.upper()]
    except KeyError:
        raise SpecificationError(
            f"unknown data format {name!r}; known: {sorted(FORMATS)}"
        ) from None


@dataclass(frozen=True)
class PPAWeights:
    """Relative preference among power, performance (delay) and area.

    The searcher scores candidate macros with a weighted geometric mean,
    so only the ratios between the weights matter.  All weights must be
    non-negative and at least one positive.
    """

    power: float = 1.0
    performance: float = 1.0
    area: float = 1.0

    def __post_init__(self) -> None:
        weights = (self.power, self.performance, self.area)
        if any(w < 0 for w in weights):
            raise SpecificationError(f"PPA weights must be >= 0, got {weights}")
        if all(w == 0 for w in weights):
            raise SpecificationError("at least one PPA weight must be positive")

    def normalized(self) -> "PPAWeights":
        total = self.power + self.performance + self.area
        return PPAWeights(
            power=self.power / total,
            performance=self.performance / total,
            area=self.area / total,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "power": self.power,
            "performance": self.performance,
            "area": self.area,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PPAWeights":
        return cls(
            power=float(data.get("power", 1.0)),  # type: ignore[arg-type]
            performance=float(data.get("performance", 1.0)),  # type: ignore[arg-type]
            area=float(data.get("area", 1.0)),  # type: ignore[arg-type]
        )

    def score(self, power_mw: float, delay_ns: float, area_um2: float) -> float:
        """Lower-is-better scalar cost: weighted geometric mean of PPA."""
        n = self.normalized()
        eps = 1e-12
        return math.exp(
            n.power * math.log(max(power_mw, eps))
            + n.performance * math.log(max(delay_ns, eps))
            + n.area * math.log(max(area_um2, eps))
        )


ENERGY_FIRST = PPAWeights(power=3.0, performance=1.0, area=1.0)
AREA_FIRST = PPAWeights(power=1.0, performance=1.0, area=3.0)
BALANCED = PPAWeights()


@dataclass(frozen=True)
class MacroSpec:
    """Complete user specification of one DCIM macro.

    Parameters
    ----------
    height:
        Number of accumulated rows ``H`` (inputs summed per column).
    width:
        Number of physical bit-columns ``W``.
    mcr:
        Memory-compute ratio: SRAM rows stored per compute row.  ``mcr=2``
        doubles on-macro weight storage and needs a multiplexer in front
        of each multiplier.
    input_formats / weight_formats:
        Data formats the macro must support.  The widest integer width
        (after FP alignment) sizes the datapath.
    mac_frequency_mhz / update_frequency_mhz:
        Target MAC clock and weight-update clock at ``vdd``.
    vdd:
        Supply voltage the constraints refer to.
    ppa:
        Preference weights used to pick among Pareto-optimal candidates.
    """

    height: int = 64
    width: int = 64
    mcr: int = 2
    input_formats: Tuple[DataFormat, ...] = (INT4, INT8)
    weight_formats: Tuple[DataFormat, ...] = (INT4, INT8)
    mac_frequency_mhz: float = 800.0
    update_frequency_mhz: float = 800.0
    vdd: float = 0.9
    ppa: PPAWeights = field(default_factory=PPAWeights)

    def __post_init__(self) -> None:
        if self.height < 4 or self.height & (self.height - 1):
            raise SpecificationError(
                f"height must be a power of two >= 4, got {self.height}"
            )
        if self.width < 4 or self.width & (self.width - 1):
            raise SpecificationError(
                f"width must be a power of two >= 4, got {self.width}"
            )
        if self.mcr < 1 or self.mcr > 8:
            raise SpecificationError(f"mcr must be in [1, 8], got {self.mcr}")
        if not self.input_formats or not self.weight_formats:
            raise SpecificationError("at least one input and weight format required")
        if self.mac_frequency_mhz <= 0 or self.update_frequency_mhz <= 0:
            raise SpecificationError("frequencies must be positive")
        if not 0.5 <= self.vdd <= 1.3:
            raise SpecificationError(f"vdd {self.vdd} outside supported 0.5..1.3 V")

    # -- derived datapath dimensions -------------------------------------

    @property
    def input_width(self) -> int:
        """Serial input bit-width: widest operand among the inputs."""
        return max(f.serial_bits for f in self.input_formats)

    @property
    def max_weight_bits(self) -> int:
        """Widest weight precision rounded up to a power of two (the OFU
        fuses columns pairwise, stage by stage)."""
        widest = max(f.storage_bits for f in self.weight_formats)
        bits = 2  # INT1 weights ride the INT2 datapath
        while bits < widest:
            bits *= 2
        return bits

    @property
    def needs_fp(self) -> bool:
        """Whether an FP/INT alignment unit is required at all."""
        return any(f.is_float for f in self.input_formats) or any(
            f.is_float for f in self.weight_formats
        )

    @property
    def adder_tree_inputs(self) -> int:
        """Rows summed by one column's adder tree."""
        return self.height

    @property
    def tree_sum_width(self) -> int:
        """Bit-width of one column's adder-tree output (unsigned count)."""
        return int(math.floor(math.log2(self.height))) + 1

    @property
    def accumulator_width(self) -> int:
        """Bit-width of the per-column S&A accumulator: the tree sum
        grows by one position per serial input bit."""
        return self.tree_sum_width + self.input_width

    @property
    def ofu_stages(self) -> int:
        """Column-fusion stages needed for the widest weight format."""
        return max(0, int(math.log2(self.max_weight_bits)))

    @property
    def sram_rows(self) -> int:
        """Physical SRAM rows including the MCR storage banks."""
        return self.height * self.mcr

    @property
    def storage_bits(self) -> int:
        return self.sram_rows * self.width

    @property
    def mac_period_ns(self) -> float:
        return 1e3 / self.mac_frequency_mhz

    def describe(self) -> str:
        fmts_i = "/".join(f.name for f in self.input_formats)
        fmts_w = "/".join(f.name for f in self.weight_formats)
        return (
            f"{self.height}x{self.width} MCR={self.mcr} "
            f"in[{fmts_i}] w[{fmts_w}] "
            f"@{self.mac_frequency_mhz:.0f}MHz {self.vdd}V"
        )

    def replace(self, **changes: object) -> "MacroSpec":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    # -- serialization / identity ----------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable description (inverse of :meth:`from_dict`).

        Used by the batch engine to ship specs across process boundaries
        and by the result cache to key artifacts, so it must cover every
        field that affects compilation.
        """
        return {
            "height": self.height,
            "width": self.width,
            "mcr": self.mcr,
            "input_formats": [f.to_dict() for f in self.input_formats],
            "weight_formats": [f.to_dict() for f in self.weight_formats],
            "mac_frequency_mhz": self.mac_frequency_mhz,
            "update_frequency_mhz": self.update_frequency_mhz,
            "vdd": self.vdd,
            "ppa": self.ppa.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MacroSpec":
        return cls(
            height=int(data["height"]),  # type: ignore[arg-type]
            width=int(data["width"]),  # type: ignore[arg-type]
            mcr=int(data.get("mcr", 2)),  # type: ignore[arg-type]
            input_formats=tuple(
                DataFormat.from_dict(d) for d in data["input_formats"]  # type: ignore[union-attr]
            ),
            weight_formats=tuple(
                DataFormat.from_dict(d) for d in data["weight_formats"]  # type: ignore[union-attr]
            ),
            mac_frequency_mhz=float(data.get("mac_frequency_mhz", 800.0)),  # type: ignore[arg-type]
            update_frequency_mhz=float(data.get("update_frequency_mhz", 800.0)),  # type: ignore[arg-type]
            vdd=float(data.get("vdd", 0.9)),  # type: ignore[arg-type]
            ppa=PPAWeights.from_dict(data.get("ppa", {})),  # type: ignore[arg-type]
        )

    def canonical_json(self) -> str:
        """Deterministic JSON encoding: sorted keys, no whitespace.

        Two equal specs always encode to the same string, in any
        process, so the encoding (and the hash derived from it) can key
        an on-disk cache shared between machines.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """Stable hex digest identifying this spec's content.

        ``hashlib`` based, unlike ``hash()``, so the value survives
        ``PYTHONHASHSEED`` randomization and process restarts.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


def spec_from_strings(
    height: int,
    width: int,
    mcr: int,
    formats: Sequence[str],
    mac_frequency_mhz: float = 800.0,
    **kwargs: object,
) -> MacroSpec:
    """Convenience constructor from format names shared by inputs/weights."""
    parsed = tuple(parse_format(name) for name in formats)
    return MacroSpec(
        height=height,
        width=width,
        mcr=mcr,
        input_formats=parsed,
        weight_formats=parsed,
        mac_frequency_mhz=mac_frequency_mhz,
        **kwargs,  # type: ignore[arg-type]
    )
