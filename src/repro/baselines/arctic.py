"""ARCTIC-style baseline compiler (DATE'24 [8]).

ARCTIC parameterizes INT/FP precision in the peripherals (so, unlike
AutoDCIM, it sizes the alignment unit and OFU from the spec) but still
performs no multi-spec subcircuit search: the datapath style is fixed
and timing problems are answered with the single blunt instrument of
deeper pipelining (paper Table I: parameterized precision, not
performance-aware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arch import MacroArchitecture
from ..scl.library import SubcircuitLibrary, default_scl
from ..search.estimate import MacroEstimate, estimate_macro
from ..spec import MacroSpec


@dataclass(frozen=True)
class ArcticResult:
    spec: MacroSpec
    estimate: MacroEstimate
    pipeline_steps_used: int

    @property
    def meets_timing(self) -> bool:
        return self.estimate.met


class ArcticCompiler:
    """Parameterized-precision compiler with pipeline-only timing fixes."""

    name = "ARCTIC-style"

    def __init__(self, scl: Optional[SubcircuitLibrary] = None) -> None:
        self._scl = scl

    @property
    def scl(self) -> SubcircuitLibrary:
        if self._scl is None:
            self._scl = default_scl()
        return self._scl

    def base_architecture(self, spec: MacroSpec) -> MacroArchitecture:
        arch = MacroArchitecture(
            memcell="DCIM6T",
            mult_style="tg_nor",
            tree_style="cmp42",
            carry_reorder=False,
            reg_after_tree=True,
            reg_after_sna=True,
            driver_strength=4,
        )
        arch.validate_against(spec)
        return arch

    def compile(self, spec: MacroSpec) -> ArcticResult:
        arch = self.base_architecture(spec)
        est = estimate_macro(spec, arch, self.scl)
        steps = 0
        # Pipeline-only escalation: OFU pipeline, then column split (a
        # register-heavy move ARCTIC-style generators expose), never a
        # datapath substitution.
        while not est.met and steps < 4:
            if arch.ofu_pipeline < 2 and est.critical_segment.name.startswith(
                "ofu"
            ):
                arch = arch.replace(ofu_pipeline=arch.ofu_pipeline + 1)
            elif arch.column_split < 4 and spec.height // (
                arch.column_split * 2
            ) >= 4:
                arch = arch.replace(column_split=arch.column_split * 2)
            elif arch.ofu_pipeline < 2:
                arch = arch.replace(ofu_pipeline=arch.ofu_pipeline + 1)
            else:
                break
            steps += 1
            est = estimate_macro(spec, arch, self.scl)
        return ArcticResult(spec=spec, estimate=est, pipeline_steps_used=steps)
