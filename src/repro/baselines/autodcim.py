"""AutoDCIM-style baseline compiler (DAC'23 [5]).

AutoDCIM assembles template cell layouts into an array: it automates
layout generation but is *not* performance-aware — no subcircuit search,
no timing repair, no multi-spec optimization (paper Table I).  This
baseline reproduces that behaviour on our substrate: one fixed template
architecture per spec (1T passing-gate multiplexer, pure compressor
tree, fully registered pipeline), priced with the same SCL and
implementable through the same flow, so Fig. 8 can show the searched
frontier against the template point on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch import MacroArchitecture
from ..errors import SpecificationError
from ..scl.library import SubcircuitLibrary, default_scl
from ..search.estimate import MacroEstimate, estimate_macro
from ..spec import MacroSpec


def template_architecture(spec: MacroSpec) -> MacroArchitecture:
    """AutoDCIM's fixed template: area-lean cells, no timing awareness.

    The 1T passing gate is AutoDCIM's signature multiplexer choice
    (paper Section II.B, option 1).
    """
    arch = MacroArchitecture(
        memcell="DCIM6T",
        mult_style="pg_1t",
        tree_style="cmp42",
        tree_fa_levels=0,
        carry_reorder=False,
        column_split=1,
        reg_after_tree=True,
        reg_after_sna=True,
        ofu_pipeline=0,
        ofu_retimed=False,
        driver_strength=4,
    )
    arch.validate_against(spec)
    return arch


@dataclass(frozen=True)
class AutoDCIMResult:
    spec: MacroSpec
    estimate: MacroEstimate

    @property
    def meets_timing(self) -> bool:
        return self.estimate.met

    @property
    def achievable_frequency_mhz(self) -> float:
        """Template compilers report what the template achieves rather
        than repairing it."""
        return 1e3 / self.estimate.critical_path_ns


class AutoDCIMCompiler:
    """Template-assembly compiler: no search, no fixes."""

    name = "AutoDCIM-style"

    def __init__(self, scl: Optional[SubcircuitLibrary] = None) -> None:
        self._scl = scl

    @property
    def scl(self) -> SubcircuitLibrary:
        if self._scl is None:
            self._scl = default_scl()
        return self._scl

    def compile(self, spec: MacroSpec) -> AutoDCIMResult:
        arch = template_architecture(spec)
        est = estimate_macro(spec, arch, self.scl)
        return AutoDCIMResult(spec=spec, estimate=est)
