"""Published state-of-the-art DCIM macros (paper Table II comparands).

Table II compares the SynDCIM test chip against manually designed
macros from ISSCC.  Those numbers are published measurements, not
something we can re-simulate, so this module encodes them together with
the normalization the paper applies (scaling energy and area efficiency
to 1b-1b precision) — the same treatment the survey tables in the DCIM
literature use.

The entries follow the papers cited in Table II / the references:
[1] ISSCC'21 22nm, [2] ISSCC'22 5nm, [3] ISSCC'23 4nm, [14] TCAS-I'24
28nm reconfigurable, plus AutoDCIM's DAC'23 28nm compiled macro.
Numbers are the headline figures of those publications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class PublishedMacro:
    """One published DCIM design with its headline numbers."""

    name: str
    venue: str
    node_nm: int
    array: str
    supply_v: float
    precision: str
    input_bits: int
    weight_bits: int
    tops_per_watt: float          # at the stated precision & conditions
    tops_per_mm2: float
    fmax_mhz: float
    handcrafted: bool = True
    sparsity_boosted: bool = False

    @property
    def tops_per_watt_1b(self) -> float:
        """Scale to 1b-1b the way the paper's comparison row does."""
        return self.tops_per_watt * self.input_bits * self.weight_bits

    @property
    def tops_per_mm2_1b(self) -> float:
        return self.tops_per_mm2 * self.input_bits * self.weight_bits


#: Table II comparands (published measurements).
SOTA_MACROS: Tuple[PublishedMacro, ...] = (
    PublishedMacro(
        name="TSMC ISSCC'21",
        venue="ISSCC 2021 [1]",
        node_nm=22,
        array="64x64x4",
        supply_v=0.72,
        precision="INT4",
        input_bits=4,
        weight_bits=4,
        tops_per_watt=89.0,
        tops_per_mm2=16.3,
        fmax_mhz=1000.0,
    ),
    PublishedMacro(
        name="TSMC ISSCC'22",
        venue="ISSCC 2022 [2]",
        node_nm=5,
        array="256x4x64",
        supply_v=0.9,
        precision="INT4",
        input_bits=4,
        weight_bits=4,
        tops_per_watt=254.0,
        tops_per_mm2=221.0,
        fmax_mhz=1200.0,
    ),
    PublishedMacro(
        name="TSMC ISSCC'23",
        venue="ISSCC 2023 [3]",
        node_nm=4,
        array="64x64",
        supply_v=0.65,
        precision="INT1 (per-bit)",
        input_bits=1,
        weight_bits=1,
        tops_per_watt=6163.0,
        tops_per_mm2=4790.0,
        fmax_mhz=1400.0,
        sparsity_boosted=True,
    ),
    PublishedMacro(
        name="TCAS-I'24 reconfig",
        venue="TCAS-I 2024 [14]",
        node_nm=28,
        array="64x64",
        supply_v=0.9,
        precision="INT8",
        input_bits=8,
        weight_bits=8,
        tops_per_watt=21.0,
        tops_per_mm2=8.4,
        fmax_mhz=500.0,
    ),
    PublishedMacro(
        name="AutoDCIM DAC'23",
        venue="DAC 2023 [5]",
        node_nm=28,
        array="64x64",
        supply_v=0.9,
        precision="INT8",
        input_bits=8,
        weight_bits=8,
        tops_per_watt=12.5,
        tops_per_mm2=5.1,
        fmax_mhz=333.0,
        handcrafted=False,
    ),
)


def node_scale_energy(from_nm: int, to_nm: int) -> float:
    """First-order energy scaling between nodes (E ~ node); used only
    for sanity discussion, never silently applied to Table II rows."""
    return from_nm / to_nm


def table2_rows(include_1b: bool = True) -> List[List[object]]:
    """Rows for the Table II bench: published numbers + normalization."""
    rows: List[List[object]] = []
    for m in SOTA_MACROS:
        row: List[object] = [
            m.name,
            f"{m.node_nm}nm",
            m.array,
            m.precision,
            f"{m.supply_v:.2f}V",
            m.tops_per_watt,
            m.tops_per_mm2,
        ]
        if include_1b:
            row += [m.tops_per_watt_1b, m.tops_per_mm2_1b]
        rows.append(row)
    return rows
