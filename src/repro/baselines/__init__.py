"""Baseline compilers and published-macro models for the comparisons.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .autodcim import AutoDCIMCompiler, AutoDCIMResult, template_architecture
from .arctic import ArcticCompiler, ArcticResult
from .manual import SOTA_MACROS, PublishedMacro, table2_rows

__all__ = [
    "AutoDCIMCompiler",
    "AutoDCIMResult",
    "template_architecture",
    "ArcticCompiler",
    "ArcticResult",
    "SOTA_MACROS",
    "PublishedMacro",
    "table2_rows",
]
