"""Macro architecture description — the searcher's decision variables.

A :class:`MacroArchitecture` pins down every discrete implementation
choice the multi-spec-oriented searcher can make for a given
:class:`~repro.spec.MacroSpec`: which memory cell, which
multiplier/multiplexer style, which adder-tree family and FA/compressor
mix, whether columns are split, where pipeline registers sit, and how
strongly the word lines are driven.  The RTL generators consume an
architecture and emit netlists; the subcircuit library prices one
without building it.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Tuple

from .errors import SpecificationError
from .spec import MacroSpec

#: Memory-cell options (paper Section II.B "Memory Cell").
MEMCELLS = ("DCIM6T", "DCIM8T", "DCIM12T", "RRAM_HYB")
#: Multiplier/multiplexer options (paper Section II.B, three styles).
MULT_STYLES = ("tg_nor", "oai22", "pg_1t")
#: Adder-tree families (paper Section III.B / Fig. 4).
TREE_STYLES = ("rca", "cmp42", "mixed")
#: WL driver strengths available in the library.
DRIVER_STRENGTHS = (2, 4, 8)


@dataclass(frozen=True)
class MacroArchitecture:
    """One fully-specified implementation point for a macro.

    Attributes
    ----------
    memcell:
        Bitcell used for the compute rows (storage banks always use the
        compact ``SRAM6T``).
    mult_style:
        ``tg_nor`` (transmission gate + NOR), ``oai22`` (fused, MCR<=2
        only) or ``pg_1t`` (1T passing gate).
    tree_style / tree_fa_levels / carry_reorder:
        Adder-tree family; for ``mixed``, the number of final reduction
        levels implemented with full adders instead of 4-2 compressors;
        whether late-arriving bits are steered to fast compressor ports.
    column_split:
        1 (no split), 2 or 4 — splits each column's accumulation into
        ``column_split`` sub-trees with a registered combiner (the
        searcher's big hammer for timing).
    reg_after_tree / reg_after_sna:
        Pipeline registers between adder tree and S&A, and between S&A
        and OFU.  The searcher removes them when the merged path still
        meets timing (paper Fig. 5 "merge registers").
    ofu_pipeline:
        Extra pipeline stages inside the OFU (0, 1 or 2).
    ofu_retimed:
        Whether OFU front-end combinational logic was retimed into the
        S&A stage.
    ofu_csel:
        Use carry-select adders in the OFU fusion stages (the SCL's
        "faster adder" for the output path): shorter carry chains at an
        area/power premium.
    driver_strength:
        BUF_X drive (2/4/8) of the word-line drivers.
    vt:
        Threshold-voltage flavor the combinational logic is mapped to
        (see :data:`repro.tech.stdcells.VT_FLAVORS`).  Registers and
        bitcells always stay svt — their costs come from calibrated
        constants the estimator does not re-scale per flavor.
    """

    memcell: str = "DCIM6T"
    mult_style: str = "tg_nor"
    tree_style: str = "mixed"
    tree_fa_levels: int = 0
    carry_reorder: bool = True
    column_split: int = 1
    reg_after_tree: bool = True
    reg_after_sna: bool = True
    ofu_pipeline: int = 0
    ofu_retimed: bool = False
    ofu_csel: bool = False
    driver_strength: int = 4
    vt: str = "svt"

    def __post_init__(self) -> None:
        if self.memcell not in MEMCELLS:
            raise SpecificationError(f"unknown memcell {self.memcell!r}")
        if self.mult_style not in MULT_STYLES:
            raise SpecificationError(f"unknown mult style {self.mult_style!r}")
        if self.tree_style not in TREE_STYLES:
            raise SpecificationError(f"unknown tree style {self.tree_style!r}")
        if self.tree_fa_levels < 0:
            raise SpecificationError("tree_fa_levels must be >= 0")
        if self.tree_style != "mixed" and self.tree_fa_levels:
            raise SpecificationError("tree_fa_levels only meaningful for 'mixed'")
        if self.column_split not in (1, 2, 4):
            raise SpecificationError("column_split must be 1, 2 or 4")
        if self.ofu_pipeline not in (0, 1, 2):
            raise SpecificationError("ofu_pipeline must be 0, 1 or 2")
        if self.driver_strength not in DRIVER_STRENGTHS:
            raise SpecificationError(
                f"driver_strength must be one of {DRIVER_STRENGTHS}"
            )
        from .tech.stdcells import VT_FLAVORS

        if self.vt not in VT_FLAVORS:
            raise SpecificationError(
                f"vt must be one of {tuple(sorted(VT_FLAVORS))}"
            )

    def validate_against(self, spec: MacroSpec) -> None:
        """Check architecture/spec compatibility (e.g. OAI22 MCR limit)."""
        if self.mult_style == "oai22" and spec.mcr > 2:
            raise SpecificationError(
                "OAI22 fused multiplier-multiplexer does not scale beyond MCR=2"
            )
        if self.column_split > 1 and spec.height // self.column_split < 4:
            raise SpecificationError(
                f"column_split {self.column_split} leaves sub-trees below 4 rows"
            )

    def subtree_inputs(self, spec: MacroSpec) -> int:
        """Rows accumulated by each sub-tree after column splitting."""
        return spec.height // self.column_split

    def tree_levels(self, spec: MacroSpec) -> int:
        """Carry-save reduction levels for the (possibly split) tree."""
        n = self.subtree_inputs(spec)
        if self.tree_style == "rca":
            return max(1, math.ceil(math.log2(n)))
        levels = 0
        while n > 2:
            n = math.ceil(n / 2)  # a 4-2 compressor level halves the rows
            levels += 1
        return max(1, levels)

    def replace(self, **changes: object) -> "MacroArchitecture":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-serializable description (inverse of :meth:`from_dict`);
        lets the batch engine ship explicit architecture choices to
        worker processes and store them in cached results."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MacroArchitecture":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def knob_summary(self) -> str:
        parts = [
            self.memcell,
            self.mult_style,
            self.tree_style
            + (f"-fa{self.tree_fa_levels}" if self.tree_style == "mixed" else ""),
            "reord" if self.carry_reorder else "noreord",
            f"split{self.column_split}",
            f"regs{int(self.reg_after_tree)}{int(self.reg_after_sna)}",
            f"ofu{self.ofu_pipeline}{'r' if self.ofu_retimed else ''}"
            + ("c" if self.ofu_csel else ""),
            f"drv{self.driver_strength}",
        ]
        if self.vt != "svt":
            parts.append(self.vt)
        return "/".join(parts)


def default_architecture(spec: MacroSpec) -> MacroArchitecture:
    """The template-assembly starting point (what AutoDCIM would build)."""
    arch = MacroArchitecture()
    arch.validate_against(spec)
    return arch


def architecture_space(spec: MacroSpec) -> Tuple[MacroArchitecture, ...]:
    """Enumerate the full discrete design space valid for ``spec``.

    The searcher does not brute-force this set (it walks Algorithm 1's
    heuristic moves), but baselines and ablations sample from it and
    tests use it to validate space construction.
    """
    points = []
    for memcell in MEMCELLS:
        for mult in MULT_STYLES:
            if mult == "oai22" and spec.mcr > 2:
                continue
            for style in TREE_STYLES:
                fa_options = (0,) if style != "mixed" else (0, 1, 2, 3)
                for fa in fa_options:
                    for split in (1, 2, 4):
                        if spec.height // split < 4:
                            continue
                        points.append(
                            MacroArchitecture(
                                memcell=memcell,
                                mult_style=mult,
                                tree_style=style,
                                tree_fa_levels=fa,
                                column_split=split,
                            )
                        )
    return tuple(points)
