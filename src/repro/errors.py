"""Exception hierarchy for the SynDCIM reproduction.

All library-specific failures derive from :class:`SynDCIMError` so callers
can catch compiler problems without masking programming errors.
"""

from __future__ import annotations


class SynDCIMError(Exception):
    """Base class for all errors raised by this library."""


class SpecificationError(SynDCIMError):
    """An input specification is inconsistent or out of supported range."""


class LibraryError(SynDCIMError):
    """A subcircuit-library lookup failed (unknown topology, empty LUT...)."""


class SynthesisError(SynDCIMError):
    """RTL generation or technology mapping failed."""


class TimingError(SynDCIMError):
    """Static timing analysis failed or constraints cannot be met."""


class SearchError(SynDCIMError):
    """The multi-spec-oriented searcher could not produce a feasible design."""


class LayoutError(SynDCIMError):
    """Placement, routing, DRC or LVS failed."""


class SimulationError(SynDCIMError):
    """Functional or gate-level simulation failed."""


class BatchError(SynDCIMError):
    """Batch-engine orchestration failed (unknown resume run id,
    unreadable journal, ...) — distinct from per-job failures, which
    are data (``status="error"`` records), never exceptions."""


class ServiceError(SynDCIMError):
    """A compiler-service interaction failed: an HTTP request was
    rejected or could not reach the server, a poll timed out, or the
    queue refused an operation.  Job *failures* are data (terminal
    ``error``/``timeout`` statuses), never exceptions."""
