"""Multi-spec-oriented searching: estimation, fixes, Algorithm 1, Pareto
utilities and search-space construction.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .estimate import CLOCK_OVERHEAD_NS, MacroEstimate, Segment, estimate_macro
from .fixes import MAC_FIXES, MERGE_MOVES, OFU_FIXES, TUNING_MOVES
from .algorithm import (
    MSOSearcher,
    SearchResult,
    SearchTraceEntry,
    search,
    seed_architectures,
)
from .pareto import dominates, hypervolume_2d, pareto_front
from .space import SearchSpace, build_search_space, enumerate_architectures

__all__ = [
    "CLOCK_OVERHEAD_NS",
    "MacroEstimate",
    "Segment",
    "estimate_macro",
    "MAC_FIXES",
    "MERGE_MOVES",
    "OFU_FIXES",
    "TUNING_MOVES",
    "MSOSearcher",
    "SearchResult",
    "SearchTraceEntry",
    "search",
    "seed_architectures",
    "dominates",
    "hypervolume_2d",
    "pareto_front",
    "SearchSpace",
    "build_search_space",
    "enumerate_architectures",
]
