"""Timing-fix and fine-tuning moves of the heuristic search.

Algorithm 1 (paper Section III.C) repairs timing with an escalating
sequence of architectural moves and then claws back power/area where
slack allows.  Each move here is a pure function
``MacroArchitecture -> Optional[MacroArchitecture]`` returning ``None``
when the move does not apply, so the searcher can compose and log them
(the Fig. 5 ablation counts exactly these applications).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..arch import MacroArchitecture
from ..spec import MacroSpec

Move = Callable[[MacroSpec, MacroArchitecture], Optional[MacroArchitecture]]


@dataclass(frozen=True)
class AppliedFix:
    """Log entry: which fix produced which architecture."""

    name: str
    arch: MacroArchitecture


# --------------------------------------------------------------------------
# MAC-path timing fixes (escalation order from the paper).
# --------------------------------------------------------------------------


def faster_adder(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Swap in a faster adder tree from the SCL: RCA/compressor designs
    move to the mixed family, mixed designs gain an FA level."""
    if arch.tree_style in ("rca", "cmp42"):
        return arch.replace(tree_style="mixed", tree_fa_levels=1)
    if arch.tree_style == "mixed" and arch.tree_fa_levels < 3:
        return arch.replace(tree_fa_levels=arch.tree_fa_levels + 1)
    return None


def enable_carry_reorder(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Steer late bits onto fast compressor ports (free speedup)."""
    if not arch.carry_reorder and arch.tree_style != "rca":
        return arch.replace(carry_reorder=True)
    return None


def insert_tree_register(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Retiming on the MAC path: split tree and S&A with a register."""
    if not arch.reg_after_tree:
        return arch.replace(reg_after_tree=True)
    return None


def stronger_driver(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    if arch.driver_strength < 8:
        return arch.replace(driver_strength=arch.driver_strength * 2)
    return None


def split_column(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """The big hammer: halve the accumulated rows per tree."""
    if arch.column_split < 4 and spec.height // (arch.column_split * 2) >= 4:
        return arch.replace(column_split=arch.column_split * 2)
    return None


MAC_FIXES: Tuple[Tuple[str, Move], ...] = (
    ("faster_adder", faster_adder),
    ("carry_reorder", enable_carry_reorder),
    ("stronger_driver", stronger_driver),
    ("tree_register", insert_tree_register),
    ("column_split", split_column),
)


# --------------------------------------------------------------------------
# OFU-path timing fixes.
# --------------------------------------------------------------------------


def ofu_faster_adder(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Swap the fusion adders for the SCL's carry-select variant."""
    if not arch.ofu_csel:
        return arch.replace(ofu_csel=True)
    return None


def ofu_retime(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Move the S&A/OFU boundary register past the first fusion stage."""
    if not arch.ofu_retimed:
        return arch.replace(ofu_retimed=True, reg_after_sna=True)
    return None


def ofu_add_pipeline(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    if arch.ofu_pipeline < 2:
        return arch.replace(ofu_pipeline=arch.ofu_pipeline + 1)
    return None


OFU_FIXES: Tuple[Tuple[str, Move], ...] = (
    ("ofu_faster_adder", ofu_faster_adder),
    ("ofu_retime", ofu_retime),
    ("ofu_pipeline", ofu_add_pipeline),
)


# --------------------------------------------------------------------------
# Register merging (applied when slack allows).
# --------------------------------------------------------------------------


def merge_tree_register(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    if arch.reg_after_tree:
        return arch.replace(reg_after_tree=False)
    return None


def merge_sna_register(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Drop the OFU input bank — legal only when retiming does not rely
    on it."""
    if arch.reg_after_sna and not arch.ofu_retimed:
        return arch.replace(reg_after_sna=False)
    return None


MERGE_MOVES: Tuple[Tuple[str, Move], ...] = (
    ("merge_tree_register", merge_tree_register),
    ("merge_sna_register", merge_sna_register),
)


# --------------------------------------------------------------------------
# Power/area fine-tuning substitutions.
# --------------------------------------------------------------------------


def cheaper_multiplier(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """1T passing-gate mux: smallest, slower (area-oriented move)."""
    if arch.mult_style != "pg_1t":
        return arch.replace(mult_style="pg_1t")
    return None


def fused_multiplier(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    if arch.mult_style != "oai22" and spec.mcr <= 2:
        return arch.replace(mult_style="oai22")
    return None


def weaker_driver(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    if arch.driver_strength > 2:
        return arch.replace(driver_strength=arch.driver_strength // 2)
    return None


def calmer_adder(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Back off FA substitution toward the power/area-optimal compressor
    tree."""
    if arch.tree_style == "mixed" and arch.tree_fa_levels > 1:
        return arch.replace(tree_fa_levels=arch.tree_fa_levels - 1)
    if arch.tree_style == "mixed" and arch.tree_fa_levels == 1:
        return arch.replace(tree_style="cmp42", tree_fa_levels=0)
    if arch.tree_style == "rca":
        return arch.replace(tree_style="cmp42")
    return None


def unsplit_column(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    if arch.column_split > 1:
        return arch.replace(column_split=arch.column_split // 2)
    return None


def calmer_ofu(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Back off the carry-select fusion adders when slack allows."""
    if arch.ofu_csel:
        return arch.replace(ofu_csel=False)
    return None


TUNING_MOVES: Tuple[Tuple[str, Move], ...] = (
    ("cheaper_multiplier", cheaper_multiplier),
    ("fused_multiplier", fused_multiplier),
    ("weaker_driver", weaker_driver),
    ("calmer_adder", calmer_adder),
    ("calmer_ofu", calmer_ofu),
    ("unsplit_column", unsplit_column),
) + MERGE_MOVES


# --------------------------------------------------------------------------
# Vt-flavor moves (multi-Vt search mode).
# --------------------------------------------------------------------------

#: Slow/low-leakage -> fast/leaky, mirroring stdcells.VT_ORDER without
#: importing it (fixes stay dependency-light for the batch workers).
_VT_LADDER = ("hvt", "svt", "lvt", "ulvt")


def lower_vt(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Timing fix: step the logic flavor one notch faster (and leakier)
    on the Vt ladder — the cheapest structural-change-free speedup."""
    idx = _VT_LADDER.index(arch.vt)
    if idx + 1 < len(_VT_LADDER):
        return arch.replace(vt=_VT_LADDER[idx + 1])
    return None


def raise_vt(
    spec: MacroSpec, arch: MacroArchitecture
) -> Optional[MacroArchitecture]:
    """Tuning move: step the flavor one notch slower to shed leakage
    where slack allows (the searcher re-checks timing as usual)."""
    idx = _VT_LADDER.index(arch.vt)
    if idx > 0:
        return arch.replace(vt=_VT_LADDER[idx - 1])
    return None


#: Appended to the timing-fix escalation in ``--vt auto`` mode.
VT_TIMING_FIXES: Tuple[Tuple[str, Move], ...] = (("lower_vt", lower_vt),)

#: Appended to the fine-tuning moves in ``--vt auto`` mode.
VT_TUNING_MOVES: Tuple[Tuple[str, Move], ...] = (("raise_vt", raise_vt),)
