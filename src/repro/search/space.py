"""Search-space construction from input specifications.

"Once the input specifications are determined, we first define the
configurations of each subcircuit based on these specifications, forming
a search space" (paper Section III.C).  The space is the set of
per-subcircuit options compatible with the spec — what the seeds and
moves of :mod:`repro.search.algorithm` range over — plus helpers that
enumerate or sample it for baselines and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..arch import (
    DRIVER_STRENGTHS,
    MEMCELLS,
    MULT_STYLES,
    TREE_STYLES,
    MacroArchitecture,
    architecture_space,
)
from ..spec import MacroSpec


@dataclass(frozen=True)
class SearchSpace:
    """Per-subcircuit option sets valid for one specification."""

    spec: MacroSpec
    memcells: Tuple[str, ...]
    mult_styles: Tuple[str, ...]
    tree_styles: Tuple[str, ...]
    fa_levels: Tuple[int, ...]
    column_splits: Tuple[int, ...]
    driver_strengths: Tuple[int, ...]
    ofu_pipelines: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of distinct architecture points (registers knobs add
        a further x8 not counted here)."""
        tree_opts = 0
        for style in self.tree_styles:
            tree_opts += len(self.fa_levels) if style == "mixed" else 1
        return (
            len(self.memcells)
            * len(self.mult_styles)
            * tree_opts
            * len(self.column_splits)
            * len(self.driver_strengths)
            * len(self.ofu_pipelines)
        )

    def describe(self) -> str:
        return (
            f"search space for {self.spec.describe()}: {self.size} "
            f"architecture points (x8 register placements)"
        )


def build_search_space(spec: MacroSpec) -> SearchSpace:
    """Derive the valid option sets for a specification."""
    mult = tuple(
        s for s in MULT_STYLES if not (s == "oai22" and spec.mcr > 2)
    )
    splits = tuple(s for s in (1, 2, 4) if spec.height // s >= 4)
    return SearchSpace(
        spec=spec,
        memcells=MEMCELLS,
        mult_styles=mult,
        tree_styles=TREE_STYLES,
        fa_levels=(0, 1, 2, 3),
        column_splits=splits,
        driver_strengths=DRIVER_STRENGTHS,
        ofu_pipelines=(0, 1, 2),
    )


def enumerate_architectures(spec: MacroSpec) -> Tuple[MacroArchitecture, ...]:
    """Full discrete enumeration (delegates to :mod:`repro.arch`)."""
    return architecture_space(spec)
