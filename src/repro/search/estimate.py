"""Architecture-level macro PPA estimation from the subcircuit library.

This is the searcher's inner evaluation (paper Fig. 5 / Algorithm 1):
given a (spec, architecture) pair it assembles the macro's
register-to-register *timing segments* and its per-cycle energy and area
from SCL lookups — no netlist is built.  The paper's flow works the same
way: the heuristic search prices candidates from the LUTs, and only the
chosen Pareto designs go through synthesis/APR where real STA and power
confirm the numbers.

Segment topology (mirrors :mod:`repro.rtl.gen.macro`):

``inreg -> WL buffer + bitcell read + multiplier + (sub)tree``
then, depending on the pipeline knobs, the combiner / S&A / OFU stages
split into further segments.  Each assembled combinational segment gets
the clocking overhead (launch clock-to-Q + capture setup) added once.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Tuple

from ..arch import MacroArchitecture
from ..errors import SearchError
from ..spec import DataFormat, MacroSpec
from ..scl.builder import tree_variant
from ..scl.library import SubcircuitLibrary
from ..scl.lut import PPARecord
from ..tech.stdcells import VT_FLAVORS

#: Launch clock-to-Q + capture setup of the library DFF (ns).
CLOCK_OVERHEAD_NS = 0.085 + 0.045
#: Pre-layout to post-layout delay derating: the SCL is characterized
#: with a statistical wire-load model; SDP placement adds broadcast and
#: inter-region wires.  Calibrated against implemented 64x64 macros.
WIRE_DERATE = 1.18
#: Post-layout energy derating: routed wire capacitance and the clock
#: network roughly double the cell-intrinsic switching energy the SCL
#: records capture.  Calibrated the same way.
ENERGY_DERATE = 2.2
#: Per-bit register energy (pJ/cycle): internal + clock-pin switching.
DFF_ENERGY_PJ = (2.2 * 0.5 + 0.5 * 0.9 * 0.81 * 2.0) * 1e-3
DFF_AREA_UM2 = 4.6
DFF_LEAK_MW = 6.0 * 1e-6
#: Duty cycle assumed for the weight-update (BL) path during MAC bursts.
BL_WRITE_DUTY = 1.0 / 16.0


@dataclass(frozen=True)
class Segment:
    """One register-to-register timing segment."""

    name: str
    delay_ns: float


@dataclass(frozen=True)
class MacroEstimate:
    """LUT-based PPA estimate of one macro architecture."""

    spec: MacroSpec
    arch: MacroArchitecture
    segments: Tuple[Segment, ...]
    area_um2: float
    energy_per_cycle_pj: float
    leakage_mw: float
    mode_input: DataFormat
    mode_weight: DataFormat

    # cached_property works on frozen dataclasses (it writes straight to
    # __dict__); the repair loop reads these on every escalation step,
    # so the max() over segments runs once per estimate, not per access.
    @cached_property
    def critical_path_ns(self) -> float:
        return max(s.delay_ns for s in self.segments)

    @cached_property
    def critical_segment(self) -> Segment:
        return max(self.segments, key=lambda s: s.delay_ns)

    @property
    def met(self) -> bool:
        return self.critical_path_ns <= self.spec.mac_period_ns + 1e-9

    @property
    def slack_ns(self) -> float:
        return self.spec.mac_period_ns - self.critical_path_ns

    @property
    def power_mw(self) -> float:
        dynamic = (
            self.energy_per_cycle_pj * self.spec.mac_frequency_mhz * 1e-3
        )
        return dynamic + self.leakage_mw

    @property
    def macs_per_cycle(self) -> float:
        """MACs retired per cycle in the estimate's precision mode,
        amortized over the serial phases (native packing: weights occupy
        the next power-of-two column group, as the OFU fuses pairwise)."""
        k = self.mode_input.serial_bits
        wb = 2
        while wb < self.mode_weight.storage_bits:
            wb *= 2
        words = self.spec.width / wb
        return self.spec.height * words / k

    @property
    def tops(self) -> float:
        return 2.0 * self.macs_per_cycle * self.spec.mac_frequency_mhz * 1e-6

    @property
    def tops_per_watt(self) -> float:
        return self.tops / (self.power_mw * 1e-3)

    @property
    def tops_per_mm2(self) -> float:
        return self.tops / (self.area_um2 * 1e-6)

    def describe(self) -> str:
        segs = ", ".join(f"{s.name}={s.delay_ns:.3f}" for s in self.segments)
        return (
            f"{self.arch.knob_summary()}: crit {self.critical_path_ns:.3f} ns "
            f"({'MET' if self.met else 'VIOLATED'}), {self.power_mw:.1f} mW, "
            f"{self.area_um2 / 1e6:.4f} mm^2 [{segs}]"
        )


def estimate_macro(
    spec: MacroSpec,
    arch: MacroArchitecture,
    scl: SubcircuitLibrary,
    mode: Optional[Tuple[DataFormat, DataFormat]] = None,
) -> MacroEstimate:
    """Price one architecture from the subcircuit library."""
    arch.validate_against(spec)
    h, w, mcr = spec.height, spec.width, spec.mcr
    k = spec.input_width
    tree_w = spec.tree_sum_width
    acc_w = spec.accumulator_width
    ofu_cols = spec.max_weight_bits
    groups = w // ofu_cols
    fmt_in, fmt_w = mode or (
        max(spec.input_formats, key=lambda f: f.serial_bits),
        max(spec.weight_formats, key=lambda f: f.storage_bits),
    )

    # --- SCL lookups -------------------------------------------------------
    # The SCL is characterized at svt; other flavors re-price every
    # *logic* record by the flavor's delay/leakage factors (the same
    # laws that derived the cells — see repro.tech.stdcells).  Bitcells
    # and the DFF constants stay svt: registers and arrays are not
    # re-flavored by the vt passes either, so estimate and netlist
    # agree on what scales.
    flavor = VT_FLAVORS[arch.vt]

    def logic(rec: PPARecord) -> PPARecord:
        if arch.vt == "svt":
            return rec
        return dataclasses.replace(
            rec,
            delay_ns=rec.delay_ns * flavor.delay_factor,
            stage_delays_ns=tuple(
                d * flavor.delay_factor for d in rec.stage_delays_ns
            ),
            leakage_mw=rec.leakage_mw * flavor.leakage_factor,
        )

    wl = logic(scl.lookup("wl_driver", f"drv{arch.driver_strength}", w))
    bl = logic(scl.lookup("bl_driver", f"drv{arch.driver_strength}", h * mcr))
    mm = logic(scl.lookup("mult_mux", arch.mult_style, mcr))
    sub_n = arch.subtree_inputs(spec)
    tree = logic(
        scl.lookup(
            "adder_tree",
            tree_variant(
                arch.tree_style, arch.tree_fa_levels, arch.carry_reorder
            ),
            sub_n,
        )
    )
    sub_tree_w = int(math.floor(math.log2(sub_n))) + 1
    sa = logic(scl.lookup("shift_adder", f"k{k}", tree_w))
    if arch.vt != "svt":
        # The S&A record bakes in one clocking overhead; registers do
        # not re-flavor, so back it out of the scaling.
        sa = dataclasses.replace(
            sa,
            delay_ns=(sa.delay_ns / flavor.delay_factor - CLOCK_OVERHEAD_NS)
            * flavor.delay_factor
            + CLOCK_OVERHEAD_NS,
        )
    ofu_tag = "csel" if arch.ofu_csel else "rpl"
    ofu = logic(scl.lookup("ofu", f"c{ofu_cols}-{ofu_tag}", acc_w))
    memcell = scl.lookup("memcell", arch.memcell, 1)
    storage = scl.lookup("memcell", "SRAM6T", 1)

    # --- timing segments ---------------------------------------------------
    segments: List[Segment] = []
    front = wl.delay_ns + memcell.delay_ns + mm.delay_ns + tree.delay_ns

    combiner_delay = 0.0
    if arch.column_split > 1:
        fuse1 = logic(scl.lookup("fuse_stage", "s1-rpl", sub_tree_w))
        combiner_delay = math.log2(arch.column_split) * fuse1.delay_ns
        segments.append(Segment("mac_front", front + CLOCK_OVERHEAD_NS))
        if arch.reg_after_tree:
            segments.append(
                Segment("combine", combiner_delay + CLOCK_OVERHEAD_NS)
            )
            segments.append(Segment("sna", sa.delay_ns))
        else:
            # S&A's record already carries one clocking overhead.
            segments.append(
                Segment("combine_sna", combiner_delay + sa.delay_ns)
            )
    else:
        if arch.reg_after_tree:
            segments.append(Segment("mac_front", front + CLOCK_OVERHEAD_NS))
            segments.append(Segment("sna", sa.delay_ns))
        else:
            # S&A's record already includes one clocking overhead.
            segments.append(Segment("mac_front_sna", front + sa.delay_ns))

    # OFU segments: the S&A accumulator register always launches them.
    # Register boundaries follow the same rule the RTL generator uses.
    from ..rtl.gen.ofu import ofu_boundaries

    n_stages = len(ofu.stage_delays_ns)
    boundaries = [
        b
        for b in ofu_boundaries(
            n_stages, arch.ofu_retimed and arch.reg_after_sna, arch.ofu_pipeline
        )
        if b < n_stages
    ]

    def stages_delay(stage_indices: List[int]) -> float:
        if len(stage_indices) == n_stages:
            # Unbroken OFU: the characterized end-to-end delay captures
            # the LSB-first overlap between stages.
            return ofu.delay_ns
        return sum(ofu.stage_delays_ns[i] for i in stage_indices)

    start = 0
    for b in boundaries + [n_stages]:
        idx = list(range(start, b))
        if idx:
            segments.append(
                Segment(
                    f"ofu_s{start + 1}_{b}",
                    stages_delay(idx) + CLOCK_OVERHEAD_NS,
                )
            )
        start = b

    segments = [
        Segment(s.name, s.delay_ns * WIRE_DERATE) for s in segments
    ]

    # --- energy / area / leakage -------------------------------------------
    dff = _RegisterCost()
    energy = 0.0
    area = 0.0
    leak = 0.0

    def add(e_pj: float, a_um2: float, l_mw: float) -> None:
        nonlocal energy, area, leak
        energy += e_pj
        area += a_um2
        leak += l_mw

    # Word lines and input registers (per row).
    add(wl.energy_pj * h, wl.area_um2 * h, wl.leakage_mw * h)
    # BL drivers at write duty.
    add(bl.energy_pj * w * BL_WRITE_DUTY, bl.area_um2 * w, bl.leakage_mw * w)
    # Bitcells: compute rows + storage banks.
    n_compute = h * w
    n_storage = h * (mcr - 1) * w
    add(
        memcell.energy_pj * n_compute + storage.energy_pj * n_storage,
        memcell.area_um2 * n_compute + storage.area_um2 * n_storage,
        memcell.leakage_mw * n_compute + storage.leakage_mw * n_storage,
    )
    # Multipliers.
    add(mm.energy_pj * h * w, mm.area_um2 * h * w, mm.leakage_mw * h * w)
    # Trees (per column, possibly split).
    n_trees = w * arch.column_split
    add(tree.energy_pj * n_trees, tree.area_um2 * n_trees, tree.leakage_mw * n_trees)
    if arch.column_split > 1:
        n_regs = w * arch.column_split * sub_tree_w
        dff.add(add, n_regs)
        fuse1 = logic(scl.lookup("fuse_stage", "s1-rpl", sub_tree_w))
        n_comb = w * (arch.column_split - 1)
        add(
            fuse1.energy_pj * n_comb,
            fuse1.area_um2 * n_comb,
            fuse1.leakage_mw * n_comb,
        )
    if arch.reg_after_tree:
        dff.add(add, w * tree_w)
    # S&A per column.
    add(sa.energy_pj * w, sa.area_um2 * w, sa.leakage_mw * w)
    # OFU input register bank.
    if arch.reg_after_sna:
        dff.add(add, w * acc_w)
    # OFU fabric + pipeline registers + output registers.
    add(ofu.energy_pj * groups, ofu.area_um2 * groups, ofu.leakage_mw * groups)
    out_w = acc_w
    for s in range(1, n_stages + 1):
        out_w = out_w + (1 << (s - 1)) + 1
        if s in boundaries:
            dff.add(add, groups * out_w)
    dff.add(add, groups * out_w)  # output registers
    # Alignment unit (FP modes only; amortized over the serial phases).
    if fmt_in.is_float:
        align = logic(scl.lookup("alignment", fmt_in.name, h))
        add(
            align.energy_pj / max(fmt_in.serial_bits, 1),
            align.area_um2,
            align.leakage_mw,
        )
    elif spec.needs_fp:
        # Hardware present but bypassed: area/leakage, no switching.
        widest = max(
            (f for f in spec.input_formats if f.is_float),
            key=lambda f: f.bits,
            default=None,
        )
        if widest is not None:
            align = logic(scl.lookup("alignment", widest.name, h))
            add(0.0, align.area_um2, align.leakage_mw)

    # Mode-dependent activity derating: narrower serial words toggle the
    # same fabric for fewer cycles per MAC but each cycle looks alike;
    # weight-mode does not change per-cycle energy.  (Per-cycle energy is
    # therefore mode-independent except for alignment — matching how the
    # paper reports FP overheads.)

    return MacroEstimate(
        spec=spec,
        arch=arch,
        segments=tuple(segments),
        area_um2=area / _UTILIZATION,
        energy_per_cycle_pj=energy * ENERGY_DERATE,
        leakage_mw=leak,
        mode_input=fmt_in,
        mode_weight=fmt_w,
    )


#: Area divisor converting cell area to floorplan area (matches the SDP
#: placer's achieved utilization).
_UTILIZATION = 0.70


class _RegisterCost:
    """Helper adding register-bank costs uniformly."""

    def add(self, sink, bits: float) -> None:
        sink(DFF_ENERGY_PJ * bits, DFF_AREA_UM2 * bits, DFF_LEAK_MW * bits)
