"""Multi-spec-oriented (MSO) searcher — Algorithm 1 of the paper.

Heuristic hierarchical search over the architectural design space:

1. *Search-space definition* — seed architectures biased toward energy,
   area, performance and robustness are derived from the specification
   (:func:`seed_architectures`).
2. *Timing repair* — for each seed, the MAC path is checked against the
   target period and repaired with the escalation sequence: faster adder
   from the SCL, carry reordering, stronger drivers, retiming (insert
   the tree/S&A register), and finally column splitting; then the OFU
   path with retiming and extra pipelining.
3. *Register merging* — boundary registers are removed when the merged
   combinational path still meets timing.
4. *Fine tuning* — power/area-oriented substitutions are applied while
   they keep timing and improve the candidate's weighted PPA score.

Every feasible point visited is recorded; the result is the Pareto
frontier over (power, area) at the met frequency, ready for user
selection and implementation (paper Fig. 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch import MacroArchitecture
from ..errors import SearchError
from ..spec import MacroSpec, PPAWeights
from ..scl.library import SubcircuitLibrary, default_scl
from .estimate import MacroEstimate, estimate_macro
from .fixes import MAC_FIXES, MERGE_MOVES, OFU_FIXES, TUNING_MOVES
from .pareto import pareto_front

#: Safety cap on repair iterations per seed.
MAX_REPAIR_STEPS = 24


@dataclass(frozen=True)
class SearchTraceEntry:
    seed: str
    move: str
    estimate: MacroEstimate


@dataclass
class SearchResult:
    """Everything the searcher produced for one specification."""

    spec: MacroSpec
    candidates: List[MacroEstimate]
    frontier: List[MacroEstimate]
    trace: List[SearchTraceEntry] = field(default_factory=list)
    fix_counts: Dict[str, int] = field(default_factory=dict)
    #: Signoff-corner slack (ns) per candidate architecture (keyed by
    #: ``arch.knob_summary()``), filled only when the searcher was
    #: given a signoff SCL.  Feasibility stays TT; this is the ranking
    #: signal ``select`` prefers and the escalation phase improves.
    signoff_slacks: Dict[str, float] = field(default_factory=dict)
    #: Name of the signoff corner the slacks were priced at, if any.
    signoff_corner: Optional[str] = None

    def signoff_slack(self, est: MacroEstimate) -> Optional[float]:
        return self.signoff_slacks.get(est.arch.knob_summary())

    def select(self, ppa: Optional[PPAWeights] = None) -> MacroEstimate:
        """Pick the frontier point minimizing the weighted PPA score.

        When signoff-corner slacks are available, frontier points that
        already meet timing at the signoff corner outrank those that
        rely on post-layout escalation; the weighted score breaks ties
        inside each class.
        """
        weights = ppa or self.spec.ppa
        if not self.frontier:
            raise SearchError(
                f"no feasible design for {self.spec.describe()}; "
                "relax the frequency or grow the array"
            )
        pool = self.frontier
        if self.signoff_slacks:
            met = []
            for e in pool:
                slack = self.signoff_slack(e)
                if slack is not None and slack >= -1e-9:
                    met.append(e)
            if met:
                pool = met
        return min(
            pool,
            key=lambda e: weights.score(
                e.power_mw, e.critical_path_ns, e.area_um2
            ),
        )

    def describe(self) -> str:
        lines = [
            f"search for {self.spec.describe()}: "
            f"{len(self.candidates)} feasible candidates, "
            f"{len(self.frontier)} on the Pareto frontier"
        ]
        for est in self.frontier:
            line = f"  {est.describe()}"
            slack = self.signoff_slack(est)
            if slack is not None:
                line += f" [{self.signoff_corner} slack {slack:+.3f} ns]"
            lines.append(line)
        return "\n".join(lines)


def seed_architectures(
    spec: MacroSpec, seed: Optional[int] = None
) -> List[Tuple[str, MacroArchitecture]]:
    """Bias-diverse starting points derived from the specification.

    The list is fully deterministic; ``seed`` only permutes the
    exploration *order* (reproducibly, via ``random.Random(seed)``),
    which exercises order-independence of the search without ever making
    two runs with the same seed disagree — a requirement for the batch
    engine's result cache.
    """
    seeds: List[Tuple[str, MacroArchitecture]] = [
        (
            "energy",
            MacroArchitecture(
                tree_style="cmp42",
                mult_style="tg_nor",
                driver_strength=2,
                reg_after_tree=True,
                reg_after_sna=False,
            ),
        ),
        (
            "area",
            MacroArchitecture(
                tree_style="cmp42",
                mult_style="pg_1t",
                driver_strength=2,
                reg_after_tree=False,
                reg_after_sna=False,
            ),
        ),
        (
            "performance",
            MacroArchitecture(
                tree_style="mixed",
                tree_fa_levels=2,
                mult_style="tg_nor",
                driver_strength=8,
                reg_after_tree=True,
                reg_after_sna=True,
            ),
        ),
        (
            "balanced",
            MacroArchitecture(),
        ),
        (
            "robust",
            MacroArchitecture(memcell="DCIM8T", tree_style="cmp42"),
        ),
    ]
    if spec.mcr <= 2:
        seeds.append(
            (
                "fused",
                MacroArchitecture(
                    mult_style="oai22", tree_style="cmp42", driver_strength=2
                ),
            )
        )
    valid = []
    for name, arch in seeds:
        try:
            arch.validate_against(spec)
        except Exception:
            continue
        valid.append((name, arch))
    if seed is not None:
        random.Random(seed).shuffle(valid)
    return valid


class MSOSearcher:
    """The multi-spec-oriented searcher.

    The fix families can be overridden (usually *restricted*) for
    ablation studies — e.g. the Fig. 5 bench disables retiming or column
    splitting to quantify each technique's contribution.
    """

    def __init__(
        self,
        scl: Optional[SubcircuitLibrary] = None,
        mac_fixes=MAC_FIXES,
        ofu_fixes=OFU_FIXES,
        merge_moves=MERGE_MOVES,
        tuning_moves=TUNING_MOVES,
        seed: Optional[int] = None,
        signoff_scl: Optional[SubcircuitLibrary] = None,
        vt: str = "svt",
    ) -> None:
        from ..tech.stdcells import VT_FLAVORS
        from .fixes import VT_TIMING_FIXES, VT_TUNING_MOVES

        if vt != "auto" and vt not in VT_FLAVORS:
            raise SearchError(
                f"vt must be 'auto' or one of {tuple(sorted(VT_FLAVORS))}, "
                f"got {vt!r}"
            )
        self._scl = scl
        self.mac_fixes = tuple(mac_fixes)
        self.ofu_fixes = tuple(ofu_fixes)
        self.merge_moves = tuple(merge_moves)
        self.tuning_moves = tuple(tuning_moves)
        #: ``"auto"`` lets the search walk the Vt ladder: lower_vt joins
        #: the timing escalation, raise_vt the leakage fine-tuning.  A
        #: concrete flavor pins every seed (and thus every candidate) to
        #: that flavor instead.
        self.vt = vt
        if vt == "auto":
            self.mac_fixes += VT_TIMING_FIXES
            self.tuning_moves = tuple(VT_TUNING_MOVES) + self.tuning_moves
        self.seed = seed
        #: Corner-characterized SCL (see ``default_scl(corner=...)``):
        #: candidates are *optimized* at TT (feasibility, PPA scoring)
        #: but additionally priced here, and the searcher escalates
        #: toward non-negative slack at this corner.
        self.signoff_scl = signoff_scl
        # Per-search memo for corner estimates: repair, merge, tune and
        # candidate recording all price the same architectures.
        self._signoff_memo: Dict[Tuple[MacroSpec, MacroArchitecture],
                                 MacroEstimate] = {}

    @property
    def scl(self) -> SubcircuitLibrary:
        if self._scl is None:
            self._scl = default_scl()
        return self._scl

    # -- public API -----------------------------------------------------------

    def search(self, spec: MacroSpec) -> SearchResult:
        self._signoff_memo.clear()
        result = SearchResult(spec=spec, candidates=[], frontier=[])
        if self.signoff_scl is not None:
            corner = self.signoff_scl.corner
            result.signoff_corner = corner.name if corner else "signoff"
        seen: Dict[str, MacroEstimate] = {}

        def record(seed: str, move: str, est: MacroEstimate) -> None:
            result.trace.append(SearchTraceEntry(seed, move, est))
            if move not in ("seed", "reject"):
                result.fix_counts[move] = result.fix_counts.get(move, 0) + 1
            if est.met:
                key = est.arch.knob_summary()
                if key not in seen:
                    seen[key] = est
                    result.candidates.append(est)
                    if self.signoff_scl is not None:
                        result.signoff_slacks[key] = self._signoff_slack(
                            spec, est.arch
                        )

        for seed_name, seed_arch in seed_architectures(spec, self.seed):
            if self.vt not in ("auto", "svt"):
                seed_arch = seed_arch.replace(vt=self.vt)
            est = self._estimate(spec, seed_arch)
            record(seed_name, "seed", est)
            est = self._repair_timing(spec, est, seed_name, record)
            if est is None or not est.met:
                continue
            est = self._repair_signoff(spec, est, seed_name, record)
            est = self._merge_registers(spec, est, seed_name, record)
            self._fine_tune(spec, est, seed_name, record)

        result.frontier = pareto_front(
            result.candidates, lambda e: (e.power_mw, e.area_um2)
        )
        result.frontier.sort(key=lambda e: e.power_mw)
        return result

    # -- phases ---------------------------------------------------------------

    def _estimate(
        self, spec: MacroSpec, arch: MacroArchitecture
    ) -> MacroEstimate:
        return estimate_macro(spec, arch, self.scl)

    def _signoff_estimate(
        self, spec: MacroSpec, arch: MacroArchitecture
    ) -> MacroEstimate:
        key = (spec, arch)
        est = self._signoff_memo.get(key)
        if est is None:
            est = self._signoff_memo[key] = estimate_macro(
                spec, arch, self.signoff_scl
            )
        return est

    def _signoff_slack(self, spec: MacroSpec, arch: MacroArchitecture) -> float:
        return self._signoff_estimate(spec, arch).slack_ns

    def _signoff_ok(self, spec: MacroSpec, est: MacroEstimate) -> bool:
        """Timing at the signoff corner, when one is configured."""
        if self.signoff_scl is None:
            return True
        return self._signoff_estimate(spec, est.arch).met

    def _repair_timing(
        self, spec, est, seed_name, record
    ) -> Optional[MacroEstimate]:
        """Escalating MAC-path then OFU-path repair (paper Fig. 5)."""
        for _ in range(MAX_REPAIR_STEPS):
            if est.met:
                return est
            crit = est.critical_segment.name
            fixes = self.ofu_fixes if crit.startswith("ofu") else self.mac_fixes
            improved = None
            for name, move in fixes:
                candidate_arch = move(spec, est.arch)
                if candidate_arch is None:
                    continue
                try:
                    candidate = self._estimate(spec, candidate_arch)
                except Exception:
                    continue
                if candidate.critical_path_ns < est.critical_path_ns - 1e-6:
                    improved = (name, candidate)
                    break
            if improved is None:
                # Cross-path fallback: try the other fix family once.
                fallback = (
                    self.mac_fixes if crit.startswith("ofu") else self.ofu_fixes
                )
                for name, move in fallback:
                    candidate_arch = move(spec, est.arch)
                    if candidate_arch is None:
                        continue
                    try:
                        candidate = self._estimate(spec, candidate_arch)
                    except Exception:
                        # Same tolerance as the primary loop: one invalid
                        # cross-path candidate must not kill the search.
                        continue
                    if candidate.critical_path_ns < est.critical_path_ns - 1e-6:
                        improved = (name, candidate)
                        break
            if improved is None:
                record(seed_name, "infeasible", est)
                return None
            name, est = improved
            record(seed_name, name, est)
        return est if est.met else None

    def _repair_signoff(
        self, spec, est, seed_name, record
    ) -> MacroEstimate:
        """Escalate on signoff-corner slack (paper loop, worst corner).

        Runs after TT timing closes: while the corner-characterized SCL
        still prices the candidate short of the target, the same fix
        families keep escalating — but only through architectures that
        stay TT-feasible, and every step must strictly improve the
        corner's critical path.  When the corner cannot be closed at
        the estimate level the best TT-met point reached is kept (the
        LUT model carries a wire derate the placed design may not pay,
        and post-layout escalation re-checks the real corner slack).
        """
        if self.signoff_scl is None:
            return est
        s_est = self._signoff_estimate(spec, est.arch)
        for _ in range(MAX_REPAIR_STEPS):
            if s_est.met:
                return est
            crit = s_est.critical_segment.name
            primary = (
                self.ofu_fixes if crit.startswith("ofu") else self.mac_fixes
            )
            fallback = (
                self.mac_fixes if crit.startswith("ofu") else self.ofu_fixes
            )
            improved = None
            for name, move in primary + fallback:
                candidate_arch = move(spec, est.arch)
                if candidate_arch is None:
                    continue
                try:
                    candidate = self._estimate(spec, candidate_arch)
                    if not candidate.met:
                        continue
                    candidate_s = self._signoff_estimate(spec, candidate_arch)
                except Exception:
                    continue
                if candidate_s.critical_path_ns < s_est.critical_path_ns - 1e-6:
                    improved = (name, candidate, candidate_s)
                    break
            if improved is None:
                return est
            name, est, s_est = improved
            record(seed_name, name, est)
        return est

    def _merge_registers(self, spec, est, seed_name, record) -> MacroEstimate:
        """Remove boundary registers while the merged path meets timing
        (and, when a signoff corner is configured, does not fall out of
        a corner-met state the escalation just reached)."""
        hold_signoff = self._signoff_ok(spec, est)
        changed = True
        while changed:
            changed = False
            for name, move in self.merge_moves:
                candidate_arch = move(spec, est.arch)
                if candidate_arch is None:
                    continue
                candidate = self._estimate(spec, candidate_arch)
                if candidate.met and (
                    not hold_signoff or self._signoff_ok(spec, candidate)
                ):
                    est = candidate
                    record(seed_name, name, est)
                    changed = True
        return est

    def _fine_tune(self, spec, est, seed_name, record) -> MacroEstimate:
        """Greedy power/area substitutions holding timing; records every
        feasible intermediate as a candidate for the frontier.  A
        corner-met starting point only accepts substitutions that stay
        corner-met (tuning must not spend the signoff slack escalation
        just bought)."""
        weights = spec.ppa
        hold_signoff = self._signoff_ok(spec, est)
        improved = True
        steps = 0
        while improved and steps < MAX_REPAIR_STEPS:
            improved = False
            steps += 1
            base_score = weights.score(
                est.power_mw, est.critical_path_ns, est.area_um2
            )
            for name, move in self.tuning_moves:
                candidate_arch = move(spec, est.arch)
                if candidate_arch is None:
                    continue
                try:
                    candidate = self._estimate(spec, candidate_arch)
                except Exception:
                    continue
                if not candidate.met:
                    continue
                if hold_signoff and not self._signoff_ok(spec, candidate):
                    continue
                record(seed_name, name, candidate)
                score = weights.score(
                    candidate.power_mw,
                    candidate.critical_path_ns,
                    candidate.area_um2,
                )
                if score < base_score - 1e-9:
                    est = candidate
                    improved = True
                    break
        return est


def search(
    spec: MacroSpec,
    scl: Optional[SubcircuitLibrary] = None,
    seed: Optional[int] = None,
) -> SearchResult:
    """Convenience one-shot search."""
    return MSOSearcher(scl, seed=seed).search(spec)
