"""Pareto-frontier utilities over candidate designs."""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if ``a`` is no worse than ``b`` everywhere and better
    somewhere (all objectives minimized)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    no_worse = all(x <= y + 1e-12 for x, y in zip(a, b))
    better = any(x < y - 1e-12 for x, y in zip(a, b))
    return no_worse and better


def pareto_front(
    items: Iterable[T], objectives: Callable[[T], Sequence[float]]
) -> List[T]:
    """Non-dominated subset, stable order, duplicates collapsed."""
    pool: List[Tuple[T, Tuple[float, ...]]] = [
        (item, tuple(objectives(item))) for item in items
    ]
    front: List[Tuple[T, Tuple[float, ...]]] = []
    for item, obj in pool:
        dominated = False
        keep: List[Tuple[T, Tuple[float, ...]]] = []
        for other, other_obj in front:
            if dominates(other_obj, obj) or other_obj == obj:
                dominated = True
            if not dominates(obj, other_obj):
                keep.append((other, other_obj))
        if not dominated:
            keep.append((item, obj))
            front = keep
    return [item for item, _ in front]


def hypervolume_2d(
    points: Iterable[Sequence[float]], reference: Sequence[float]
) -> float:
    """2-D hypervolume (area dominated below the reference point); used
    by tests and the DSE example to compare frontiers."""
    pts = sorted(
        (tuple(p) for p in points if p[0] <= reference[0] and p[1] <= reference[1])
    )
    if not pts:
        return 0.0
    front: List[Tuple[float, float]] = []
    best_y = float("inf")
    for x, y in pts:
        if y < best_y:
            front.append((x, y))
            best_y = y
    volume = 0.0
    prev_x = reference[0]
    for x, y in reversed(front):
        volume += (prev_x - x) * (reference[1] - y)
        prev_x = x
    return volume
