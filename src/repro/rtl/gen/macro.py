"""Top-level DCIM macro assembly.

Composes the seven subcircuits into the classic DCIM organization
(paper Fig. 1): WL drivers register the bit-serial inputs and broadcast
their complements across the array; each column multiplies, reduces
through its adder tree, and accumulates in a shift-adder; the output
fusion unit recombines weight-bit columns; an optional FP/INT alignment
unit feeds the drivers.

Two views are produced:

* :func:`generate_column_slice` — the digital logic of one column with
  weight-complement nets as ports.  This is the unit the gate-level
  simulator verifies and the subcircuit library prices.
* :func:`generate_macro` — the full digital macro (all columns + OFUs),
  again with weight ports; :func:`generate_macro_with_array` adds the
  bitcell array for the physical flows.

Pipeline topology (searcher-controlled, see
:class:`~repro.arch.MacroArchitecture`):

``inreg -> WL/mult/tree [treereg] -> S&A accreg [-> OFU inreg | retimed
after OFU stage 1] -> OFU stages [pipe regs] -> outreg``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...arch import MacroArchitecture
from ...errors import SynthesisError
from ...spec import MacroSpec
from ..ir import Module, NetlistBuilder
from .addertree import generate_adder_tree, tree_output_width
from .memarray import generate_memory_array
from .multiplier import generate_mult_mux
from .ofu import OFUConfig, generate_ofu, ofu_boundaries
from .shiftadder import accumulator_width, generate_shift_adder


@dataclass(frozen=True)
class MacroShape:
    """Derived widths shared by generators, simulator and SCL."""

    height: int
    width: int
    mcr: int
    input_bits: int
    tree_width: int
    acc_width: int
    ofu_columns: int
    ofu_output_width: int
    n_groups: int
    latency_cycles: int
    prelatency_cycles: int

    @property
    def output_bits_total(self) -> int:
        return self.n_groups * self.ofu_output_width


def macro_shape(spec: MacroSpec, arch: MacroArchitecture) -> MacroShape:
    """Compute every derived dimension for a (spec, architecture) pair."""
    arch.validate_against(spec)
    tree_w = tree_output_width(spec.height)
    acc_w = accumulator_width(tree_w, spec.input_width)
    ofu_cols = spec.max_weight_bits
    if spec.width % ofu_cols:
        raise SynthesisError(
            f"width {spec.width} not divisible by weight bits {ofu_cols}"
        )
    cfg = _ofu_config(spec, arch, acc_w)
    prelatency = (
        1  # input register
        + (1 if arch.column_split > 1 else 0)
        + (1 if arch.reg_after_tree else 0)
    )
    latency = (
        prelatency
        + spec.input_width  # serial accumulation
        + cfg.latency_cycles
        + 1  # output register
    )
    return MacroShape(
        height=spec.height,
        width=spec.width,
        mcr=spec.mcr,
        input_bits=spec.input_width,
        tree_width=tree_w,
        acc_width=acc_w,
        ofu_columns=ofu_cols,
        ofu_output_width=cfg.output_width,
        n_groups=spec.width // ofu_cols,
        latency_cycles=latency,
        prelatency_cycles=prelatency,
    )


def _ofu_config(
    spec: MacroSpec, arch: MacroArchitecture, acc_width: int
) -> OFUConfig:
    stages = max(1, int(math.log2(spec.max_weight_bits)))
    if spec.max_weight_bits < 2:
        raise SynthesisError("OFU needs at least 2 weight bits; got 1")
    retimed = arch.ofu_retimed and arch.reg_after_sna
    bounds = ofu_boundaries(stages, retimed, arch.ofu_pipeline)
    pipeline = tuple(b for b in bounds if not (retimed and b == 1))
    return OFUConfig(
        columns=spec.max_weight_bits,
        input_width=acc_width,
        pipeline_after=pipeline,
        input_register=arch.reg_after_sna,
        retime_first_stage=retimed,
        adder_style="csel" if arch.ofu_csel else "ripple",
    )


# ---------------------------------------------------------------------------
# Column slice.
# ---------------------------------------------------------------------------


def generate_column_slice(
    spec: MacroSpec,
    arch: MacroArchitecture,
    name: Optional[str] = None,
) -> Module:
    """Digital logic of one column: multipliers, tree(s), S&A.

    Ports
    -----
    ``xb[0..H-1]``        complement serial input bits (from WL drivers)
    ``wb[0..H*mcr-1]``    complement weight bits, banks interleaved per
                          row (``row*mcr + bank``)
    ``sel[0..k-1]``       MCR bank select (``k = log2(mcr)``, if any)
    ``neg`` / ``clear``   S&A controls
    ``clk``
    ``acc[0..A-1]``       column partial sum (two's complement)
    """
    arch.validate_against(spec)
    h, mcr = spec.height, spec.mcr
    b = NetlistBuilder(name or f"column_{arch.knob_summary().replace('/', '_')}")
    xb = b.inputs("xb", h)
    wb = b.inputs("wb", h * mcr)
    sel_bits = int(math.log2(mcr)) if mcr > 1 else 0
    sel = b.inputs("sel", sel_bits) if sel_bits else []
    neg = b.inputs("neg")[0]
    clear = b.inputs("clear")[0]
    clk = b.inputs("clk")[0]
    tree_w = tree_output_width(h)
    acc_w = accumulator_width(tree_w, spec.input_width)
    acc = b.outputs("acc", acc_w)
    b.module.set_clocks([clk])

    # Multipliers: one per row.
    mult = generate_mult_mux(mcr, arch.mult_style)
    products: List[str] = []
    for r in range(h):
        p = b.net("prod")
        conn = {"xb": xb[r], "p": p}
        for k in range(mcr):
            conn[f"wb[{k}]"] = wb[r * mcr + k]
        for i, s in enumerate(sel):
            conn[f"sel[{i}]"] = s
        b.submodule(mult, hint="mult", **conn)
        products.append(p)

    # Adder tree(s), optionally split.
    split = arch.column_split
    sub_n = h // split
    sub_w = tree_output_width(sub_n)
    tree_mod, _ = generate_adder_tree(
        sub_n, arch.tree_style, arch.tree_fa_levels, arch.carry_reorder
    )
    partials: List[List[str]] = []
    for s_idx in range(split):
        conn = {}
        for i in range(sub_n):
            conn[f"in[{i}]"] = products[s_idx * sub_n + i]
        outs = b.nets("treeout", sub_w)
        for i in range(sub_w):
            conn[f"sum[{i}]"] = outs[i]
        b.submodule(tree_mod, hint="tree", **conn)
        partials.append(outs)

    if split > 1:
        # Register each sub-tree, then combine with a small RCA tree.
        partials = [b.dff_bus(p, clk, hint="splitreg") for p in partials]
        tree_out = _combine_unsigned(b, partials)[:tree_w]
    else:
        tree_out = partials[0]

    if arch.reg_after_tree:
        tree_out = b.dff_bus(tree_out, clk, hint="treereg")

    sa = generate_shift_adder(tree_w, spec.input_width)
    conn = {"neg": neg, "clear": clear, "clk": clk}
    for i in range(tree_w):
        conn[f"t[{i}]"] = tree_out[i]
    for i in range(acc_w):
        conn[f"acc[{i}]"] = acc[i]
    b.submodule(sa, hint="sna", **conn)
    return b.finish()


def _combine_unsigned(
    b: NetlistBuilder, words: List[List[str]]
) -> List[str]:
    """Unsigned RCA combiner tree for split-column partial counts."""
    level = words
    while len(level) > 1:
        nxt: List[List[str]] = []
        for i in range(0, len(level) - 1, 2):
            a, c = level[i], level[i + 1]
            width = max(len(a), len(c))
            zero = b.const0()
            av = list(a) + [zero] * (width - len(a))
            cv = list(c) + [zero] * (width - len(c))
            sums: List[str] = []
            carry = None
            for j in range(width):
                if carry is None:
                    s, carry = b.half_adder(av[j], cv[j])
                else:
                    s, carry = b.full_adder(av[j], cv[j], carry)
                sums.append(s)
            sums.append(carry)
            nxt.append(sums)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


# ---------------------------------------------------------------------------
# Full macro.
# ---------------------------------------------------------------------------


def generate_macro(
    spec: MacroSpec,
    arch: MacroArchitecture,
    name: Optional[str] = None,
) -> Tuple[Module, MacroShape]:
    """Full digital macro: WL input stage, all columns, OFUs, output regs.

    Weight complements remain ports (``wb[(row*mcr+bank)*W + col]``) so
    the same netlist serves simulation (weights forced) and physical
    assembly (array outputs spliced in by
    :func:`generate_macro_with_array`).

    Ports
    -----
    ``x[0..H-1]``   serial input bits (already INT or aligned FP)
    ``wb[...]``     weight complements as above
    ``sel[...]``    MCR bank select
    ``neg, clear``  serial-cycle controls
    ``sub[1..S]``   OFU per-stage subtract controls
    ``clk``
    ``y[g][...]``   fused outputs, flattened as ``y[g*Wout + i]``
    """
    shape = macro_shape(spec, arch)
    h, w, mcr = spec.height, spec.width, spec.mcr
    b = NetlistBuilder(name or f"dcim_macro_{h}x{w}")
    x = b.inputs("x", h)
    wb = b.inputs("wb", h * mcr * w)
    sel_bits = int(math.log2(mcr)) if mcr > 1 else 0
    sel = b.inputs("sel", sel_bits) if sel_bits else []
    neg = b.inputs("neg")[0]
    clear = b.inputs("clear")[0]
    stages = max(1, int(math.log2(spec.max_weight_bits)))
    sub = b.inputs("sub", stages)
    clk = b.inputs("clk")[0]
    y = b.outputs("y", shape.n_groups * shape.ofu_output_width)
    b.module.set_clocks([clk])

    # WL input stage: register + complement + buffer per row.
    xb: List[str] = []
    for r in range(h):
        q = b.dff(x[r], clk, hint="inreg")
        inv = b.inv(q)
        xb.append(b.buffer(inv, arch.driver_strength))

    col_mod = generate_column_slice(spec, arch)
    acc_nets: List[List[str]] = []
    for c in range(w):
        conn = {"neg": neg, "clear": clear, "clk": clk}
        for r in range(h):
            conn[f"xb[{r}]"] = xb[r]
            for k in range(mcr):
                conn[f"wb[{r * mcr + k}]"] = wb[(r * mcr + k) * w + c]
        for i, s in enumerate(sel):
            conn[f"sel[{i}]"] = s
        accs = b.nets("colacc", shape.acc_width)
        for i in range(shape.acc_width):
            conn[f"acc[{i}]"] = accs[i]
        b.submodule(col_mod, hint=f"col{c}", **conn)
        acc_nets.append(accs)

    cfg = _ofu_config(spec, arch, shape.acc_width)
    ofu_mod = generate_ofu(cfg)
    needs_clk = bool(cfg.pipeline_after) or cfg.input_register
    for g in range(shape.n_groups):
        conn = {}
        for j in range(cfg.columns):
            col = g * cfg.columns + j
            for i in range(shape.acc_width):
                conn[f"a{j}[{i}]"] = acc_nets[col][i]
        for s_i in range(stages):
            conn[f"sub[{s_i}]"] = sub[s_i]
        if needs_clk:
            conn["clk"] = clk
        outs = b.nets("fused", cfg.output_width)
        for i in range(cfg.output_width):
            conn[f"y[{i}]"] = outs[i]
        b.submodule(ofu_mod, hint=f"ofu{g}", **conn)
        regged = b.dff_bus(outs, clk, hint="outreg")
        for i in range(cfg.output_width):
            b.cell("BUF_X2", hint="obuf", A=regged[i], Y=y[g * cfg.output_width + i])
    return b.finish(), shape


def generate_macro_with_array(
    spec: MacroSpec,
    arch: MacroArchitecture,
    name: Optional[str] = None,
    array: Optional[Module] = None,
) -> Tuple[Module, MacroShape]:
    """Physical view: digital macro + bitcell array + BL write path.

    The array's read nets drive the macro's weight ports; word lines and
    bit lines surface as macro ports for the weight-update interface.

    ``array`` lets a caller supply a pre-built bitcell array module for
    the same ``(height, width, mcr, memcell)`` — the incremental
    escalation loop reuses one array (and its cached flatten template)
    across implementation attempts, since timing fixes never touch it.
    """
    digital, shape = generate_macro(spec, arch)
    if array is None:
        array, _ = generate_memory_array(
            spec.height, spec.width, spec.mcr, arch.memcell
        )
    h, w, mcr = spec.height, spec.width, spec.mcr
    b = NetlistBuilder(name or f"dcim_macro_phys_{h}x{w}")
    # Mirror digital ports except wb, which becomes internal.
    port_conn = {}
    for pname, port in digital.ports.items():
        if pname.startswith("wb["):
            continue
        if port.direction == "input":
            b.inputs(pname)
        else:
            b.outputs(pname)
        port_conn[pname] = pname
    wl = b.inputs("wl", h * mcr)
    bl = b.inputs("bl", w)
    b.module.set_clocks(["clk"])

    wb_nets = [b.net("wbn") for _ in range(h * mcr * w)]
    arr_conn = {}
    for i in range(h * mcr):
        arr_conn[f"wl[{i}]"] = wl[i]
    for i in range(w):
        arr_conn[f"bl[{i}]"] = bl[i]
    for i in range(h * mcr * w):
        arr_conn[f"wb[{i}]"] = wb_nets[i]
    b.submodule(array, hint="array", **arr_conn)

    for i in range(h * mcr * w):
        port_conn[f"wb[{i}]"] = wb_nets[i]
    b.submodule(digital, hint="core", **port_conn)
    return b.finish(), shape
