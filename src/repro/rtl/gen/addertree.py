"""Adder-tree generators: signed-RCA trees and bit-wise carry-save trees.

Implements the paper's three families (Section III.B, Fig. 4):

* ``rca`` — conventional tree of ripple-carry adders: logically simple
  but long critical path and high switching energy;
* ``cmp42`` — bit-wise carry-save reduction built from 4-2 compressors
  (used as 5-3 carry-save counters) with a final ripple stage: small and
  low-power but the compressor sum path is slow;
* ``mixed`` — the paper's proposal: compressors in the early reduction
  levels, full adders substituted into the last ``fa_levels`` levels to
  shorten the critical path at a power/area premium.

Two further optimizations from Fig. 4 are modelled faithfully:

* *carry reordering* — since a cell's carry output is produced faster
  than its sum output, late-arriving bits are steered onto the fast
  ports (``CI``/``D``) of the next cell;
* the compressors' horizontal carry (``CO``) chains within a reduction
  level, never through it, so levels do not ripple.

All trees sum ``n`` one-bit partial products; the result is the
unsigned count on ``ceil(log2(n+1))`` output bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder

#: Heuristic per-cell arrival increments (in FO4-ish units) used only to
#: decide wiring order when ``carry_reorder`` is on.  STA does the real
#: timing afterwards.
_ARRIVAL_FA_S = 1.00
_ARRIVAL_FA_CO = 0.70
_ARRIVAL_HA_S = 0.45
_ARRIVAL_HA_CO = 0.35
_ARRIVAL_CMP_S = 1.55
_ARRIVAL_CMP_C = 1.25
_ARRIVAL_CMP_CO = 0.80


@dataclass
class TreeStats:
    """Structural summary of a generated tree (used by tests/benches)."""

    n_inputs: int
    style: str
    levels: int = 0
    compressors: int = 0
    full_adders: int = 0
    half_adders: int = 0
    output_width: int = 0
    final_rca_width: int = 0


@dataclass
class _Bit:
    net: str
    arrival: float = 0.0


def tree_output_width(n_inputs: int) -> int:
    """Bits needed for the unsigned sum of ``n_inputs`` one-bit values."""
    return int(math.floor(math.log2(n_inputs))) + 1 if n_inputs > 1 else 1


def generate_adder_tree(
    n_inputs: int,
    style: str = "mixed",
    fa_levels: int = 0,
    carry_reorder: bool = True,
    name: Optional[str] = None,
) -> Tuple[Module, TreeStats]:
    """Build an adder-tree module summing ``n_inputs`` one-bit inputs.

    Ports: inputs ``in[0..n-1]``, outputs ``sum[0..W-1]``.
    """
    if n_inputs < 2:
        raise SynthesisError("adder tree needs at least 2 inputs")
    if style not in ("rca", "cmp42", "mixed"):
        raise SynthesisError(f"unknown adder tree style {style!r}")
    if style != "mixed" and fa_levels:
        raise SynthesisError("fa_levels only applies to the mixed style")

    mod_name = name or f"adder_tree_{style}_{n_inputs}"
    b = NetlistBuilder(mod_name)
    inputs = b.inputs("in", n_inputs)
    stats = TreeStats(n_inputs=n_inputs, style=style)

    if style == "rca":
        sum_bits = _build_rca_tree(b, inputs, stats)
    else:
        sum_bits = _build_csa_tree(b, inputs, style, fa_levels, carry_reorder, stats)

    width = tree_output_width(n_inputs)
    out = b.outputs("sum", width)
    zero = b.const0()
    for i in range(width):
        src = sum_bits[i].net if i < len(sum_bits) else zero
        b.cell("BUF_X2", hint="sumbuf", A=src, Y=out[i])
    stats.output_width = width
    return b.finish(), stats


# ---------------------------------------------------------------------------
# RCA family.
# ---------------------------------------------------------------------------


def _build_rca_tree(
    b: NetlistBuilder, inputs: List[str], stats: TreeStats
) -> List[_Bit]:
    """Binary tree of *signed* ripple-carry adders.

    This is the conventional baseline the paper compares against
    ("multi-stage signed ripple-carry adders", Section II.B): operands
    are treated as two's complement and sign-extended by one bit per
    level, so every level performs a full-width carry-propagate add.
    The sign positions of the 1-bit products are structurally present
    even though they are always zero here — the redundancy is precisely
    why the conventional tree is bigger, slower and hungrier than the
    carry-save designs.
    """
    zero = b.const0()
    words: List[List[_Bit]] = [[_Bit(n), _Bit(zero)] for n in inputs]
    level = 0
    while len(words) > 1:
        level += 1
        next_words: List[List[_Bit]] = []
        for i in range(0, len(words) - 1, 2):
            next_words.append(_rca_add_signed(b, words[i], words[i + 1], stats))
        if len(words) % 2:
            next_words.append(words[-1])
        words = next_words
    stats.levels = level
    return words[0]


def _rca_add_signed(
    b: NetlistBuilder, a: List[_Bit], c: List[_Bit], stats: TreeStats
) -> List[_Bit]:
    """Signed ripple add: both operands sign-extended one position."""
    width = max(len(a), len(c)) + 1
    av = a + [a[-1]] * (width - len(a))
    cv = c + [c[-1]] * (width - len(c))
    out: List[_Bit] = []
    carry: Optional[_Bit] = None
    for i in range(width):
        if carry is None:
            s, co = b.half_adder(av[i].net, cv[i].net)
            stats.half_adders += 1
            arr = max(av[i].arrival, cv[i].arrival)
            out.append(_Bit(s, arr + _ARRIVAL_HA_S))
            carry = _Bit(co, arr + _ARRIVAL_HA_CO)
        else:
            s, co = b.full_adder(av[i].net, cv[i].net, carry.net)
            stats.full_adders += 1
            arr = max(av[i].arrival, cv[i].arrival, carry.arrival)
            out.append(_Bit(s, arr + _ARRIVAL_FA_S))
            carry = _Bit(co, arr + _ARRIVAL_FA_CO)
    return out


# ---------------------------------------------------------------------------
# Carry-save family (4-2 compressors / mixed).
# ---------------------------------------------------------------------------


def _estimate_csa_levels(n: int) -> int:
    levels = 0
    while n > 2:
        n = math.ceil(n / 2)
        levels += 1
    return levels


def _build_csa_tree(
    b: NetlistBuilder,
    inputs: List[str],
    style: str,
    fa_levels: int,
    carry_reorder: bool,
    stats: TreeStats,
) -> List[_Bit]:
    """Wallace-style carry-save reduction to two rows + final ripple."""
    columns: Dict[int, List[_Bit]] = {0: [_Bit(n) for n in inputs]}
    total_levels = _estimate_csa_levels(len(inputs))
    level = 0
    while max(len(bits) for bits in columns.values()) > 2:
        level += 1
        use_fa_only = style == "mixed" and (total_levels - level) < fa_levels
        columns = _reduce_level(b, columns, use_fa_only, carry_reorder, stats)
        if level > 64:  # pragma: no cover - defensive
            raise SynthesisError("CSA reduction failed to converge")
    stats.levels = level
    return _final_ripple(b, columns, carry_reorder, stats)


def _take(bits: List[_Bit], k: int, carry_reorder: bool) -> List[_Bit]:
    """Pop ``k`` bits; with reorder on, earliest-arriving bits are taken
    for the slow ports first and the latest bit is placed last so the
    caller can wire it to the fastest port."""
    if carry_reorder:
        bits.sort(key=lambda x: x.arrival)
    picked = [bits.pop(0) for _ in range(k)]
    return picked


def _reduce_level(
    b: NetlistBuilder,
    columns: Dict[int, List[_Bit]],
    use_fa_only: bool,
    carry_reorder: bool,
    stats: TreeStats,
) -> Dict[int, List[_Bit]]:
    out: Dict[int, List[_Bit]] = {}

    def emit(weight: int, bit: _Bit) -> None:
        out.setdefault(weight, []).append(bit)

    zero = b.const0()
    # Horizontal compressor carries chain LSB -> MSB within this level.
    pending_ci: Dict[int, List[_Bit]] = {}
    for weight in sorted(columns):
        bits = list(columns[weight])
        chain_in = pending_ci.get(weight, [])
        chain_idx = 0
        while len(bits) >= 4 and not use_fa_only:
            group = _take(bits, 4, carry_reorder)
            ci = (
                chain_in[chain_idx]
                if chain_idx < len(chain_in)
                else _Bit(zero, 0.0)
            )
            chain_idx += 1
            s = b.net("cmp_s")
            c = b.net("cmp_c")
            co = b.net("cmp_co")
            if carry_reorder:
                # Fast ports get the late arrivals: D is faster than
                # A/B/C (CI, the fastest, is taken by the chain).
                wired = sorted(group, key=lambda x: x.arrival)
            else:
                wired = group
            b.cell(
                "CMP42_X1",
                hint="cmp",
                A=wired[0].net,
                B=wired[1].net,
                C=wired[2].net,
                D=wired[3].net,
                CI=ci.net,
                S=s,
                CY=c,
                CO=co,
            )
            stats.compressors += 1
            base = max(x.arrival for x in group + [ci])
            emit(weight, _Bit(s, base + _ARRIVAL_CMP_S))
            emit(weight + 1, _Bit(c, base + _ARRIVAL_CMP_C))
            pending_ci.setdefault(weight + 1, []).append(
                _Bit(co, max(x.arrival for x in group[:3]) + _ARRIVAL_CMP_CO)
            )
        # Any unconsumed horizontal carries fall through to the next level.
        for extra in chain_in[chain_idx:]:
            emit(weight, extra)
        while len(bits) >= 3:
            group = _take(bits, 3, carry_reorder)
            s, co = b.net("fa_s"), b.net("fa_co")
            ordered = sorted(group, key=lambda x: x.arrival)
            b.cell(
                "FA_X1",
                hint="fa",
                A=ordered[0].net,
                B=ordered[1].net,
                CI=ordered[2].net,
                S=s,
                CO=co,
            )
            stats.full_adders += 1
            base = max(x.arrival for x in group)
            emit(weight, _Bit(s, base + _ARRIVAL_FA_S))
            emit(weight + 1, _Bit(co, base + _ARRIVAL_FA_CO))
        if len(bits) == 2 and use_fa_only:
            a1, a2 = _take(bits, 2, carry_reorder)
            s, co = b.half_adder(a1.net, a2.net)
            stats.half_adders += 1
            base = max(a1.arrival, a2.arrival)
            emit(weight, _Bit(s, base + _ARRIVAL_HA_S))
            emit(weight + 1, _Bit(co, base + _ARRIVAL_HA_CO))
        else:
            for bit in bits:
                emit(weight, bit)
    # Merge any dangling horizontal carries beyond the processed columns.
    for weight, carries in pending_ci.items():
        consumed = weight in columns
        if not consumed:
            for c in carries:
                out.setdefault(weight, []).append(c)
    return out


def _final_ripple(
    b: NetlistBuilder,
    columns: Dict[int, List[_Bit]],
    carry_reorder: bool,
    stats: TreeStats,
) -> List[_Bit]:
    """Carry-propagate the residual <=2 rows into a single word."""
    result: List[_Bit] = []
    carry: Optional[_Bit] = None
    max_weight = max(columns)
    for weight in range(0, max_weight + 1):
        bits = list(columns.get(weight, []))
        if carry is not None:
            bits.append(carry)
            carry = None
        if carry_reorder:
            bits.sort(key=lambda x: x.arrival)
        if not bits:
            result.append(_Bit(b.const0()))
        elif len(bits) == 1:
            result.append(bits[0])
        elif len(bits) == 2:
            s, co = b.half_adder(bits[0].net, bits[1].net)
            stats.half_adders += 1
            stats.final_rca_width += 1
            base = max(x.arrival for x in bits)
            result.append(_Bit(s, base + _ARRIVAL_HA_S))
            carry = _Bit(co, base + _ARRIVAL_HA_CO)
        elif len(bits) == 3:
            s, co = b.net("fr_s"), b.net("fr_co")
            ordered = sorted(bits, key=lambda x: x.arrival)
            b.cell(
                "FA_X1",
                hint="fa",
                A=ordered[0].net,
                B=ordered[1].net,
                CI=ordered[2].net,
                S=s,
                CO=co,
            )
            stats.full_adders += 1
            stats.final_rca_width += 1
            base = max(x.arrival for x in bits)
            result.append(_Bit(s, base + _ARRIVAL_FA_S))
            carry = _Bit(co, base + _ARRIVAL_FA_CO)
        else:  # pragma: no cover - reduction guarantees <=3
            raise SynthesisError("final ripple saw more than 3 bits")
    if carry is not None:
        result.append(carry)
    return result
