"""Output fusion unit (OFU) generator.

For multi-bit weights the per-column S&A results must be recombined:
column ``j`` of a weight group carries bit weight ``2^j``, and the MSB
column of a two's-complement weight carries ``-2^(n-1)``.  The OFU "adds
the outputs of the S&As stage by stage, from lower bit-width to higher
bit-width" (paper Section II.B, after RedCIM), which simultaneously
provides every intermediate precision: after stage 1 the results for
2-bit weights are available, after stage 2 for 4-bit, and so on.

Each stage ``s`` fuses word pairs as ``hi * 2^(2^(s-1)) + lo`` with a
per-stage ``sub`` control applied to the stage's *top* pair — the one
whose high word contains the group's most-significant column.  For a
full-width two's-complement weight the MSB column is consumed as a
``hi`` operand exactly once, in stage 1's top pair, so the weight sign
is applied there (``sub = [1, 0, 0, ...]``); every later stage adds,
because the negativity is already baked into the fused word.  Narrower
modes (weights sign-extended across the group) use the same pattern.

Pipelining knobs (searcher-controlled):

* ``pipeline_after`` — stage indices followed by a register bank;
* ``retime_first_stage`` — moves the stage-1 adder in front of the
  S&A/OFU boundary register (the paper's OFU retiming fix).  In this
  module it simply changes which side of stage 1 the input register
  lands on when the caller asks for one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder


def ofu_boundaries(
    n_stages: int, retimed: bool, pipeline: int
) -> Tuple[int, ...]:
    """Register-boundary positions (after stage i) shared by the RTL
    generator and the searcher's estimator, so both price the same
    structure.  The retiming register sits after stage 1; extra pipeline
    registers spread evenly across the remaining stages."""
    bounds = {1} if retimed else set()
    avail = [i for i in range(1, n_stages) if i not in bounds]
    for j in range(pipeline):
        if not avail:
            break
        target = round((j + 1) * n_stages / (pipeline + 1))
        target = min(max(target, 1), n_stages - 1)
        pick = min(avail, key=lambda a: abs(a - target))
        bounds.add(pick)
        avail.remove(pick)
    return tuple(sorted(bounds))


@dataclass(frozen=True)
class OFUConfig:
    """Static shape of one OFU instance.

    ``adder_style`` selects the fusion adders: ``"ripple"`` (minimum
    area/power) or ``"csel"`` — a carry-select implementation that cuts
    the long final-stage carry chains, the "faster adder available in
    the SCL" the searcher reaches for when the OFU limits frequency.
    """

    columns: int
    input_width: int
    pipeline_after: Tuple[int, ...] = ()
    input_register: bool = False
    retime_first_stage: bool = False
    adder_style: str = "ripple"

    def __post_init__(self) -> None:
        if self.columns < 2 or self.columns & (self.columns - 1):
            raise SynthesisError("OFU fuses a power-of-two number of columns")
        if self.input_width < 2:
            raise SynthesisError("OFU input width must be >= 2")
        if self.adder_style not in ("ripple", "csel"):
            raise SynthesisError(f"unknown adder style {self.adder_style!r}")
        n_stages = self.stages
        for s in self.pipeline_after:
            if not 1 <= s <= n_stages:
                raise SynthesisError(f"pipeline_after stage {s} out of range")

    @property
    def stages(self) -> int:
        return self.columns.bit_length() - 1

    def stage_width(self, stage: int) -> int:
        """Word width after ``stage`` fusion stages."""
        w = self.input_width
        for s in range(1, stage + 1):
            w = w + (1 << (s - 1)) + 1
        return w

    @property
    def output_width(self) -> int:
        return self.stage_width(self.stages)

    @property
    def latency_cycles(self) -> int:
        return len(self.pipeline_after) + (1 if self.input_register else 0)


def generate_ofu(config: OFUConfig, name: Optional[str] = None) -> Module:
    """Build the OFU.

    Ports
    -----
    ``a{j}[0..W-1]``   S&A word of column ``j`` (two's complement)
    ``sub[1..S]``      per-stage subtract controls (bus ``sub``)
    ``clk``            present when any register bank exists
    ``y[0..Wout-1]``   fused result (two's complement)
    """
    b = NetlistBuilder(name or f"ofu_c{config.columns}_w{config.input_width}")
    words: List[List[str]] = [
        b.inputs(f"a{j}", config.input_width) for j in range(config.columns)
    ]
    sub = b.inputs("sub", config.stages)
    needs_clk = bool(config.pipeline_after) or config.input_register
    clk = b.inputs("clk")[0] if needs_clk else ""
    if needs_clk:
        b.module.set_clocks([clk])

    if config.input_register and not config.retime_first_stage:
        words = [b.dff_bus(w, clk, hint="inreg") for w in words]

    zero = b.const0()
    for stage in range(1, config.stages + 1):
        shift = 1 << (stage - 1)
        s_ctl = sub[stage - 1]
        fused: List[List[str]] = []
        for i in range(0, len(words), 2):
            lo, hi = words[i], words[i + 1]
            # The stage's sub control only reaches the top pair (the one
            # consuming the group's most-significant column as `hi`).
            pair_ctl = s_ctl if i == len(words) - 2 else zero
            fused.append(
                _fuse_pair(b, lo, hi, shift, pair_ctl, config.adder_style)
            )
        words = fused
        if stage == 1 and config.input_register and config.retime_first_stage:
            words = [b.dff_bus(w, clk, hint="retreg") for w in words]
        if stage in config.pipeline_after:
            words = [b.dff_bus(w, clk, hint="pipereg") for w in words]

    (result,) = words
    y = b.outputs("y", config.output_width)
    if len(result) != config.output_width:
        raise SynthesisError(
            f"OFU width mismatch: built {len(result)}, expected "
            f"{config.output_width}"
        )
    for i, net in enumerate(result):
        b.cell("BUF_X2", hint="ybuf", A=net, Y=y[i])
    return b.finish()


def generate_fuse_stage(
    input_width: int,
    shift: int,
    name: Optional[str] = None,
    adder_style: str = "ripple",
) -> Module:
    """A single standalone fusion stage (one pair), used by the
    subcircuit library to characterize per-stage OFU delays for the
    searcher's retiming and pipelining decisions.

    Ports: ``lo``/``hi`` input words, ``sub``, output ``y``.
    """
    if input_width < 2 or shift < 1:
        raise SynthesisError("fuse stage needs width >= 2 and shift >= 1")
    b = NetlistBuilder(name or f"fuse_w{input_width}_s{shift}_{adder_style}")
    lo = b.inputs("lo", input_width)
    hi = b.inputs("hi", input_width)
    sub = b.inputs("sub")[0]
    out_w = input_width + shift + 1
    y = b.outputs("y", out_w)
    result = _fuse_pair(b, lo, hi, shift, sub, adder_style)
    for i, net in enumerate(result):
        b.cell("BUF_X2", hint="ybuf", A=net, Y=y[i])
    return b.finish()


def _fuse_pair(
    b: NetlistBuilder,
    lo: Sequence[str],
    hi: Sequence[str],
    shift: int,
    sub_ctl: str,
    adder_style: str = "ripple",
) -> List[str]:
    """``y = lo + (sub ? -hi : hi) * 2^shift`` in two's complement.

    Input words are ``w`` bits; the result is ``w + shift + 1`` bits.
    ``-(hi << shift) == (~hi << shift) + (1 << shift)``, so the low
    ``shift`` result bits copy ``lo`` untouched and the two's-complement
    +1 enters the adder chain as the carry-in at bit ``shift``.
    """
    if len(lo) != len(hi):
        raise SynthesisError("fuse pair width mismatch")
    w = len(lo)
    out_w = w + shift + 1
    lo_ext = list(lo) + [lo[-1]] * (out_w - w)          # sign extend
    hi_ext = list(hi) + [hi[-1]] * (out_w - w - shift)  # sign extend

    a_bits = lo_ext[shift:]
    c_bits = [b.xor2(hi_ext[i], sub_ctl) for i in range(out_w - shift)]
    if adder_style == "csel":
        sums = _carry_select_add(b, a_bits, c_bits, sub_ctl)
    else:
        sums = []
        carry = sub_ctl
        for i in range(len(a_bits)):
            s, carry = b.full_adder(a_bits[i], c_bits[i], carry)
            sums.append(s)
    return list(lo_ext[:shift]) + sums


#: Carry-select block size (bits per ripple block).
_CSEL_BLOCK = 4


def _carry_select_add(
    b: NetlistBuilder,
    a: Sequence[str],
    c: Sequence[str],
    carry_in: str,
) -> List[str]:
    """Carry-select adder: each 4-bit block computes both carry
    hypotheses in parallel; block carries hop through one mux each, so
    the carry chain is ~4 FA + N/4 mux instead of N FA."""
    width = len(a)
    out: List[str] = []
    carry = carry_in
    zero = b.const0()
    one = b.const1()
    for base in range(0, width, _CSEL_BLOCK):
        block = range(base, min(base + _CSEL_BLOCK, width))
        if base == 0:
            # First block rides the true carry-in directly.
            for i in block:
                s, carry = b.full_adder(a[i], c[i], carry)
                out.append(s)
            continue
        sums0: List[str] = []
        sums1: List[str] = []
        c0, c1 = zero, one
        for i in block:
            s0, c0 = b.full_adder(a[i], c[i], c0)
            s1, c1 = b.full_adder(a[i], c[i], c1)
            sums0.append(s0)
            sums1.append(s1)
        for s0, s1 in zip(sums0, sums1):
            out.append(b.mux2(s0, s1, carry))
        carry = b.mux2(c0, c1, carry)
    return out
