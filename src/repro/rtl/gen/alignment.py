"""FP/INT alignment unit generator.

"This unit translates floating-point format data to integer format as
required by the DCIM macro through a comparator tree and shifters"
(paper Section II.B, after RedCIM [9]).  For a group of ``n`` FP inputs
it

1. extracts each lane's signed significand (hidden one restored for
   normal numbers, two's complement applied);
2. finds the group maximum exponent with a tournament comparator tree;
3. arithmetic-right-shifts every significand by its exponent deficit
   ``emax - e`` through a barrel shifter (sign-filled, truncating),

producing ``mantissa + 2``-bit integers sharing the exponent ``emax`` —
ready for the bit-serial array.  "The complexity of this unit depends on
the combination of required FP precisions": all sizes derive from the
format's exponent/mantissa split.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import SynthesisError
from ...spec import DataFormat
from ..ir import Module, NetlistBuilder


def generate_alignment_unit(
    fmt: DataFormat,
    lanes: int,
    name: Optional[str] = None,
) -> Module:
    """Build an alignment unit for ``lanes`` operands of format ``fmt``.

    Ports
    -----
    ``fp{i}[0..bits-1]``  lane ``i`` packed LSB-first as
                          ``[mantissa | exponent | sign]``
    ``q{i}[0..M+1]``      aligned signed significand of lane ``i``
    ``emax[0..E-1]``      shared (maximum) exponent
    """
    if not fmt.is_float:
        raise SynthesisError(f"{fmt.name} is not a floating-point format")
    if lanes < 1:
        raise SynthesisError("alignment unit needs at least one lane")
    e_w, m_w = fmt.exponent, fmt.mantissa
    sig_w = m_w + 2  # sign + hidden + mantissa, two's complement

    b = NetlistBuilder(name or f"align_{fmt.name.lower()}_x{lanes}")
    lanes_in = [b.inputs(f"fp{i}", fmt.bits) for i in range(lanes)]
    q_out = [b.outputs(f"q{i}", sig_w) for i in range(lanes)]
    emax_out = b.outputs("emax", e_w)

    exps: List[List[str]] = []
    sigs: List[List[str]] = []
    for i, lane in enumerate(lanes_in):
        mant = lane[:m_w]
        exp = lane[m_w : m_w + e_w]
        sign = lane[m_w + e_w]
        # Effective exponent: subnormals (field 0) scale like exponent 1
        # without the hidden bit, so bit 0 is forced high when the whole
        # field is zero.
        hidden = exp[0]
        for e_bit in exp[1:]:
            hidden = b.or2(hidden, e_bit)
        eff0 = b.or2(exp[0], b.inv(hidden))
        exps.append([eff0] + list(exp[1:]))
        sigs.append(_signed_significand(b, mant, exp, sign))

    emax = _max_tree(b, exps)
    for i in range(e_w):
        b.cell("BUF_X2", hint="emaxbuf", A=emax[i], Y=emax_out[i])

    for i in range(lanes):
        delta = _subtract(b, emax, exps[i])  # emax - e_i >= 0
        aligned = _barrel_shift_right(b, sigs[i], delta)
        for j in range(sig_w):
            b.cell("BUF_X2", hint="qbuf", A=aligned[j], Y=q_out[i][j])
    return b.finish()


def _signed_significand(
    b: NetlistBuilder, mant: List[str], exp: List[str], sign: str
) -> List[str]:
    """Two's-complement significand ``(-1)^s * (hidden.m)``.

    ``hidden`` is 1 for normal numbers (exponent nonzero), 0 for
    subnormals.  Negation = XOR with sign + ripple increment by sign.
    """
    hidden = exp[0]
    for e in exp[1:]:
        hidden = b.or2(hidden, e)
    mag = list(mant) + [hidden, b.const0()]  # sign slot zero
    inverted = [b.xor2(bit, sign) for bit in mag]
    out: List[str] = []
    carry = sign
    for bit in inverted:
        s, carry = b.half_adder(bit, carry)
        out.append(s)
    return out


def _greater_equal(b: NetlistBuilder, a: List[str], c: List[str]) -> str:
    """``a >= c`` for unsigned words: carry-out of ``a + ~c + 1``."""
    carry = b.const1()
    for i in range(len(a)):
        cb = b.inv(c[i])
        _, carry = b.full_adder(a[i], cb, carry)
    return carry


def _max_tree(b: NetlistBuilder, words: List[List[str]]) -> List[str]:
    """Tournament maximum over equal-width unsigned words."""
    level = words
    while len(level) > 1:
        nxt: List[List[str]] = []
        for i in range(0, len(level) - 1, 2):
            a, c = level[i], level[i + 1]
            ge = _greater_equal(b, a, c)
            nxt.append([b.mux2(c[j], a[j], ge) for j in range(len(a))])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _subtract(b: NetlistBuilder, a: List[str], c: List[str]) -> List[str]:
    """``a - c`` for unsigned words with ``a >= c`` guaranteed."""
    out: List[str] = []
    carry = b.const1()
    for i in range(len(a)):
        cb = b.inv(c[i])
        s, carry = b.full_adder(a[i], cb, carry)
        out.append(s)
    return out


def _barrel_shift_right(
    b: NetlistBuilder, word: List[str], amount: List[str]
) -> List[str]:
    """Arithmetic right shift of a two's-complement word by an unsigned
    amount, sign-filled, truncating toward minus infinity."""
    width = len(word)
    sign = word[-1]
    current = list(word)
    for k, a_bit in enumerate(amount):
        step = 1 << k
        shifted: List[str] = []
        for j in range(width):
            src = current[j + step] if j + step < width else sign
            shifted.append(src)
        current = [b.mux2(current[j], shifted[j], a_bit) for j in range(width)]
    return current


def alignment_cost_estimate(fmt: DataFormat, lanes: int) -> Tuple[int, int]:
    """(approx gate count, comparator-tree depth) for quick sizing."""
    if not fmt.is_float:
        return 0, 0
    sig_w = fmt.mantissa + 2
    per_lane = 2 * sig_w + fmt.exponent * (2 + sig_w)  # negate + sub + shift
    tree = (lanes - 1) * fmt.exponent * 3
    depth = max(1, (lanes - 1).bit_length())
    return lanes * per_lane + tree, depth
