"""SRAM array generator with MCR banking.

The memory array holds ``height * mcr`` weight rows by ``width`` bit
columns.  Compute rows use the configured DCIM bitcell (6T+read port,
8T latch, or 12T OAI variants); the additional ``mcr - 1`` storage banks
use compact 6T cells, which is how MCR-aware macros raise on-macro
memory density (paper Section II.A).

The array module is *structural only*: its instances carry area, leakage
and read energy for the physical flows (layout, power), while its
read-data outputs (``wb`` nets, complement weights) are the hand-off
point to the digital logic.  Gate-level simulation drives those nets
directly — the bitcell contents come from the behavioural weight store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder


@dataclass(frozen=True)
class ArrayStats:
    """Cell counts for reporting and layout planning."""

    compute_cells: int
    storage_cells: int
    rows: int
    cols: int
    banks: int


def generate_memory_array(
    height: int,
    width: int,
    mcr: int,
    memcell: str = "DCIM6T",
    name: Optional[str] = None,
) -> tuple[Module, ArrayStats]:
    """Build the bitcell array.

    Ports
    -----
    ``wl[0..height*mcr-1]``  word lines (one per physical row)
    ``bl[0..width-1]``       write bit lines
    ``wb[r*width*mcr + b*width + c]`` is exposed flattened as
    ``wb[...]``: complement read data, one net per compute row x bank x
    column, consumed by the multiplier muxes.
    """
    if memcell not in ("DCIM6T", "DCIM8T", "DCIM12T", "RRAM_HYB"):
        raise SynthesisError(f"unknown memory cell {memcell!r}")
    if height < 1 or width < 1 or mcr < 1:
        raise SynthesisError("array dimensions must be positive")

    b = NetlistBuilder(name or f"mem_array_{height}x{width}_mcr{mcr}")
    n_rows = height * mcr
    wl = b.inputs("wl", n_rows)
    bl = b.inputs("bl", width)
    wb = b.outputs("wb", height * mcr * width)

    compute = 0
    storage = 0
    for row in range(height):
        for bank in range(mcr):
            phys_row = row * mcr + bank
            # Bank 0 must be a compute-capable cell; extra banks can be
            # compact 6T storage whose read data routes to the mux.
            cell = memcell if bank == 0 else "SRAM6T"
            for col in range(width):
                idx = (row * mcr + bank) * width + col
                b.module.add_instance(
                    f"cell_r{phys_row}_c{col}",
                    cell,
                    {"WL": wl[phys_row], "BL": bl[col], "RD": wb[idx]},
                )
                if bank == 0:
                    compute += 1
                else:
                    storage += 1
    stats = ArrayStats(
        compute_cells=compute,
        storage_cells=storage,
        rows=n_rows,
        cols=width,
        banks=mcr,
    )
    return b.finish(), stats


def array_area_um2(
    height: int, width: int, mcr: int, memcell_area: float, sram6t_area: float
) -> float:
    """Closed-form array area (tests cross-check the generator)."""
    compute = height * width * memcell_area
    storage = height * (mcr - 1) * width * sram6t_area
    return compute + storage


def wordline_load_ff(width: int, wl_cap_ff: float, wire_cap_ff_per_um: float,
                     cell_pitch_um: float) -> float:
    """Capacitive load one word line presents to its driver."""
    return width * wl_cap_ff + width * cell_pitch_um * wire_cap_ff_per_um
