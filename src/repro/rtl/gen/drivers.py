"""Word-line and bit-line driver generators.

The WL driver registers the serial input bit per row, produces its
complement for the NOR multipliers, and buffers it across the array
width; the BL driver does the same for weight-update data down the
array height.  "The power and size of the WL/BL driver depend on the
array dimensions" (paper Section II.B) — the buffer chain is sized from
the actual word-line load.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder

#: Input capacitance (fF) one BUF_X<k> presents and its drive strength
#: relative to X2, used for chain sizing.
_BUF_DRIVES = {2: 1.0, 4: 2.0, 8: 4.0}
#: Load (fF) a single X2 buffer drives with good slew at 40 nm-class.
_LOAD_PER_X2_FF = 12.0


def buffer_chain_for_load(load_ff: float, strength: int) -> List[str]:
    """Choose a buffer chain (cell names) able to drive ``load_ff``.

    The final stage is fixed by the architecture's ``driver_strength``
    knob; pre-drivers are inserted when the fanout ratio would exceed 4.
    """
    if strength not in _BUF_DRIVES:
        raise SynthesisError(f"unsupported driver strength X{strength}")
    chain = [f"BUF_X{strength}"]
    capable = _LOAD_PER_X2_FF * _BUF_DRIVES[strength]
    stages_needed = max(0, math.ceil(math.log(max(load_ff / capable, 1.0), 4)))
    # Repeat the final stage as parallel fingers via extra stages of the
    # same strength (modelled as a deeper chain for timing purposes).
    for _ in range(stages_needed):
        chain.insert(0, "BUF_X2")
    return chain


def generate_wl_driver(
    rows: int,
    wordline_load_ff: float,
    strength: int = 4,
    name: Optional[str] = None,
) -> Module:
    """Per-row input register + complement + buffer chain.

    Ports: ``x[0..rows-1]`` serial input bits, ``clk``, outputs
    ``xb[0..rows-1]`` (complement, buffered onto the word lines).
    """
    if rows < 1:
        raise SynthesisError("rows must be positive")
    b = NetlistBuilder(name or f"wl_driver_{rows}")
    x = b.inputs("x", rows)
    clk = b.inputs("clk")[0]
    xb = b.outputs("xb", rows)
    b.module.set_clocks([clk])

    chain = buffer_chain_for_load(wordline_load_ff, strength)
    for r in range(rows):
        q = b.dff(x[r], clk, hint="inreg")
        node = b.inv(q)
        for i, cell in enumerate(chain):
            if i == len(chain) - 1:
                b.cell(cell, hint="wldrv", A=node, Y=xb[r])
            else:
                node = b.unary(cell, node, hint="wlpre")
    return b.finish()


def generate_bl_driver(
    cols: int,
    bitline_load_ff: float,
    strength: int = 4,
    name: Optional[str] = None,
) -> Module:
    """Weight-write driver: registers write data and drives bit lines.

    Ports: ``d[0..cols-1]`` write data, ``we`` write enable, ``clk``;
    outputs ``bl[0..cols-1]``.
    """
    if cols < 1:
        raise SynthesisError("cols must be positive")
    b = NetlistBuilder(name or f"bl_driver_{cols}")
    d = b.inputs("d", cols)
    we = b.inputs("we")[0]
    clk = b.inputs("clk")[0]
    bl = b.outputs("bl", cols)
    b.module.set_clocks([clk])

    chain = buffer_chain_for_load(bitline_load_ff, strength)
    for c in range(cols):
        q = b.dff(d[c], clk, hint="wreg")
        gated = b.and2(q, we)
        node = gated
        for i, cell in enumerate(chain):
            if i == len(chain) - 1:
                b.cell(cell, hint="bldrv", A=node, Y=bl[c])
            else:
                node = b.unary(cell, node, hint="blpre")
    return b.finish()


def driver_delay_budget_ns(
    wordline_load_ff: float, strength: int
) -> Tuple[float, int]:
    """Rough WL driver insertion delay and stage count (pre-STA hint)."""
    chain = buffer_chain_for_load(wordline_load_ff, strength)
    # ~35 ps per lightly loaded stage plus the loaded final stage.
    final_r = {2: 0.70, 4: 0.35, 8: 0.18}[strength]
    delay = 0.035 * (len(chain) - 1) + 0.026 + final_r * wordline_load_ff * 1e-3
    return delay, len(chain)
