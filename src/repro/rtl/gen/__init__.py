"""Parameterized generators for the seven DCIM subcircuit types."""

from .addertree import TreeStats, generate_adder_tree, tree_output_width
from .alignment import alignment_cost_estimate, generate_alignment_unit
from .drivers import (
    buffer_chain_for_load,
    driver_delay_budget_ns,
    generate_bl_driver,
    generate_wl_driver,
)
from .macro import (
    MacroShape,
    generate_column_slice,
    generate_macro,
    generate_macro_with_array,
    macro_shape,
)
from .memarray import ArrayStats, generate_memory_array, wordline_load_ff
from .multiplier import generate_mult_mux, mult_mux_cost_hint
from .ofu import OFUConfig, generate_ofu
from .shiftadder import accumulator_width, generate_shift_adder

__all__ = [
    "TreeStats",
    "generate_adder_tree",
    "tree_output_width",
    "alignment_cost_estimate",
    "generate_alignment_unit",
    "buffer_chain_for_load",
    "driver_delay_budget_ns",
    "generate_bl_driver",
    "generate_wl_driver",
    "MacroShape",
    "generate_column_slice",
    "generate_macro",
    "generate_macro_with_array",
    "macro_shape",
    "ArrayStats",
    "generate_memory_array",
    "wordline_load_ff",
    "generate_mult_mux",
    "mult_mux_cost_hint",
    "OFUConfig",
    "generate_ofu",
    "accumulator_width",
    "generate_shift_adder",
]
