"""Macro sequencing controller generator.

The generated macro consumes per-cycle control signals — ``neg``/
``clear`` during the serial sign-bit cycle and the OFU ``sub`` pattern.
On silicon these come from a small controller; this generator builds it
as gates, with the architecture-dependent pipeline latencies baked in
as constants (the compiler knows them from
:func:`repro.rtl.gen.macro.macro_shape`).

Behaviour (verified by gate-level simulation in the test suite):

* ``start`` (one-cycle pulse) launches a MAC: an internal counter runs
  ``0 .. total_cycles-1``;
* ``neg``/``clear`` pulse exactly when the first serial bit's partial
  count reaches the shift-adder (``prelatency`` cycles in);
* ``feed`` is high for the ``input_bits`` cycles during which the input
  registers must be fed serial data;
* ``done`` pulses on the final cycle (outputs valid at the next edge);
* ``sub[...]`` carries the static stage-1-subtract pattern.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder


def controller_constants(
    prelatency: int, input_bits: int, total_cycles: int
) -> Tuple[int, int]:
    """(counter width, idle value) for the given schedule."""
    if not 0 < prelatency < total_cycles:
        raise SynthesisError("prelatency must fall inside the schedule")
    if input_bits < 1 or total_cycles <= input_bits:
        raise SynthesisError("total_cycles must exceed input_bits")
    width = max(1, (total_cycles - 1).bit_length())
    return width, 0


def _equals_const(b: NetlistBuilder, bits: List[str], value: int) -> str:
    """AND-tree equality against a constant."""
    terms = []
    for i, bit in enumerate(bits):
        if (value >> i) & 1:
            terms.append(bit)
        else:
            terms.append(b.inv(bit))
    node = terms[0]
    for t in terms[1:]:
        node = b.and2(node, t)
    return node


def _less_than_const(b: NetlistBuilder, bits: List[str], value: int) -> str:
    """``count < value`` for an unsigned counter (ripple borrow)."""
    # count < value  <=>  NOT carry_out of (count + ~value + 1)
    carry = b.const1()
    for i, bit in enumerate(bits):
        vb = (value >> i) & 1
        vbar = b.const1() if not vb else b.const0()
        s, carry = b.full_adder(bit, vbar, carry)
        del s
    return b.inv(carry)


def generate_controller(
    prelatency: int,
    input_bits: int,
    total_cycles: int,
    sub_pattern: Optional[List[int]] = None,
    name: Optional[str] = None,
) -> Module:
    """Build the sequencer.

    Ports: ``start``, ``clk`` in; ``neg``, ``clear``, ``feed``, ``busy``,
    ``done`` and ``sub[0..S-1]`` out.
    """
    width, _ = controller_constants(prelatency, input_bits, total_cycles)
    sub_pattern = sub_pattern if sub_pattern is not None else [1]
    b = NetlistBuilder(name or f"ctrl_p{prelatency}_k{input_bits}_t{total_cycles}")
    start = b.inputs("start")[0]
    clk = b.inputs("clk")[0]
    neg = b.outputs("neg")[0]
    clear = b.outputs("clear")[0]
    feed = b.outputs("feed")[0]
    busy_o = b.outputs("busy")[0]
    done = b.outputs("done")[0]
    sub = b.outputs("sub", len(sub_pattern))
    b.module.set_clocks([clk])

    # busy flop: set on start, cleared on the last cycle.
    busy_q = b.net("busy_q")
    count_q = [b.net("cnt_q") for _ in range(width)]
    at_last = _equals_const(b, count_q, total_cycles - 1)
    keep = b.and2(busy_q, b.inv(at_last))
    busy_d = b.or2(start, keep)
    b.module.add_instance("busy_reg", "DFF_X1", {"D": busy_d, "CK": clk, "Q": busy_q})

    # counter: +1 while busy, held at zero otherwise.
    carry = busy_q  # increment amount = busy
    next_bits: List[str] = []
    for i in range(width):
        s, carry = b.half_adder(count_q[i], carry)
        next_bits.append(b.and2(s, busy_d))
    for i in range(width):
        b.module.add_instance(
            f"cnt_reg_{i}", "DFF_X1",
            {"D": next_bits[i], "CK": clk, "Q": count_q[i]},
        )

    pulse = b.and2(_equals_const(b, count_q, prelatency), busy_q)
    b.cell("BUF_X2", hint="negb", A=pulse, Y=neg)
    b.cell("BUF_X2", hint="clrb", A=pulse, Y=clear)
    feeding = b.and2(_less_than_const(b, count_q, input_bits), busy_q)
    b.cell("BUF_X2", hint="feedb", A=feeding, Y=feed)
    b.cell("BUF_X2", hint="busyb", A=busy_q, Y=busy_o)
    b.cell("BUF_X2", hint="doneb", A=b.and2(at_last, busy_q), Y=done)
    for i, v in enumerate(sub_pattern):
        src = b.const1() if v else b.const0()
        b.cell("BUF_X2", hint="subb", A=src, Y=sub[i])
    return b.finish()


def schedule_for(shape) -> Tuple[int, int, int]:
    """Derive (prelatency, input_bits, total_cycles) from a
    :class:`~repro.rtl.gen.macro.MacroShape`."""
    return (
        shape.prelatency_cycles,
        shape.input_bits,
        shape.latency_cycles,
    )
