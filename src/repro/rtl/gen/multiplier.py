"""Bitwise multiplier and MCR multiplexer generators.

Paper Section II.B lists three implementation styles, all reproduced:

1. ``pg_1t`` — AutoDCIM's 1T passing gate as the bank multiplexer:
   smallest, but the threshold-voltage drop costs delay and power;
2. ``oai22`` — an OAI22 gate fusing multiplier and multiplexer: saves
   wiring but does not scale beyond MCR=2;
3. ``tg_nor`` — 2T transmission gate for selection plus a NOR gate for
   multiplication: the commonly adopted balance.

Convention: the SRAM bitcell read port provides the *complement* of the
stored weight (``wb``), and the WL driver distributes the *complement*
of the serial input bit (``xb``), so the multiply is a single NOR:
``NOR(xb, wb) = x AND w``.  The OAI22 style instead works on active-high
select/weight pairs and produces the selected weight directly.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder


def generate_mult_mux(
    mcr: int,
    style: str = "tg_nor",
    name: Optional[str] = None,
) -> Module:
    """One row's multiplier + bank multiplexer.

    Ports
    -----
    ``xb``             complement of the serial input bit
    ``wb[0..mcr-1]``   complement weight bits from the MCR banks
    ``sel[0..k-1]``    bank select (binary encoded, ``k = log2(mcr)``;
                       absent when ``mcr == 1``)
    ``p``              product bit (``x AND w_selected``)
    """
    if mcr < 1 or mcr & (mcr - 1):
        raise SynthesisError(f"mcr must be a power of two >= 1, got {mcr}")
    if style not in ("tg_nor", "oai22", "pg_1t"):
        raise SynthesisError(f"unknown multiplier style {style!r}")
    if style == "oai22" and mcr > 2:
        raise SynthesisError("oai22 fused mult-mux does not scale beyond MCR=2")

    b = NetlistBuilder(name or f"mult_mux_{style}_mcr{mcr}")
    xb = b.inputs("xb")[0]
    wb = b.inputs("wb", mcr)
    sel_bits = int(math.log2(mcr)) if mcr > 1 else 0
    sel = b.inputs("sel", sel_bits) if sel_bits else []
    p = b.outputs("p")[0]

    if style == "oai22":
        _build_oai22(b, xb, wb, sel, p)
    else:
        mux_cell = "TGMUX2_X1" if style == "tg_nor" else "PGMUX2_X1"
        wb_sel = _mux_tree(b, wb, sel, mux_cell)
        b.cell("NOR2_X1", hint="mult", A=xb, B=wb_sel, Y=p)
    return b.finish()


def _mux_tree(
    b: NetlistBuilder, data: List[str], sel: List[str], mux_cell: str
) -> str:
    """Binary multiplexer tree over the MCR banks."""
    level = list(data)
    for s in sel:
        nxt: List[str] = []
        for i in range(0, len(level), 2):
            y = b.net("wmux")
            b.cell(mux_cell, hint="wmux", D0=level[i], D1=level[i + 1], S=s, Y=y)
            nxt.append(y)
        level = nxt
    if len(level) != 1:
        raise SynthesisError("mux tree did not converge; sel width mismatch")
    return level[0]


def _build_oai22(
    b: NetlistBuilder, xb: str, wb: List[str], sel: List[str], p: str
) -> None:
    """Fused OAI22 multiplier-multiplexer (MCR <= 2).

    For MCR=2 with a one-hot-decoded select: OAI22 over the active-low
    pairs computes the selected weight complement, then the NOR
    multiplies.  ``OAI22(s0b, w0b, s1b, w1b) = (s0&w0) | (s1&w1)``.
    """
    if len(wb) == 1:
        # Degenerate: no bank mux, just the fused multiply (NOR).
        b.cell("NOR2_X1", hint="mult", A=xb, B=wb[0], Y=p)
        return
    s = sel[0]
    sb = b.inv(s)
    w_sel = b.net("wsel")  # active-high selected weight
    # OAI22(s, wb0, sb, wb1) = (sb & w0) | (s & w1): bank 0 when sel=0.
    b.cell("OAI22_X1", hint="fmm", A=s, B=wb[0], C=sb, D=wb[1], Y=w_sel)
    # p = x & w_sel = NOR(xb, ~w_sel); fold the inversion into a NAND-
    # style structure: NOR(xb, INV(w_sel)).
    w_selb = b.inv(w_sel)
    b.cell("NOR2_X1", hint="mult", A=xb, B=w_selb, Y=p)


def mult_mux_cost_hint(style: str, mcr: int) -> Tuple[float, float]:
    """(relative area, relative delay) coarse hints for documentation and
    quick pruning; the subcircuit library holds the real PPA numbers."""
    mux_stages = max(0, int(math.log2(max(mcr, 1))))
    if style == "pg_1t":
        return 0.35 * max(mcr - 1, 1) + 1.2, 0.040 * mux_stages + 0.016
    if style == "oai22":
        return 3.9, 0.046
    return 0.9 * max(mcr - 1, 1) + 1.2, 0.014 * mux_stages + 0.016
