"""Shift-and-adder (S&A) generator.

The S&A accumulates the bit-serial partial sums of one column (paper
Section II.B): inputs arrive MSB-first, so each cycle the accumulator is
shifted left by one and the new adder-tree output is added — or
subtracted on the sign-bit cycle, which implements two's-complement
input weighting:

``acc' = (clear ? 0 : acc << 1) + (neg ? -tree : tree)``

"Its complexity is related to the input bit-width and the height of the
DCIM macro": the accumulator width is the tree-sum width plus the number
of serial input bits, both of which the caller provides.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import SynthesisError
from ..ir import Module, NetlistBuilder


def accumulator_width(tree_width: int, input_bits: int) -> int:
    """Width of the S&A accumulator register."""
    return tree_width + input_bits


def generate_shift_adder(
    tree_width: int,
    input_bits: int,
    name: Optional[str] = None,
    registered_output: bool = True,
) -> Module:
    """Build one column's S&A.

    Ports
    -----
    ``t[0..T-1]``    adder-tree sum (unsigned)
    ``neg``          asserted during the input sign-bit cycle (subtract)
    ``clear``        asserted on the first cycle of a new input word
    ``clk``
    ``acc[0..A-1]``  accumulator value (two's complement)

    When ``registered_output`` is false the combinational next-state is
    exported instead (used when the searcher retimes OFU logic into this
    stage and wants the raw sum).
    """
    if tree_width < 1 or input_bits < 1:
        raise SynthesisError("tree_width and input_bits must be positive")
    width = accumulator_width(tree_width, input_bits)
    b = NetlistBuilder(name or f"shift_adder_t{tree_width}_k{input_bits}")
    t = b.inputs("t", tree_width)
    neg = b.inputs("neg")[0]
    clear = b.inputs("clear")[0]
    clk = b.inputs("clk")[0]
    acc_out = b.outputs("acc", width)
    b.module.set_clocks([clk])

    zero = b.const0()
    nclear = b.inv(clear)

    # Current accumulator state.
    state = [b.net("acc_q") for _ in range(width)]

    # Shifted, clear-gated accumulator: bit 0 becomes 0.
    shifted: List[str] = [zero]
    for i in range(1, width):
        shifted.append(b.and2(state[i - 1], nclear))

    # Conditionally negated tree value, zero-extended then XOR-inverted;
    # the +1 of the two's complement rides in on the adder carry-in.
    addend: List[str] = []
    for i in range(width):
        bit = t[i] if i < tree_width else zero
        addend.append(b.xor2(bit, neg))

    sums = _ripple_add_mod(b, shifted, addend, carry_in=neg)

    for i in range(width):
        d = sums[i]
        q = b.net("acc_d")
        b.module.add_instance(f"acc_reg_{i}", "DFF_X1", {"D": d, "CK": clk, "Q": state[i]})
        if registered_output:
            b.cell("BUF_X2", hint="accbuf", A=state[i], Y=acc_out[i])
        else:
            b.cell("BUF_X2", hint="accbuf", A=d, Y=acc_out[i])
        del q
    return b.finish()


def _ripple_add_mod(
    b: NetlistBuilder, a: List[str], c: List[str], carry_in: str
) -> List[str]:
    """Equal-width ripple add modulo 2^width (two's complement safe)."""
    if len(a) != len(c):
        raise SynthesisError("ripple add operands must match in width")
    sums: List[str] = []
    carry = carry_in
    for i in range(len(a)):
        s, carry = b.full_adder(a[i], c[i], carry)
        sums.append(s)
    return sums


def sa_cost_estimate(
    tree_width: int, input_bits: int
) -> Tuple[int, int, int]:
    """(#FA, #DFF, #aux gates) — structural expectation for tests."""
    width = accumulator_width(tree_width, input_bits)
    aux = (width - 1) + width + 2 + width  # and-shift, xor, invs, bufs
    return width, width, aux
