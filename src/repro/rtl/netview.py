"""Compiled, integer-indexed view of a flat netlist.

The analysis kernels (switching-activity propagation, STA arrival
passes, power summation) all walk the same flat module.  Doing that
walk with ``inst.conn.get(pin)`` / ``library.cell(name)`` dictionary
chasing costs tens of millions of hash lookups per subcircuit-library
build, so this module compiles the netlist **once** into plain integer
tables:

* every net gets a dense id (``net_id``/``net_names``);
* every leaf instance gets its resolved cell object plus tuples of
  input/output net ids in the cell's pin order (``-1`` = unconnected);
* instances are additionally grouped by cell type (`CellGroup`) with
  the pin tables stacked into numpy matrices, which lets the timing and
  power kernels emit whole edge/energy arrays with a handful of
  vectorized operations instead of a Python loop per pin.

Views are cached on the module object and invalidated automatically
when the module is mutated (see :attr:`repro.rtl.ir.Module.revision`),
so ``validate`` + STA + activity + power on the same flattened module
pay for one compilation pass, not four traversals.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, List, Tuple

import numpy as np

from ..errors import SynthesisError
from ..tech.stdcells import Cell, StdCellLibrary


class CellGroup:
    """All instances of one cell type, pin tables stacked."""

    __slots__ = ("cell", "inst_idx", "in_ids", "out_ids")

    def __init__(
        self,
        cell: Cell,
        inst_idx: List[int],
        in_ids: List[Tuple[int, ...]],
        out_ids: List[Tuple[int, ...]],
    ) -> None:
        self.cell = cell
        self.inst_idx = np.asarray(inst_idx, dtype=np.int64)
        n = len(inst_idx)
        self.in_ids = np.asarray(in_ids, dtype=np.int64).reshape(
            n, len(cell.input_caps_ff)
        )
        self.out_ids = np.asarray(out_ids, dtype=np.int64).reshape(
            n, len(cell.outputs)
        )

    def __len__(self) -> int:
        return len(self.inst_idx)


class NetView:
    """Integer tables for one flat module against one cell library."""

    __slots__ = (
        "module",
        "library",
        "revision",
        "net_names",
        "net_id",
        "cells",
        "in_ids",
        "out_ids",
        "groups",
        "derived",
    )

    def __init__(self, module, library: StdCellLibrary) -> None:
        self.module = module
        self.library = library
        self.revision = module.revision
        names = list(module.nets)
        self.net_names: List[str] = names
        nid = {name: i for i, name in enumerate(names)}
        self.net_id: Dict[str, int] = nid

        cells: List[Cell] = []
        in_ids: List[Tuple[int, ...]] = []
        out_ids: List[Tuple[int, ...]] = []
        cell_cache: Dict[str, Cell] = {}
        info_cache: Dict[str, tuple] = {}
        grouping: Dict[str, List[int]] = {}
        lib_cell = library.cell
        nid_get = nid.__getitem__
        for idx, inst in enumerate(module.instances):
            ref = inst.ref
            if type(ref) is not str:
                ref = inst.cell_name  # raises for hierarchical instances
            info = info_cache.get(ref)
            if info is None:
                cell = cell_cache[ref] = lib_cell(ref)
                pins = tuple(cell.input_caps_ff)
                outs = cell.outputs
                info = info_cache[ref] = (
                    cell,
                    pins,
                    outs,
                    itemgetter(*pins) if pins else None,
                    len(pins) == 1,
                    itemgetter(*outs) if outs else None,
                    len(outs) == 1,
                )
            cell, pins, outs, in_get, in1, out_get, out1 = info
            conn = inst.conn
            # Fast path: every pin connected (itemgetter + C-level map);
            # a KeyError means an unconnected pin — fall back to -1 fill.
            try:
                if in_get is None:
                    in_row: Tuple[int, ...] = ()
                elif in1:
                    in_row = (nid[in_get(conn)],)
                else:
                    in_row = tuple(map(nid_get, in_get(conn)))
            except KeyError:
                cg = conn.get
                in_row = tuple(
                    -1 if (net := cg(p)) is None else nid[net] for p in pins
                )
            try:
                if out_get is None:
                    out_row: Tuple[int, ...] = ()
                elif out1:
                    out_row = (nid[out_get(conn)],)
                else:
                    out_row = tuple(map(nid_get, out_get(conn)))
            except KeyError:
                cg = conn.get
                out_row = tuple(
                    -1 if (net := cg(o)) is None else nid[net] for o in outs
                )
            in_ids.append(in_row)
            out_ids.append(out_row)
            cells.append(cell)
            grouping.setdefault(ref, []).append(idx)
        self.cells = cells
        self.in_ids = in_ids
        self.out_ids = out_ids
        self.groups: List[CellGroup] = [
            CellGroup(
                cell_cache[name],
                idxs,
                [in_ids[i] for i in idxs],
                [out_ids[i] for i in idxs],
            )
            for name, idxs in grouping.items()
        ]
        #: Scratch space for kernels to stash per-view derived structures
        #: (timing arrays, activity schedules, power constants, ...).
        self.derived: Dict[str, object] = {}

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    @property
    def n_instances(self) -> int:
        return len(self.cells)


def view_driver_counts(view: NetView) -> np.ndarray:
    """Per-net driver count over the view's stacked output tables."""
    all_out = [g.out_ids.ravel() for g in view.groups if g.out_ids.size]
    if all_out:
        ids = np.concatenate(all_out)
        ids = ids[ids >= 0]
        return np.bincount(ids, minlength=view.n_nets)
    return np.zeros(view.n_nets, dtype=np.int64)


def check_single_driver(view: NetView) -> np.ndarray:
    """Raise on multiply-driven nets; returns the per-net driver counts.

    Shared by :meth:`Module.validate` and the synthesis-pass index — a
    multiply-driven net would otherwise be silently resolved to one
    driver by any table keyed on nets.  The slow
    :meth:`Module.net_drivers` walk is only replayed to produce its
    detailed message when a violation is detected.
    """
    counts = view_driver_counts(view)
    if (counts > 1).any():
        view.module.net_drivers(view.library)  # raises with the pair
        raise SynthesisError(  # pragma: no cover - defensive
            f"{view.module.name}: multiply driven nets"
        )
    return counts


def check_pins(view: NetView) -> None:
    """Raise when any instance connects a pin its cell does not have."""
    valid_by_ref: Dict[str, frozenset] = {}
    for group in view.groups:
        cell = group.cell
        valid_by_ref[cell.name] = frozenset(cell.input_caps_ff) | frozenset(
            cell.outputs
        )
    module = view.module
    for inst in module.instances:
        valid_pins = valid_by_ref[inst.ref]
        if not valid_pins.issuperset(inst.conn):
            bad = next(p for p in inst.conn if p not in valid_pins)
            raise SynthesisError(
                f"{module.name}: {inst.name} has no pin {bad!r} "
                f"on {inst.ref}"
            )


def net_view(module, library: StdCellLibrary) -> NetView:
    """The (cached) compiled view of ``module`` against ``library``.

    The cache key is the library's identity; the entry is rebuilt when
    the module has been mutated since compilation.  In a batch worker
    whose parent published view tensors over shared memory (see
    :mod:`repro.shm.netview`), a cache miss first probes the published
    segments and hydrates zero-copy instead of re-walking the module;
    with no attachments installed the probe is a single ``None`` check.
    """
    cache = getattr(module, "_net_view_cache", None)
    if cache is None:
        cache = module._net_view_cache = {}
    view = cache.get(id(library))
    if view is None or view.revision != module.revision:
        from ..shm import netview as _shm_netview

        if _shm_netview._ATTACHMENTS is not None:
            view = _shm_netview.try_attach_net_view(module, library)
            if view is not None:
                cache[id(library)] = view
                return view
        view = cache[id(library)] = NetView(module, library)
    return view
