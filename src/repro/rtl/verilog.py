"""Structural Verilog emission for :class:`~repro.rtl.ir.Module`.

The compiler hands RTL/netlists to downstream consumers as Verilog
(paper Fig. 2: "RTL & netlist" outputs).  Scalar nets whose names carry
bus indices (``data[3]``) are re-bundled into declared vectors so the
output reads like hand-written structural Verilog.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from .ir import Module

_BUS_RE = re.compile(r"^(?P<base>[A-Za-z_][\w/]*)\[(?P<idx>\d+)\]$")


def _escape(name: str) -> str:
    """Escape identifiers Verilog would reject (hierarchy slashes etc.)."""
    if re.fullmatch(r"[A-Za-z_]\w*", name):
        return name
    return f"\\{name} "


def _group_buses(names: List[str]) -> Tuple[Dict[str, int], List[str]]:
    """Split names into bus bases (base -> msb) and scalar names."""
    buses: Dict[str, int] = {}
    scalars: List[str] = []
    seen_indices: Dict[str, Set[int]] = {}
    for n in names:
        m = _BUS_RE.match(n)
        if m:
            base = m.group("base")
            idx = int(m.group("idx"))
            buses[base] = max(buses.get(base, 0), idx)
            seen_indices.setdefault(base, set()).add(idx)
        else:
            scalars.append(n)
    # Demote sparse buses (missing indices) to scalars to stay lint-clean.
    for base, msb in list(buses.items()):
        if seen_indices[base] != set(range(msb + 1)):
            del buses[base]
            scalars.extend(f"{base}[{i}]" for i in sorted(seen_indices[base]))
    return buses, scalars


def emit_verilog(module: Module) -> str:
    """Render one (typically flat) module as structural Verilog."""
    ports = list(module.ports.values())
    port_names = [p.name for p in ports]
    in_buses, in_scalars = _group_buses(
        [p.name for p in ports if p.direction == "input"]
    )
    out_buses, out_scalars = _group_buses(
        [p.name for p in ports if p.direction == "output"]
    )

    header_ports: List[str] = []
    for base in sorted(in_buses) + sorted(out_buses):
        header_ports.append(_escape(base))
    for s in in_scalars + out_scalars:
        header_ports.append(_escape(s))

    lines: List[str] = []
    lines.append(f"module {_escape(module.name)} (")
    lines.append("  " + ",\n  ".join(header_ports))
    lines.append(");")
    for base in sorted(in_buses):
        lines.append(f"  input [{in_buses[base]}:0] {_escape(base)};")
    for s in in_scalars:
        lines.append(f"  input {_escape(s)};")
    for base in sorted(out_buses):
        lines.append(f"  output [{out_buses[base]}:0] {_escape(base)};")
    for s in out_scalars:
        lines.append(f"  output {_escape(s)};")

    internal = [n for n in module.nets if n not in set(port_names)]
    wire_buses, wire_scalars = _group_buses(internal)
    for base in sorted(wire_buses):
        lines.append(f"  wire [{wire_buses[base]}:0] {_escape(base)};")
    for s in wire_scalars:
        lines.append(f"  wire {_escape(s)};")
    lines.append("")

    for inst in module.instances:
        ref = inst.cell_name if inst.is_leaf else inst.module.name
        conns = ", ".join(
            f".{pin}({_escape(net)})" for pin, net in sorted(inst.conn.items())
        )
        lines.append(f"  {_escape(ref)} {_escape(inst.name)} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def count_instances(verilog: str) -> int:
    """Count instantiation statements in emitted Verilog (test helper)."""
    body = verilog.split(");", 1)[-1]
    return sum(
        1
        for line in body.splitlines()
        if line.strip().endswith(");")
        and not line.strip().startswith(("input", "output", "wire", "module"))
    )
