"""RTL intermediate representation, Verilog emission and generators.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .ir import (
    CONST0,
    CONST1,
    Instance,
    Module,
    NetlistBuilder,
    Port,
    bus,
    sign_extend,
    zero_extend,
)
from .verilog import count_instances, emit_verilog

__all__ = [
    "CONST0",
    "CONST1",
    "Instance",
    "Module",
    "NetlistBuilder",
    "Port",
    "bus",
    "sign_extend",
    "zero_extend",
    "count_instances",
    "emit_verilog",
]
