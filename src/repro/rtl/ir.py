"""Structural RTL/netlist intermediate representation.

The paper's flow produces "architecture RTL, subcircuit RTL and netlist"
(Fig. 2).  This IR covers both levels with one set of classes:

* a :class:`Module` owns scalar nets, ports and instances;
* an :class:`Instance` references either a library cell (leaf) or
  another :class:`Module` (hierarchy);
* :meth:`Module.flatten` elaborates the hierarchy into a pure-leaf
  netlist that synthesis, STA, power, layout and gate-level simulation
  all consume.

Nets are scalar; buses are name conventions (``name[i]``) produced by
:func:`bus`.  A :class:`NetlistBuilder` provides the ergonomic layer the
RTL generators use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SynthesisError
from ..tech.stdcells import StdCellLibrary

#: Name of the implicit constant-zero / constant-one nets.
CONST0 = "tie0_net"
CONST1 = "tie1_net"


def bus(name: str, width: int, msb_first: bool = False) -> List[str]:
    """Scalar net names for an indexed bus, LSB first by default."""
    names = [f"{name}[{i}]" for i in range(width)]
    return names[::-1] if msb_first else names


@dataclass
class Port:
    """A module port bound to a net of the same name."""

    name: str
    direction: str  # "input" | "output"

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise SynthesisError(f"bad port direction {self.direction!r}")


@dataclass(slots=True)
class Instance:
    """An instantiation of a cell or submodule.

    ``conn`` maps the referenced object's pin/port names to net names in
    the parent module.
    """

    name: str
    ref: Union[str, "Module"]
    conn: Dict[str, str]

    @property
    def is_leaf(self) -> bool:
        return isinstance(self.ref, str)

    @property
    def cell_name(self) -> str:
        if not isinstance(self.ref, str):
            raise SynthesisError(f"instance {self.name} is hierarchical")
        return self.ref

    @property
    def module(self) -> "Module":
        if isinstance(self.ref, str):
            raise SynthesisError(f"instance {self.name} is a leaf")
        return self.ref


class Module:
    """A netlist module: ports, nets and instances."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.nets: Dict[str, None] = {}  # insertion-ordered set
        self.instances: List[Instance] = []
        self.clock_nets: Tuple[str, ...] = ()
        self._instance_names: Dict[str, None] = {}
        self._revision = 0
        # (revision, entries, [(child, template)]) — see _leaf_template.
        self._leaf_template_cache: Optional[tuple] = None

    @property
    def revision(self) -> int:
        """Mutation counter: bumped by every structural change, so caches
        keyed on a module (flatten templates, compiled net views) can
        detect staleness without hashing the netlist."""
        return self._revision

    # -- construction -----------------------------------------------------

    def add_net(self, name: str) -> str:
        if name not in self.nets:
            self.nets[name] = None
            self._revision += 1
        return name

    def add_port(self, name: str, direction: str) -> str:
        if name in self.ports:
            if self.ports[name].direction != direction:
                raise SynthesisError(
                    f"{self.name}: port {name} redeclared with other direction"
                )
            return name
        self.ports[name] = Port(name, direction)
        self._revision += 1
        self.add_net(name)
        return name

    def add_instance(
        self, name: str, ref: Union[str, "Module"], conn: Mapping[str, str]
    ) -> Instance:
        if name in self._instance_names:
            raise SynthesisError(f"{self.name}: duplicate instance {name}")
        inst = Instance(name=name, ref=ref, conn=dict(conn))
        for net in inst.conn.values():
            self.add_net(net)
        self.instances.append(inst)
        self._instance_names[name] = None
        self._revision += 1
        return inst

    def _add_instance_unchecked(
        self, name: str, ref: Union[str, "Module"], conn: Dict[str, str]
    ) -> Instance:
        """Construction fast path: takes ownership of ``conn`` (no
        defensive copy — the saving that matters).  The duplicate-name
        guard stays: builder-counter names share a namespace with
        manually added instances (e.g. the controller's ``busy_reg``)."""
        if name in self._instance_names:
            raise SynthesisError(f"{self.name}: duplicate instance {name}")
        inst = Instance(name=name, ref=ref, conn=conn)
        nets = self.nets
        for net in conn.values():
            if net not in nets:
                nets[net] = None
        self.instances.append(inst)
        self._instance_names[name] = None
        self._revision += 1
        return inst

    def set_clocks(self, nets: Sequence[str]) -> None:
        for n in nets:
            self.add_net(n)
        self.clock_nets = tuple(nets)
        self._revision += 1

    # -- queries ------------------------------------------------------------

    @property
    def input_ports(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.ports.values() if p.direction == "input")

    @property
    def output_ports(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.ports.values() if p.direction == "output")

    @property
    def is_flat(self) -> bool:
        """True when every instance is a library leaf (no hierarchy)."""
        return all(type(inst.ref) is str for inst in self.instances)

    def leaf_count(self) -> int:
        """Total leaf-instance count after full elaboration."""
        total = 0
        for inst in self.instances:
            total += 1 if inst.is_leaf else inst.module.leaf_count()
        return total

    def net_drivers(
        self, library: StdCellLibrary
    ) -> Dict[str, Tuple[Instance, str]]:
        """Map net -> (leaf instance, output pin) driving it.

        Only valid on flat modules; raises on multiply-driven nets.
        """
        drivers: Dict[str, Tuple[Instance, str]] = {}
        for inst in self.instances:
            cell = library.cell(inst.cell_name)
            for pin in cell.outputs:
                net = inst.conn.get(pin)
                if net is None:
                    continue
                if net in drivers:
                    raise SynthesisError(
                        f"{self.name}: net {net} multiply driven "
                        f"({drivers[net][0].name} and {inst.name})"
                    )
                drivers[net] = (inst, pin)
        return drivers

    def net_loads(
        self, library: StdCellLibrary
    ) -> Dict[str, List[Tuple[Instance, str]]]:
        """Map net -> list of (leaf instance, input pin) reading it."""
        loads: Dict[str, List[Tuple[Instance, str]]] = {}
        for inst in self.instances:
            cell = library.cell(inst.cell_name)
            for pin in cell.input_caps_ff:
                net = inst.conn.get(pin)
                if net is None:
                    continue
                loads.setdefault(net, []).append((inst, pin))
        return loads

    def cell_histogram(self, library: StdCellLibrary) -> Dict[str, int]:
        """Leaf-cell usage counts (flat modules)."""
        hist: Dict[str, int] = {}
        for inst in self.instances:
            hist[inst.cell_name] = hist.get(inst.cell_name, 0) + 1
        return hist

    def total_area_um2(self, library: StdCellLibrary) -> float:
        return sum(
            library.cell(inst.cell_name).area_um2 for inst in self.instances
        )

    # -- elaboration ----------------------------------------------------------

    def flatten(self) -> "Module":
        """Elaborate hierarchy into a flat leaf-only module.

        Instance names become ``parent/child``; internal nets of
        submodules become ``parent/net``.  Port connections splice child
        port nets onto the parent nets they are bound to.

        The expansion runs over precomputed leaf tables: every resolved
        net name is computed once and memoized per instantiation (not
        once per sink pin), children instantiated repeatedly replay
        their cached :meth:`_leaf_template`, and the flat module is
        assembled through a bulk path that skips the per-instance
        bookkeeping of :meth:`add_instance` (name uniqueness holds by
        construction: hierarchical paths of unique sibling names).
        """
        flat = Module(self.name)
        for port in self.ports.values():
            flat.add_port(port.name, port.direction)
        nets = flat.nets
        for net in self.nets:
            if net not in nets:
                nets[net] = None
        flat.set_clocks(self.clock_nets)
        entries: List[tuple] = []
        self._expand_into(entries, "", {}, [])
        instances = flat.instances
        names = flat._instance_names
        append = instances.append
        for iname, ref, conn in entries:
            # The expansion emits a fresh dict per entry, so the
            # instance takes ownership without another copy.
            append(Instance(name=iname, ref=ref, conn=conn))
            names[iname] = None
            for net in conn.values():
                # Unconditional store: cheaper than a membership probe,
                # and re-assigning an existing key keeps its position.
                nets[net] = None
        flat._revision += len(entries) + 1
        return flat

    def _leaf_template(self) -> List[tuple]:
        """Cached, module-relative table of every leaf under this module:
        ``(relative_name, cell_ref, {pin: relative_net})``.

        Internal nets carry their hierarchical path; nets bound to this
        module's ports appear under the port name, so an instantiation
        only has to splice port nets and prefix the rest.

        Staleness is checked against the whole subtree: the cache
        records ``(module, revision)`` for every module whose instances
        the expansion read — this one, direct-recursed descendants and
        template-consumed children alike — so a mutation anywhere below
        rebuilds the table.
        """
        if self._template_fresh():
            return self._leaf_template_cache[0]
        entries: List[tuple] = []
        deps: List[tuple] = []
        self._expand_into(entries, "", {}, deps)
        uniq = {id(m): (m, rev) for m, rev in deps}
        self._leaf_template_cache = (entries, list(uniq.values()))
        return entries

    def _template_fresh(self) -> bool:
        """Whether the cached leaf template matches the current subtree."""
        cached = self._leaf_template_cache
        return cached is not None and all(
            m._revision == rev for m, rev in cached[1]
        )

    def _expand_into(
        self,
        out: List[tuple],
        prefix: str,
        net_map: Dict[str, str],
        deps: List[tuple],
    ) -> None:
        """Append resolved leaf entries for everything under ``self``.

        ``net_map`` maps local net names to their names in the target
        namespace; unmapped nets are prefixed once and memoized into it.
        Children whose Module object is instantiated more than once in
        this module expand through their cached leaf template instead of
        re-walking their hierarchy per instantiation.  ``deps`` collects
        ``(module, revision)`` for every module this expansion reads, so
        template caches can detect staleness anywhere in the subtree.
        """
        deps.append((self, self._revision))
        counts: Dict[int, int] = {}
        for inst in self.instances:
            if not inst.is_leaf:
                key = id(inst.ref)
                counts[key] = counts.get(key, 0) + 1
        get = net_map.get
        for inst in self.instances:
            iname = prefix + inst.name
            if inst.is_leaf:
                items: Dict[str, str] = {}
                for pin, net in inst.conn.items():
                    r = get(net)
                    if r is None:
                        r = net_map[net] = (prefix + net) if prefix else net
                    items[pin] = r
                out.append((iname, inst.ref, items))
                continue
            child = inst.module
            cmap: Dict[str, str] = {}
            conn = inst.conn
            for pname in child.ports:
                if pname in conn:
                    pnet = conn[pname]
                    r = get(pnet)
                    if r is None:
                        r = net_map[pnet] = (
                            (prefix + pnet) if prefix else pnet
                        )
                    cmap[pname] = r
            cprefix = iname + "/"
            # Children instantiated repeatedly expand through their
            # cached leaf template; so does any child whose template is
            # already cached and fresh (e.g. a bitcell array shared by
            # successive escalation attempts) — the replay skips its
            # whole-subtree re-walk.
            if counts[id(child)] > 1 or child._template_fresh():
                tmpl = child._leaf_template()
                deps.extend(child._leaf_template_cache[1])
                cget = cmap.get
                for rname, ref, rconn in tmpl:
                    resolved: Dict[str, str] = {}
                    for pin, net in rconn.items():
                        r = cget(net)
                        if r is None:
                            r = cmap[net] = cprefix + net
                        resolved[pin] = r
                    out.append((cprefix + rname, ref, resolved))
            else:
                child._expand_into(out, cprefix, cmap, deps)

    def validate(self, library: StdCellLibrary) -> None:
        """Structural sanity check on a flat module.

        Confirms every leaf pin exists on its cell, every output port is
        driven, and no net has multiple drivers.  Runs over the compiled
        integer view (shared with STA/power on the same module); the
        slow :meth:`net_drivers` walk is only replayed to produce its
        detailed message when a multi-driver violation is detected.
        """
        from .netview import check_pins, check_single_driver, net_view

        view = net_view(self, library)
        driver_counts = check_single_driver(view)
        check_pins(view)
        undriven = [
            p
            for p in self.output_ports
            if driver_counts[view.net_id[p]] == 0
            and p not in (CONST0, CONST1)
        ]
        if undriven:
            raise SynthesisError(
                f"{self.name}: undriven output ports {undriven[:8]}"
            )


class NetlistBuilder:
    """Convenience wrapper the RTL generators use to assemble a module."""

    def __init__(self, name: str) -> None:
        self.module = Module(name)
        self._auto = 0
        self._const0_made = False
        self._const1_made = False

    # -- nets ----------------------------------------------------------------

    def net(self, hint: str = "n") -> str:
        self._auto += 1
        name = f"{hint}_{self._auto}"
        module = self.module
        if name not in module.nets:
            module.nets[name] = None
            module._revision += 1
        return name

    def nets(self, hint: str, count: int) -> List[str]:
        return [self.net(hint) for _ in range(count)]

    def inputs(self, name: str, width: int = 0) -> List[str]:
        if width == 0:
            return [self.module.add_port(name, "input")]
        return [self.module.add_port(n, "input") for n in bus(name, width)]

    def outputs(self, name: str, width: int = 0) -> List[str]:
        if width == 0:
            return [self.module.add_port(name, "output")]
        return [self.module.add_port(n, "output") for n in bus(name, width)]

    def const0(self) -> str:
        if not self._const0_made:
            self.module.add_instance("tie0_cell", "TIE0", {"Y": CONST0})
            self._const0_made = True
        return CONST0

    def const1(self) -> str:
        if not self._const1_made:
            self.module.add_instance("tie1_cell", "TIE1", {"Y": CONST1})
            self._const1_made = True
        return CONST1

    # -- instances ---------------------------------------------------------

    def cell(
        self, cell_name: str, hint: str = "", **conn: str
    ) -> Instance:
        self._auto += 1
        iname = f"{hint or cell_name.lower()}_{self._auto}"
        # kwargs give us a fresh dict to hand over without a copy.
        return self.module._add_instance_unchecked(iname, cell_name, conn)

    def submodule(self, sub: Module, hint: str = "", **conn: str) -> Instance:
        self._auto += 1
        iname = f"{hint or sub.name}_{self._auto}"
        return self.module._add_instance_unchecked(iname, sub, conn)

    # -- small logic helpers (return the output net) --------------------------

    def unary(self, cell_name: str, a: str, hint: str = "") -> str:
        y = self.net(hint or "y")
        self.cell(cell_name, hint=hint, A=a, Y=y)
        return y

    def binary(self, cell_name: str, a: str, b: str, hint: str = "") -> str:
        y = self.net(hint or "y")
        self.cell(cell_name, hint=hint, A=a, B=b, Y=y)
        return y

    def inv(self, a: str) -> str:
        return self.unary("INV_X1", a, hint="inv")

    def and2(self, a: str, b: str) -> str:
        return self.binary("AND2_X1", a, b, hint="and")

    def or2(self, a: str, b: str) -> str:
        return self.binary("OR2_X1", a, b, hint="or")

    def xor2(self, a: str, b: str) -> str:
        return self.binary("XOR2_X1", a, b, hint="xor")

    def nand2(self, a: str, b: str) -> str:
        return self.binary("NAND2_X1", a, b, hint="nand")

    def nor2(self, a: str, b: str) -> str:
        return self.binary("NOR2_X1", a, b, hint="nor")

    def mux2(self, d0: str, d1: str, sel: str) -> str:
        y = self.net("mux")
        self.cell("MUX2_X1", hint="mux", D0=d0, D1=d1, S=sel, Y=y)
        return y

    def full_adder(self, a: str, b: str, ci: str) -> Tuple[str, str]:
        s, co = self.net("fa_s"), self.net("fa_co")
        self.cell("FA_X1", hint="fa", A=a, B=b, CI=ci, S=s, CO=co)
        return s, co

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        s, co = self.net("ha_s"), self.net("ha_co")
        self.cell("HA_X1", hint="ha", A=a, B=b, S=s, CO=co)
        return s, co

    def dff(self, d: str, clk: str, hint: str = "dff") -> str:
        q = self.net(f"{hint}_q")
        self.cell("DFF_X1", hint=hint, D=d, CK=clk, Q=q)
        return q

    def dff_bus(self, data: Sequence[str], clk: str, hint: str = "reg") -> List[str]:
        return [self.dff(d, clk, hint=hint) for d in data]

    def buffer(self, a: str, strength: int = 4) -> str:
        y = self.net("buf")
        self.cell(f"BUF_X{strength}", hint="buf", A=a, Y=y)
        return y

    # -- word-level helpers -----------------------------------------------------

    def ripple_adder(
        self,
        a: Sequence[str],
        b: Sequence[str],
        carry_in: Optional[str] = None,
        hint: str = "rca",
    ) -> List[str]:
        """Signed (two's complement) ripple-carry adder.

        Both operands must be equal width; returns ``width + 1`` sum bits
        with the extra MSB from sign extension.
        """
        if len(a) != len(b):
            raise SynthesisError("ripple_adder operands must match in width")
        width = len(a)
        a_ext = list(a) + [a[-1]]
        b_ext = list(b) + [b[-1]]
        sums: List[str] = []
        carry = carry_in
        for i in range(width + 1):
            if carry is None:
                s, carry = self.half_adder(a_ext[i], b_ext[i])
            else:
                s, carry = self.full_adder(a_ext[i], b_ext[i], carry)
            sums.append(s)
        return sums

    def finish(self) -> Module:
        return self.module


def sign_extend(builder: NetlistBuilder, word: Sequence[str], width: int) -> List[str]:
    """Pad a two's-complement word to ``width`` bits by repeating the MSB."""
    if len(word) > width:
        raise SynthesisError(f"cannot extend width {len(word)} to {width}")
    return list(word) + [word[-1]] * (width - len(word))


def zero_extend(
    builder: NetlistBuilder, word: Sequence[str], width: int
) -> List[str]:
    """Pad an unsigned word to ``width`` bits with constant zeros."""
    if len(word) > width:
        raise SynthesisError(f"cannot extend width {len(word)} to {width}")
    return list(word) + [builder.const0()] * (width - len(word))
