"""The canonical compile-options layer.

Every entry point into the compiler — the :class:`~repro.compiler.
syndcim.SynDCIM` facade, the :class:`~repro.batch.engine.BatchCompiler`
batch engine, the ``repro``/``syndcim`` CLI and the
:mod:`repro.service` HTTP API — historically spelled the same options
slightly differently (``corners`` as a ``CornerSet`` here, a name tuple
there, a comma string on the command line).  :class:`CompileOptions` is
the one place those spellings converge: a frozen dataclass whose
constructor *normalizes* every accepted spelling into one canonical
form, so two entry points handed equivalent options always produce the
same :meth:`~repro.batch.jobs.CompileJob.key` — and therefore share
cache entries, dedup against each other and mean the same thing in a
record.

Accepted spellings
------------------
``corners``
    ``None`` (nominal-only), a preset name (``"typical"``,
    ``"signoff3"``), a comma-separated corner list (``"SS,TT,FF"``), an
    iterable of corner names, or a
    :class:`~repro.signoff.corners.CornerSet` — all normalized to a
    tuple of upper-case corner names (validated against the registry).
``vt``
    One of :data:`VT_CHOICES` (``svt``/``hvt``/``lvt``/``ulvt`` or
    ``auto``).

Everything here is stdlib-only and numpy-free on import (the CLI parses
``--help`` through this module), with corner/process validation
imported lazily.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from .errors import SpecificationError
from .spec import PPAWeights

#: Threshold-flavor policies the search and implement flow accept.
VT_CHOICES = ("svt", "hvt", "lvt", "ulvt", "auto")

#: Mirrors :data:`repro.verify.harness.DEFAULT_VECTORS` as a literal —
#: importing it would pull numpy into every CLI/service startup; the
#: cross-check lives in tests/test_verify.py.
DEFAULT_VERIFY_VECTORS = 4096

#: Default process node name (mirrors ``GENERIC_40NM.name`` — the
#: registry itself lives in :mod:`repro.tech.process` and is consulted
#: lazily so this module stays import-light).
DEFAULT_PROCESS = "generic40"

#: Named PPA-preference presets shared by the CLI (``--ppa``) and the
#: service sweep route, so both spell selection weights identically.
PPA_PRESETS: Dict[str, PPAWeights] = {
    "balanced": PPAWeights(),
    "energy": PPAWeights(power=3.0, performance=1.0, area=1.0),
    "area": PPAWeights(power=1.0, performance=1.0, area=3.0),
    "performance": PPAWeights(power=1.0, performance=3.0, area=1.0),
}

CornersLike = Union[None, str, Iterable[str], "CornerSet"]  # noqa: F821


@dataclass(frozen=True)
class CompileOptions:
    """Everything that steers one compilation besides the spec itself.

    Frozen and canonical: the constructor normalizes (and validates)
    every field, so equal options compare equal regardless of which
    spelling built them, and :meth:`compile_job` keys the cache
    identically from every entry point.

    Fields
    ------
    process:
        Registered process-node name (resolution is by name so options
        serialize; an unknown name fails in :meth:`validate`/the
        worker, exactly like the batch payload path).
    corners:
        Signoff corner names (see module docstring for accepted
        spellings), or ``None`` for nominal-only.
    vt:
        Threshold-flavor policy, one of :data:`VT_CHOICES`.
    verify / verify_vectors:
        Post-synthesis functional verification against the golden
        model, and its stimulus count.
    seed:
        Search-order seed (part of the cache key).
    implement:
        ``False`` stops after search + selection (milliseconds; no
        netlist/layout).
    input_sparsity / weight_sparsity:
        Activity statistics forwarded to power estimation.
    job_timeout_s:
        Per-job watchdog deadline for pooled execution (``None``
        disables the watchdog).  Execution policy — never part of the
        job key.
    retries:
        Transient-failure retry budget per job (execution policy, not
        part of the key); :meth:`retry_policy` renders it as the
        engine's :class:`~repro.batch.resilience.RetryPolicy`.
    """

    process: str = DEFAULT_PROCESS
    corners: Optional[Tuple[str, ...]] = None
    vt: str = "svt"
    verify: bool = False
    verify_vectors: int = DEFAULT_VERIFY_VECTORS
    seed: Optional[int] = None
    implement: bool = True
    input_sparsity: float = 0.0
    weight_sparsity: float = 0.0
    job_timeout_s: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "corners", _normalize_corners(self.corners))
        if self.vt not in VT_CHOICES:
            raise SpecificationError(
                f"unknown vt policy {self.vt!r}; "
                f"choose one of {', '.join(VT_CHOICES)}"
            )
        if not isinstance(self.verify_vectors, int) or isinstance(
            self.verify_vectors, bool
        ):
            raise SpecificationError("verify_vectors must be an integer")
        if self.verify_vectors < 1:
            raise SpecificationError("verify_vectors must be >= 1")
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecificationError("seed must be an integer or None")
        for name in ("input_sparsity", "weight_sparsity"):
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise SpecificationError(f"{name} must be in [0, 1]")
            object.__setattr__(self, name, float(value))
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise SpecificationError("job_timeout_s must be positive")
        if self.retries < 0:
            raise SpecificationError("retries must be >= 0")
        if not self.process or not isinstance(self.process, str):
            raise SpecificationError("process must be a non-empty name")

    # -- derived views ------------------------------------------------------

    def replace(self, **changes: object) -> "CompileOptions":
        """A copy with the given fields changed (re-normalized)."""
        return dataclasses.replace(self, **changes)

    def corner_set(self):
        """The resolved :class:`~repro.signoff.corners.CornerSet`, or
        ``None`` when running nominal-only."""
        if self.corners is None:
            return None
        from .signoff.corners import CornerSet

        return CornerSet.from_names(self.corners, name="options")

    def resolve_process(self):
        """The registered :class:`~repro.tech.process.Process`; raises
        for unknown names."""
        from .tech.process import process_by_name

        return process_by_name(self.process)

    def validate(self) -> "CompileOptions":
        """Resolve every lazily-checked name (process, corners) now —
        the arm-time check HTTP submission and the CLI use so a typo
        fails the request, not a worker.  Returns self for chaining."""
        self.resolve_process()
        self.corner_set()
        return self

    def retry_policy(self):
        """The engine's :class:`~repro.batch.resilience.RetryPolicy`
        for this retry budget (matching the CLI's historical backoff)."""
        from .batch.resilience import RetryPolicy

        return RetryPolicy(
            max_attempts=self.retries + 1, backoff_s=0.5, jitter=0.1
        )

    def compile_job(self, spec, implement: Optional[bool] = None):
        """The :class:`~repro.batch.jobs.CompileJob` for ``spec`` under
        these options — the single place a (spec, options) pair becomes
        a content hash, shared by the batch engine path and the
        service."""
        from .batch.jobs import CompileJob

        return CompileJob(
            spec=spec,
            implement=self.implement if implement is None else implement,
            input_sparsity=self.input_sparsity,
            weight_sparsity=self.weight_sparsity,
            seed=self.seed,
            process_name=self.process,
            corners=self.corners,
            verify=self.verify,
            verify_vectors=self.verify_vectors,
            vt=self.vt,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "process": self.process,
            "corners": None if self.corners is None else list(self.corners),
            "vt": self.vt,
            "verify": self.verify,
            "verify_vectors": self.verify_vectors,
            "seed": self.seed,
            "implement": self.implement,
            "input_sparsity": self.input_sparsity,
            "weight_sparsity": self.weight_sparsity,
            "job_timeout_s": self.job_timeout_s,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CompileOptions":
        """Build from a plain dict (the HTTP request parser).  Unknown
        keys raise — a misspelled option in a job submission must be a
        400, not a silently-defaulted field."""
        if not isinstance(data, Mapping):
            raise SpecificationError("options must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecificationError(
                f"unknown option(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        kwargs = dict(data)
        corners = kwargs.get("corners")
        if isinstance(corners, list):
            kwargs["corners"] = tuple(str(c) for c in corners)
        try:
            return cls(**kwargs)  # type: ignore[arg-type]
        except TypeError as exc:
            raise SpecificationError(f"bad options: {exc}") from None


def _normalize_corners(value: CornersLike) -> Optional[Tuple[str, ...]]:
    """Normalize every accepted ``corners`` spelling to a validated
    tuple of registered corner names (or ``None``)."""
    if value is None:
        return None
    from .signoff.corners import CornerSet, parse_corners

    if isinstance(value, CornerSet):
        return value.names
    if isinstance(value, str):
        return parse_corners(value).names
    try:
        names = [str(v) for v in value]
    except TypeError:
        raise SpecificationError(
            f"corners must be None, a string, a name sequence or a "
            f"CornerSet, not {type(value).__name__}"
        ) from None
    return CornerSet.from_names(names, name="options").names
