"""Layout/APR substrate: geometry, SDP placement, routing estimation,
DRC, LVS, and GDS-style export.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .geometry import Rect, bounding_box, half_perimeter, sweep_overlaps
from .sdp import Placement, SDPParams, place_macro
from .route import RoutingEstimate, estimate_routing
from .drc import DRCReport, DRCViolation, run_drc
from .lvs import LVSMismatch, LVSReport, extract_layout_netlist, run_lvs
from .gds import read_gds_json, write_gds_json

__all__ = [
    "Rect",
    "bounding_box",
    "half_perimeter",
    "sweep_overlaps",
    "Placement",
    "SDPParams",
    "place_macro",
    "RoutingEstimate",
    "estimate_routing",
    "DRCReport",
    "DRCViolation",
    "run_drc",
    "LVSMismatch",
    "LVSReport",
    "extract_layout_netlist",
    "run_lvs",
    "read_gds_json",
    "write_gds_json",
]
