"""Layout/APR substrate: geometry, SDP placement, routing estimation,
DRC, LVS, and GDS-style export.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .geometry import (
    Rect,
    bounding_box,
    half_perimeter,
    overlap_pairs,
    rect_arrays,
    sweep_overlaps,
)
from .arena import LayoutArena
from .sdp import CellRects, Placement, SDPParams, place_macro
from .route import RoutingEstimate, estimate_routing, estimate_routing_reference
from .drc import DRCReport, DRCViolation, run_drc
from .lvs import LVSMismatch, LVSReport, extract_layout_netlist, run_lvs
from .gds import read_gds_json, write_gds_json

__all__ = [
    "Rect",
    "bounding_box",
    "half_perimeter",
    "overlap_pairs",
    "rect_arrays",
    "sweep_overlaps",
    "CellRects",
    "LayoutArena",
    "Placement",
    "SDPParams",
    "place_macro",
    "RoutingEstimate",
    "estimate_routing",
    "estimate_routing_reference",
    "DRCReport",
    "DRCViolation",
    "run_drc",
    "LVSMismatch",
    "LVSReport",
    "extract_layout_netlist",
    "run_lvs",
    "read_gds_json",
    "write_gds_json",
]
