"""Layout-versus-schematic verification.

Extracts a netlist back out of the layout database (instances + their
connectivity, as the GDS labels carry them) and compares it with the
source module: same cell for every instance, same pin-to-net binding,
nothing missing, nothing extra.  Because this flow *derives* layouts
from netlists, LVS failures indicate placer/database bugs — which is
exactly what the check is for in the paper's flow too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..rtl.ir import Module
from .sdp import Placement


@dataclass(frozen=True)
class LVSMismatch:
    kind: str  # "missing" | "extra" | "cell" | "connectivity"
    instance: str
    detail: str


@dataclass(frozen=True)
class LVSReport:
    mismatches: Tuple[LVSMismatch, ...]
    compared_instances: int

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.clean:
            return f"LVS clean ({self.compared_instances} instances)"
        lines = [f"LVS: {len(self.mismatches)} mismatches"]
        lines += [
            f"  [{m.kind}] {m.instance}: {m.detail}" for m in self.mismatches[:10]
        ]
        return "\n".join(lines)


def extract_layout_netlist(
    module: Module, placement: Placement
) -> Dict[str, Tuple[str, Dict[str, str]]]:
    """Rebuild ``{instance: (cell, conn)}`` from the layout database.

    The placement stores geometry only; connectivity labels ride along
    with the instances (as GDS text labels would), so extraction walks
    the placed set and picks each instance's recorded binding.
    """
    by_name = {inst.name: inst for inst in module.instances}
    extracted: Dict[str, Tuple[str, Dict[str, str]]] = {}
    for name in placement.cells:
        inst = by_name.get(name)
        if inst is None:
            extracted[name] = ("<unknown>", {})
        else:
            extracted[name] = (inst.cell_name, dict(inst.conn))
    return extracted


def run_lvs(module: Module, placement: Placement) -> LVSReport:
    """Compare the layout database against the schematic module.

    The layout's connectivity labels are extracted from the placed
    instance set itself (see :func:`extract_layout_netlist`), so for a
    placed instance the cell and pin binding always agree with the
    schematic record they were extracted from — the checks that can
    actually fire are ``missing`` (in schematic, not placed) and
    ``extra`` (placed, not in schematic).  This fast path compares the
    name sets directly instead of copying every instance's connection
    dict through the extraction, which matters on hundred-thousand-cell
    layouts; the mismatch kinds and report order match the full
    comparison exactly.
    """
    mismatches: List[LVSMismatch] = []
    placed = placement.cells
    source_names = {inst.name for inst in module.instances}

    for inst in module.instances:
        if inst.name not in placed:
            mismatches.append(LVSMismatch("missing", inst.name, "not in layout"))
    for name in placed:
        if name not in source_names:
            mismatches.append(LVSMismatch("extra", name, "not in schematic"))
    return LVSReport(
        mismatches=tuple(mismatches), compared_instances=len(source_names)
    )
