"""Layout-versus-schematic verification.

Extracts a netlist back out of the layout database (instances + their
connectivity, as the GDS labels carry them) and compares it with the
source module: same cell for every instance, same pin-to-net binding,
nothing missing, nothing extra.  Because this flow *derives* layouts
from netlists, LVS failures indicate placer/database bugs — which is
exactly what the check is for in the paper's flow too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..rtl.ir import Module
from .sdp import Placement


@dataclass(frozen=True)
class LVSMismatch:
    kind: str  # "missing" | "extra" | "cell" | "connectivity"
    instance: str
    detail: str


@dataclass(frozen=True)
class LVSReport:
    mismatches: Tuple[LVSMismatch, ...]
    compared_instances: int

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.clean:
            return f"LVS clean ({self.compared_instances} instances)"
        lines = [f"LVS: {len(self.mismatches)} mismatches"]
        lines += [
            f"  [{m.kind}] {m.instance}: {m.detail}" for m in self.mismatches[:10]
        ]
        return "\n".join(lines)


def extract_layout_netlist(
    module: Module, placement: Placement
) -> Dict[str, Tuple[str, Dict[str, str]]]:
    """Rebuild ``{instance: (cell, conn)}`` from the layout database.

    The placement stores geometry only; connectivity labels ride along
    with the instances (as GDS text labels would), so extraction walks
    the placed set and picks each instance's recorded binding.
    """
    by_name = {inst.name: inst for inst in module.instances}
    extracted: Dict[str, Tuple[str, Dict[str, str]]] = {}
    for name in placement.cells:
        inst = by_name.get(name)
        if inst is None:
            extracted[name] = ("<unknown>", {})
        else:
            extracted[name] = (inst.cell_name, dict(inst.conn))
    return extracted


def run_lvs(module: Module, placement: Placement) -> LVSReport:
    mismatches: List[LVSMismatch] = []
    layout = extract_layout_netlist(module, placement)
    source = {inst.name: (inst.cell_name, inst.conn) for inst in module.instances}

    for name, (cell, conn) in source.items():
        if name not in layout:
            mismatches.append(LVSMismatch("missing", name, "not in layout"))
            continue
        lcell, lconn = layout[name]
        if lcell != cell:
            mismatches.append(
                LVSMismatch("cell", name, f"layout {lcell} != schematic {cell}")
            )
        elif lconn != dict(conn):
            mismatches.append(
                LVSMismatch("connectivity", name, "pin binding differs")
            )
    for name in layout:
        if name not in source:
            mismatches.append(LVSMismatch("extra", name, "not in schematic"))
    return LVSReport(
        mismatches=tuple(mismatches), compared_instances=len(source)
    )
