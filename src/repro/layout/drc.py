"""Design-rule checking on placements.

The subset of rules that placement can violate (routing rules are folded
into the congestion estimate):

* ``overlap`` — no two cells may overlap;
* ``boundary`` — every cell inside the outline;
* ``row`` — standard cells sit on legal row offsets (SRAM cells on the
  array grid are exempt: they use their own site);
* ``site`` — cell width must be positive and not exceed the outline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rtl.ir import Module
from ..tech.stdcells import StdCellLibrary
from .geometry import sweep_overlaps
from .sdp import Placement


@dataclass(frozen=True)
class DRCViolation:
    rule: str
    message: str
    instances: tuple


@dataclass(frozen=True)
class DRCReport:
    violations: tuple

    @property
    def clean(self) -> bool:
        return not self.violations

    def count(self, rule: str) -> int:
        return sum(1 for v in self.violations if v.rule == rule)

    def describe(self) -> str:
        if self.clean:
            return "DRC clean"
        head = [f"DRC: {len(self.violations)} violations"]
        head += [f"  [{v.rule}] {v.message}" for v in self.violations[:10]]
        return "\n".join(head)


def run_drc(
    module: Module,
    placement: Placement,
    library: StdCellLibrary,
    row_height_um: float = 1.8,
    max_violations: int = 1000,
) -> DRCReport:
    violations: List[DRCViolation] = []
    outline = placement.outline

    memory_cells = set()
    for inst in module.instances:
        if library.cell(inst.cell_name).is_memory:
            memory_cells.add(inst.name)

    rects = []
    for name, rect in placement.cells.items():
        rects.append((name, rect))
        if not outline.contains(rect):
            violations.append(
                DRCViolation("boundary", f"{name} outside outline", (name,))
            )
        if rect.width <= 0:
            violations.append(
                DRCViolation("site", f"{name} has non-positive width", (name,))
            )
        if len(violations) >= max_violations:
            break

    for a, b in sweep_overlaps(rects):
        # SRAM grid cells and standard rows live in separate regions; any
        # true overlap is an error regardless of kind.
        violations.append(DRCViolation("overlap", f"{a} overlaps {b}", (a, b)))
        if len(violations) >= max_violations:
            break

    return DRCReport(violations=tuple(violations))
