"""Design-rule checking on placements.

The subset of rules that placement can violate (routing rules are folded
into the congestion estimate):

* ``overlap`` — no two cells may overlap;
* ``boundary`` — every cell inside the outline;
* ``site`` — cell width must be positive and not exceed the outline.

(Row-offset legality is guaranteed by construction: the SDP placer only
emits shelf rows and SRAM grid sites, so there is no separate row rule.)

The checks run over the placement's coordinate arrays (see
:func:`repro.layout.geometry.rect_arrays`): boundary and site rules are
single vectorized comparisons, and the overlap rule uses the
grid-binned :func:`repro.layout.geometry.overlap_pairs` sweep, which
reproduces the scalar :func:`~repro.layout.geometry.sweep_overlaps`
pair set exactly.  Every rect is always checked — ``max_violations``
caps only the *reported* violations, never the sweep input (the old
scalar loop broke out of rect collection early, silently truncating the
overlap sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..rtl.ir import Module
from ..tech.stdcells import StdCellLibrary
from .geometry import overlap_pairs, rect_arrays
from .sdp import Placement


@dataclass(frozen=True)
class DRCViolation:
    rule: str
    message: str
    instances: tuple


@dataclass(frozen=True)
class DRCReport:
    violations: tuple
    #: Total violations found; exceeds ``len(violations)`` when the
    #: report was capped at ``max_violations``.
    total_violations: int = -1

    def __post_init__(self) -> None:
        if self.total_violations < 0:
            object.__setattr__(self, "total_violations", len(self.violations))

    @property
    def clean(self) -> bool:
        # The report may be capped; cleanliness is judged on the total.
        return self.total_violations == 0

    @property
    def truncated(self) -> bool:
        return self.total_violations > len(self.violations)

    def count(self, rule: str) -> int:
        """Occurrences of ``rule`` among the *reported* violations (the
        report may be capped — check :attr:`truncated`)."""
        return sum(1 for v in self.violations if v.rule == rule)

    def describe(self) -> str:
        if self.clean:
            return "DRC clean"
        head = [f"DRC: {self.total_violations} violations"]
        if self.truncated:
            head[0] += f" ({len(self.violations)} reported)"
        head += [f"  [{v.rule}] {v.message}" for v in self.violations[:10]]
        return "\n".join(head)


def run_drc(
    module: Module,
    placement: Placement,
    library: StdCellLibrary,
    row_height_um: float = 1.8,
    max_violations: int = 1000,
) -> DRCReport:
    """Check a placement; ``module``/``library``/``row_height_um`` are
    kept for signature stability (the rules below are pure geometry)."""
    violations: List[DRCViolation] = []
    outline = placement.outline
    eps = 1e-9

    names, coords = rect_arrays(placement.cells)
    x0, y0, x1, y1 = (coords[:, i] for i in range(4))

    # Boundary + site rules: one vectorized comparison each, reported in
    # placement order (boundary before site for the same cell, exactly
    # as the scalar per-cell loop emitted them).
    if len(names):
        outside = ~(
            (outline.x0 - eps <= x0)
            & (outline.y0 - eps <= y0)
            & (x1 <= outline.x1 + eps)
            & (y1 <= outline.y1 + eps)
        )
        bad_site = (x1 - x0) <= 0
        for i in np.nonzero(outside | bad_site)[0]:
            name = names[i]
            if outside[i]:
                violations.append(
                    DRCViolation("boundary", f"{name} outside outline", (name,))
                )
            if bad_site[i]:
                violations.append(
                    DRCViolation("site", f"{name} has non-positive width", (name,))
                )

        # SRAM grid cells and standard rows live in separate regions; any
        # true overlap is an error regardless of kind.
        for a, b in overlap_pairs(names, coords, eps):
            violations.append(DRCViolation("overlap", f"{a} overlaps {b}", (a, b)))

    total = len(violations)
    return DRCReport(
        violations=tuple(violations[:max_violations]), total_violations=total
    )
