"""Layout-database export (GDS-like JSON stream).

Real GDSII is a binary stream of structures and boundary records; this
writer emits the same information as line-oriented JSON records — one
header, one structure per cell master, one placement record per
instance — which is trivially diffable and round-trippable in tests,
and can be converted to true GDSII offline by any polygon tool.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

from ..errors import LayoutError
from ..rtl.ir import Module
from .sdp import Placement

FORMAT_VERSION = 1
#: Layer conventions (arbitrary but stable): cell outline, SRAM, label.
LAYER_OUTLINE = 0
LAYER_STDCELL = 10
LAYER_SRAM = 20


def write_gds_json(
    module: Module,
    placement: Placement,
    library,
    design_name: str = "",
) -> str:
    """Serialize the placed design; one JSON record per line."""
    records: List[str] = []
    records.append(
        json.dumps(
            {
                "record": "HEADER",
                "version": FORMAT_VERSION,
                "design": design_name or module.name,
                "units_um": 1.0,
                "outline": [
                    placement.outline.x0,
                    placement.outline.y0,
                    placement.outline.x1,
                    placement.outline.y1,
                ],
            }
        )
    )
    by_name = {inst.name: inst for inst in module.instances}
    for name, rect in placement.cells.items():
        inst = by_name.get(name)
        if inst is None:
            raise LayoutError(f"placed instance {name} missing from netlist")
        cell = library.cell(inst.cell_name)
        layer = LAYER_SRAM if cell.is_memory else LAYER_STDCELL
        records.append(
            json.dumps(
                {
                    "record": "SREF",
                    "name": name,
                    "cell": inst.cell_name,
                    "layer": layer,
                    "xy": [rect.x0, rect.y0, rect.x1, rect.y1],
                }
            )
        )
    records.append(json.dumps({"record": "ENDLIB", "cells": len(placement.cells)}))
    return "\n".join(records) + "\n"


def read_gds_json(text: str) -> Dict[str, object]:
    """Parse the stream back: header dict plus instance records."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise LayoutError("empty GDS stream")
    header = json.loads(lines[0])
    if header.get("record") != "HEADER":
        raise LayoutError("missing GDS header record")
    instances = {}
    end_seen = False
    for line in lines[1:]:
        rec = json.loads(line)
        kind = rec.get("record")
        if kind == "SREF":
            instances[rec["name"]] = rec
        elif kind == "ENDLIB":
            end_seen = True
    if not end_seen:
        raise LayoutError("GDS stream not terminated with ENDLIB")
    return {"header": header, "instances": instances}
