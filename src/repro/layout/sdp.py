"""Structured-data-path (SDP) placement.

The paper replaces free-form APR placement with a scalable SDP script
for Cadence Innovus: SRAM cells go on a regular grid, "the gaps between
SRAM columns" are filled with each column's adder/accumulator cells, and
peripheral logic rings the array (Section III.D).  This module is that
script's offline twin.  Given the flat *physical* macro netlist (array +
digital core), it:

1. partitions instances by their structural role, parsed from the
   hierarchical names the generators emit (``array/cell_r{r}_c{c}``,
   ``core/col{c}_...``, ``core/ofu{g}_...``, WL-driver cells at the core
   top level);
2. solves a small floorplan: outline area = cell area / utilization at a
   target aspect ratio, a WL-driver strip on the left, an OFU/periphery
   strip at the bottom, and ``W`` uniform column slots above it;
3. places SRAM cells of column ``c`` as ``fold`` adjacent vertical
   stacks inside slot ``c`` and shelf-packs the column's logic into the
   remaining gap — the structured interleaving that keeps product wires
   short and routing uniform.

The result is a :class:`Placement` the router, DRC, LVS and GDS writer
consume, plus per-net wire loads for post-layout STA/power.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import LayoutError
from ..rtl.ir import Instance, Module
from ..tech.stdcells import StdCellLibrary
from .geometry import Rect

_ARRAY_RE = re.compile(r"(?:^|/)cell_r(\d+)_c(\d+)$")
_COL_RE = re.compile(r"(?:^|/)col(\d+)_")
_OFU_RE = re.compile(r"(?:^|/)ofu(\d+)_")
_WL_RE = re.compile(r"(?:^|/)(inreg|inv|buf|wldrv|wlpre)_\d+$")


@dataclass
class SDPParams:
    """Placement knobs (the TCL script's variables)."""

    utilization: float = 0.78
    aspect: float = 1.85  # width / height, the paper macro's 455/246
    row_height_um: float = 1.8
    sram_row_height_um: float = 1.0
    max_iterations: int = 8

    def __post_init__(self) -> None:
        if not 0.3 <= self.utilization <= 0.95:
            raise LayoutError("utilization must be within [0.3, 0.95]")
        if self.aspect <= 0:
            raise LayoutError("aspect must be positive")


@dataclass
class Placement:
    """Placed design: per-instance rectangles and region map."""

    outline: Rect
    cells: Dict[str, Rect]
    regions: Dict[str, Rect]
    utilization: float
    fold: int
    column_pitch_um: float

    @property
    def area_um2(self) -> float:
        return self.outline.area

    @property
    def width_um(self) -> float:
        return self.outline.width

    @property
    def height_um(self) -> float:
        return self.outline.height

    def position(self, instance: str) -> Tuple[float, float]:
        try:
            return self.cells[instance].center
        except KeyError:
            raise LayoutError(f"instance {instance!r} not placed") from None

    def describe(self) -> str:
        return (
            f"outline {self.width_um:.1f} x {self.height_um:.1f} um "
            f"({self.area_um2 / 1e6:.4f} mm^2), utilization "
            f"{self.utilization:.2f}, fold {self.fold}, "
            f"column pitch {self.column_pitch_um:.2f} um"
        )


@dataclass
class _Partition:
    array: Dict[Tuple[int, int], Instance] = field(default_factory=dict)
    columns: Dict[int, List[Instance]] = field(default_factory=dict)
    wl_driver: List[Instance] = field(default_factory=list)
    periphery: List[Instance] = field(default_factory=list)


def _partition(module: Module) -> _Partition:
    part = _Partition()
    for inst in module.instances:
        m = _ARRAY_RE.search(inst.name)
        if m:
            part.array[(int(m.group(1)), int(m.group(2)))] = inst
            continue
        m = _COL_RE.search(inst.name)
        if m:
            part.columns.setdefault(int(m.group(1)), []).append(inst)
            continue
        if _WL_RE.search(inst.name):
            part.wl_driver.append(inst)
            continue
        part.periphery.append(inst)
    if not part.array:
        raise LayoutError("no array cells found; place_macro needs the "
                          "physical view (generate_macro_with_array)")
    if not part.columns:
        raise LayoutError("no column logic found in module")
    return part


def _shelf_pack(
    instances: List[Instance],
    library: StdCellLibrary,
    region: Rect,
    row_height: float,
    placed: Dict[str, Rect],
) -> bool:
    """Left-to-right, bottom-to-top shelf packing.  Returns False when
    the region overflows (caller grows the floorplan and retries)."""
    x = region.x0
    y = region.y0
    for inst in instances:
        cell = library.cell(inst.cell_name)
        w = cell.width_um or cell.area_um2 / row_height
        if w > region.width + 1e-9:
            return False
        if x + w > region.x1 + 1e-9:
            x = region.x0
            y += row_height
        if y + row_height > region.y1 + 1e-6:
            return False
        placed[inst.name] = Rect(x, y, x + w, y + row_height)
        x += w
    return True


def place_macro(
    module: Module,
    library: StdCellLibrary,
    params: Optional[SDPParams] = None,
) -> Placement:
    """Run SDP placement on a flat physical macro module."""
    params = params or SDPParams()
    part = _partition(module)

    n_rows = 1 + max(r for r, _ in part.array)
    n_cols = 1 + max(c for _, c in part.array)
    sram_cell = library.cell(next(iter(part.array.values())).cell_name)
    sram_w = max(
        library.cell(i.cell_name).width_um or 0.55 for i in part.array.values()
    )
    sram_h = params.sram_row_height_um

    def area_of(instances: List[Instance]) -> float:
        return sum(library.cell(i.cell_name).area_um2 for i in instances)

    array_area = sum(
        library.cell(i.cell_name).area_um2 for i in part.array.values()
    )
    col_areas = {c: area_of(insts) for c, insts in part.columns.items()}
    wl_area = area_of(part.wl_driver)
    peri_area = area_of(part.periphery)
    total_cell_area = array_area + sum(col_areas.values()) + wl_area + peri_area

    # A column slot must fit the SRAM stack plus the widest logic cell.
    max_col_cell_w = max(
        library.cell(i.cell_name).width_um or 1.0
        for insts in part.columns.values()
        for i in insts
    )
    row_h = params.row_height_um
    worst_col_area = max(col_areas.values())
    array_h = n_rows * sram_h + sram_h

    # Scan gap widths: narrow gaps give a tall skinny macro (column
    # logic binds), wide gaps a short fat one (array height binds).
    # Keep the minimum-area floorplan that places cleanly — this is the
    # area/aspect trade the SDP TCL script exposes as a variable.
    best: Optional[Placement] = None
    gap_lo = max_col_cell_w + 0.2
    candidates = [gap_lo * f for f in (1.0, 1.25, 1.6, 2.0, 2.6, 3.4)]
    for gap_w in candidates:
        pitch = sram_w + 0.1 + gap_w
        core_h = max(array_h, worst_col_area / (gap_w * 0.85))
        width = n_cols * pitch + max(4.0, 0.02 * n_cols * pitch)
        peri_h = peri_area / (width * 0.70) + 2 * row_h
        height = core_h + peri_h + 2 * row_h
        for attempt in range(params.max_iterations):
            placement = _try_place(
                part,
                library,
                params,
                width,
                height,
                n_rows,
                n_cols,
                sram_w,
                sram_h,
                total_cell_area,
            )
            if placement is not None:
                break
            height *= 1.08
        if placement is None:
            continue
        if best is None or placement.area_um2 < best.area_um2:
            best = placement
    if best is None:
        raise LayoutError(
            f"SDP placement failed to converge after scanning "
            f"{len(candidates)} floorplans"
        )
    return best


def _try_place(
    part: _Partition,
    library: StdCellLibrary,
    params: SDPParams,
    width: float,
    height: float,
    n_rows: int,
    n_cols: int,
    sram_w: float,
    sram_h: float,
    total_cell_area: float,
) -> Optional[Placement]:
    placed: Dict[str, Rect] = {}
    row_h = params.row_height_um

    # Bottom periphery strip (OFU, output regs, alignment, ties).
    peri_area = sum(
        library.cell(i.cell_name).area_um2 for i in part.periphery
    )
    peri_h = max(
        row_h,
        math.ceil(peri_area / max(width * 0.9, 1.0) / row_h) * row_h * 1.35,
    )
    # Left WL-driver strip.
    core_h = height - peri_h
    if core_h <= 4 * row_h:
        return None
    wl_area = sum(library.cell(i.cell_name).area_um2 for i in part.wl_driver)
    wl_w = max(3.0, wl_area / max(core_h * 0.8, 1.0) * 1.3)

    col_region_w = width - wl_w
    pitch = col_region_w / n_cols

    # Fold the SRAM stack so it fits the core height.
    fold = max(1, math.ceil(n_rows * sram_h / core_h))
    max_col_cell_w = max(
        library.cell(i.cell_name).width_um or 1.0
        for insts in part.columns.values()
        for i in insts
    )
    if fold * sram_w + 0.1 + max_col_cell_w > pitch:
        return None
    stack_rows = math.ceil(n_rows / fold)

    regions = {
        "periphery": Rect(0.0, 0.0, width, peri_h),
        "wl_driver": Rect(0.0, peri_h, wl_w, height),
        "columns": Rect(wl_w, peri_h, width, height),
    }

    if not _shelf_pack(
        part.periphery, library, regions["periphery"], row_h, placed
    ):
        return None
    if not _shelf_pack(
        part.wl_driver, library, regions["wl_driver"], row_h, placed
    ):
        return None

    array_by_col: Dict[int, List[Tuple[int, Instance]]] = {}
    for (r, c), inst in part.array.items():
        array_by_col.setdefault(c, []).append((r, inst))

    for col, insts in sorted(part.columns.items()):
        x0 = wl_w + col * pitch
        sram_x = x0
        gap = Rect(x0 + fold * sram_w + 0.1, peri_h, x0 + pitch, height)
        # SRAM stacks (SDP grid: exact positions, no packing).
        for r, inst in array_by_col.get(col, ()):
            stack = r // stack_rows
            row_in_stack = r % stack_rows
            cx = sram_x + stack * sram_w
            cy = peri_h + row_in_stack * sram_h
            if cy + sram_h > height + 1e-6:
                return None
            cell = library.cell(inst.cell_name)
            w = min(cell.width_um or sram_w, sram_w)
            placed[inst.name] = Rect(cx, cy, cx + w, cy + sram_h)
        if not _shelf_pack(insts, library, gap, row_h, placed):
            return None

    outline = Rect(0.0, 0.0, width, height)
    return Placement(
        outline=outline,
        cells=placed,
        regions=regions,
        utilization=total_cell_area / outline.area,
        fold=fold,
        column_pitch_um=pitch,
    )
