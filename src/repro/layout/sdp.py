"""Structured-data-path (SDP) placement.

The paper replaces free-form APR placement with a scalable SDP script
for Cadence Innovus: SRAM cells go on a regular grid, "the gaps between
SRAM columns" are filled with each column's adder/accumulator cells, and
peripheral logic rings the array (Section III.D).  This module is that
script's offline twin.  Given the flat *physical* macro netlist (array +
digital core), it:

1. partitions instances by their structural role, parsed from the
   hierarchical names the generators emit (``array/cell_r{r}_c{c}``,
   ``core/col{c}_...``, ``core/ofu{g}_...``, WL-driver cells at the core
   top level);
2. solves a small floorplan: outline area = cell area / utilization at a
   target aspect ratio, a WL-driver strip on the left, an OFU/periphery
   strip at the bottom, and ``W`` uniform column slots above it;
3. places SRAM cells of column ``c`` as ``fold`` adjacent vertical
   stacks inside slot ``c`` and shelf-packs the column's logic into the
   remaining gap — the structured interleaving that keeps product wires
   short and routing uniform.

The packing kernels run over precomputed per-partition width arrays:
cell widths and areas are resolved once per unique cell type, shelf rows
are cut with prefix-sum searches (:func:`_pack_rows`) instead of a
per-instance retry loop, and the SRAM grid is laid out with whole-column
index arithmetic.  The per-instance scalar packer survives as
:func:`_shelf_pack` — the pinned reference the layout-kernel equivalence
suite packs against.

The result is a :class:`Placement` the router, DRC, LVS and GDS writer
consume; its cell map is backed by the raw coordinate arrays and only
materializes :class:`Rect` objects when something indexes into it, so
the array-consuming kernels (DRC overlap sweep, routing reductions)
never pay for a hundred thousand rectangle objects.
"""

from __future__ import annotations

import math
import re
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import LayoutError
from ..rtl.ir import Instance, Module
from ..tech.stdcells import StdCellLibrary
from .geometry import Rect

_ARRAY_RE = re.compile(r"(?:^|/)cell_r(\d+)_c(\d+)$")
_COL_RE = re.compile(r"(?:^|/)col(\d+)_")
_OFU_RE = re.compile(r"(?:^|/)ofu(\d+)_")
_WL_RE = re.compile(r"(?:^|/)(inreg|inv|buf|wldrv|wlpre)_\d+$")


@dataclass
class SDPParams:
    """Placement knobs (the TCL script's variables)."""

    utilization: float = 0.78
    aspect: float = 1.85  # width / height, the paper macro's 455/246
    row_height_um: float = 1.8
    sram_row_height_um: float = 1.0
    max_iterations: int = 8

    def __post_init__(self) -> None:
        if not 0.3 <= self.utilization <= 0.95:
            raise LayoutError("utilization must be within [0.3, 0.95]")
        if self.aspect <= 0:
            raise LayoutError("aspect must be positive")


class CellRects(Mapping):
    """Lazy ``name -> Rect`` mapping backed by coordinate arrays.

    Iteration and membership never build :class:`Rect` objects; the
    full dict materializes on the first item access (GDS export, tests)
    and is then served directly.  The DRC/routing kernels pull the raw
    arrays through :meth:`coord_arrays`.
    """

    __slots__ = ("_names", "_coords", "_dict", "_members")

    def __init__(self, names: List[str], coords: np.ndarray) -> None:
        self._names = names
        self._coords = coords
        self._dict: Optional[Dict[str, Rect]] = None
        self._members: Optional[Dict[str, None]] = None

    def coord_arrays(self) -> Tuple[List[str], np.ndarray]:
        return self._names, self._coords

    def _materialize(self) -> Dict[str, Rect]:
        if self._dict is None:
            self._dict = {
                name: Rect(*row)
                for name, row in zip(self._names, self._coords.tolist())
            }
        return self._dict

    def __getitem__(self, key: str) -> Rect:
        return self._materialize()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, key: object) -> bool:
        if self._dict is not None:
            return key in self._dict
        if self._members is None:
            self._members = dict.fromkeys(self._names)
        return key in self._members

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other.items())
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return f"CellRects({len(self._names)} cells)"

    def __reduce__(self):
        return (CellRects, (self._names, self._coords))


@dataclass
class Placement:
    """Placed design: per-instance rectangles and region map."""

    outline: Rect
    cells: Mapping[str, Rect]
    regions: Dict[str, Rect]
    utilization: float
    fold: int
    column_pitch_um: float

    @property
    def area_um2(self) -> float:
        return self.outline.area

    @property
    def width_um(self) -> float:
        return self.outline.width

    @property
    def height_um(self) -> float:
        return self.outline.height

    def position(self, instance: str) -> Tuple[float, float]:
        try:
            return self.cells[instance].center
        except KeyError:
            raise LayoutError(f"instance {instance!r} not placed") from None

    def describe(self) -> str:
        return (
            f"outline {self.width_um:.1f} x {self.height_um:.1f} um "
            f"({self.area_um2 / 1e6:.4f} mm^2), utilization "
            f"{self.utilization:.2f}, fold {self.fold}, "
            f"column pitch {self.column_pitch_um:.2f} um"
        )


@dataclass
class _Partition:
    array: Dict[Tuple[int, int], Instance] = field(default_factory=dict)
    columns: Dict[int, List[Instance]] = field(default_factory=dict)
    wl_driver: List[Instance] = field(default_factory=list)
    periphery: List[Instance] = field(default_factory=list)


def _partition(module: Module) -> _Partition:
    part = _Partition()
    # Cheap substring gates in front of the full regexes: on a
    # hundred-thousand-cell macro almost every name hits exactly one
    # category, and the gates cut the three-regex cascade per instance
    # to (usually) a single match.
    for inst in module.instances:
        name = inst.name
        if "cell_r" in name:
            m = _ARRAY_RE.search(name)
            if m:
                part.array[(int(m.group(1)), int(m.group(2)))] = inst
                continue
        if "col" in name:
            m = _COL_RE.search(name)
            if m:
                part.columns.setdefault(int(m.group(1)), []).append(inst)
                continue
        if _WL_RE.search(name):
            part.wl_driver.append(inst)
            continue
        part.periphery.append(inst)
    if not part.array:
        raise LayoutError("no array cells found; place_macro needs the "
                          "physical view (generate_macro_with_array)")
    if not part.columns:
        raise LayoutError("no column logic found in module")
    return part


def _shelf_pack(
    instances: List[Instance],
    library: StdCellLibrary,
    region: Rect,
    row_height: float,
    placed: Dict[str, Rect],
) -> bool:
    """Left-to-right, bottom-to-top shelf packing.  Returns False when
    the region overflows (caller grows the floorplan and retries).

    Scalar **reference implementation** — the placer runs
    :func:`_pack_rows` over precomputed width arrays instead; the
    equivalence suite packs both and compares the shelves.
    """
    x = region.x0
    y = region.y0
    for inst in instances:
        cell = library.cell(inst.cell_name)
        w = cell.width_um or cell.area_um2 / row_height
        if w > region.width + 1e-9:
            return False
        if x + w > region.x1 + 1e-9:
            x = region.x0
            y += row_height
        if y + row_height > region.y1 + 1e-6:
            return False
        placed[inst.name] = Rect(x, y, x + w, y + row_height)
        x += w
    return True


def _pack_rows(
    widths: np.ndarray, region: Rect, row_height: float
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Vectorized shelf packing: greedy rows cut with prefix-sum
    searches.  Returns ``(x0s, x1s, y0s)`` coordinate arrays in item
    order, or ``None`` when the region overflows."""
    n = len(widths)
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty, empty
    region_w = region.width
    if float(widths.max()) > region_w + 1e-9:
        return None
    prefix = np.cumsum(widths)
    limit = region_w + 1e-9

    row_starts: List[int] = [0]
    bases: List[float] = [0.0]
    start = 0
    base = 0.0
    while True:
        cut = int(np.searchsorted(prefix, base + limit, side="right"))
        # A row always takes at least one item (max width fits, checked
        # above); the guard absorbs last-bit rounding at the boundary.
        cut = max(cut, start + 1)
        if cut >= n:
            break
        row_starts.append(cut)
        bases.append(float(prefix[cut - 1]))
        start = cut
        base = bases[-1]

    n_rows = len(row_starts)
    if region.y0 + n_rows * row_height > region.y1 + 1e-6:
        return None
    row_id = np.zeros(n, dtype=np.int64)
    row_id[row_starts[1:]] = 1
    row_id = np.cumsum(row_id)
    base_arr = np.asarray(bases, dtype=np.float64)[row_id]
    shifted = np.concatenate(([0.0], prefix[:-1]))
    x0s = region.x0 + (shifted - base_arr)
    x1s = region.x0 + (prefix - base_arr)
    y0s = region.y0 + row_id * row_height
    return x0s, x1s, y0s


@dataclass
class _PartitionArrays:
    """Per-partition width/area arrays, resolved once per placement."""

    part: _Partition
    peri_names: List[str]
    peri_widths: np.ndarray
    peri_area: float
    wl_names: List[str]
    wl_widths: np.ndarray
    wl_area: float
    col_names: Dict[int, List[str]]
    col_widths: Dict[int, np.ndarray]
    col_areas: Dict[int, float]
    array_names: Dict[int, List[str]]
    array_rows: Dict[int, np.ndarray]
    array_widths: Dict[int, np.ndarray]
    array_area: float
    n_rows: int
    n_cols: int
    sram_w: float
    max_col_cell_w: float
    total_cell_area: float


def _precompute(
    part: _Partition, library: StdCellLibrary, row_height: float
) -> _PartitionArrays:
    pack_w: Dict[str, float] = {}
    nominal_w: Dict[str, float] = {}
    raw_w: Dict[str, float] = {}
    areas: Dict[str, float] = {}

    def resolve(cell_name: str) -> None:
        if cell_name not in pack_w:
            cell = library.cell(cell_name)
            pack_w[cell_name] = cell.width_um or cell.area_um2 / row_height
            nominal_w[cell_name] = cell.width_um or 1.0
            raw_w[cell_name] = cell.width_um
            areas[cell_name] = cell.area_um2

    def group(instances: List[Instance]) -> Tuple[List[str], np.ndarray, float]:
        names = [i.name for i in instances]
        refs = [i.ref for i in instances]  # leaf instances: ref is the cell name
        for ref in refs:
            if ref not in pack_w:
                resolve(ref)
        widths = np.fromiter(
            map(pack_w.__getitem__, refs), dtype=np.float64, count=len(refs)
        )
        area = float(sum(map(areas.__getitem__, refs)))
        return names, widths, area

    peri_names, peri_widths, peri_area = group(part.periphery)
    wl_names, wl_widths, wl_area = group(part.wl_driver)

    col_names: Dict[int, List[str]] = {}
    col_widths: Dict[int, np.ndarray] = {}
    col_areas: Dict[int, float] = {}
    max_col_cell_w = 0.0
    for col, insts in part.columns.items():
        names, widths, area = group(insts)
        col_names[col] = names
        col_widths[col] = widths
        col_areas[col] = area
        nominal = max(nominal_w[i.cell_name] for i in insts)
        max_col_cell_w = max(max_col_cell_w, nominal)

    sram_w = 0.0
    array_area = 0.0
    by_col: Dict[int, Tuple[List[str], List[int], List[str]]] = {}
    for (r, c), inst in part.array.items():
        ref = inst.ref  # leaf instances: ref is the cell name
        resolve(ref)
        sram_w = max(sram_w, raw_w[ref] or 0.55)
        array_area += areas[ref]
        names, rws, refs = by_col.setdefault(c, ([], [], []))
        names.append(inst.name)
        rws.append(r)
        refs.append(ref)
    array_names: Dict[int, List[str]] = {}
    array_rows: Dict[int, np.ndarray] = {}
    array_widths: Dict[int, np.ndarray] = {}
    for c, (names, rws, refs) in by_col.items():
        array_names[c] = names
        array_rows[c] = np.asarray(rws, dtype=np.int64)
        widths = np.asarray(
            [min(raw_w[ref] or sram_w, sram_w) for ref in refs],
            dtype=np.float64,
        )
        array_widths[c] = widths

    total = array_area + sum(col_areas.values()) + wl_area + peri_area
    return _PartitionArrays(
        part=part,
        peri_names=peri_names,
        peri_widths=peri_widths,
        peri_area=peri_area,
        wl_names=wl_names,
        wl_widths=wl_widths,
        wl_area=wl_area,
        col_names=col_names,
        col_widths=col_widths,
        col_areas=col_areas,
        array_names=array_names,
        array_rows=array_rows,
        array_widths=array_widths,
        array_area=array_area,
        n_rows=1 + max(r for r, _ in part.array),
        n_cols=1 + max(c for _, c in part.array),
        sram_w=sram_w,
        max_col_cell_w=max_col_cell_w,
        total_cell_area=total,
    )


def place_macro(
    module: Module,
    library: StdCellLibrary,
    params: Optional[SDPParams] = None,
) -> Placement:
    """Run SDP placement on a flat physical macro module."""
    params = params or SDPParams()
    part = _partition(module)
    data = _precompute(part, library, params.row_height_um)
    return _scan_floorplans(data, params)


def _scan_floorplans(data: "_PartitionArrays", params: SDPParams) -> Placement:
    """Scan candidate floorplans over precomputed partition arrays and
    keep the minimum-area one that places cleanly.

    Split out of :func:`place_macro` so :class:`~repro.layout.arena.
    LayoutArena` can rerun the scan against cached partition arrays —
    and, once a floorplan is known, replay just the winning
    :func:`_try_place` call (the placement is a pure function of
    ``(data, params, width, height)``, so the replay is bit-identical).
    """
    sram_h = params.sram_row_height_um
    row_h = params.row_height_um
    worst_col_area = max(data.col_areas.values())
    array_h = data.n_rows * sram_h + sram_h

    # Scan gap widths: narrow gaps give a tall skinny macro (column
    # logic binds), wide gaps a short fat one (array height binds).
    # Keep the minimum-area floorplan that places cleanly — this is the
    # area/aspect trade the SDP TCL script exposes as a variable.
    best: Optional[Placement] = None
    gap_lo = data.max_col_cell_w + 0.2
    candidates = [gap_lo * f for f in (1.0, 1.25, 1.6, 2.0, 2.6, 3.4)]
    for gap_w in candidates:
        pitch = data.sram_w + 0.1 + gap_w
        core_h = max(array_h, worst_col_area / (gap_w * 0.85))
        width = data.n_cols * pitch + max(4.0, 0.02 * data.n_cols * pitch)
        peri_h = data.peri_area / (width * 0.70) + 2 * row_h
        height = core_h + peri_h + 2 * row_h
        if best is not None and width * height >= best.area_um2:
            # Retries only grow the height, so this candidate can no
            # longer beat the incumbent minimum-area floorplan.
            continue
        for attempt in range(params.max_iterations):
            placement = _try_place(data, params, width, height)
            if placement is not None:
                break
            height *= 1.08
        if placement is None:
            continue
        if best is None or placement.area_um2 < best.area_um2:
            best = placement
    if best is None:
        raise LayoutError(
            f"SDP placement failed to converge after scanning "
            f"{len(candidates)} floorplans"
        )
    return best


def _try_place(
    data: _PartitionArrays,
    params: SDPParams,
    width: float,
    height: float,
) -> Optional[Placement]:
    row_h = params.row_height_um
    sram_h = params.sram_row_height_um
    sram_w = data.sram_w
    n_rows, n_cols = data.n_rows, data.n_cols

    # Bottom periphery strip (OFU, output regs, alignment, ties).
    peri_h = max(
        row_h,
        math.ceil(data.peri_area / max(width * 0.9, 1.0) / row_h) * row_h * 1.35,
    )
    # Left WL-driver strip.
    core_h = height - peri_h
    if core_h <= 4 * row_h:
        return None
    wl_w = max(3.0, data.wl_area / max(core_h * 0.8, 1.0) * 1.3)

    col_region_w = width - wl_w
    pitch = col_region_w / n_cols

    # Fold the SRAM stack so it fits the core height.
    fold = max(1, math.ceil(n_rows * sram_h / core_h))
    if fold * sram_w + 0.1 + data.max_col_cell_w > pitch:
        return None
    stack_rows = math.ceil(n_rows / fold)

    regions = {
        "periphery": Rect(0.0, 0.0, width, peri_h),
        "wl_driver": Rect(0.0, peri_h, wl_w, height),
        "columns": Rect(wl_w, peri_h, width, height),
    }

    names: List[str] = []
    coord_parts: List[np.ndarray] = []

    def pack(
        group_names: List[str], widths: np.ndarray, region: Rect
    ) -> bool:
        packed = _pack_rows(widths, region, row_h)
        if packed is None:
            return False
        x0s, x1s, y0s = packed
        names.extend(group_names)
        coord_parts.append(
            np.column_stack((x0s, y0s, x1s, y0s + row_h))
        )
        return True

    if not pack(data.peri_names, data.peri_widths, regions["periphery"]):
        return None
    if not pack(data.wl_names, data.wl_widths, regions["wl_driver"]):
        return None

    for col in sorted(data.col_widths):
        x0 = wl_w + col * pitch
        gap = Rect(x0 + fold * sram_w + 0.1, peri_h, x0 + pitch, height)
        # SRAM stacks (SDP grid: exact positions, no packing).
        rows = data.array_rows.get(col)
        if rows is not None and len(rows):
            stack = rows // stack_rows
            row_in_stack = rows % stack_rows
            cx = x0 + stack * sram_w
            cy = peri_h + row_in_stack * sram_h
            if float(cy.max()) + sram_h > height + 1e-6:
                return None
            w = data.array_widths[col]
            names.extend(data.array_names[col])
            coord_parts.append(np.column_stack((cx, cy, cx + w, cy + sram_h)))
        if not pack(data.col_names[col], data.col_widths[col], gap):
            return None

    coords = (
        np.concatenate(coord_parts)
        if coord_parts
        else np.empty((0, 4), dtype=np.float64)
    )
    outline = Rect(0.0, 0.0, width, height)
    return Placement(
        outline=outline,
        cells=CellRects(names, coords),
        regions=regions,
        utilization=data.total_cell_area / outline.area,
        fold=fold,
        column_pitch_um=pitch,
    )
