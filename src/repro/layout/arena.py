"""Persistent layout arena: warm place/route over a fixed netlist.

The implementation back half re-derives everything from the flat module
on every call — partition regexes, per-partition width/area arrays, a
six-candidate floorplan scan, per-net HPWL reductions.  For a fixed
module those are pure recomputation: the partition depends only on the
instance set, the winning floorplan only on ``(partition, params)``,
and the routing estimate only on the placed coordinates.

:class:`LayoutArena` keeps exactly those intermediates alive between
:meth:`place`/:meth:`route` calls, keyed by module and library
identity:

* **place (warm)** — replay the single winning
  :func:`~repro.layout.sdp._try_place` call against the cached
  partition arrays.  The placement is a pure function of
  ``(data, params, width, height)``, so the replay reproduces the full
  scan's result bit-for-bit (the arena still verifies success and falls
  back to a full scan if the replay ever fails).
* **route (warm)** — reuse the cached :class:`~repro.layout.route.
  RoutingEstimate` when the new placement's rect arrays are bit-equal
  to the ones the estimate was computed from.  Crucially this hands
  back the *same object*, whose memoized ``wire_load_fn`` keeps STA's
  identity-keyed propagation cache warm downstream.

DRC and LVS are deliberately *not* cached: they are the checks that
placer or database bugs would trip, so a warm implement re-runs them
honestly against the replayed coordinates (the rect arrays themselves
are shared through :class:`~repro.layout.sdp.CellRects`, so the checks
pay no re-extraction cost).

The arena holds strong references to the modules it has seen — it is
meant to live inside an :class:`~repro.compiler.flow.ImplementSession`,
which already owns those netlists for its own caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..rtl.ir import Module
from ..tech.process import Process
from ..tech.stdcells import StdCellLibrary
from .geometry import rect_arrays
from .route import RoutingEstimate, estimate_routing
from .sdp import (
    Placement,
    SDPParams,
    _partition,
    _precompute,
    _scan_floorplans,
    _try_place,
)


@dataclass
class _ArenaEntry:
    """Cached layout state for one (module, library) pair."""

    module: Module  # strong ref: keeps the id() key valid
    library: StdCellLibrary
    params: SDPParams
    data: object  # _PartitionArrays
    #: Winning (width, height) of the floorplan scan, once known.
    floorplan: Optional[Tuple[float, float]] = None
    #: Routing estimate + the rect arrays it was computed from.
    routing: Optional[RoutingEstimate] = None
    routing_names: Optional[List[str]] = None
    routing_coords: Optional[np.ndarray] = None
    routing_outline: Optional[object] = None
    routing_process: Optional[Process] = None
    #: Counters exposed so the perf harness can prove warm-path behavior.
    stats: Dict[str, int] = field(
        default_factory=lambda: {
            "place_scans": 0,
            "place_replays": 0,
            "route_computes": 0,
            "route_reuses": 0,
        }
    )


class LayoutArena:
    """Warm-path cache for repeated place/route of the same module."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], _ArenaEntry] = {}

    def _entry(
        self, module: Module, library: StdCellLibrary, params: SDPParams
    ) -> _ArenaEntry:
        key = (id(module), id(library))
        entry = self._entries.get(key)
        if entry is not None and entry.params != params:
            entry = None  # row height etc. changed: precompute is stale
        if entry is None:
            part = _partition(module)
            data = _precompute(part, library, params.row_height_um)
            entry = self._entries[key] = _ArenaEntry(
                module=module, library=library, params=params, data=data
            )
        return entry

    def place(
        self,
        module: Module,
        library: StdCellLibrary,
        params: Optional[SDPParams] = None,
    ) -> Placement:
        """SDP placement with partition/floorplan reuse.

        Cold: full candidate scan (identical to
        :func:`~repro.layout.sdp.place_macro`).  Warm: one
        :func:`_try_place` replay of the recorded winner.
        """
        params = params or SDPParams()
        entry = self._entry(module, library, params)
        if entry.floorplan is not None:
            placement = _try_place(entry.data, params, *entry.floorplan)
            if placement is not None:
                entry.stats["place_replays"] += 1
                return placement
            # A failed replay means the cached winner is somehow stale;
            # fall through to an honest rescan rather than erroring.
        placement = _scan_floorplans(entry.data, params)
        entry.floorplan = (placement.outline.width, placement.outline.height)
        entry.stats["place_scans"] += 1
        return placement

    def route(
        self,
        module: Module,
        placement: Placement,
        library: StdCellLibrary,
        process: Process,
        params: Optional[SDPParams] = None,
    ) -> RoutingEstimate:
        """Routing estimate, reused when the placement is bit-identical.

        Congestion depends on the outline and the caps on the process,
        so both participate in the staleness check alongside the rect
        arrays themselves.
        """
        params = params or SDPParams()
        entry = self._entry(module, library, params)
        names, coords = rect_arrays(placement.cells)
        if (
            entry.routing is not None
            and entry.routing_process is process
            and entry.routing_outline == placement.outline
            and (entry.routing_names is names or entry.routing_names == names)
            and np.array_equal(entry.routing_coords, coords)
        ):
            entry.stats["route_reuses"] += 1
            return entry.routing
        routing = estimate_routing(module, placement, library, process)
        entry.routing = routing
        entry.routing_names = names
        entry.routing_coords = coords
        entry.routing_outline = placement.outline
        entry.routing_process = process
        entry.stats["route_computes"] += 1
        return routing

    def stats(self, module: Module, library: StdCellLibrary) -> Dict[str, int]:
        """Warm/cold counters for one module (zeros if never seen)."""
        entry = self._entries.get((id(module), id(library)))
        if entry is None:
            return {
                "place_scans": 0,
                "place_replays": 0,
                "route_computes": 0,
                "route_reuses": 0,
            }
        return dict(entry.stats)
