"""Global-routing estimation: wirelength, wire loads, congestion.

After SDP placement the router's job is summarized by three standard
estimates:

* per-net **half-perimeter wirelength** (HPWL) over the placed pin
  positions (cell centers — adequate at the 1.8 um row scale);
* per-net **wire capacitance** ``HPWL * c_wire``, the load handed to
  post-layout STA and power;
* **congestion**: demanded track length over available track length;
  > 1.0 means the uniform routing the SDP style promises is not
  achievable and the floorplan must grow.

:func:`estimate_routing` computes the per-net reductions over the
compiled :class:`~repro.rtl.netview.NetView` pin tables and the
placement's coordinate arrays — min/max reductions grouped by net index
instead of a Python dict of point lists.  The original scalar walk is
retained as :func:`estimate_routing_reference`; the equivalence suite
pins the per-net lengths and caps of the two bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..errors import LayoutError
from ..rtl.ir import Module
from ..rtl.netview import net_view
from ..tech.process import Process
from ..tech.stdcells import StdCellLibrary
from .geometry import bounding_box, rect_arrays
from .sdp import Placement


@dataclass(frozen=True)
class RoutingEstimate:
    """Routing summary for one placed design."""

    total_wirelength_um: float
    net_lengths_um: Dict[str, float]
    net_caps_ff: Dict[str, float]
    congestion: float
    layers_assumed: int = 4

    def wire_load_fn(self) -> Callable[[str], float]:
        """Adapter for :func:`repro.sta.analysis.analyze` and the power
        estimator: net name -> wire capacitance (fF).

        The closure is memoized on the estimate, so every caller holding
        the same :class:`RoutingEstimate` sees the same function object.
        STA's propagation cache is keyed by wire-load *identity* (see
        :func:`repro.sta.analysis._propagate_view`), so handing out a
        fresh closure per call would silently defeat it.
        """
        fn = self.__dict__.get("_wire_load_fn")
        if fn is None:
            caps = self.net_caps_ff

            def load(net: str) -> float:
                return caps.get(net, 0.0)

            object.__setattr__(self, "_wire_load_fn", load)
            fn = load
        return fn

    def describe(self) -> str:
        return (
            f"wirelength {self.total_wirelength_um / 1e3:.1f} mm over "
            f"{len(self.net_lengths_um)} nets, congestion "
            f"{self.congestion:.2f}"
        )


def _supply_and_congestion(
    placement: Placement, process: Process, total: float
) -> Tuple[int, float]:
    """Track supply: `layers` horizontal+vertical layers at the routing
    pitch across the outline."""
    layers = 4
    tracks_h = placement.outline.height / process.track_pitch_um
    tracks_v = placement.outline.width / process.track_pitch_um
    supply = (
        tracks_h * placement.outline.width + tracks_v * placement.outline.height
    ) * (layers / 2.0)
    congestion = total / supply if supply > 0 else float("inf")
    return layers, congestion


def estimate_routing(
    module: Module,
    placement: Placement,
    library: StdCellLibrary,
    process: Process,
) -> RoutingEstimate:
    """HPWL-based routing estimate for a placed flat module (vectorized).

    Pin positions come from the placement coordinate arrays; per-net
    bounding boxes are ``minimum/maximum.reduceat`` reductions over the
    pin-center arrays sorted by net id.
    """
    view = net_view(module, library)
    names, coords = rect_arrays(placement.cells)
    pos = dict(zip(names, range(len(names))))
    try:
        rows = np.fromiter(
            map(pos.__getitem__, (inst.name for inst in module.instances)),
            dtype=np.int64,
            count=view.n_instances,
        )
    except KeyError:
        missing = next(
            inst.name for inst in module.instances if inst.name not in pos
        )
        raise LayoutError(
            f"instance {missing} missing from placement"
        ) from None
    cx = 0.5 * (coords[:, 0] + coords[:, 2])
    cy = 0.5 * (coords[:, 1] + coords[:, 3])

    # (net, pin-position) entry arrays across every connected pin.
    net_parts: List[np.ndarray] = []
    row_parts: List[np.ndarray] = []
    for group in view.groups:
        group_rows = rows[group.inst_idx]
        for table in (group.in_ids, group.out_ids):
            width = table.shape[1] if table.ndim == 2 else 0
            if width:
                net_parts.append(table.ravel())
                row_parts.append(np.repeat(group_rows, width))
    if net_parts:
        enet = np.concatenate(net_parts)
        erow = np.concatenate(row_parts)
        connected = enet >= 0
        enet = enet[connected]
        erow = erow[connected]
    else:
        enet = np.empty(0, dtype=np.int64)
        erow = np.empty(0, dtype=np.int64)

    if len(enet):
        grouping = np.argsort(enet, kind="stable")
        sorted_nets = enet[grouping]
        net_ids, starts = np.unique(sorted_nets, return_index=True)
        counts = np.diff(np.append(starts, len(sorted_nets)))
        px = cx[erow[grouping]]
        py = cy[erow[grouping]]
        min_x = np.minimum.reduceat(px, starts)
        max_x = np.maximum.reduceat(px, starts)
        min_y = np.minimum.reduceat(py, starts)
        max_y = np.maximum.reduceat(py, starts)
        lengths = (max_x - min_x) + (max_y - min_y)
        multi = counts >= 2
        lengths[~multi] = 0.0
        caps = np.where(multi, process.wire_cap_ff_per_um * lengths, 0.0)
        net_names = [view.net_names[i] for i in net_ids]
        net_lengths = dict(zip(net_names, lengths.tolist()))
        net_caps = dict(zip(net_names, caps.tolist()))
        total = float(lengths.sum())
    else:
        net_lengths = {}
        net_caps = {}
        total = 0.0

    layers, congestion = _supply_and_congestion(placement, process, total)
    return RoutingEstimate(
        total_wirelength_um=total,
        net_lengths_um=net_lengths,
        net_caps_ff=net_caps,
        congestion=congestion,
        layers_assumed=layers,
    )


def estimate_routing_reference(
    module: Module,
    placement: Placement,
    library: StdCellLibrary,
    process: Process,
) -> RoutingEstimate:
    """Scalar reference implementation (per-net Python dict walk), kept
    verbatim to pin :func:`estimate_routing`."""
    pin_positions: Dict[str, List[Tuple[float, float]]] = {}
    for inst in module.instances:
        rect = placement.cells.get(inst.name)
        if rect is None:
            raise LayoutError(f"instance {inst.name} missing from placement")
        center = rect.center
        for net in inst.conn.values():
            pin_positions.setdefault(net, []).append(center)

    net_lengths: Dict[str, float] = {}
    net_caps: Dict[str, float] = {}
    total = 0.0
    for net, points in pin_positions.items():
        if len(points) < 2:
            net_lengths[net] = 0.0
            net_caps[net] = 0.0
            continue
        box = bounding_box(points)
        length = box.width + box.height
        net_lengths[net] = length
        net_caps[net] = process.wire_cap_ff(length)
        total += length

    layers, congestion = _supply_and_congestion(placement, process, total)
    return RoutingEstimate(
        total_wirelength_um=total,
        net_lengths_um=net_lengths,
        net_caps_ff=net_caps,
        congestion=congestion,
        layers_assumed=layers,
    )
